#include "simsan/checker.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"

namespace pgasemb::simsan {

const char* accessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kRemoteWrite:
      return "remote_write";
    case AccessKind::kAtomicAdd:
      return "atomic_add";
  }
  return "?";
}

bool conflictingKinds(AccessKind a, AccessKind b) {
  if (a == AccessKind::kRead && b == AccessKind::kRead) return false;
  if (a == AccessKind::kAtomicAdd && b == AccessKind::kAtomicAdd) return false;
  return true;
}

std::string StridedRange::toString() const {
  std::ostringstream oss;
  if (count <= 1) {
    oss << "[" << begin << ", " << begin + len << ")";
  } else {
    oss << "[" << begin << ", " << envelopeEnd() << ") = " << count
        << " runs of " << len << " every " << stride;
  }
  return oss.str();
}

namespace {

/// Does the contiguous interval [lo, hi) intersect any run of `s`
/// (count >= 2 callers only)?
bool intervalOverlapsRuns(std::int64_t lo, std::int64_t hi,
                          const StridedRange& s) {
  if (hi <= s.begin || lo >= s.envelopeEnd()) return false;
  // An interval at least one period long necessarily covers a full run.
  if (hi - lo >= s.stride) return true;
  const std::int64_t k = (lo - s.begin) / s.stride;
  for (std::int64_t i = k - 1; i <= k + 1; ++i) {
    if (i < 0 || i >= s.count) continue;
    const std::int64_t run_lo = s.begin + i * s.stride;
    if (lo < run_lo + s.len && run_lo < hi) return true;
  }
  return false;
}

}  // namespace

bool overlaps(const StridedRange& a, const StridedRange& b) {
  if (a.empty() || b.empty()) return false;
  const bool a_contig = a.count <= 1;
  const bool b_contig = b.count <= 1;
  if (a_contig && b_contig) {
    return a.begin < b.begin + b.len && b.begin < a.begin + a.len;
  }
  if (a_contig) return intervalOverlapsRuns(a.begin, a.begin + a.len, b);
  if (b_contig) return intervalOverlapsRuns(b.begin, b.begin + b.len, a);
  if (a.envelopeEnd() <= b.begin || b.envelopeEnd() <= a.begin) return false;
  // Same-stride fast rejection: run positions repeat modulo the stride,
  // so disjoint (non-wrapping) phase intervals can never meet.
  if (a.stride == b.stride) {
    // a's runs occupy [phase, phase + a.len) mod s relative to b's runs
    // at [0, b.len); when neither interval wraps past s and they are
    // disjoint, no run of a can ever meet a run of b.
    const std::int64_t s = a.stride;
    const std::int64_t phase = (((a.begin - b.begin) % s) + s) % s;
    if (phase + a.len <= s && b.len <= s && phase >= b.len) return false;
  }
  // General case: walk the runs of the side with fewer runs.
  const StridedRange& small = a.count <= b.count ? a : b;
  const StridedRange& big = a.count <= b.count ? b : a;
  for (std::int64_t k = 0; k < small.count; ++k) {
    const std::int64_t lo = small.begin + k * small.stride;
    if (intervalOverlapsRuns(lo, lo + small.len, big)) return true;
  }
  return false;
}

const char* violationKindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kRace:
      return "race";
    case Violation::Kind::kOutOfBounds:
      return "out-of-bounds";
    case Violation::Kind::kUseAfterFree:
      return "use-after-free";
    case Violation::Kind::kDoubleFree:
      return "double-free";
    case Violation::Kind::kLeak:
      return "leak";
    case Violation::Kind::kUndeclaredEffect:
      return "undeclared-effect";
  }
  return "?";
}

std::string Summary::report() const {
  std::ostringstream oss;
  if (violations_total == 0) {
    oss << "simsan: no violations (" << accesses_logged
        << " accesses checked)";
    return oss.str();
  }
  oss << "simsan: " << violations_total << " violation(s): " << races
      << " race(s), " << out_of_bounds << " out-of-bounds, "
      << lifetime_errors << " lifetime error(s), " << leaks << " leak(s)";
  // Strict-effects findings only appear in --simsan-strict runs, so the
  // report stays byte-identical for plain --simsan output.
  if (undeclared_effects > 0) {
    oss << ", " << undeclared_effects << " undeclared effect(s)";
  }
  oss << " (" << accesses_logged << " accesses checked)";
  for (const auto& v : violations) {
    oss << "\n  [" << violationKindName(v.kind) << "] " << v.message;
  }
  if (violations_total > violations.size()) {
    oss << "\n  ... " << violations_total - violations.size()
        << " further violation(s) elided";
  }
  return oss.str();
}

Checker::Checker() { newActor("host"); }

ActorId Checker::newActor(std::string name) {
  const ActorId id = static_cast<ActorId>(clocks_.size());
  actor_names_.push_back(std::move(name));
  clocks_.emplace_back();
  return id;
}

ActorId Checker::forkActor(std::string name, ActorId parent) {
  PGASEMB_CHECK(parent >= 0 && parent < numActors(), "bad parent actor ",
                parent);
  const ActorId id = newActor(std::move(name));
  tick(parent);
  clocks_[static_cast<std::size_t>(id)] =
      clocks_[static_cast<std::size_t>(parent)];
  return id;
}

const std::string& Checker::actorName(ActorId actor) const {
  PGASEMB_CHECK(actor >= 0 && actor < numActors(), "bad actor id ", actor);
  return actor_names_[static_cast<std::size_t>(actor)];
}

std::uint64_t Checker::tick(ActorId actor) {
  auto& clock = clocks_[static_cast<std::size_t>(actor)];
  if (clock.size() <= static_cast<std::size_t>(actor)) {
    clock.resize(static_cast<std::size_t>(actor) + 1, 0);
  }
  return ++clock[static_cast<std::size_t>(actor)];
}

VectorClock Checker::snapshot(ActorId src) {
  PGASEMB_CHECK(src >= 0 && src < numActors(), "bad actor id ", src);
  tick(src);
  return clocks_[static_cast<std::size_t>(src)];
}

void Checker::joinClock(ActorId dst, const VectorClock& clock) {
  PGASEMB_CHECK(dst >= 0 && dst < numActors(), "bad actor id ", dst);
  auto& mine = clocks_[static_cast<std::size_t>(dst)];
  if (mine.size() < clock.size()) mine.resize(clock.size(), 0);
  for (std::size_t i = 0; i < clock.size(); ++i) {
    mine[i] = std::max(mine[i], clock[i]);
  }
}

void Checker::joinActor(ActorId dst, ActorId src) {
  PGASEMB_CHECK(src >= 0 && src < numActors(), "bad actor id ", src);
  tick(src);
  joinClock(dst, clocks_[static_cast<std::size_t>(src)]);
}

void Checker::release(ActorId src, const void* sync) {
  PGASEMB_CHECK(src >= 0 && src < numActors(), "bad actor id ", src);
  tick(src);
  auto& clock = sync_clocks_[sync];
  const auto& mine = clocks_[static_cast<std::size_t>(src)];
  if (clock.size() < mine.size()) clock.resize(mine.size(), 0);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    clock[i] = std::max(clock[i], mine[i]);
  }
}

void Checker::acquire(ActorId dst, const void* sync) {
  const auto it = sync_clocks_.find(sync);
  if (it == sync_clocks_.end()) return;
  joinClock(dst, it->second);
}

void Checker::onAlloc(int device, std::int64_t offset, std::int64_t size,
                      std::string label) {
  if (device >= static_cast<int>(allocations_.size())) {
    allocations_.resize(static_cast<std::size_t>(device) + 1);
  }
  allocations_[static_cast<std::size_t>(device)].push_back(
      Allocation{offset, size, std::move(label)});
}

void Checker::onFree(int device, std::int64_t offset, std::int64_t size) {
  if (device < 0 || device >= static_cast<int>(allocations_.size())) {
    addViolation(Violation::Kind::kDoubleFree,
                 "free on device " + std::to_string(device) +
                     " with no allocations");
    ++lifetime_errors_;
    return;
  }
  auto& allocs = allocations_[static_cast<std::size_t>(device)];
  // Search newest-first so address-reusing allocators resolve to the
  // most recent allocation at this offset.
  for (auto it = allocs.rbegin(); it != allocs.rend(); ++it) {
    if (it->offset == offset && it->size == size) {
      if (!it->live) {
        addViolation(Violation::Kind::kDoubleFree,
                     "double free of " + it->label + " on device " +
                         std::to_string(device) + " [" +
                         std::to_string(offset) + ", " +
                         std::to_string(offset + size) + ")");
        ++lifetime_errors_;
        return;
      }
      it->live = false;
      return;
    }
  }
  addViolation(Violation::Kind::kDoubleFree,
               "free of unknown range on device " + std::to_string(device) +
                   " [" + std::to_string(offset) + ", " +
                   std::to_string(offset + size) + ")");
  ++lifetime_errors_;
}

void Checker::setBaseline() {
  for (auto& device : allocations_) {
    for (auto& alloc : device) {
      if (alloc.live) alloc.baseline = true;
    }
  }
}

void Checker::leakCheck() {
  for (std::size_t device = 0; device < allocations_.size(); ++device) {
    for (auto& alloc : allocations_[device]) {
      if (alloc.live && !alloc.baseline && !alloc.leak_reported) {
        alloc.leak_reported = true;
        ++leaks_;
        addViolation(Violation::Kind::kLeak,
                     alloc.label + " on device " + std::to_string(device) +
                         " [" + std::to_string(alloc.offset) + ", " +
                         std::to_string(alloc.offset + alloc.size) +
                         ") never freed");
      }
    }
  }
}

bool Checker::checkBoundsAndLifetime(int device, const StridedRange& range,
                                     const std::string& label) {
  const std::int64_t lo = range.begin;
  const std::int64_t hi = range.envelopeEnd();
  const Allocation* dead_hit = nullptr;
  if (device >= 0 && device < static_cast<int>(allocations_.size())) {
    // Newest-first: with address reuse the latest allocation at an
    // offset is the authoritative one.
    auto& allocs = allocations_[static_cast<std::size_t>(device)];
    for (auto it = allocs.rbegin(); it != allocs.rend(); ++it) {
      if (lo >= it->offset && hi <= it->offset + it->size) {
        if (it->live) return true;
        if (dead_hit == nullptr) dead_hit = &*it;
      }
    }
  }
  if (dead_hit != nullptr) {
    ++lifetime_errors_;
    addViolation(Violation::Kind::kUseAfterFree,
                 "'" + label + "' touches freed " + dead_hit->label +
                     " on device " + std::to_string(device) + " at " +
                     range.toString());
    return false;
  }
  ++out_of_bounds_;
  addViolation(Violation::Kind::kOutOfBounds,
               "'" + label + "' touches unallocated memory on device " +
                   std::to_string(device) + " at " + range.toString());
  return false;
}

bool Checker::happensBefore(const AccessRecord& a, const AccessRecord& b) {
  // Same actor => program order (records are logged in execution order).
  if (a.actor == b.actor) return true;
  const auto idx = static_cast<std::size_t>(a.actor);
  return b.clock.size() > idx && b.clock[idx] > a.epoch;
}

std::string Checker::describeAccess(const AccessRecord& rec) const {
  std::ostringstream oss;
  oss << accessKindName(rec.kind) << " '" << rec.label << "' by "
      << actorName(rec.actor) << " at " << rec.range.toString() << " over ["
      << rec.start.toString() << ", " << rec.finish.toString() << "]";
  return oss.str();
}

void Checker::access(ActorId actor, int device, const StridedRange& range,
                     AccessKind kind, SimTime start, SimTime finish,
                     const std::string& label) {
  PGASEMB_CHECK(actor >= 0 && actor < numActors(), "bad actor id ", actor);
  if (range.empty()) return;
  ++accesses_logged_;
  if (!checkBoundsAndLifetime(device, range, label)) return;

  if (device >= static_cast<int>(accesses_.size())) {
    accesses_.resize(static_cast<std::size_t>(device) + 1);
  }
  auto& log = accesses_[static_cast<std::size_t>(device)];
  auto& clock = clocks_[static_cast<std::size_t>(actor)];
  const std::uint64_t epoch =
      clock.size() > static_cast<std::size_t>(actor)
          ? clock[static_cast<std::size_t>(actor)]
          : 0;

  AccessRecord rec{actor,  range, kind, start, finish, label, epoch,
                   clock};
  for (auto& prev : log) {
    // Coalesce repeats (e.g. one PGAS put actor logging the same remote
    // footprint once per kernel slice): extend the time interval.
    if (prev.actor == actor && prev.epoch == epoch && prev.kind == kind &&
        prev.range.begin == range.begin && prev.range.len == range.len &&
        prev.range.stride == range.stride &&
        prev.range.count == range.count) {
      prev.start = std::min(prev.start, start);
      prev.finish = std::max(prev.finish, finish);
      return;
    }
    if (!conflictingKinds(prev.kind, kind)) continue;
    if (!overlaps(prev.range, range)) continue;
    if (happensBefore(prev, rec)) continue;
    ++races_;
    addViolation(Violation::Kind::kRace,
                 "device " + std::to_string(device) + ": " +
                     describeAccess(prev) + "  ||  " + describeAccess(rec) +
                     " — no happens-before edge");
  }
  log.push_back(std::move(rec));
}

void Checker::addViolation(Violation::Kind kind, std::string message) {
  ++violations_total_;
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(Violation{kind, std::move(message)});
  }
}

Summary Checker::summary() const {
  Summary s;
  s.races = races_;
  s.out_of_bounds = out_of_bounds_;
  s.lifetime_errors = lifetime_errors_;
  s.leaks = leaks_;
  s.accesses_logged = accesses_logged_;
  s.violations_total = violations_total_;
  s.violations = violations_;
  return s;
}

}  // namespace pgasemb::simsan

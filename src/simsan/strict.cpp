#include "simsan/strict.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"

namespace pgasemb::simsan {

// ---- StrictPutTracker ----------------------------------------------------

StrictPutTracker::StrictPutTracker(StrictEffects* owner, std::string kernel,
                                   const std::vector<MemEffect>& declared)
    : owner_(owner), kernel_(std::move(kernel)) {
  for (const auto& effect : declared) {
    PerDst* entry = find(effect.device);
    if (entry == nullptr) {
      per_dst_.push_back(PerDst{effect.device, 0, 0, "", false});
      entry = &per_dst_.back();
    }
    // Declared footprints are fp32 elements; flows carry bytes.
    entry->budget_bytes += effect.range.totalElements() * 4;
    if (!entry->declared.empty()) entry->declared += " + ";
    entry->declared += effect.range.toString();
  }
}

StrictPutTracker::PerDst* StrictPutTracker::find(int dst) {
  for (auto& entry : per_dst_) {
    if (entry.dst == dst) return &entry;
  }
  return nullptr;
}

void StrictPutTracker::flow(int dst, std::int64_t payload_bytes) {
  PerDst* entry = find(dst);
  if (entry == nullptr) {
    if (!reported_undeclared_dst_) {
      reported_undeclared_dst_ = true;
      std::ostringstream oss;
      oss << "kernel " << kernel_ << ": one-sided put of " << payload_bytes
          << " B to gpu" << dst
          << " with no declared put effect for that destination";
      owner_->addFinding(oss.str());
    }
    return;
  }
  entry->sent_bytes += payload_bytes;
  if (entry->sent_bytes > entry->budget_bytes && !entry->reported) {
    entry->reported = true;
    std::ostringstream oss;
    oss << "kernel " << kernel_ << ": one-sided puts to gpu" << entry->dst
        << " total " << entry->sent_bytes
        << " B, escaping the declared footprint " << entry->declared << " ("
        << entry->budget_bytes << " B)";
    owner_->addFinding(oss.str());
  }
}

// ---- StrictCollectiveTracker ---------------------------------------------

StrictCollectiveTracker::StrictCollectiveTracker(StrictEffects* owner,
                                                 std::string label,
                                                 std::vector<MemEffect> send,
                                                 std::vector<MemEffect> recv)
    : owner_(owner),
      label_(std::move(label)),
      send_(std::move(send)),
      recv_(std::move(recv)) {}

namespace {

/// Total declared byte budget for `rank` across `effects` (device is
/// the rank for collective memory declarations), with a rendered range
/// list for messages.
std::int64_t rankBudget(const std::vector<MemEffect>& effects, int rank,
                        std::string* rendered) {
  std::int64_t bytes = 0;
  for (const auto& effect : effects) {
    if (effect.device != rank) continue;
    bytes += effect.range.totalElements() * 4;
    if (rendered != nullptr) {
      if (!rendered->empty()) *rendered += " + ";
      *rendered += effect.range.toString();
    }
  }
  return bytes;
}

}  // namespace

void StrictCollectiveTracker::transfer(int src, int dst,
                                       std::int64_t payload_bytes) {
  if (payload_bytes <= StrictEffects::kControlPlaneBytes) return;
  if (send_.empty() && recv_.empty()) {
    if (!reported_no_memory_) {
      reported_no_memory_ = true;
      std::ostringstream oss;
      oss << "collective " << label_ << ": payload transfer gpu" << src
          << " -> gpu" << dst << " (" << payload_bytes
          << " B) with no declared CollectiveMemory ranges";
      owner_->addFinding(oss.str());
    }
    return;
  }
  const auto check = [&](std::vector<PerRank>& per_rank,
                         const std::vector<MemEffect>& declared, int rank,
                         const char* role) {
    if (rank < 0) return;
    if (per_rank.size() <= static_cast<std::size_t>(rank)) {
      per_rank.resize(static_cast<std::size_t>(rank) + 1);
    }
    PerRank& entry = per_rank[static_cast<std::size_t>(rank)];
    entry.bytes += payload_bytes;
    std::string rendered;
    const std::int64_t budget = rankBudget(declared, rank, &rendered);
    if (entry.bytes > budget && !entry.reported) {
      entry.reported = true;
      std::ostringstream oss;
      oss << "collective " << label_ << ": rank " << rank << " " << role
          << " " << entry.bytes << " B, escaping the declared "
          << (rendered.empty() ? std::string("(nothing)") : rendered) << " ("
          << budget << " B)";
      owner_->addFinding(oss.str());
    }
  };
  check(sent_, send_, src, "sent");
  check(received_, recv_, dst, "received");
}

// ---- StrictEffects -------------------------------------------------------

void StrictEffects::beginKernel(const std::string& name,
                                const std::vector<MemEffect>& effects,
                                const std::vector<MemEffect>& put_effects) {
  PGASEMB_ASSERT(!in_kernel_, "strict kernel scopes do not nest");
  in_kernel_ = true;
  kernel_name_ = name;
  kernel_effects_ = &effects;
  kernel_put_effects_ = &put_effects;
}

void StrictEffects::endKernel() {
  in_kernel_ = false;
  kernel_effects_ = nullptr;
  kernel_put_effects_ = nullptr;
}

void StrictEffects::touch(int device, std::int64_t offset,
                          std::int64_t size) {
  if (!in_kernel_ || size <= 0) return;
  const StridedRange touched = StridedRange::contiguous(offset, size);
  const auto covers = [&](const std::vector<MemEffect>* effects) {
    if (effects == nullptr) return false;
    return std::any_of(effects->begin(), effects->end(),
                       [&](const MemEffect& effect) {
                         return effect.device == device &&
                                overlaps(effect.range, touched);
                       });
  };
  if (covers(kernel_effects_) || covers(kernel_put_effects_)) return;
  // One finding per distinct (kernel, device, range), not one per batch.
  std::ostringstream key;
  key << kernel_name_ << '/' << device << '/' << offset << '+' << size;
  if (std::find(reported_touches_.begin(), reported_touches_.end(),
                key.str()) != reported_touches_.end()) {
    return;
  }
  reported_touches_.push_back(key.str());
  std::ostringstream oss;
  oss << "kernel " << kernel_name_ << " touched gpu" << device << " "
      << touched.toString()
      << " with no declared mem_effect covering that range";
  addFinding(oss.str());
}

std::shared_ptr<StrictPutTracker> StrictEffects::trackPuts(
    std::string kernel, const std::vector<MemEffect>& declared) {
  return std::shared_ptr<StrictPutTracker>(
      new StrictPutTracker(this, std::move(kernel), declared));
}

std::shared_ptr<StrictCollectiveTracker> StrictEffects::trackCollective(
    std::string label, std::vector<MemEffect> send,
    std::vector<MemEffect> recv) {
  return std::shared_ptr<StrictCollectiveTracker>(new StrictCollectiveTracker(
      this, std::move(label), std::move(send), std::move(recv)));
}

void StrictEffects::addFinding(std::string message) {
  ++findings_total_;
  if (violations_.size() < Checker::kMaxRecordedViolations) {
    violations_.push_back(
        Violation{Violation::Kind::kUndeclaredEffect, std::move(message)});
  }
}

void StrictEffects::mergeInto(Summary& summary) const {
  summary.undeclared_effects += findings_total_;
  summary.violations_total += static_cast<std::size_t>(findings_total_);
  for (const auto& violation : violations_) {
    if (summary.violations.size() >= Checker::kMaxRecordedViolations) break;
    summary.violations.push_back(violation);
  }
}

}  // namespace pgasemb::simsan

// simsan access primitives: what a simulated-memory access looks like.
//
// The simulator's data plane is declarative — kernels, collectives, and
// PGAS deliveries *describe* the device-memory ranges they touch rather
// than dereferencing pointers (timing-only mode has no backing storage at
// all).  A `StridedRange` captures the footprints that actually occur in
// the embedding pipeline: whole staging buffers (contiguous) and the
// fused kernel's per-sample table slices of a remote output tensor
// (fixed-stride runs).  `MemEffect` is the unit a kernel or transfer
// attaches to itself so the checker can log the access under the right
// actor.
#pragma once

#include <cstdint>
#include <string>

namespace pgasemb::simsan {

enum class AccessKind { kRead, kWrite, kRemoteWrite, kAtomicAdd };

const char* accessKindName(AccessKind kind);

/// Two accesses conflict unless both are reads or both are atomic
/// accumulations (atomic adds commute; their order is unobservable).
bool conflictingKinds(AccessKind a, AccessKind b);

/// `count` runs of `len` elements, starting `stride` elements apart:
/// {begin + k*stride .. begin + k*stride + len) for k in [0, count).
/// count == 1 describes an ordinary contiguous range.
struct StridedRange {
  std::int64_t begin = 0;
  std::int64_t len = 0;
  std::int64_t stride = 0;
  std::int64_t count = 1;

  static StridedRange contiguous(std::int64_t begin, std::int64_t len) {
    return StridedRange{begin, len, 0, 1};
  }

  bool empty() const { return len <= 0 || count <= 0; }

  /// One past the last element of the last run.
  std::int64_t envelopeEnd() const {
    return begin + (count > 1 ? (count - 1) * stride : 0) + len;
  }

  /// Number of element slots across all runs (runs of a well-formed
  /// range do not overlap: stride >= len whenever count > 1).
  std::int64_t totalElements() const {
    return empty() ? 0 : len * count;
  }

  std::string toString() const;
};

/// True iff some element belongs to both ranges.
bool overlaps(const StridedRange& a, const StridedRange& b);

/// One declared memory access of a kernel/transfer: `range` (in fp32
/// elements within `device`'s address space) touched with `kind`.
struct MemEffect {
  int device = 0;
  StridedRange range;
  AccessKind kind = AccessKind::kWrite;
  std::string label;
};

}  // namespace pgasemb::simsan

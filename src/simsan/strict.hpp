// simsan strict-effects mode: shadow verification that a kernel's (or
// transfer's) *observed* simulated-memory touches stay inside its
// *declared* `MemEffect` footprint.
//
// Plain simsan trusts declarations — a kernel that under-declares its
// `mem_effects` silently hides accesses from the race checker (the
// exact failure mode fused computation-communication kernels make easy
// to write).  Strict mode closes that soundness gap with three shadow
// recorders, all passive with respect to simulated timing:
//
//   1. Kernel bodies: while a kernel's functional body runs, every
//      *mutable* `DeviceBuffer::span()` materialization is reported as
//      a touch of that buffer's range.  A touch with no overlapping
//      declared effect (mem_effects or attached put_effects) on that
//      device is an undeclared-effect violation naming the kernel and
//      the range.  (Reads go through the const span overload and are
//      not reported: tables are system-lifetime and read-shared.)
//   2. PGAS puts: each launch's logical flows are totaled per
//      destination and checked against the declared put footprint —
//      a flow to an undeclared destination, or cumulative payload
//      exceeding the declared byte budget (4 B per fp32 element),
//      fails naming the kernel, the destination, and the declared
//      range.  Retransmissions re-send the *same* logical flow, so
//      only the first attempt is counted.
//   3. Collectives: per-rank transfer bytes are checked against the
//      declared CollectiveMemory send/recv ranges; a payload-bearing
//      collective with no declared memory at all is itself a finding.
//      Control-plane transfers (<= kControlPlaneBytes, e.g. barrier
//      flags) are exempt.
//
// Violations surface through the owning Checker's Summary as
// `undeclared-effect` entries (mergeInto), so they fail the same
// `clean()` gate tests and benches already use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simsan/access.hpp"
#include "simsan/checker.hpp"

namespace pgasemb::simsan {

class StrictEffects;

/// Per-kernel-launch tracker for one-sided put flows (recorder #2).
/// Created by PgasRuntime::attachMessagePlan when strict mode is on and
/// shared by the per-slice flow closures.
class StrictPutTracker {
 public:
  /// Reports one logical flow of `payload_bytes` to `dst`.
  void flow(int dst, std::int64_t payload_bytes);

 private:
  friend class StrictEffects;
  StrictPutTracker(StrictEffects* owner, std::string kernel,
                   const std::vector<MemEffect>& declared);

  struct PerDst {
    int dst = 0;
    std::int64_t budget_bytes = 0;
    std::int64_t sent_bytes = 0;
    std::string declared;  ///< rendered range list for the message
    bool reported = false;
  };

  PerDst* find(int dst);

  StrictEffects* owner_;
  std::string kernel_;
  std::vector<PerDst> per_dst_;
  bool reported_undeclared_dst_ = false;
};

/// Per-collective-launch tracker (recorder #3). Created by
/// collective::Communicator::launch; the communicator points its
/// active-scope cursor here around each rank's synchronous inject call
/// so `transfer()` observations attribute to the right collective.
class StrictCollectiveTracker {
 public:
  /// Reports one fabric transfer issued by this collective.
  void transfer(int src, int dst, std::int64_t payload_bytes);

 private:
  friend class StrictEffects;
  StrictCollectiveTracker(StrictEffects* owner, std::string label,
                          std::vector<MemEffect> send,
                          std::vector<MemEffect> recv);

  struct PerRank {
    std::int64_t bytes = 0;
    bool reported = false;
  };

  StrictEffects* owner_;
  std::string label_;
  std::vector<MemEffect> send_;  ///< declared per-rank send (read) ranges
  std::vector<MemEffect> recv_;  ///< declared per-rank recv (write) ranges
  std::vector<PerRank> sent_;    ///< indexed by src rank (grown on demand)
  std::vector<PerRank> received_;
  bool reported_no_memory_ = false;
};

class StrictEffects {
 public:
  /// Transfers at or below this payload are control-plane (barrier
  /// flags, doorbells) and carry no declared memory.
  static constexpr std::int64_t kControlPlaneBytes = 8;

  // --- recorder #1: kernel functional-body scope -------------------------

  /// Opens a kernel scope (the simulator is single-threaded; scopes do
  /// not nest). `effects` / `put_effects` must outlive the scope.
  void beginKernel(const std::string& name,
                   const std::vector<MemEffect>& effects,
                   const std::vector<MemEffect>& put_effects);
  void endKernel();

  /// Shadow touch from a mutable DeviceBuffer::span() materialization.
  /// Ignored outside a kernel scope (host-side staging/verification).
  void touch(int device, std::int64_t offset, std::int64_t size);

  // --- recorders #2 / #3 --------------------------------------------------

  std::shared_ptr<StrictPutTracker> trackPuts(
      std::string kernel, const std::vector<MemEffect>& declared);

  std::shared_ptr<StrictCollectiveTracker> trackCollective(
      std::string label, std::vector<MemEffect> send,
      std::vector<MemEffect> recv);

  // --- results ------------------------------------------------------------

  int findings() const { return findings_total_; }

  /// Folds the strict findings into a checker summary (counts, total,
  /// and the recorded violation list, capped like the checker's own).
  void mergeInto(Summary& summary) const;

 private:
  friend class StrictPutTracker;
  friend class StrictCollectiveTracker;

  void addFinding(std::string message);

  // Active kernel scope (recorder #1).
  bool in_kernel_ = false;
  std::string kernel_name_;
  const std::vector<MemEffect>* kernel_effects_ = nullptr;
  const std::vector<MemEffect>* kernel_put_effects_ = nullptr;
  // (device, begin) pairs already reported for this kernel name, to
  // keep one finding per distinct escape rather than one per batch.
  std::vector<std::string> reported_touches_;

  std::vector<Violation> violations_;
  int findings_total_ = 0;
};

}  // namespace pgasemb::simsan

// simsan: happens-before race, bounds, and lifetime checking for
// simulated device memory.
//
// The checker maintains a vector clock per *actor* — the independently
// progressing agents of the simulation: the host thread, each stream
// (default and side streams), each PGAS in-kernel put engine, and each
// collective's per-rank op.  Synchronization primitives establish
// happens-before edges:
//
//   - stream FIFO order          same actor => program order
//   - host -> enqueue            ops join the host clock captured at
//                                enqueue time when they start
//   - GpuEvent record/wait       release on record, acquire on wait
//   - kernel quiet completion    PGAS put actor joins its stream actor
//                                when the kernel's finalize (quiet) runs
//   - collective retirement      all participating rank ops barrier at
//                                the collective's completion
//   - Request::wait / syncAll    host acquires the collective state /
//                                joins every stream actor
//
// Every declared access is logged with its actor's current epoch and a
// clock snapshot; an overlapping, conflicting pair with no happens-before
// edge in either direction is a race, regardless of where the two
// accesses happened to land on the simulated timeline.  Allocation
// tracking adds out-of-bounds, use-after-free, double-free, and leak
// detection on top.
//
// The checker is entirely passive: nothing in the simulator behaves
// differently when it is attached, so timings (and benchmark output) are
// byte-identical with and without it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simsan/access.hpp"
#include "util/time.hpp"

namespace pgasemb::simsan {

/// Index into the checker's actor table.
using ActorId = int;

/// clock[a] = how far into actor a's history the owner has observed.
using VectorClock = std::vector<std::uint64_t>;

struct Violation {
  enum class Kind {
    kRace,
    kOutOfBounds,
    kUseAfterFree,
    kDoubleFree,
    kLeak,
    kUndeclaredEffect,  ///< strict-effects mode: observed access escaped
                        ///< the declared MemEffect footprint
  };
  Kind kind;
  std::string message;
};

const char* violationKindName(Violation::Kind kind);

/// Checker verdict; `report()` renders one line per recorded violation.
struct Summary {
  int races = 0;
  int out_of_bounds = 0;
  int lifetime_errors = 0;  ///< use-after-free + double-free
  int leaks = 0;
  int undeclared_effects = 0;  ///< strict-effects findings (simsan-strict)
  std::size_t accesses_logged = 0;
  std::size_t violations_total = 0;
  /// First `kMaxRecordedViolations` violations, in detection order.
  std::vector<Violation> violations;

  bool clean() const {
    return races == 0 && out_of_bounds == 0 && lifetime_errors == 0 &&
           leaks == 0 && undeclared_effects == 0;
  }
  std::string report() const;
};

class Checker {
 public:
  /// The host thread's actor, created by the constructor.
  static constexpr ActorId kHost = 0;

  /// Cap on stored violation records (counts keep accumulating past it).
  static constexpr std::size_t kMaxRecordedViolations = 64;

  Checker();

  // --- Actors and happens-before edges -----------------------------------

  ActorId newActor(std::string name);

  /// New actor that has observed everything `parent` has done so far
  /// (fork edge: parent's history happens-before the child's first step).
  ActorId forkActor(std::string name, ActorId parent);

  const std::string& actorName(ActorId actor) const;
  int numActors() const { return static_cast<int>(clocks_.size()); }

  /// Advance `src`'s epoch and return a copy of its clock. The copy
  /// carries "everything src did up to now" into a later joinClock().
  VectorClock snapshot(ActorId src);

  /// `dst` has observed everything in `clock`.
  void joinClock(ActorId dst, const VectorClock& clock);

  /// Direct edge src -> dst (advances src's epoch first).
  void joinActor(ActorId dst, ActorId src);

  /// Release semantics on an opaque sync object (event, collective
  /// state): advance src's epoch, then fold its clock into the object's.
  void release(ActorId src, const void* sync);

  /// Acquire semantics: fold the object's clock into dst's. A sync object
  /// never released is a silent no-op (tolerant, adds no edge).
  void acquire(ActorId dst, const void* sync);

  // --- Allocation lifecycle ----------------------------------------------

  void onAlloc(int device, std::int64_t offset, std::int64_t size,
               std::string label);
  void onFree(int device, std::int64_t offset, std::int64_t size);

  /// Mark every currently-live allocation as system-lifetime (embedding
  /// tables, ...): exempt from the leak report.
  void setBaseline();

  /// Report live non-baseline allocations as leaks. Idempotent per
  /// allocation (a reported leak is not reported again).
  void leakCheck();

  // --- Access logging -----------------------------------------------------

  /// Log one access and eagerly check bounds, lifetime, and races against
  /// every previously logged access on the same device.
  void access(ActorId actor, int device, const StridedRange& range,
              AccessKind kind, SimTime start, SimTime finish,
              const std::string& label);

  void logEffect(ActorId actor, const MemEffect& effect, SimTime start,
                 SimTime finish) {
    access(actor, effect.device, effect.range, effect.kind, start, finish,
           effect.label);
  }

  // --- Results ------------------------------------------------------------

  bool clean() const {
    return races_ == 0 && out_of_bounds_ == 0 && lifetime_errors_ == 0 &&
           leaks_ == 0;
  }
  Summary summary() const;
  std::string report() const { return summary().report(); }

 private:
  struct AccessRecord {
    ActorId actor;
    StridedRange range;
    AccessKind kind;
    SimTime start;
    SimTime finish;
    std::string label;
    std::uint64_t epoch;  ///< actor's own component when logged
    VectorClock clock;    ///< full clock when logged
  };

  struct Allocation {
    std::int64_t offset;
    std::int64_t size;
    std::string label;
    bool live = true;
    bool baseline = false;
    bool leak_reported = false;
  };

  std::uint64_t tick(ActorId actor);
  void addViolation(Violation::Kind kind, std::string message);
  /// True iff the earlier record `a` happens-before the later record `b`.
  static bool happensBefore(const AccessRecord& a, const AccessRecord& b);
  /// Bounds + lifetime verdict; true when the access may also be
  /// race-checked (i.e. it landed inside live memory).
  bool checkBoundsAndLifetime(int device, const StridedRange& range,
                              const std::string& label);
  std::string describeAccess(const AccessRecord& rec) const;

  std::vector<std::string> actor_names_;
  std::vector<VectorClock> clocks_;
  std::unordered_map<const void*, VectorClock> sync_clocks_;

  // Indexed by device id (grown on demand).
  std::vector<std::vector<Allocation>> allocations_;
  std::vector<std::vector<AccessRecord>> accesses_;

  std::vector<Violation> violations_;
  std::size_t violations_total_ = 0;
  int races_ = 0;
  int out_of_bounds_ = 0;
  int lifetime_errors_ = 0;
  int leaks_ = 0;
  std::size_t accesses_logged_ = 0;
};

}  // namespace pgasemb::simsan

#include "pgas/symmetric_heap.hpp"

#include "gpu/system.hpp"
#include "util/expect.hpp"

namespace pgasemb::pgas {

gpu::DeviceBuffer& SymmetricBuffer::on(int pe) {
  PGASEMB_CHECK(pe >= 0 && pe < numPes(), "bad PE id ", pe);
  return parts_[static_cast<std::size_t>(pe)];
}

const gpu::DeviceBuffer& SymmetricBuffer::on(int pe) const {
  PGASEMB_CHECK(pe >= 0 && pe < numPes(), "bad PE id ", pe);
  return parts_[static_cast<std::size_t>(pe)];
}

SymmetricBuffer SymmetricHeap::alloc(std::int64_t elements_per_pe) {
  SymmetricBuffer buf;
  buf.size_per_pe_ = elements_per_pe;
  buf.parts_.reserve(static_cast<std::size_t>(system_.numGpus()));
  for (int pe = 0; pe < system_.numGpus(); ++pe) {
    buf.parts_.push_back(system_.device(pe).alloc(elements_per_pe));
  }
  return buf;
}

void SymmetricHeap::free(SymmetricBuffer& buffer) {
  for (int pe = 0; pe < buffer.numPes(); ++pe) {
    system_.device(pe).free(buffer.on(pe));
  }
  buffer = SymmetricBuffer();
}

}  // namespace pgasemb::pgas

#include "pgas/comm_counter.hpp"

namespace pgasemb::pgas {

void CommCounter::record(SimTime at, std::int64_t payload_bytes) {
  if (payload_bytes <= 0) return;
  series_.add(at, static_cast<double>(payload_bytes) /
                      static_cast<double>(kUnitBytes));
}

}  // namespace pgasemb::pgas

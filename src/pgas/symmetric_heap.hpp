// PGAS symmetric heap over the simulated devices.
//
// A symmetric allocation reserves the same number of elements on every
// GPU (like nvshmem_malloc), so a (pe, offset) pair names one location in
// the partitioned global address space and remote writes can target the
// final destination directly — the property that lets the paper's fused
// kernel skip the unpack step.
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/device.hpp"

namespace pgasemb::gpu {
class MultiGpuSystem;
}

namespace pgasemb::pgas {

/// One buffer per GPU, all the same size.
class SymmetricBuffer {
 public:
  SymmetricBuffer() = default;

  bool valid() const { return !parts_.empty(); }
  int numPes() const { return static_cast<int>(parts_.size()); }
  std::int64_t sizePerPe() const { return size_per_pe_; }

  gpu::DeviceBuffer& on(int pe);
  const gpu::DeviceBuffer& on(int pe) const;

  /// Functional-mode view of pe's partition.
  std::span<float> span(int pe) { return on(pe).span(); }

 private:
  friend class SymmetricHeap;
  std::vector<gpu::DeviceBuffer> parts_;
  std::int64_t size_per_pe_ = 0;
};

class SymmetricHeap {
 public:
  explicit SymmetricHeap(gpu::MultiGpuSystem& system) : system_(system) {}

  /// Allocate `elements_per_pe` fp32 on every device.
  SymmetricBuffer alloc(std::int64_t elements_per_pe);

  /// Free all partitions.
  void free(SymmetricBuffer& buffer);

 private:
  gpu::MultiGpuSystem& system_;
};

}  // namespace pgasemb::pgas

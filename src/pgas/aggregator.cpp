#include "pgas/aggregator.hpp"

#include <algorithm>
#include <map>

#include "util/expect.hpp"

namespace pgasemb::pgas {

MessagePlan aggregatePlan(const MessagePlan& plan, SimTime kernel_duration,
                          const AggregatorParams& params) {
  PGASEMB_CHECK(params.aggregation_bytes > 0,
                "aggregation size must be positive");
  PGASEMB_CHECK(plan.slices >= 1 &&
                    plan.flows.size() == static_cast<std::size_t>(plan.slices),
                "malformed message plan");

  const SimTime slice_dt =
      SimTime(std::max<std::int64_t>(1, kernel_duration.count() /
                                            plan.slices));
  // max_wait expressed in whole slices (>= 1 so a wait can expire).
  const int max_wait_slices = std::max<std::int64_t>(
      1, params.max_wait.count() / slice_dt.count());

  struct PendingBuf {
    std::int64_t bytes = 0;
    int oldest_slice = -1;  // slice index of the first unflushed byte
  };
  std::map<int, PendingBuf> pending;  // by destination

  MessagePlan out;
  out.slices = plan.slices;
  out.flows.resize(static_cast<std::size_t>(plan.slices));

  auto flush = [&out](int dst, PendingBuf& buf, int at_slice) {
    if (buf.bytes == 0) return;
    out.flows[static_cast<std::size_t>(at_slice)].push_back(
        SliceFlow{dst, buf.bytes, /*n_messages=*/1});
    buf.bytes = 0;
    buf.oldest_slice = -1;
  };

  for (int s = 0; s < plan.slices; ++s) {
    // Accumulate this slice's traffic.
    for (const auto& f : plan.flows[static_cast<std::size_t>(s)]) {
      auto& buf = pending[f.dst];
      if (buf.bytes == 0) buf.oldest_slice = s;
      buf.bytes += f.payload_bytes;
      // Size-triggered flushes (possibly several if a slice is large).
      while (buf.bytes >= params.aggregation_bytes) {
        const std::int64_t flush_bytes = params.aggregation_bytes;
        out.flows[static_cast<std::size_t>(s)].push_back(
            SliceFlow{f.dst, flush_bytes, 1});
        buf.bytes -= flush_bytes;
        buf.oldest_slice = buf.bytes > 0 ? s : -1;
      }
    }
    // Wait-triggered flushes.
    for (auto& [dst, buf] : pending) {
      if (buf.bytes > 0 && s - buf.oldest_slice >= max_wait_slices) {
        flush(dst, buf, s);
      }
    }
  }
  // Quiet at kernel end drains every partial buffer.
  for (auto& [dst, buf] : pending) flush(dst, buf, plan.slices - 1);

  PGASEMB_ASSERT(out.totalPayloadBytes() == plan.totalPayloadBytes(),
                 "aggregator lost bytes");
  return out;
}

}  // namespace pgasemb::pgas

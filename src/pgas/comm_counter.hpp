// The paper's in-kernel communication counter (§IV-A2b).
//
// "We designed a communication counter to be read every hundred GPU
//  clock cycles. With each RDMA write, that thread also atomically adds
//  to that counter."
//
// We record, at each injection instant, the number of 256-byte message
// units put on the wire, bucketed on a fixed simulated-time grid — the
// data behind Figs 7 and 10.
#pragma once

#include <cstdint>

#include "fabric/time_series_counter.hpp"
#include "util/time.hpp"

namespace pgasemb::pgas {

class CommCounter {
 public:
  static constexpr std::int64_t kUnitBytes = 256;

  explicit CommCounter(SimTime sample_period = SimTime::us(5.0))
      : series_(sample_period) {}

  /// Record `payload_bytes` of writes issued at `at`.
  void record(SimTime at, std::int64_t payload_bytes);

  /// Volume (in 256-byte units) per sample bucket.
  const fabric::TimeSeriesCounter& series() const { return series_; }

  double totalUnits() const { return series_.total(); }

  void reset() { series_.reset(); }

 private:
  fabric::TimeSeriesCounter series_;
};

}  // namespace pgasemb::pgas

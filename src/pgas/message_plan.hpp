// Message plan: the communication a fused kernel performs, slice by
// slice.
//
// The paper's fused kernel issues a one-sided write the moment each
// pooled embedding is computed, and hardware warp-coalescing merges
// naturally adjacent stores into ~256-byte lines (§IV-A2d).  Simulating
// every individual store would be prohibitive (millions per kernel), so
// the kernel's timeline is subdivided into slices and each slice carries
// the warp-coalesced messages generated during it.  This preserves the
// three effects the paper measures: communication spread over the whole
// compute window, per-message header overhead, and quiet-bounded kernel
// completion.
#pragma once

#include <cstdint>
#include <vector>

namespace pgasemb::pgas {

/// A batch of same-destination messages injected at one slice boundary.
struct SliceFlow {
  int dst = 0;
  std::int64_t payload_bytes = 0;
  std::int64_t n_messages = 0;
};

struct MessagePlan {
  int slices = 1;
  /// flows[s] = traffic generated during slice s (size == slices).
  std::vector<std::vector<SliceFlow>> flows;

  std::int64_t totalPayloadBytes() const;
  std::int64_t totalMessages() const;
};

/// Build a plan that spreads `payload_bytes[dst]` (as `message_bytes`-
/// sized messages) uniformly over `slices` slices — the traffic shape of
/// a lookup kernel whose outputs are uniformly distributed over the
/// remote mini-batches, as with the paper's uniform synthetic inputs.
MessagePlan makeUniformPlan(const std::vector<std::int64_t>& payload_bytes,
                            int self, int slices,
                            std::int64_t message_bytes);

}  // namespace pgasemb::pgas

#include "pgas/message_plan.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::pgas {

std::int64_t MessagePlan::totalPayloadBytes() const {
  std::int64_t total = 0;
  for (const auto& slice : flows) {
    for (const auto& f : slice) total += f.payload_bytes;
  }
  return total;
}

std::int64_t MessagePlan::totalMessages() const {
  std::int64_t total = 0;
  for (const auto& slice : flows) {
    for (const auto& f : slice) total += f.n_messages;
  }
  return total;
}

MessagePlan makeUniformPlan(const std::vector<std::int64_t>& payload_bytes,
                            int self, int slices,
                            std::int64_t message_bytes) {
  PGASEMB_CHECK(slices >= 1, "plan needs >= 1 slice");
  PGASEMB_CHECK(message_bytes >= 1, "message size must be positive");
  MessagePlan plan;
  plan.slices = slices;
  plan.flows.resize(static_cast<std::size_t>(slices));
  for (int dst = 0; dst < static_cast<int>(payload_bytes.size()); ++dst) {
    if (dst == self) continue;
    const std::int64_t total = payload_bytes[static_cast<std::size_t>(dst)];
    PGASEMB_CHECK(total >= 0, "negative payload for dst ", dst);
    if (total == 0) continue;
    // Distribute whole messages over slices with exact conservation
    // (largest-remainder); only the final message may be partial.
    const std::int64_t total_msgs =
        (total + message_bytes - 1) / message_bytes;
    std::int64_t emitted_msgs = 0;
    std::int64_t emitted_bytes = 0;
    for (int s = 0; s < slices; ++s) {
      const std::int64_t upto =
          total_msgs * (s + 1) / slices;
      const std::int64_t msgs = upto - emitted_msgs;
      if (msgs == 0) continue;
      emitted_msgs = upto;
      const std::int64_t bytes =
          std::min(msgs * message_bytes, total - emitted_bytes);
      emitted_bytes += bytes;
      plan.flows[static_cast<std::size_t>(s)].push_back(
          SliceFlow{dst, bytes, msgs});
    }
  }
  return plan;
}

}  // namespace pgasemb::pgas

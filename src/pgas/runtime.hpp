// PGAS runtime: attaches one-sided communication to simulated kernels.
//
// `attachMessagePlan` is the heart of the paper's mechanism: it wires a
// kernel descriptor so that each timeline slice injects its one-sided
// messages into the fabric the moment they are "generated", and the
// kernel completes only when compute is done AND the last remote write
// has been delivered (nvshmem_quiet semantics).  The communication is
// thereby overlapped with — and normally hidden inside — the compute
// window.
#pragma once

#include <memory>
#include <vector>

#include "fabric/compression.hpp"
#include "fabric/fabric.hpp"
#include "gpu/kernel.hpp"
#include "gpu/system.hpp"
#include "pgas/aggregator.hpp"
#include "pgas/comm_counter.hpp"
#include "pgas/message_plan.hpp"
#include "pgas/symmetric_heap.hpp"
#include "simsan/access.hpp"
#include "util/pool.hpp"

namespace pgasemb::fault {
class FaultInjector;
}

namespace pgasemb::pgas {

class PgasRuntime {
 public:
  PgasRuntime(gpu::MultiGpuSystem& system, fabric::Fabric& fabric);

  SymmetricHeap& heap() { return heap_; }
  fabric::Fabric& fabric() { return fabric_; }

  /// Attach the fault injector: every one-sided put gains delivery
  /// tracking with timeout-driven retransmission (capped exponential
  /// backoff), and quiet waits for the last *acknowledged* delivery —
  /// retransmits re-enter the fabric and are counted in its
  /// ResilienceStats.  Null (the default) keeps the original direct
  /// path, bit-identical to a fault-free build.  Not owned; must
  /// outlive the runtime.
  void setFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Route one-sided traffic hierarchically on multi-node topologies
  /// (DESIGN.md §12): a slice's inter-node flows are forwarded
  /// src -> node leader -> remote leader -> dst, with the
  /// leader->leader hop aggregated per (slice, destination node) into a
  /// single bulk message — eliminating the NIC's per-256-byte
  /// message-rate padding.  quiet() covers the forwarded hops: kernel
  /// completion waits for the final scatter delivery.  Ignored on
  /// single-node topologies.  Under an armed fault injector the hops
  /// are delivery-tracked reliable puts, leaders are elected through
  /// the injector's node fault domains (leader-fail failover), and node
  /// pairs inside a NIC fault window fall back to direct per-flow puts
  /// — per-pair degraded mode, counted in ResilienceStats.
  void setHierarchical(bool enabled) { hierarchical_ = enabled; }
  bool hierarchical() const { return hierarchical_; }

  /// Attach the inter-node compression codec: a flow whose route
  /// crosses nodes ships InterNodeCodec::compressedBytes(payload,
  /// aggregateBits(src node)) on the wire — per flow in flat mode, on
  /// the aggregated leader->leader hop in hierarchical mode.  Comm
  /// counters and strict effects keep accounting the original payload
  /// (compression is a wire-format concern, not a protocol one).  Not
  /// owned; must outlive the runtime.
  void setCodec(fabric::InterNodeCodec* codec) { codec_ = codec; }
  fabric::InterNodeCodec* codec() const { return codec_; }

  /// Master switch for the TimingOnly slice-coalescing fast path
  /// (--no-coalesce escape hatch). Even when enabled, a kernel's slices
  /// are only coalesced when it is provably result-identical: TimingOnly
  /// mode, no simsan checker, no fault injector, no per-injection
  /// counter, and Fabric::coalescingSafe() (dedicated pair links, no
  /// flow observer, no armed fault windows). Default on.
  void setCoalescingEnabled(bool enabled) { coalesce_enabled_ = enabled; }
  bool coalescingEnabled() const { return coalesce_enabled_; }

  /// Wire `desc` so its slices emit `plan`'s flows from GPU `src` and its
  /// completion implements quiet (waits for the last delivery).  If
  /// `counter` is non-null every injection is recorded (paper Figs 7/10).
  /// If `aggregator` is non-null the plan is first rewritten through the
  /// async aggregator model.
  ///
  /// `remote_writes` declares the destination-memory footprint of the
  /// kernel's one-sided puts for simsan (one effect per destination GPU;
  /// `effect.device` selects which flows it covers).  When a checker is
  /// attached, the puts run under a dedicated side actor forked from the
  /// source GPU's default-stream actor, and the quiet in `finalize` joins
  /// that side actor back — so stripping `finalize` loses both the timing
  /// wait AND the happens-before edge, exactly like skipping
  /// nvshmem_quiet on real hardware.
  void attachMessagePlan(gpu::KernelDesc& desc, int src, MessagePlan plan,
                         CommCounter* counter = nullptr,
                         const AggregatorParams* aggregator = nullptr,
                         std::vector<simsan::MemEffect> remote_writes = {});

  /// Host-initiated blocking one-sided put (control-plane uses; the data
  /// plane goes through kernels). Returns the delivery time.
  SimTime put(int src, int dst, std::int64_t payload_bytes,
              std::int64_t n_messages);

 private:
  /// Tracks the last remote delivery of one kernel's writes for quiet.
  struct QuietState {
    SimTime last_delivery = SimTime::zero();
    simsan::ActorId side_actor = -1;  ///< this kernel's put engine
  };

  gpu::MultiGpuSystem& system_;
  fabric::Fabric& fabric_;
  SymmetricHeap heap_;
  fault::FaultInjector* injector_ = nullptr;
  fabric::InterNodeCodec* codec_ = nullptr;
  bool hierarchical_ = false;
  bool coalesce_enabled_ = true;
  /// Recycles the per-kernel quiet records (one per attachMessagePlan'd
  /// launch) instead of hitting the allocator each time.
  util::SharedPool<QuietState> quiet_pool_;
};

}  // namespace pgasemb::pgas

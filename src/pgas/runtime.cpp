#include "pgas/runtime.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::pgas {

PgasRuntime::PgasRuntime(gpu::MultiGpuSystem& system, fabric::Fabric& fabric)
    : system_(system), fabric_(fabric), heap_(system) {
  PGASEMB_CHECK(fabric.numGpus() >= system.numGpus(),
                "fabric topology smaller than the GPU system");
}

void PgasRuntime::attachMessagePlan(gpu::KernelDesc& desc, int src,
                                    MessagePlan plan, CommCounter* counter,
                                    const AggregatorParams* aggregator) {
  PGASEMB_CHECK(src >= 0 && src < system_.numGpus(), "bad source PE ", src);
  if (aggregator != nullptr) {
    plan = aggregatePlan(plan, desc.duration, *aggregator);
  }
  PGASEMB_CHECK(plan.slices >= 1 &&
                    plan.flows.size() ==
                        static_cast<std::size_t>(plan.slices),
                "malformed message plan");

  desc.slices = plan.slices;

  // Tracks the last remote delivery of this kernel's writes for quiet.
  struct QuietState {
    SimTime last_delivery = SimTime::zero();
  };
  auto quiet = std::make_shared<QuietState>();

  desc.on_slice = [this, src, counter, quiet,
                   plan = std::move(plan)](int slice, SimTime at) {
    for (const auto& f :
         plan.flows[static_cast<std::size_t>(slice)]) {
      const auto d =
          fabric_.transfer(src, f.dst, f.payload_bytes, f.n_messages, at);
      quiet->last_delivery = std::max(quiet->last_delivery, d.delivered);
      if (counter != nullptr) counter->record(at, f.payload_bytes);
    }
  };

  desc.finalize = [quiet](SimTime compute_end) {
    // nvshmem_quiet: kernel completion waits for remote-write delivery.
    return std::max(compute_end, quiet->last_delivery);
  };
}

SimTime PgasRuntime::put(int src, int dst, std::int64_t payload_bytes,
                         std::int64_t n_messages) {
  const auto d = fabric_.transfer(src, dst, payload_bytes, n_messages,
                                  system_.hostNow());
  return d.delivered;
}

}  // namespace pgasemb::pgas

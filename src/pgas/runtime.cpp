#include "pgas/runtime.hpp"

#include <algorithm>
#include <string>

#include "fault/injector.hpp"
#include "simsan/strict.hpp"
#include "util/expect.hpp"

namespace pgasemb::pgas {

PgasRuntime::PgasRuntime(gpu::MultiGpuSystem& system, fabric::Fabric& fabric)
    : system_(system), fabric_(fabric), heap_(system) {
  PGASEMB_CHECK(fabric.numGpus() >= system.numGpus(),
                "fabric topology smaller than the GPU system");
}

void PgasRuntime::attachMessagePlan(gpu::KernelDesc& desc, int src,
                                    MessagePlan plan, CommCounter* counter,
                                    const AggregatorParams* aggregator,
                                    std::vector<simsan::MemEffect> remote_writes) {
  PGASEMB_CHECK(src >= 0 && src < system_.numGpus(), "bad source PE ", src);
  if (aggregator != nullptr) {
    plan = aggregatePlan(plan, desc.duration, *aggregator);
  }
  PGASEMB_CHECK(plan.slices >= 1 &&
                    plan.flows.size() ==
                        static_cast<std::size_t>(plan.slices),
                "malformed message plan");

  desc.slices = plan.slices;

  // Slice-coalescing eligibility: every condition under which running
  // the slice callbacks synchronously at kernel start (with their
  // original timestamps) is provably result-identical to one simulator
  // event per slice.  Anything that observes per-message *event order*
  // — the simsan checker, fault drop windows (via the injector or armed
  // links), per-injection comm counters, flow observers — re-arms the
  // per-message path; so does a shared-resource topology, where another
  // source's flow could interleave on the same link.
  desc.coalesce_slices = coalesce_enabled_ &&
                         system_.mode() == gpu::ExecutionMode::kTimingOnly &&
                         system_.sanitizer() == nullptr &&
                         injector_ == nullptr && counter == nullptr &&
                         codec_ == nullptr && !hierarchical_ &&
                         fabric_.coalescingSafe();

  auto quiet = quiet_pool_.make();

  // The declared put footprint rides on the descriptor so strict mode
  // can treat remote output ranges as declared while the functional
  // body runs (the body writes them directly; the flows model timing).
  desc.put_effects = remote_writes;
  // Strict-effects put tracker: totals each launch's *logical* flows
  // per destination against the declared footprint (a retransmitted
  // put re-sends the same logical flow, so attempts are not re-counted).
  std::shared_ptr<simsan::StrictPutTracker> strict_puts;
  if (auto* strict = system_.strictEffects()) {
    strict_puts = strict->trackPuts(desc.name, remote_writes);
  }

  desc.on_slice = [this, src, counter, quiet, strict_puts,
                   remote_writes = std::move(remote_writes),
                   plan = std::move(plan)](int slice, SimTime at) {
    auto* san = system_.sanitizer();
    if (san != nullptr && quiet->side_actor < 0) {
      // The in-kernel put engine: inherits what the launching stream had
      // observed, then runs concurrently with everything until quiet.
      quiet->side_actor = san->forkActor(
          "gpu" + std::to_string(src) + ".pgas_put",
          system_.stream(src).sanitizerActor());
    }
    // One delivery-tracking callback per slice, not per put: the flow
    // loop retargets `attempt_payload` instead of materializing a fresh
    // std::function for every transfer.
    std::int64_t attempt_payload = 0;
    const fault::FaultInjector::AttemptFn on_attempt =
        [counter, &attempt_payload](SimTime attempt_at,
                                    const fabric::Fabric::Delivery&) {
          if (counter != nullptr) counter->record(attempt_at, attempt_payload);
        };
    auto& topo = fabric_.topology();
    // Hierarchical forwarding stays on under an armed injector: the
    // leader hops are delivery-tracked reliable puts, and only node
    // pairs inside a NIC fault window fall back to direct per-flow puts
    // (per-pair degraded mode — see DESIGN.md §13). This replaces the
    // old global flat fallback that abandoned the hierarchy whenever
    // any plan was armed.
    const bool hier = hierarchical_ && topo.numNodes() > 1;
    const auto& flows = plan.flows[static_cast<std::size_t>(slice)];
    // Common put bookkeeping once the *final* delivery time is known:
    // quiet latches it, the comm counter records the original payload at
    // injection time, and the simsan window spans injection -> landing
    // (for forwarded puts the leader staging hops are timing-only; the
    // collective retriever's staging buffers are where simsan certifies
    // the gather/scatter interleavings).
    const auto log_put = [&](const auto& f, SimTime delivered) {
      quiet->last_delivery = std::max(quiet->last_delivery, delivered);
      if (counter != nullptr) counter->record(at, f.payload_bytes);
      if (san != nullptr) {
        for (const auto& effect : remote_writes) {
          if (effect.device != f.dst) continue;
          san->access(quiet->side_actor, effect.device, effect.range,
                      effect.kind, at, delivered, effect.label);
        }
      }
    };
    // Delivery-tracked direct put (the flat path under faults):
    // flap-dropped attempts are retransmitted after timeout + backoff,
    // every injection counts toward comm volume, and quiet waits on the
    // *acknowledged* delivery. Returns the acked delivery time.
    const auto reliable_direct = [&](const auto& f) {
      attempt_payload = f.payload_bytes;
      const auto r = injector_->reliablePut(
          src, f.dst, f.payload_bytes, f.n_messages, at, on_attempt);
      const bool buggy = injector_->plan().bug_retransmit_without_quiet &&
                         r.retransmitted();
      // Seeded bug (simsan certification): quiet latches the loss time of
      // the dropped attempt instead of the acked retransmit, so kernel
      // completion no longer covers the recovered write.
      quiet->last_delivery = std::max(quiet->last_delivery,
                                      buggy ? r.first_loss : r.acked);
      if (san != nullptr) {
        for (const auto& effect : remote_writes) {
          if (effect.device != f.dst) continue;
          if (!buggy) {
            san->access(quiet->side_actor, effect.device, effect.range,
                        effect.kind, at, r.acked, effect.label);
            continue;
          }
          // The original attempt dies at the flap...
          san->access(quiet->side_actor, effect.device, effect.range,
                      effect.kind, at, r.first_loss, effect.label);
          // ...and the retransmit engine lands the write without being
          // re-armed under quiet: its actor is never joined, so the
          // landing races with whoever consumes the destination.
          const auto rogue = san->forkActor(
              "gpu" + std::to_string(src) + ".pgas_put.retransmit",
              quiet->side_actor);
          san->access(rogue, effect.device, effect.range, effect.kind,
                      r.first_loss, r.acked, effect.label + ".retransmit");
        }
      }
      return r.acked;
    };
    for (const auto& f : flows) {
      if (strict_puts != nullptr) strict_puts->flow(f.dst, f.payload_bytes);
      const bool inter =
          topo.routeClass(src, f.dst) == fabric::LinkClass::kInter;
      if (hier && inter) {
        continue;  // forwarded below, aggregated (or degraded) per node
      }
      if (injector_ == nullptr) {
        std::int64_t wire_bytes = f.payload_bytes;
        if (codec_ != nullptr && f.payload_bytes > 0 &&
            f.payload_bytes % 4 == 0 && inter) {
          // Flat-mode compression: each one-sided flow is encoded on its
          // way out of the node (the 256-byte messages shrink but their
          // count — and hence the NIC message-rate padding — does not).
          wire_bytes = fabric::InterNodeCodec::compressedBytes(
              f.payload_bytes, codec_->aggregateBits(topo.nodeOf(src), at));
          codec_->recordFlow(f.payload_bytes, wire_bytes);
          codec_->recordEgress(topo.nodeOf(src), at, wire_bytes);
        }
        const auto d =
            fabric_.transfer(src, f.dst, wire_bytes, f.n_messages, at);
        log_put(f, d.delivered);
        continue;
      }
      reliable_direct(f);
    }
    if (!hier) return;
    // Hierarchical forwarding (DESIGN.md §12): per destination node,
    // this slice's inter-node puts ride three hops —
    //   1. NVLink gather: src -> own node leader (summed payload, the
    //      original message count; free when src IS the leader);
    //   2. one aggregated bulk message leader -> leader over the NIC
    //      (n_messages = 1 kills the per-256-byte rate padding; the
    //      codec, when attached, encodes this hop);
    //   3. NVLink scatter: remote leader -> each destination GPU.
    // Forwarding hop: plain transfer when fault-free, delivery-tracked
    // reliable put (retransmitted on drop) when an injector is armed.
    const auto hop = [&](int a, int b, std::int64_t bytes,
                         std::int64_t msgs, SimTime t) {
      if (injector_ == nullptr) {
        return fabric_.transfer(a, b, bytes, msgs, t).delivered;
      }
      return injector_->reliablePut(a, b, bytes, msgs, t).acked;
    };
    const int src_node = topo.nodeOf(src);
    // Under a leader-fail window the injector's fault domains re-elect
    // the next healthy GPU on the node (counted as a failover).
    const int leader_s = injector_ != nullptr
                             ? injector_->leaderAt(src_node, at)
                             : topo.nodeLeader(src_node);
    for (int node = 0; node < topo.numNodes(); ++node) {
      if (node == src_node) continue;
      if (injector_ != nullptr &&
          injector_->pairDegraded(src_node, node, at)) {
        // Per-pair degraded mode: a NIC fault window covers one of the
        // endpoint nodes, so this pair's traffic skips the leader
        // staging (a dropped aggregate would couple the whole node into
        // one retransmit domain) and goes direct, flow by flow. Every
        // healthy pair below keeps the hierarchy.
        SimTime last = at;
        bool any = false;
        for (const auto& f : flows) {
          if (topo.nodeOf(f.dst) != node) continue;
          last = std::max(last, reliable_direct(f));
          any = true;
        }
        if (any) injector_->recordHierFallback(at, last);
        continue;
      }
      std::int64_t to_node = 0;
      std::int64_t msgs = 0;
      for (const auto& f : flows) {
        if (topo.nodeOf(f.dst) != node) continue;
        to_node += f.payload_bytes;
        msgs += f.n_messages;
      }
      if (to_node == 0) {
        // Nothing to ship; empty puts complete at injection.
        for (const auto& f : flows) {
          if (topo.nodeOf(f.dst) == node) log_put(f, at);
        }
        continue;
      }
      SimTime staged = at;
      if (src != leader_s) {
        staged = hop(src, leader_s, to_node, msgs, at);
      }
      std::int64_t wire_bytes = to_node;
      if (codec_ != nullptr && to_node % 4 == 0) {
        wire_bytes = fabric::InterNodeCodec::compressedBytes(
            to_node, codec_->aggregateBits(src_node, staged));
        codec_->recordFlow(to_node, wire_bytes);
        codec_->recordEgress(src_node, staged, wire_bytes);
      }
      const int leader_d = injector_ != nullptr
                               ? injector_->leaderAt(node, staged)
                               : topo.nodeLeader(node);
      const SimTime landed = hop(leader_s, leader_d, wire_bytes, 1, staged);
      for (const auto& f : flows) {
        if (topo.nodeOf(f.dst) != node) continue;
        SimTime done = landed;
        if (f.dst != leader_d) {
          done = hop(leader_d, f.dst, f.payload_bytes, f.n_messages, landed);
        }
        log_put(f, done);
      }
    }
  };

  desc.finalize = [this, src, quiet](SimTime compute_end) {
    // nvshmem_quiet: kernel completion waits for remote-write delivery,
    // and (for simsan) publishes the put engine's writes to the stream.
    auto* san = system_.sanitizer();
    if (san != nullptr && quiet->side_actor >= 0) {
      san->joinActor(system_.stream(src).sanitizerActor(),
                     quiet->side_actor);
    }
    return std::max(compute_end, quiet->last_delivery);
  };
}

SimTime PgasRuntime::put(int src, int dst, std::int64_t payload_bytes,
                         std::int64_t n_messages) {
  if (injector_ != nullptr) {
    return injector_
        ->reliablePut(src, dst, payload_bytes, n_messages, system_.hostNow())
        .acked;
  }
  const auto d = fabric_.transfer(src, dst, payload_bytes, n_messages,
                                  system_.hostNow());
  return d.delivered;
}

}  // namespace pgasemb::pgas

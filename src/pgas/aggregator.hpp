// Asynchronous communication aggregator (paper §V future work, after
// Chen et al., SC'22 [7]).
//
// Instead of `sum.store(outputs[idx], pe)` the kernel calls
// `aggregator.store(...)`: stores accumulate in a per-destination buffer
// that is transmitted when it reaches the aggregation size or when the
// oldest entry has waited `max_wait`.  On high-latency, message-rate-
// limited inter-node links this trades a little latency for far fewer,
// larger messages.  We model it as a transform on the kernel's message
// plan.
#pragma once

#include <cstdint>

#include "pgas/message_plan.hpp"
#include "util/time.hpp"

namespace pgasemb::pgas {

struct AggregatorParams {
  /// Flush when a destination buffer reaches this many payload bytes.
  std::int64_t aggregation_bytes = 64 * 1024;
  /// Flush a partial buffer once its oldest entry has waited this long.
  SimTime max_wait = SimTime::us(50.0);
};

/// Rewrite `plan` (whose slices span `kernel_duration`) as the flows the
/// aggregator would emit. Payload bytes are conserved; message counts
/// drop to one per flush. A final flush at the last slice models quiet
/// draining the aggregation buffers.
MessagePlan aggregatePlan(const MessagePlan& plan, SimTime kernel_duration,
                          const AggregatorParams& params);

}  // namespace pgasemb::pgas

#include "fault/domains.hpp"

namespace pgasemb::fault {

NodeFaultDomains::NodeFaultDomains(const std::vector<FaultSpec>& materialized,
                                   int num_nodes, int gpus_per_node)
    : num_nodes_(num_nodes), gpus_per_node_(gpus_per_node) {
  for (const FaultSpec& spec : materialized) {
    if (!nodeScoped(spec.kind)) continue;
    // A node pinned beyond this topology matches nothing (sweeps re-arm
    // the same plan at several node counts, same rule as link specs).
    if (spec.a >= num_nodes) continue;
    Window w;
    w.node = spec.a;
    w.start = spec.start;
    w.end = spec.end;
    if (spec.kind == FaultKind::kLeaderFail) {
      leader_fail_.push_back(w);
    } else if (spec.kind == FaultKind::kNicDegrade ||
               spec.kind == FaultKind::kNicFlap) {
      nic_fault_.push_back(w);
    }
    // kNodeStraggle acts through device slowdown windows, not through
    // routing decisions: nothing to record here.
  }
}

int NodeFaultDomains::failWindow(int node, SimTime at) const {
  for (std::size_t i = 0; i < leader_fail_.size(); ++i) {
    if (covers(leader_fail_[i], node, at)) return static_cast<int>(i);
  }
  return -1;
}

bool NodeFaultDomains::pairDegraded(int src_node, int dst_node,
                                    SimTime at) const {
  for (const Window& w : nic_fault_) {
    if (covers(w, src_node, at) || covers(w, dst_node, at)) return true;
  }
  return false;
}

}  // namespace pgasemb::fault

// Deterministic fault plans for the simulated system.
//
// A FaultPlan is a list of fault specs — link degradation windows, link
// flaps that drop in-flight flows, straggler GPUs, transient kernel
// launch failures — plus the retry policy the resilience machinery uses
// to recover.  Specs may carry explicit time windows; specs without one
// get a window drawn deterministically from the plan seed when the
// injector arms, so `--faults ... --fault-seed N` reproduces the exact
// same perturbed run every time, and a different seed yields a different
// fault schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace pgasemb::fault {

enum class FaultKind {
  kLinkDegrade,  ///< bandwidth cut and/or latency spike on a link
  kLinkFlap,     ///< link drops every flow in flight during the window
  kStraggler,    ///< per-device compute slowdown
  kLaunchFail,   ///< transient kernel-launch failures (host retries)
  // Node-scoped kinds (multi-node topologies only; `a` = node id):
  kNicDegrade,    ///< bandwidth cut on a node's NIC (both directions)
  kNicFlap,       ///< node's NIC drops every flow in flight
  kLeaderFail,    ///< node-leader GPU's staging role fails over
  kNodeStraggle,  ///< compute slowdown on every GPU of a node
};

/// True for the kinds that target a whole node rather than a link/GPU.
bool nodeScoped(FaultKind kind);

/// One fault. `a`/`b` select the target: (src, dst) GPU pair for link
/// faults, device id in `a` for straggler/launch faults, node id in `a`
/// for node-scoped faults; -1 = all.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDegrade;
  int a = -1;
  int b = -1;
  /// kLinkDegrade / kNicDegrade: achieved-bandwidth factor in (0, 1].
  /// kStraggler / kNodeStraggle: compute slowdown >= 1.
  /// kLaunchFail: per-launch failure probability in [0, 1).
  double magnitude = 1.0;
  /// kLinkDegrade only: extra per-hop delivery latency (latency spike).
  SimTime extra_latency = SimTime::zero();
  /// Active window. start == end means "no explicit window": the
  /// injector draws one from the plan seed when it arms.
  SimTime start = SimTime::zero();
  SimTime end = SimTime::zero();

  bool windowed() const { return end > start; }
  std::string describe() const;
};

/// Retransmission policy for one-sided puts and collective chunks whose
/// flows a link flap dropped.  The sender notices the missing delivery
/// acknowledgement after `put_timeout` and re-injects; consecutive
/// losses back off exponentially (capped), so a flow caught in a flap
/// window re-enters the fabric shortly after the window closes.
struct RetryPolicy {
  SimTime put_timeout = SimTime::us(50.0);
  double backoff_multiplier = 2.0;
  SimTime max_backoff = SimTime::ms(1.0);
  /// Safety bound: a put that is still undeliverable after this many
  /// attempts throws (a flap wider than the whole retry budget is a
  /// plan bug, not a recoverable fault).
  int max_attempts = 32;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0;
  /// Horizon the seeded window draw spreads unwindowed specs over.
  SimTime horizon = SimTime::ms(10.0);
  RetryPolicy retry;
  /// Testing only: seeded bug for the simsan certification tests — the
  /// retransmit path reuses the first attempt's delivery time for quiet
  /// and runs the re-sent put under a never-joined actor, recreating
  /// "retransmit without re-arming quiet" so simsan can catch it.
  bool bug_retransmit_without_quiet = false;
  /// Testing only: seeded bug for the failover certification tests — the
  /// standby leader's staging rebuild runs under a never-synchronized
  /// actor instead of the stream (skipping the node-wide re-quiet), so
  /// its write races the members' gather traffic and simsan names it.
  bool bug_rebuild_without_requiet = false;

  bool empty() const { return specs.empty(); }

  /// Parses a comma-separated spec string:
  ///   link-degrade:SRC-DST:FACTOR[:START_MS-END_MS]
  ///   latency-spike:SRC-DST:EXTRA_US[:START_MS-END_MS]
  ///   link-flap:SRC-DST[:START_MS-END_MS]
  ///   straggler:DEV:SLOWDOWN[:START_MS-END_MS]
  ///   launch-fail:DEV:PROB[:START_MS-END_MS]
  ///   nic-degrade:NODE:FACTOR[:START_MS-END_MS]
  ///   nic-flap:NODE[:START_MS-END_MS]
  ///   leader-fail:NODE[:START_MS-END_MS]
  ///   node-straggle:NODE:SLOWDOWN[:START_MS-END_MS]
  /// `*` (or `*-*`) targets all links/devices/nodes.  Example:
  ///   --faults link-degrade:0-1:0.5,straggler:2:3:1.0-2.5
  /// Throws InvalidArgumentError with a pointed message on malformed
  /// specs.  Specs without a window get one drawn from `seed` at arm
  /// time.
  static FaultPlan parse(const std::string& spec_string, std::uint64_t seed,
                         SimTime horizon = SimTime::ms(10.0));

  std::string describe() const;
};

/// Everything the resilience machinery counted during one run.
/// `faults_injected` counts concrete manifestations: armed fault
/// windows, dropped flows, and failed launch attempts.
struct ResilienceStats {
  std::int64_t faults_injected = 0;
  std::int64_t dropped_flows = 0;
  std::int64_t dropped_bytes = 0;
  /// One-sided put re-injections (and the payload they re-sent).
  std::int64_t retransmits = 0;
  std::int64_t retransmitted_bytes = 0;
  /// Collective chunk re-injections.
  std::int64_t collective_reissues = 0;
  /// Kernel launches the host had to re-drive after a transient failure.
  std::int64_t launch_retries = 0;
  /// Sum over recovered flows of (final delivery - first loss): the
  /// simulated time spent re-driving dropped traffic.
  SimTime recovery_latency = SimTime::zero();
  /// Engine-level SLO fallbacks (retriever switches) and the retriever
  /// that finished the run after the last switch ("" = no switch).
  std::int64_t fallback_switches = 0;
  std::string fallback_retriever;
  /// Hierarchical degraded mode: per-node-pair flat-a2a fallback events
  /// (one per rank's traffic to one degraded node pair) and the summed
  /// simulated time spent driving that traffic flat.
  std::int64_t hier_fallbacks = 0;
  SimTime degraded_time = SimTime::zero();
  /// Leader failovers (one per node per fail window, counted when the
  /// re-elected leader is first used) and the standby staging rebuilds
  /// they triggered.
  std::int64_t leader_failovers = 0;
  std::int64_t staging_rebuilds = 0;

  bool any() const {
    return faults_injected != 0 || dropped_flows != 0 || retransmits != 0 ||
           collective_reissues != 0 || launch_retries != 0 ||
           fallback_switches != 0 || hier_fallbacks != 0 ||
           leader_failovers != 0 || staging_rebuilds != 0;
  }
};

}  // namespace pgasemb::fault

#include "fault/plan.hpp"

#include <sstream>

#include "util/expect.hpp"
#include "util/parse.hpp"

namespace pgasemb::fault {

namespace {

const char* kindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kLaunchFail:
      return "launch-fail";
    case FaultKind::kNicDegrade:
      return "nic-degrade";
    case FaultKind::kNicFlap:
      return "nic-flap";
    case FaultKind::kLeaderFail:
      return "leader-fail";
    case FaultKind::kNodeStraggle:
      return "node-straggle";
  }
  return "?";
}

int parseNode(const std::string& text, const std::string& what) {
  if (text == "*") return -1;
  const int node = static_cast<int>(parseIntStrict(text, what + " node"));
  PGASEMB_CHECK(node >= 0, what, ": node must be >= 0 (or '*'), got: ", node);
  return node;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

/// "SRC-DST" with `*` wildcards ("0-1", "*-2", "*"). -1 = all.
void parseEndpointPair(const std::string& text, const std::string& what,
                       int* a, int* b) {
  const auto dash = text.find('-');
  const std::string sa = dash == std::string::npos ? text
                                                   : text.substr(0, dash);
  const std::string sb = dash == std::string::npos ? "*"
                                                   : text.substr(dash + 1);
  *a = sa == "*" ? -1
                 : static_cast<int>(parseIntStrict(sa, what + " source GPU"));
  *b = sb == "*" ? -1
                 : static_cast<int>(parseIntStrict(sb, what + " dest GPU"));
  PGASEMB_CHECK(*a >= -1 && *b >= -1, what,
                ": GPU ids must be >= 0 (or '*'), got: ", text);
}

int parseDevice(const std::string& text, const std::string& what) {
  if (text == "*") return -1;
  const int dev = static_cast<int>(parseIntStrict(text, what + " device"));
  PGASEMB_CHECK(dev >= 0, what, ": device must be >= 0 (or '*'), got: ", dev);
  return dev;
}

/// "START_MS-END_MS" (e.g. "0.5-2.0").
void parseWindow(const std::string& text, const std::string& what,
                 FaultSpec* spec) {
  const auto dash = text.find('-');
  PGASEMB_CHECK(dash != std::string::npos && dash > 0, what,
                ": window must be START_MS-END_MS, got: '", text, "'");
  const double start_ms =
      parseDoubleStrict(text.substr(0, dash), what + " window start");
  const double end_ms =
      parseDoubleStrict(text.substr(dash + 1), what + " window end");
  PGASEMB_CHECK(start_ms >= 0.0 && end_ms > start_ms, what,
                ": window must satisfy 0 <= start < end, got: '", text, "'");
  spec->start = SimTime::ms(start_ms);
  spec->end = SimTime::ms(end_ms);
}

}  // namespace

bool nodeScoped(FaultKind kind) {
  return kind == FaultKind::kNicDegrade || kind == FaultKind::kNicFlap ||
         kind == FaultKind::kLeaderFail || kind == FaultKind::kNodeStraggle;
}

std::string FaultSpec::describe() const {
  std::ostringstream out;
  out << kindName(kind) << ":";
  const auto endpoint = [](int e) {
    return e < 0 ? std::string("*") : std::to_string(e);
  };
  if (kind == FaultKind::kLinkDegrade || kind == FaultKind::kLinkFlap) {
    out << endpoint(a) << "-" << endpoint(b);
  } else {
    out << endpoint(a);
  }
  const bool has_magnitude = kind != FaultKind::kLinkFlap &&
                             kind != FaultKind::kNicFlap &&
                             kind != FaultKind::kLeaderFail;
  if (has_magnitude) out << ":" << magnitude;
  if (extra_latency > SimTime::zero()) {
    out << "+" << extra_latency.toUs() << "us";
  }
  if (windowed()) {
    out << ":" << start.toMs() << "-" << end.toMs() << "ms";
  } else {
    out << ":(seeded window)";
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec_string, std::uint64_t seed,
                           SimTime horizon) {
  FaultPlan plan;
  plan.seed = seed;
  plan.horizon = horizon;
  PGASEMB_CHECK(horizon > SimTime::zero(), "fault horizon must be positive");
  for (const std::string& token : split(spec_string, ',')) {
    if (token.empty()) continue;
    const auto fields = split(token, ':');
    const std::string& kind = fields[0];
    FaultSpec spec;
    std::size_t window_field = 0;  // 0 = none
    if (kind == "link-degrade" || kind == "latency-spike") {
      PGASEMB_CHECK(fields.size() >= 3 && fields.size() <= 4,
                    "--faults '", token, "': expected ", kind,
                    ":SRC-DST:", kind == "link-degrade" ? "FACTOR" : "EXTRA_US",
                    "[:START_MS-END_MS]");
      spec.kind = FaultKind::kLinkDegrade;
      parseEndpointPair(fields[1], "--faults " + kind, &spec.a, &spec.b);
      if (kind == "link-degrade") {
        spec.magnitude =
            parseDoubleStrict(fields[2], "--faults link-degrade factor");
        PGASEMB_CHECK(spec.magnitude > 0.0 && spec.magnitude <= 1.0,
                      "--faults link-degrade: factor must be in (0, 1], got: ",
                      spec.magnitude);
      } else {
        const double extra_us =
            parseDoubleStrict(fields[2], "--faults latency-spike extra_us");
        PGASEMB_CHECK(extra_us > 0.0,
                      "--faults latency-spike: extra latency must be "
                      "positive, got: ",
                      extra_us);
        spec.extra_latency = SimTime::us(extra_us);
      }
      if (fields.size() == 4) window_field = 3;
    } else if (kind == "link-flap") {
      PGASEMB_CHECK(fields.size() >= 2 && fields.size() <= 3, "--faults '",
                    token, "': expected link-flap:SRC-DST[:START_MS-END_MS]");
      spec.kind = FaultKind::kLinkFlap;
      parseEndpointPair(fields[1], "--faults link-flap", &spec.a, &spec.b);
      if (fields.size() == 3) window_field = 2;
    } else if (kind == "straggler") {
      PGASEMB_CHECK(fields.size() >= 3 && fields.size() <= 4, "--faults '",
                    token,
                    "': expected straggler:DEV:SLOWDOWN[:START_MS-END_MS]");
      spec.kind = FaultKind::kStraggler;
      spec.a = parseDevice(fields[1], "--faults straggler");
      spec.magnitude =
          parseDoubleStrict(fields[2], "--faults straggler slowdown");
      PGASEMB_CHECK(spec.magnitude >= 1.0,
                    "--faults straggler: slowdown must be >= 1, got: ",
                    spec.magnitude);
      if (fields.size() == 4) window_field = 3;
    } else if (kind == "launch-fail") {
      PGASEMB_CHECK(fields.size() >= 3 && fields.size() <= 4, "--faults '",
                    token,
                    "': expected launch-fail:DEV:PROB[:START_MS-END_MS]");
      spec.kind = FaultKind::kLaunchFail;
      spec.a = parseDevice(fields[1], "--faults launch-fail");
      spec.magnitude =
          parseDoubleStrict(fields[2], "--faults launch-fail probability");
      PGASEMB_CHECK(spec.magnitude >= 0.0 && spec.magnitude < 1.0,
                    "--faults launch-fail: probability must be in [0, 1), "
                    "got: ",
                    spec.magnitude);
      if (fields.size() == 4) window_field = 3;
    } else if (kind == "nic-degrade") {
      PGASEMB_CHECK(fields.size() >= 3 && fields.size() <= 4, "--faults '",
                    token,
                    "': expected nic-degrade:NODE:FACTOR[:START_MS-END_MS]");
      spec.kind = FaultKind::kNicDegrade;
      spec.a = parseNode(fields[1], "--faults nic-degrade");
      spec.magnitude =
          parseDoubleStrict(fields[2], "--faults nic-degrade factor");
      PGASEMB_CHECK(spec.magnitude > 0.0 && spec.magnitude <= 1.0,
                    "--faults nic-degrade: factor must be in (0, 1], got: ",
                    spec.magnitude);
      if (fields.size() == 4) window_field = 3;
    } else if (kind == "nic-flap") {
      PGASEMB_CHECK(fields.size() >= 2 && fields.size() <= 3, "--faults '",
                    token, "': expected nic-flap:NODE[:START_MS-END_MS]");
      spec.kind = FaultKind::kNicFlap;
      spec.a = parseNode(fields[1], "--faults nic-flap");
      if (fields.size() == 3) window_field = 2;
    } else if (kind == "leader-fail") {
      PGASEMB_CHECK(fields.size() >= 2 && fields.size() <= 3, "--faults '",
                    token, "': expected leader-fail:NODE[:START_MS-END_MS]");
      spec.kind = FaultKind::kLeaderFail;
      spec.a = parseNode(fields[1], "--faults leader-fail");
      if (fields.size() == 3) window_field = 2;
    } else if (kind == "node-straggle") {
      PGASEMB_CHECK(
          fields.size() >= 3 && fields.size() <= 4, "--faults '", token,
          "': expected node-straggle:NODE:SLOWDOWN[:START_MS-END_MS]");
      spec.kind = FaultKind::kNodeStraggle;
      spec.a = parseNode(fields[1], "--faults node-straggle");
      spec.magnitude =
          parseDoubleStrict(fields[2], "--faults node-straggle slowdown");
      PGASEMB_CHECK(spec.magnitude >= 1.0,
                    "--faults node-straggle: slowdown must be >= 1, got: ",
                    spec.magnitude);
      if (fields.size() == 4) window_field = 3;
    } else {
      throw InvalidArgumentError(
          "--faults: unknown fault kind '" + kind +
          "' in '" + token +
          "' (known: link-degrade, latency-spike, link-flap, straggler, "
          "launch-fail, nic-degrade, nic-flap, leader-fail, node-straggle)");
    }
    if (window_field != 0) {
      parseWindow(fields[window_field], "--faults " + kind, &spec);
    }
    plan.specs.push_back(spec);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (specs.empty()) return "(no faults)";
  std::ostringstream out;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) out << ", ";
    out << specs[i].describe();
  }
  out << " [seed " << seed << "]";
  return out.str();
}

}  // namespace pgasemb::fault

#include "fault/injector.hpp"

#include <algorithm>
#include <vector>

#include "fabric/topology.hpp"
#include "util/expect.hpp"

namespace pgasemb::fault {

namespace {
/// Retry cap per launch call: a transient launch failure is re-driven at
/// most this many times before the driver "recovers" regardless (keeps a
/// high probability spec from stalling the host forever).
constexpr int kMaxLaunchRetriesPerCall = 8;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  PGASEMB_CHECK(plan_.horizon > SimTime::zero(),
                "fault plan horizon must be positive");
  PGASEMB_CHECK(plan_.retry.put_timeout > SimTime::zero(),
                "retry put_timeout must be positive");
  PGASEMB_CHECK(plan_.retry.backoff_multiplier >= 1.0,
                "retry backoff multiplier must be >= 1");
  PGASEMB_CHECK(plan_.retry.max_attempts >= 2,
                "retry max_attempts must allow at least one retransmit");
}

void FaultInjector::arm(gpu::MultiGpuSystem& system, fabric::Fabric& fabric) {
  system_ = &system;
  fabric_ = &fabric;
  materialized_.clear();
  launch_faults_.clear();
  domains_.reset();
  counted_failovers_.clear();
  stats_ = ResilienceStats{};
  launch_retry_penalty_ = system.costModel().kernel_launch_overhead +
                          system.costModel().stream_sync_overhead;

  // Total time the retry ladder can bridge before reliableTransfer gives
  // up (sum of the capped exponential backoffs).
  SimTime retry_budget = SimTime::zero();
  SimTime step = plan_.retry.put_timeout;
  for (int i = 1; i < plan_.retry.max_attempts; ++i) {
    retry_budget += step;
    step = std::min(step * plan_.retry.backoff_multiplier,
                    plan_.retry.max_backoff);
  }

  Rng rng(plan_.seed);
  const int n = fabric.numGpus();
  for (FaultSpec spec : plan_.specs) {
    if (!spec.windowed()) {
      // Seeded draw: start in [0.1, 0.5) of the horizon, duration in
      // [0.1, 0.3) — mid-run faults, reproducible from the plan seed.
      spec.start = plan_.horizon * rng.uniformDouble(0.1, 0.5);
      spec.end = spec.start + plan_.horizon * rng.uniformDouble(0.1, 0.3);
      // The drawn width scales with the horizon, but a flap wider than
      // the retry ladder is unrecoverable by design — clamp seeded flaps
      // to half the budget so any horizon yields a survivable outage.
      // Pinned windows are taken verbatim and may still exceed it.
      if (spec.kind == FaultKind::kLinkFlap ||
          spec.kind == FaultKind::kNicFlap) {
        spec.end = std::min(spec.end, spec.start + retry_budget * 0.5);
      }
    }
    materialized_.push_back(spec);
    ++stats_.faults_injected;

    switch (spec.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap: {
        fabric::LinkFaultWindow window;
        window.start = spec.start;
        window.end = spec.end;
        if (spec.kind == FaultKind::kLinkFlap) {
          window.flap = true;
        } else {
          window.bandwidth_factor = spec.magnitude;
          window.extra_latency = spec.extra_latency;
        }
        // Install on every link of every matching route, once per link
        // (shared hops — NVSwitch ports, NIC up-links — degrade for all
        // routes through them, as on real hardware). Dedup via a vector
        // scan: route sets are small, and a pointer-keyed std::set would
        // order by allocation address (pgaslint: ptr-key-ordered).
        std::vector<fabric::Link*> seen;
        for (int src = 0; src < n; ++src) {
          if (spec.a >= 0 && src != spec.a) continue;
          for (int dst = 0; dst < n; ++dst) {
            if (dst == src || (spec.b >= 0 && dst != spec.b)) continue;
            for (fabric::Link* link : fabric.topology().route(src, dst)) {
              if (std::find(seen.begin(), seen.end(), link) == seen.end()) {
                seen.push_back(link);
                link->addFaultWindow(window);
              }
            }
          }
        }
        PGASEMB_CHECK(!seen.empty() || n <= 1,
                      "fault spec matched no link: ", spec.describe());
        break;
      }
      case FaultKind::kStraggler: {
        // A device pinned beyond this system's size matches nothing — a
        // scaling sweep re-arms the same spec at 1..N GPUs and the
        // straggler is simply absent at the small points (same rule as
        // a link spec that matches no route).
        if (spec.a >= system.numGpus()) break;
        for (int d = 0; d < system.numGpus(); ++d) {
          if (spec.a >= 0 && d != spec.a) continue;
          system.device(d).addSlowdownWindow(spec.start, spec.end,
                                             spec.magnitude);
        }
        break;
      }
      case FaultKind::kLaunchFail: {
        if (spec.a >= system.numGpus()) break;
        for (int d = 0; d < system.numGpus(); ++d) {
          if (spec.a >= 0 && d != spec.a) continue;
          LaunchFaultState state;
          state.probability = spec.magnitude;
          state.start = spec.start;
          state.end = spec.end;
          state.rng = rng.fork();
          launch_faults_.emplace_back(d, state);
        }
        break;
      }
      case FaultKind::kNicDegrade:
      case FaultKind::kNicFlap: {
        // A node pinned beyond this topology matches nothing (same sweep
        // rule as devices); single-node topologies have no NICs at all.
        fabric::LinkFaultWindow window;
        window.start = spec.start;
        window.end = spec.end;
        if (spec.kind == FaultKind::kNicFlap) {
          window.flap = true;
        } else {
          window.bandwidth_factor = spec.magnitude;
        }
        auto& topo = fabric.topology();
        for (int node = 0; node < topo.numNodes(); ++node) {
          if (spec.a >= 0 && node != spec.a) continue;
          for (fabric::Link* link : topo.nicLinks(node)) {
            link->addFaultWindow(window);
          }
        }
        break;
      }
      case FaultKind::kLeaderFail:
        // Pure routing fault: recorded in the node fault domains below,
        // nothing to install on links or devices.
        break;
      case FaultKind::kNodeStraggle: {
        auto& topo = fabric.topology();
        for (int node = 0; node < topo.numNodes(); ++node) {
          if (spec.a >= 0 && node != spec.a) continue;
          const int base = node * topo.gpusPerNode();
          for (int d = base; d < base + topo.gpusPerNode(); ++d) {
            system.device(d).addSlowdownWindow(spec.start, spec.end,
                                               spec.magnitude);
          }
        }
        break;
      }
    }
  }

  auto& topo = fabric.topology();
  if (topo.numNodes() > 1) {
    domains_ = std::make_unique<NodeFaultDomains>(materialized_,
                                                  topo.numNodes(),
                                                  topo.gpusPerNode());
  }

  if (!launch_faults_.empty()) {
    system.setLaunchFaultHook([this](int device, SimTime host_now) {
      return launchFaultDelay(device, host_now);
    });
  }
}

int FaultInjector::leaderAt(int node, SimTime at) {
  if (domains_ == nullptr) return node * (fabric_ != nullptr
                                              ? fabric_->topology().gpusPerNode()
                                              : 1);
  const int leader = domains_->leaderAt(node, at);
  if (leader != node * domains_->gpusPerNode()) {
    const int window = domains_->failWindow(node, at);
    const auto key = std::make_pair(node, window);
    if (std::find(counted_failovers_.begin(), counted_failovers_.end(),
                  key) == counted_failovers_.end()) {
      counted_failovers_.push_back(key);
      ++stats_.leader_failovers;
    }
  }
  return leader;
}

SimTime FaultInjector::launchFaultDelay(int device, SimTime host_now) {
  SimTime delay = SimTime::zero();
  for (auto& [dev, state] : launch_faults_) {
    if (dev != device) continue;
    if (host_now < state.start || host_now >= state.end) continue;
    int tries = 0;
    while (tries < kMaxLaunchRetriesPerCall &&
           state.rng.uniformDouble() < state.probability) {
      // Each failed cudaLaunchKernel costs the launch overhead plus a
      // sync-scale driver recovery before the host retries.
      delay += launch_retry_penalty_;
      ++stats_.launch_retries;
      ++stats_.faults_injected;
      ++tries;
    }
  }
  return delay;
}

FaultInjector::PutResult FaultInjector::reliableTransfer(
    int src, int dst, std::int64_t payload_bytes, std::int64_t n_messages,
    SimTime at, double bandwidth_fraction, bool collective,
    const AttemptFn& on_attempt) {
  PGASEMB_ASSERT(fabric_ != nullptr, "FaultInjector used before arm()");
  PutResult out;
  SimTime inject = at;
  SimTime backoff = plan_.retry.put_timeout;
  for (int attempt = 1;; ++attempt) {
    const auto d = fabric_->transfer(src, dst, payload_bytes, n_messages,
                                     inject, nullptr, bandwidth_fraction);
    if (on_attempt) on_attempt(inject, d);
    if (!d.dropped) {
      out.acked = d.delivered;
      out.attempts = attempt;
      if (attempt > 1) {
        stats_.recovery_latency += d.delivered - out.first_loss;
      }
      return out;
    }
    if (attempt == 1) out.first_loss = d.delivered;
    ++stats_.dropped_flows;
    stats_.dropped_bytes += payload_bytes;
    ++stats_.faults_injected;
    PGASEMB_CHECK(attempt < plan_.retry.max_attempts, "flow ", src, "->",
                  dst, " still undeliverable after ", attempt,
                  " attempts — flap window wider than the retry budget");
    // The sender notices the missing delivery ack after the timeout and
    // re-injects; consecutive losses back off exponentially (capped).
    inject = std::max(d.delivered, inject + backoff);
    backoff = std::min(backoff * plan_.retry.backoff_multiplier,
                       plan_.retry.max_backoff);
    if (collective) {
      ++stats_.collective_reissues;
    } else {
      ++stats_.retransmits;
    }
    stats_.retransmitted_bytes += payload_bytes;
  }
}

FaultInjector::PutResult FaultInjector::reliablePut(
    int src, int dst, std::int64_t payload_bytes, std::int64_t n_messages,
    SimTime at, const AttemptFn& on_attempt) {
  return reliableTransfer(src, dst, payload_bytes, n_messages, at,
                          /*bandwidth_fraction=*/1.0, /*collective=*/false,
                          on_attempt);
}

fabric::Fabric::Delivery FaultInjector::reliableCollective(
    int src, int dst, std::int64_t payload_bytes, std::int64_t n_messages,
    SimTime at, double bandwidth_fraction) {
  const PutResult r =
      reliableTransfer(src, dst, payload_bytes, n_messages, at,
                       bandwidth_fraction, /*collective=*/true, nullptr);
  return fabric::Fabric::Delivery{at, r.acked, false};
}

}  // namespace pgasemb::fault

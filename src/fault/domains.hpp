// NodeFaultDomains: the node-granularity view of a materialized fault
// plan.
//
// Multi-node topologies fail at node granularity — a NIC flaps for every
// flow crossing it, a node-leader GPU's staging daemon dies, a thermal
// event slows a whole chassis.  The injector materializes the plan's
// node-scoped specs (nic-degrade, nic-flap, leader-fail, node-straggle)
// into this structure so the hierarchical paths can make *scoped*
// decisions:
//
//   - leaderAt(node, t): the elected staging leader at time t.  During a
//     leader-fail window the next GPU on the node is deterministically
//     re-elected (rank 1); outside the window leadership reverts to the
//     default (rank 0).
//   - pairDegraded(src_node, dst_node, t): true while a NIC fault window
//     covers either endpoint node.  Hierarchical traffic between the two
//     nodes falls back to direct per-flow puts for the duration — a
//     dropped aggregated bulk flow would couple every member of the node
//     into one retransmit domain, so degraded pairs go flat while every
//     healthy pair keeps the hierarchy.
//
// The structure is immutable after construction; all queries are pure,
// so the same materialized plan always yields the same elections.
#pragma once

#include <vector>

#include "fault/plan.hpp"
#include "util/time.hpp"

namespace pgasemb::fault {

class NodeFaultDomains {
 public:
  /// Builds the per-node windows from the *materialized* specs (every
  /// window resolved by the injector's seeded draw).
  NodeFaultDomains(const std::vector<FaultSpec>& materialized, int num_nodes,
                   int gpus_per_node);

  int numNodes() const { return num_nodes_; }
  int gpusPerNode() const { return gpus_per_node_; }

  /// True when any node-scoped spec targets this topology (if false,
  /// every query below is the identity/no-fault answer).
  bool anyNodeScoped() const {
    return !leader_fail_.empty() || !nic_fault_.empty();
  }

  /// Index of the leader-fail window covering (node, at); -1 when the
  /// default leader is healthy. Stable across queries, so callers can
  /// key once-per-window work (failover counting, staging rebuild) on it.
  int failWindow(int node, SimTime at) const;

  bool leaderFailed(int node, SimTime at) const {
    return failWindow(node, at) >= 0;
  }

  /// The elected staging leader of `node` at `at`: the node's first GPU,
  /// or the next one while a leader-fail window is active (single-GPU
  /// nodes have no standby and keep the default).
  int leaderAt(int node, SimTime at) const {
    const int base = node * gpus_per_node_;
    if (gpus_per_node_ < 2 || !leaderFailed(node, at)) return base;
    return base + 1;
  }

  /// True while a NIC fault window (nic-degrade or nic-flap) covers
  /// either endpoint node: hierarchical traffic between the two should
  /// run in per-pair degraded (flat) mode.
  bool pairDegraded(int src_node, int dst_node, SimTime at) const;

 private:
  struct Window {
    int node = -1;  ///< -1 = every node
    SimTime start = SimTime::zero();
    SimTime end = SimTime::zero();
  };
  static bool covers(const Window& w, int node, SimTime at) {
    return (w.node < 0 || w.node == node) && at >= w.start && at < w.end;
  }

  int num_nodes_;
  int gpus_per_node_;
  std::vector<Window> leader_fail_;
  std::vector<Window> nic_fault_;  ///< nic-degrade + nic-flap windows
};

}  // namespace pgasemb::fault

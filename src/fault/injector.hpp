// FaultInjector: arms a FaultPlan against an assembled system and drives
// the retransmission machinery that recovers from it.
//
// arm() materializes the plan deterministically — specs without explicit
// windows get one drawn from Rng(plan.seed) — and installs the faults:
// degradation/flap windows on the topology's links, slowdown windows on
// the devices, and a launch-failure hook on the host.  reliablePut() and
// reliableCollective() wrap Fabric::transfer with timeout-driven
// re-injection under capped exponential backoff; because the fabric
// computes deliveries eagerly, a whole retransmit chain resolves
// synchronously at injection time, so PGAS quiet and collective
// completion times simply absorb the recovered delivery.
//
// Everything the injector does is counted in ResilienceStats; a null
// injector (no --faults) leaves every subsystem on its original code
// path, bit-identical to a fault-free build.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fabric/fabric.hpp"
#include "fault/domains.hpp"
#include "fault/plan.hpp"
#include "gpu/system.hpp"
#include "util/rng.hpp"

namespace pgasemb::fault {

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Materialize the plan's windows (seeded draw for unwindowed specs)
  /// and install them on `fabric`'s links and `system`'s devices + host.
  /// Call once per assembly; the injector keeps references to both.
  void arm(gpu::MultiGpuSystem& system, fabric::Fabric& fabric);

  /// The armed specs with every window resolved (tests compare these to
  /// certify that equal seeds give equal schedules).
  const std::vector<FaultSpec>& materialized() const { return materialized_; }

  /// Per-attempt observer for reliable transfers (comm counters, simsan).
  using AttemptFn =
      std::function<void(SimTime at, const fabric::Fabric::Delivery&)>;

  struct PutResult {
    SimTime acked;          ///< delivery of the final (successful) attempt
    SimTime first_loss;     ///< loss time of the first dropped attempt
    int attempts = 1;       ///< total injections (1 = clean first try)
    bool retransmitted() const { return attempts > 1; }
  };

  /// One-sided put with delivery tracking: re-injects flap-dropped flows
  /// after the retry policy's timeout/backoff until one delivery lands.
  /// Counts retransmits + recovery latency. `on_attempt` fires once per
  /// injection with that attempt's delivery.
  PutResult reliablePut(int src, int dst, std::int64_t payload_bytes,
                        std::int64_t n_messages, SimTime at,
                        const AttemptFn& on_attempt = nullptr);

  /// Collective chunk transfer with bounded reissue (counted separately
  /// as collective_reissues). Returns a Delivery whose `delivered` is
  /// the final successful attempt's delivery; never dropped.
  fabric::Fabric::Delivery reliableCollective(int src, int dst,
                                              std::int64_t payload_bytes,
                                              std::int64_t n_messages,
                                              SimTime at,
                                              double bandwidth_fraction);

  // --- Node-level fault domains (multi-node topologies) -------------------

  /// Node-granularity view of the armed plan; null until arm() ran on a
  /// multi-node fabric.
  const NodeFaultDomains* domains() const { return domains_.get(); }

  /// Elected staging leader of `node` at `at`. Counts one leader
  /// failover per (node, fail window) the first time the re-elected
  /// leader is observed. Falls back to the topology default when no
  /// domains are armed.
  int leaderAt(int node, SimTime at);

  /// True when hierarchical traffic between the two nodes should run in
  /// per-pair degraded (flat) mode at `at`.
  bool pairDegraded(int src_node, int dst_node, SimTime at) const {
    return domains_ != nullptr && domains_->pairDegraded(src_node, dst_node, at);
  }

  /// Counts one per-node-pair flat fallback whose direct traffic spanned
  /// [at, until] of simulated time.
  void recordHierFallback(SimTime at, SimTime until) {
    ++stats_.hier_fallbacks;
    if (until > at) stats_.degraded_time += until - at;
  }

  /// Counts one standby staging rebuild.
  void recordStagingRebuild() { ++stats_.staging_rebuilds; }

  ResilienceStats& stats() { return stats_; }
  const ResilienceStats& stats() const { return stats_; }

 private:
  SimTime launchFaultDelay(int device, SimTime host_now);

  PutResult reliableTransfer(int src, int dst, std::int64_t payload_bytes,
                             std::int64_t n_messages, SimTime at,
                             double bandwidth_fraction, bool collective,
                             const AttemptFn& on_attempt);

  FaultPlan plan_;
  gpu::MultiGpuSystem* system_ = nullptr;
  fabric::Fabric* fabric_ = nullptr;
  std::vector<FaultSpec> materialized_;
  ResilienceStats stats_;

  struct LaunchFaultState {
    double probability = 0.0;
    SimTime start = SimTime::zero();
    SimTime end = SimTime::zero();
    Rng rng{0};
  };
  std::vector<std::pair<int, LaunchFaultState>> launch_faults_;
  SimTime launch_retry_penalty_ = SimTime::zero();

  std::unique_ptr<NodeFaultDomains> domains_;
  /// (node, fail-window index) pairs already counted as failovers.
  std::vector<std::pair<int, int>> counted_failovers_;
};

}  // namespace pgasemb::fault

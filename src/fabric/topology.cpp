#include "fabric/topology.hpp"

#include <string>

#include "util/expect.hpp"

namespace pgasemb::fabric {

NvlinkAllToAllTopology::NvlinkAllToAllTopology(int num_gpus,
                                               const LinkParams& params)
    : num_gpus_(num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  links_.resize(static_cast<std::size_t>(num_gpus) * num_gpus);
  for (int s = 0; s < num_gpus; ++s) {
    for (int d = 0; d < num_gpus; ++d) {
      if (s == d) continue;
      links_[static_cast<std::size_t>(s) * num_gpus + d] =
          std::make_unique<Link>(
              "nvlink." + std::to_string(s) + "->" + std::to_string(d),
              params);
    }
  }
}

Link& NvlinkAllToAllTopology::link(int src, int dst) {
  PGASEMB_CHECK(src >= 0 && src < num_gpus_ && dst >= 0 && dst < num_gpus_ &&
                    src != dst,
                "bad link endpoints ", src, "->", dst);
  return *links_[static_cast<std::size_t>(src) * num_gpus_ + dst];
}

std::vector<Link*> NvlinkAllToAllTopology::route(int src, int dst) {
  if (src == dst) return {};
  return {&link(src, dst)};
}

std::vector<Link*> NvlinkAllToAllTopology::links() {
  std::vector<Link*> out;
  for (auto& l : links_) {
    if (l) out.push_back(l.get());
  }
  return out;
}

NvSwitchTopology::NvSwitchTopology(int num_gpus,
                                   const LinkParams& port_params)
    : num_gpus_(num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  for (int g = 0; g < num_gpus; ++g) {
    up_.push_back(std::make_unique<Link>(
        "nvswitch.gpu" + std::to_string(g) + ".up", port_params));
    down_.push_back(std::make_unique<Link>(
        "nvswitch.gpu" + std::to_string(g) + ".down", port_params));
  }
}

std::vector<Link*> NvSwitchTopology::route(int src, int dst) {
  PGASEMB_CHECK(src >= 0 && src < num_gpus_ && dst >= 0 && dst < num_gpus_,
                "bad route endpoints ", src, "->", dst);
  if (src == dst) return {};
  return {up_[static_cast<std::size_t>(src)].get(),
          down_[static_cast<std::size_t>(dst)].get()};
}

std::vector<Link*> NvSwitchTopology::links() {
  std::vector<Link*> out;
  for (auto& l : up_) out.push_back(l.get());
  for (auto& l : down_) out.push_back(l.get());
  return out;
}

RingTopology::RingTopology(int num_gpus, const LinkParams& params)
    : num_gpus_(num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  for (int g = 0; g < num_gpus; ++g) {
    hops_.push_back(std::make_unique<Link>(
        "ring." + std::to_string(g) + "->" +
            std::to_string((g + 1) % num_gpus),
        params));
  }
}

std::vector<Link*> RingTopology::route(int src, int dst) {
  PGASEMB_CHECK(src >= 0 && src < num_gpus_ && dst >= 0 && dst < num_gpus_,
                "bad route endpoints ", src, "->", dst);
  std::vector<Link*> out;
  for (int hop = src; hop != dst; hop = (hop + 1) % num_gpus_) {
    out.push_back(hops_[static_cast<std::size_t>(hop)].get());
  }
  return out;
}

std::vector<Link*> RingTopology::links() {
  std::vector<Link*> out;
  for (auto& l : hops_) out.push_back(l.get());
  return out;
}

MultiNodeTopology::MultiNodeTopology(int num_nodes, int gpus_per_node,
                                     const LinkParams& intra_params,
                                     const LinkParams& inter_params,
                                     bool shared_nic_queue)
    : num_nodes_(num_nodes), gpus_per_node_(gpus_per_node) {
  PGASEMB_CHECK(num_nodes >= 1 && gpus_per_node >= 1,
                "need at least one node and one GPU per node");
  const int n = numGpus();
  intra_links_.resize(static_cast<std::size_t>(n) * n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d || nodeOf(s) != nodeOf(d)) continue;
      intra_links_[static_cast<std::size_t>(s) * n + d] =
          std::make_unique<Link>(
              "nvlink." + std::to_string(s) + "->" + std::to_string(d),
              intra_params);
    }
  }
  for (int node = 0; node < num_nodes; ++node) {
    nic_up_.push_back(std::make_unique<Link>(
        "nic" + std::to_string(node) + ".up", inter_params));
    nic_down_.push_back(std::make_unique<Link>(
        "nic" + std::to_string(node) + ".down", inter_params));
    nic_up_.back()->setLinkClass(LinkClass::kInter);
    nic_down_.back()->setLinkClass(LinkClass::kInter);
    if (shared_nic_queue) {
      nic_down_.back()->setWireQueue(&nic_up_.back()->fifo());
    }
  }
}

Link& MultiNodeTopology::intraLink(int src, int dst) {
  const int n = numGpus();
  return *intra_links_[static_cast<std::size_t>(src) * n + dst];
}

std::vector<Link*> MultiNodeTopology::route(int src, int dst) {
  const int n = numGpus();
  PGASEMB_CHECK(src >= 0 && src < n && dst >= 0 && dst < n,
                "bad route endpoints ", src, "->", dst);
  if (src == dst) return {};
  if (nodeOf(src) == nodeOf(dst)) return {&intraLink(src, dst)};
  return {nic_up_[static_cast<std::size_t>(nodeOf(src))].get(),
          nic_down_[static_cast<std::size_t>(nodeOf(dst))].get()};
}

std::vector<Link*> MultiNodeTopology::nicLinks(int node) {
  PGASEMB_CHECK(node >= 0 && node < num_nodes_, "bad NIC node ", node);
  return {nic_up_[static_cast<std::size_t>(node)].get(),
          nic_down_[static_cast<std::size_t>(node)].get()};
}

std::vector<Link*> MultiNodeTopology::links() {
  std::vector<Link*> out;
  for (auto& l : intra_links_) {
    if (l) out.push_back(l.get());
  }
  for (auto& l : nic_up_) out.push_back(l.get());
  for (auto& l : nic_down_) out.push_back(l.get());
  return out;
}

}  // namespace pgasemb::fabric

// A directed interconnect link with bandwidth, latency, per-message
// header overhead and an optional message-rate ceiling.
//
// NVLink-style links have negligible per-message cost beyond the 32-byte
// flit header (hardware write-combining keeps small stores efficient);
// network (inter-node) links additionally cap the sustainable message
// rate, which is what makes un-aggregated small messages expensive there
// (paper §V future-work discussion, and the aggregator ablation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fifo_resource.hpp"
#include "util/time.hpp"

namespace pgasemb::fabric {

/// Routing class of a link (or a src→dst GPU pair): intra-node NVLink
/// versus inter-node NIC.  Topologies tag their links so traffic can be
/// accounted per class (see Fabric::classTraffic) and so retrievers can
/// route hierarchically.
enum class LinkClass { kIntra, kInter };

struct LinkParams {
  double bandwidth_bytes_per_sec = 48e9;  ///< V100 NVLink pair, per direction
  SimTime latency = SimTime::us(1.9);     ///< one-way propagation + protocol
  std::int64_t header_bytes = 32;         ///< per-message framing overhead
  double max_messages_per_sec = 0.0;      ///< 0 = unlimited (NVLink)
};

/// A fault-injection window on one link: a bandwidth cut and/or latency
/// spike (degradation) or a flap that drops every flow in flight while
/// the window is active.  Installed by fault::FaultInjector; an empty
/// window list keeps every Link code path identical to a fault-free
/// build.
struct LinkFaultWindow {
  SimTime start = SimTime::zero();
  SimTime end = SimTime::zero();
  double bandwidth_factor = 1.0;       ///< achieved-bandwidth multiplier
  SimTime extra_latency = SimTime::zero();  ///< added delivery latency
  bool flap = false;                   ///< drop overlapping flows
};

class Link {
 public:
  Link(std::string name, const LinkParams& params);

  /// Wire time to serialize `payload_bytes` split over `n_messages`
  /// (headers included; message-rate ceiling applied).
  /// `bandwidth_fraction` scales the achieved bandwidth — collectives
  /// pass their protocol efficiency; direct one-sided stores pass 1.0.
  SimTime serializationTime(std::int64_t payload_bytes,
                            std::int64_t n_messages,
                            double bandwidth_fraction = 1.0) const;

  /// Occupy the link for one flow arriving at `at`; returns the grant
  /// from the FIFO queue (start/end of wire occupancy; delivery adds
  /// `params().latency`).
  sim::FifoResource::Grant occupy(SimTime at, std::int64_t payload_bytes,
                                  std::int64_t n_messages,
                                  double bandwidth_fraction = 1.0);

  const LinkParams& params() const { return params_; }
  const std::string& name() const { return name_; }
  sim::FifoResource& fifo() { return fifo_; }

  /// Link class tag (defaults to intra-node); set by the topology.
  LinkClass linkClass() const { return link_class_; }
  void setLinkClass(LinkClass cls) { link_class_ = cls; }

  /// Redirect wire occupancy onto another link's FIFO so both links
  /// serialize through one injection queue (models a node's NIC, whose
  /// DMA engine is shared between the up and down directions).  The
  /// target FIFO must outlive this link; pass nullptr to restore the
  /// private queue.
  void setWireQueue(sim::FifoResource* queue) {
    wire_ = queue != nullptr ? queue : &fifo_;
  }

  std::int64_t totalPayloadBytes() const { return total_payload_bytes_; }
  std::int64_t totalMessages() const { return total_messages_; }

  /// Wire-equivalent bytes: cumulative wire occupancy converted back to
  /// bytes at the nominal link bandwidth.  Unlike totalPayloadBytes this
  /// includes headers, message-rate padding and protocol-efficiency loss,
  /// so it measures what the flows actually cost the wire.
  double wireEquivalentBytes() const { return wire_equivalent_bytes_; }

  // --- Fault injection (see fault::FaultInjector) -------------------------

  /// Install a degradation/flap window. Windows survive reset() (they
  /// describe the scenario, not run state); clearFaultWindows() removes
  /// them.
  void addFaultWindow(const LinkFaultWindow& window);
  void clearFaultWindows() { fault_windows_.clear(); }
  bool hasFaultWindows() const { return !fault_windows_.empty(); }

  /// Achieved-bandwidth multiplier at `at` (min over overlapping
  /// degradation windows; 1.0 outside every window).
  double bandwidthFactorAt(SimTime at) const;

  /// Extra delivery latency at `at` (max over overlapping windows).
  SimTime extraLatencyAt(SimTime at) const;

  /// True when a flap window overlaps [start, end) — the fabric drops
  /// such a flow.
  bool flapOverlaps(SimTime start, SimTime end) const;

  /// Record one dropped flow (called by Fabric on a flap hit).
  void recordDrop(std::int64_t payload_bytes);
  std::int64_t droppedFlows() const { return dropped_flows_; }
  std::int64_t droppedPayloadBytes() const { return dropped_payload_bytes_; }

  void reset();

 private:
  std::string name_;
  LinkParams params_;
  sim::FifoResource fifo_;
  sim::FifoResource* wire_ = &fifo_;
  LinkClass link_class_ = LinkClass::kIntra;
  std::int64_t total_payload_bytes_ = 0;
  std::int64_t total_messages_ = 0;
  double wire_equivalent_bytes_ = 0.0;
  std::vector<LinkFaultWindow> fault_windows_;
  std::int64_t dropped_flows_ = 0;
  std::int64_t dropped_payload_bytes_ = 0;
};

}  // namespace pgasemb::fabric

// Bucketed counter over simulated time.
//
// Reproduces the paper's in-kernel communication counter (§IV-A2b): each
// RDMA write atomically bumps a counter that is sampled on a fixed time
// grid, giving "communication volume over time" traces (Figs 7 and 10).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace pgasemb::fabric {

class TimeSeriesCounter {
 public:
  explicit TimeSeriesCounter(SimTime bucket_width = SimTime::us(5.0));

  /// Add `amount` at simulated time `at`.
  void add(SimTime at, double amount);

  SimTime bucketWidth() const { return bucket_width_; }
  std::size_t numBuckets() const { return buckets_.size(); }

  /// Value accumulated in bucket `i` (time range [i*w, (i+1)*w)).
  double bucket(std::size_t i) const;

  /// Center time of bucket `i`.
  SimTime bucketCenter(std::size_t i) const;

  /// Cumulative totals over time (prefix sums), one entry per bucket.
  std::vector<double> cumulative() const;

  double total() const { return total_; }

  void reset();

 private:
  SimTime bucket_width_;
  std::vector<double> buckets_;
  double total_ = 0.0;
};

}  // namespace pgasemb::fabric

#include "fabric/link.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::fabric {

Link::Link(std::string name, const LinkParams& params)
    : name_(std::move(name)), params_(params), fifo_(name_ + ".wire") {
  PGASEMB_CHECK(params.bandwidth_bytes_per_sec > 0.0,
                "link bandwidth must be positive");
  PGASEMB_CHECK(params.header_bytes >= 0, "negative header size");
}

SimTime Link::serializationTime(std::int64_t payload_bytes,
                                std::int64_t n_messages,
                                double bandwidth_fraction) const {
  PGASEMB_CHECK(payload_bytes >= 0 && n_messages >= 0, "negative flow size");
  PGASEMB_CHECK(bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
                "bandwidth fraction out of (0, 1]: ", bandwidth_fraction);
  const double wire_bytes = static_cast<double>(
      payload_bytes + n_messages * params_.header_bytes);
  double seconds =
      wire_bytes / (params_.bandwidth_bytes_per_sec * bandwidth_fraction);
  if (params_.max_messages_per_sec > 0.0 && n_messages > 0) {
    seconds = std::max(seconds, static_cast<double>(n_messages) /
                                    params_.max_messages_per_sec);
  }
  return SimTime::sec(seconds);
}

sim::FifoResource::Grant Link::occupy(SimTime at, std::int64_t payload_bytes,
                                      std::int64_t n_messages,
                                      double bandwidth_fraction) {
  total_payload_bytes_ += payload_bytes;
  total_messages_ += n_messages;
  double fraction = bandwidth_fraction;
  if (!fault_windows_.empty()) {
    // Sample the degradation at the time the flow actually reaches the
    // wire (deterministic: FIFO order fixes it).
    const double factor = bandwidthFactorAt(wire_->nextFreeTime(at));
    if (factor < 1.0) fraction = bandwidth_fraction * factor;
  }
  const SimTime wire_time =
      serializationTime(payload_bytes, n_messages, fraction);
  wire_equivalent_bytes_ += wire_time.toSec() * params_.bandwidth_bytes_per_sec;
  return wire_->acquire(at, wire_time);
}

void Link::addFaultWindow(const LinkFaultWindow& window) {
  PGASEMB_CHECK(window.end > window.start,
                "link fault window must have start < end");
  PGASEMB_CHECK(window.bandwidth_factor > 0.0 &&
                    window.bandwidth_factor <= 1.0,
                "link fault bandwidth factor out of (0, 1]: ",
                window.bandwidth_factor);
  PGASEMB_CHECK(window.extra_latency >= SimTime::zero(),
                "link fault extra latency must be >= 0");
  fault_windows_.push_back(window);
}

double Link::bandwidthFactorAt(SimTime at) const {
  double factor = 1.0;
  for (const auto& w : fault_windows_) {
    if (!w.flap && at >= w.start && at < w.end) {
      factor = std::min(factor, w.bandwidth_factor);
    }
  }
  return factor;
}

SimTime Link::extraLatencyAt(SimTime at) const {
  SimTime extra = SimTime::zero();
  for (const auto& w : fault_windows_) {
    if (!w.flap && at >= w.start && at < w.end) {
      extra = std::max(extra, w.extra_latency);
    }
  }
  return extra;
}

bool Link::flapOverlaps(SimTime start, SimTime end) const {
  for (const auto& w : fault_windows_) {
    if (w.flap && start < w.end && end > w.start) return true;
  }
  return false;
}

void Link::recordDrop(std::int64_t payload_bytes) {
  ++dropped_flows_;
  dropped_payload_bytes_ += payload_bytes;
}

void Link::reset() {
  // Only the private queue is reset here; a shared wire queue belongs to
  // its owning link, which resets it exactly once.
  fifo_.reset();
  total_payload_bytes_ = 0;
  total_messages_ = 0;
  wire_equivalent_bytes_ = 0.0;
  dropped_flows_ = 0;
  dropped_payload_bytes_ = 0;
}

}  // namespace pgasemb::fabric

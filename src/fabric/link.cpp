#include "fabric/link.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::fabric {

Link::Link(std::string name, const LinkParams& params)
    : name_(std::move(name)), params_(params), fifo_(name_ + ".wire") {
  PGASEMB_CHECK(params.bandwidth_bytes_per_sec > 0.0,
                "link bandwidth must be positive");
  PGASEMB_CHECK(params.header_bytes >= 0, "negative header size");
}

SimTime Link::serializationTime(std::int64_t payload_bytes,
                                std::int64_t n_messages,
                                double bandwidth_fraction) const {
  PGASEMB_CHECK(payload_bytes >= 0 && n_messages >= 0, "negative flow size");
  PGASEMB_CHECK(bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
                "bandwidth fraction out of (0, 1]: ", bandwidth_fraction);
  const double wire_bytes = static_cast<double>(
      payload_bytes + n_messages * params_.header_bytes);
  double seconds =
      wire_bytes / (params_.bandwidth_bytes_per_sec * bandwidth_fraction);
  if (params_.max_messages_per_sec > 0.0 && n_messages > 0) {
    seconds = std::max(seconds, static_cast<double>(n_messages) /
                                    params_.max_messages_per_sec);
  }
  return SimTime::sec(seconds);
}

sim::FifoResource::Grant Link::occupy(SimTime at, std::int64_t payload_bytes,
                                      std::int64_t n_messages,
                                      double bandwidth_fraction) {
  total_payload_bytes_ += payload_bytes;
  total_messages_ += n_messages;
  return fifo_.acquire(
      at, serializationTime(payload_bytes, n_messages, bandwidth_fraction));
}

void Link::reset() {
  fifo_.reset();
  total_payload_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace pgasemb::fabric

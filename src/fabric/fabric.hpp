// Fabric: the transfer facade over a Topology.
//
// A "flow" is a batch of same-destination messages injected at one
// simulated instant — a collective chunk (one big message) or a slice of
// warp-coalesced PGAS stores (many 256-byte messages).  The fabric
// serializes flows hop by hop through the route's FIFO links, records
// byte counters over time, and reports the delivery time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fabric/time_series_counter.hpp"
#include "fabric/topology.hpp"
#include "util/time.hpp"

namespace pgasemb::sim {
class Simulator;
}

namespace pgasemb::fabric {

class Fabric {
 public:
  Fabric(sim::Simulator& simulator, std::unique_ptr<Topology> topology,
         SimTime counter_bucket_width = SimTime::us(5.0));

  int numGpus() const { return topology_->numGpus(); }
  Topology& topology() { return *topology_; }

  struct Delivery {
    SimTime injected;
    SimTime delivered;
    /// True when a link-flap fault window swallowed the flow; then
    /// `delivered` is the time the flow was lost (sender-side wire end
    /// of the dropping hop) and `on_delivered` does NOT fire — the
    /// resilience layer (fault::FaultInjector) is responsible for
    /// retransmission.  Always false without armed link faults.
    bool dropped = false;
  };

  /// Inject a flow of `n_messages` messages totalling `payload_bytes`
  /// from GPU `src` to GPU `dst` at time `at`.  Returns the (eagerly
  /// computable) delivery time; if `on_delivered` is given it fires as a
  /// simulator event at that time (used for functional data landing and
  /// request completion).
  /// `bandwidth_fraction` scales achieved link bandwidth for this flow
  /// (collective protocol efficiency vs. raw one-sided stores).
  Delivery transfer(int src, int dst, std::int64_t payload_bytes,
                    std::int64_t n_messages, SimTime at,
                    std::function<void(SimTime)> on_delivered = nullptr,
                    double bandwidth_fraction = 1.0);

  /// Bytes put on the wire over time (payload only), all flows.
  const TimeSeriesCounter& injectionCounter() const { return injected_; }
  /// Bytes delivered over time (payload only), all flows.
  const TimeSeriesCounter& deliveryCounter() const { return delivered_; }

  std::int64_t totalPayloadBytes() const { return total_payload_bytes_; }
  std::int64_t totalMessages() const { return total_messages_; }

  /// Per-link-class traffic rollup (intra-node NVLink vs inter-node NIC),
  /// summed over the topology's links.  `wire_equivalent_bytes` converts
  /// wire occupancy back to bytes at nominal bandwidth, so it captures
  /// headers, message-rate padding and protocol-efficiency loss — the
  /// honest "what did this traffic cost the wire" number.
  struct ClassTraffic {
    std::int64_t payload_bytes = 0;
    std::int64_t messages = 0;
    double wire_equivalent_bytes = 0.0;
  };
  ClassTraffic classTraffic(LinkClass cls);

  /// Flows (and their payload) swallowed by link-flap fault windows.
  /// Dropped flows still count as injected wire traffic but never reach
  /// the delivery counter. Zero without armed link faults.
  std::int64_t droppedFlows() const { return dropped_flows_; }
  std::int64_t droppedPayloadBytes() const { return dropped_payload_bytes_; }

  /// Observer invoked once per non-local flow with
  /// (src, dst, payload bytes, message count, wire start, delivered).
  using FlowObserver = std::function<void(int src, int dst,
                                          std::int64_t payload_bytes,
                                          std::int64_t n_messages,
                                          SimTime wire_start,
                                          SimTime delivered)>;
  void setFlowObserver(FlowObserver observer) {
    flow_observer_ = std::move(observer);
  }

  /// True when reordering one source's flow injections relative to other
  /// simulator events cannot change any observable result: dedicated
  /// per-pair links (no cross-source contention), no flow observer (who
  /// would see the reordered callback sequence), and no armed link-fault
  /// windows (drop/degrade decisions sample link state per flow). The
  /// PGAS runtime combines this with its own conditions to decide
  /// per-kernel slice coalescing.
  bool coalescingSafe() const;

  /// Clear counters and link occupancy (new experiment, same topology).
  void reset();

 private:
  sim::Simulator& simulator_;
  std::unique_ptr<Topology> topology_;
  TimeSeriesCounter injected_;
  TimeSeriesCounter delivered_;
  std::int64_t total_payload_bytes_ = 0;
  std::int64_t total_messages_ = 0;
  std::int64_t dropped_flows_ = 0;
  std::int64_t dropped_payload_bytes_ = 0;
  FlowObserver flow_observer_;
};

}  // namespace pgasemb::fabric

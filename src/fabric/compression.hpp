// Error-bounded lossy compression for inter-node embedding traffic.
//
// Pooled embedding values are bounded: every weight lies in [-1, 1) and a
// pooled output sums at most `max_pooling` rows, so |v| < pooling for the
// owning table.  A per-table absolute-error-bound codec therefore needs no
// per-message metadata: pick the smallest mantissa width m (2..16 bits)
// whose uniform quantizer over [-range, range] keeps the rounding error
// within the bound, scale, round, and ship sign+mantissa.  Tables whose
// range cannot meet the bound in 16 bits stay uncompressed (32 bits).
//
// The adaptive controller trades accuracy for wire time from *observed*
// NIC pressure: each node's compressed egress feeds a TimeSeriesCounter,
// and a flow is encoded at the table's minimal width only while the
// node's recent egress utilization is above a threshold — otherwise it
// ships light 16-bit mantissas.  Both settings respect the error bound;
// decisions depend only on simulated state, so runs are seed-deterministic.
//
// In Functional mode values are really encoded and decoded (at the
// table's minimal width — the worst case any adaptive decision can pick),
// and the codec accumulates measured per-table max/mean absolute error.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/time_series_counter.hpp"
#include "util/time.hpp"

namespace pgasemb::fabric {

class InterNodeCodec {
 public:
  /// Framing prefix per compressed flow (scale + width descriptor).
  static constexpr std::int64_t kFlowHeaderBytes = 8;
  /// Sentinel width: table cannot meet the bound — ships raw fp32.
  static constexpr int kIncompressibleBits = 32;
  /// Light mantissa width the adaptive controller uses off-peak.
  static constexpr int kLightBits = 16;
  /// Egress utilization above which the adaptive controller compresses
  /// at the minimal width.
  static constexpr double kHotUtilization = 0.5;

  /// `table_ranges[t]` bounds |value| for table t's pooled outputs.
  /// `nic_bandwidth_bytes_per_sec` is the inter-node link bandwidth the
  /// utilization threshold is measured against.
  InterNodeCodec(std::vector<double> table_ranges, double bound,
                 bool adaptive, int num_nodes,
                 double nic_bandwidth_bytes_per_sec,
                 SimTime window = SimTime::us(20.0));

  /// Smallest mantissa width in [2, 16] whose quantization error over
  /// [-range, range] stays within `bound`; kIncompressibleBits if none.
  static int minBitsFor(double range, double bound);

  /// Exact wire size of a compressed flow: one sign+mantissa word of
  /// `bits` per fp32 element, bit-packed, plus the flow header.  Raw
  /// payload passes through unchanged for incompressible tables.
  static std::int64_t compressedBytes(std::int64_t payload_bytes, int bits);

  double bound() const { return bound_; }
  bool adaptive() const { return adaptive_; }
  std::int64_t numTables() const {
    return static_cast<std::int64_t>(tables_.size());
  }
  int tableBits(std::int64_t table) const { return tables_[table].bits; }

  /// Mantissa width for an aggregated (multi-table) flow leaving `node`
  /// at `at`: the widest per-table minimal width (size-conservative), or
  /// the light width while the node's observed egress is below the hot
  /// threshold in adaptive mode.
  int aggregateBits(int node, SimTime at) const;

  /// Quantize-dequantize one value of `table` at the table's minimal
  /// width and record the measured absolute error (Functional mode).
  float transcode(std::int64_t table, float v);

  /// Account one compressed inter-node flow (raw vs on-wire bytes).
  void recordFlow(std::int64_t raw_bytes, std::int64_t wire_bytes);

  /// Feed the adaptive controller's per-node egress observation.
  void recordEgress(int node, SimTime at, std::int64_t wire_bytes);

  struct TableStats {
    double range = 0.0;
    int bits = kIncompressibleBits;
    double scale = 0.0;  ///< quantizer steps per unit; 0 = incompressible
    double max_abs_error = 0.0;
    double sum_abs_error = 0.0;
    std::int64_t samples = 0;
  };
  const std::vector<TableStats>& tableStats() const { return tables_; }

  std::int64_t rawBytes() const { return raw_bytes_; }
  std::int64_t wireBytes() const { return wire_bytes_; }
  std::int64_t hotDecisions() const { return hot_decisions_; }
  std::int64_t coolDecisions() const { return cool_decisions_; }

  /// Clear flow/error/egress state (new run, same table ranges).
  void reset();

 private:
  double bound_;
  bool adaptive_;
  double nic_bandwidth_;
  std::vector<TableStats> tables_;
  int min_bits_all_ = 2;  ///< widest per-table minimal width
  std::vector<TimeSeriesCounter> egress_;  ///< per-node compressed egress
  std::int64_t raw_bytes_ = 0;
  std::int64_t wire_bytes_ = 0;
  mutable std::int64_t hot_decisions_ = 0;
  mutable std::int64_t cool_decisions_ = 0;
};

}  // namespace pgasemb::fabric

#include "fabric/time_series_counter.hpp"

#include "util/expect.hpp"

namespace pgasemb::fabric {

TimeSeriesCounter::TimeSeriesCounter(SimTime bucket_width)
    : bucket_width_(bucket_width) {
  PGASEMB_CHECK(bucket_width.count() > 0, "bucket width must be positive");
}

void TimeSeriesCounter::add(SimTime at, double amount) {
  PGASEMB_CHECK(at >= SimTime::zero(), "negative sample time");
  const std::size_t idx =
      static_cast<std::size_t>(at.count() / bucket_width_.count());
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += amount;
  total_ += amount;
}

double TimeSeriesCounter::bucket(std::size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0.0;
}

SimTime TimeSeriesCounter::bucketCenter(std::size_t i) const {
  return SimTime(bucket_width_.count() * static_cast<std::int64_t>(i) +
                 bucket_width_.count() / 2);
}

std::vector<double> TimeSeriesCounter::cumulative() const {
  std::vector<double> out(buckets_.size());
  double run = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    run += buckets_[i];
    out[i] = run;
  }
  return out;
}

void TimeSeriesCounter::reset() {
  buckets_.clear();
  total_ = 0.0;
}

}  // namespace pgasemb::fabric

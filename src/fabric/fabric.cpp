#include "fabric/fabric.hpp"

#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::fabric {

Fabric::Fabric(sim::Simulator& simulator, std::unique_ptr<Topology> topology,
               SimTime counter_bucket_width)
    : simulator_(simulator),
      topology_(std::move(topology)),
      injected_(counter_bucket_width),
      delivered_(counter_bucket_width) {
  PGASEMB_CHECK(topology_ != nullptr, "fabric needs a topology");
}

Fabric::Delivery Fabric::transfer(int src, int dst,
                                  std::int64_t payload_bytes,
                                  std::int64_t n_messages, SimTime at,
                                  std::function<void(SimTime)> on_delivered,
                                  double bandwidth_fraction) {
  PGASEMB_CHECK(payload_bytes >= 0 && n_messages >= 0, "negative flow");
  Delivery d{at, at};
  if (src != dst && payload_bytes + n_messages > 0) {
    SimTime cursor = at;
    SimTime wire_start = at;
    bool first_hop = true;
    for (Link* link : topology_->route(src, dst)) {
      // Store-and-forward at flow granularity per hop.
      const auto grant =
          link->occupy(cursor, payload_bytes, n_messages,
                       bandwidth_fraction);
      if (first_hop) {
        wire_start = grant.start;
        first_hop = false;
      }
      cursor = grant.end + link->params().latency;
    }
    d.delivered = cursor;
    if (flow_observer_) {
      flow_observer_(src, dst, payload_bytes, n_messages, wire_start,
                     d.delivered);
    }
    injected_.add(at, static_cast<double>(payload_bytes));
    delivered_.add(d.delivered, static_cast<double>(payload_bytes));
    total_payload_bytes_ += payload_bytes;
    total_messages_ += n_messages;
  }
  if (on_delivered) {
    if (d.delivered <= simulator_.now()) {
      on_delivered(d.delivered);
    } else {
      simulator_.scheduleAt(d.delivered,
                            [t = d.delivered, fn = std::move(on_delivered)] {
                              fn(t);
                            });
    }
  }
  return d;
}

void Fabric::reset() {
  injected_.reset();
  delivered_.reset();
  total_payload_bytes_ = 0;
  total_messages_ = 0;
  for (Link* link : topology_->links()) link->reset();
}

}  // namespace pgasemb::fabric

#include "fabric/fabric.hpp"

#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::fabric {

Fabric::Fabric(sim::Simulator& simulator, std::unique_ptr<Topology> topology,
               SimTime counter_bucket_width)
    : simulator_(simulator),
      topology_(std::move(topology)),
      injected_(counter_bucket_width),
      delivered_(counter_bucket_width) {
  PGASEMB_CHECK(topology_ != nullptr, "fabric needs a topology");
}

Fabric::Delivery Fabric::transfer(int src, int dst,
                                  std::int64_t payload_bytes,
                                  std::int64_t n_messages, SimTime at,
                                  std::function<void(SimTime)> on_delivered,
                                  double bandwidth_fraction) {
  PGASEMB_CHECK(payload_bytes >= 0 && n_messages >= 0, "negative flow");
  Delivery d{at, at, false};
  if (src != dst && payload_bytes + n_messages > 0) {
    SimTime cursor = at;
    SimTime wire_start = at;
    bool first_hop = true;
    for (Link* link : topology_->route(src, dst)) {
      // Store-and-forward at flow granularity per hop.
      const auto grant =
          link->occupy(cursor, payload_bytes, n_messages,
                       bandwidth_fraction);
      if (first_hop) {
        wire_start = grant.start;
        first_hop = false;
      }
      SimTime hop_latency = link->params().latency;
      if (link->hasFaultWindows()) {
        hop_latency += link->extraLatencyAt(grant.end);
        if (link->flapOverlaps(grant.start, grant.end + hop_latency)) {
          // The flow is lost on this hop; later hops never see it.
          link->recordDrop(payload_bytes);
          ++dropped_flows_;
          dropped_payload_bytes_ += payload_bytes;
          d.dropped = true;
          d.delivered = grant.end;
          break;
        }
      }
      cursor = grant.end + hop_latency;
    }
    if (!d.dropped) d.delivered = cursor;
    if (flow_observer_) {
      flow_observer_(src, dst, payload_bytes, n_messages, wire_start,
                     d.delivered);
    }
    injected_.add(at, static_cast<double>(payload_bytes));
    if (!d.dropped) {
      delivered_.add(d.delivered, static_cast<double>(payload_bytes));
    }
    total_payload_bytes_ += payload_bytes;
    total_messages_ += n_messages;
  }
  if (d.dropped) return d;
  if (on_delivered) {
    if (d.delivered <= simulator_.now()) {
      on_delivered(d.delivered);
    } else {
      simulator_.scheduleAt(d.delivered,
                            [t = d.delivered, fn = std::move(on_delivered)] {
                              fn(t);
                            });
    }
  }
  return d;
}

Fabric::ClassTraffic Fabric::classTraffic(LinkClass cls) {
  ClassTraffic out;
  for (Link* link : topology_->links()) {
    if (link->linkClass() != cls) continue;
    out.payload_bytes += link->totalPayloadBytes();
    out.messages += link->totalMessages();
    out.wire_equivalent_bytes += link->wireEquivalentBytes();
  }
  return out;
}

bool Fabric::coalescingSafe() const {
  if (!topology_->dedicatedPairLinks() || flow_observer_) return false;
  for (Link* link : topology_->links()) {
    if (link->hasFaultWindows()) return false;
  }
  return true;
}

void Fabric::reset() {
  injected_.reset();
  delivered_.reset();
  total_payload_bytes_ = 0;
  total_messages_ = 0;
  dropped_flows_ = 0;
  dropped_payload_bytes_ = 0;
  for (Link* link : topology_->links()) link->reset();
}

}  // namespace pgasemb::fabric

#include "fabric/compression.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace pgasemb::fabric {

InterNodeCodec::InterNodeCodec(std::vector<double> table_ranges, double bound,
                               bool adaptive, int num_nodes,
                               double nic_bandwidth_bytes_per_sec,
                               SimTime window)
    : bound_(bound), adaptive_(adaptive),
      nic_bandwidth_(nic_bandwidth_bytes_per_sec) {
  PGASEMB_CHECK(bound > 0.0, "compression bound must be positive: ", bound);
  PGASEMB_CHECK(!table_ranges.empty(), "codec needs at least one table");
  PGASEMB_CHECK(num_nodes >= 1, "codec needs at least one node");
  PGASEMB_CHECK(nic_bandwidth_bytes_per_sec > 0.0,
                "codec needs the NIC bandwidth");
  tables_.reserve(table_ranges.size());
  for (const double range : table_ranges) {
    PGASEMB_CHECK(range > 0.0, "table value range must be positive: ", range);
    TableStats t;
    t.range = range;
    t.bits = minBitsFor(range, bound);
    if (t.bits != kIncompressibleBits) {
      t.scale = static_cast<double>((1 << (t.bits - 1)) - 1) / range;
    }
    tables_.push_back(t);
    min_bits_all_ = std::max(min_bits_all_, t.bits);
  }
  egress_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) egress_.emplace_back(window);
}

int InterNodeCodec::minBitsFor(double range, double bound) {
  for (int bits = 2; bits <= kLightBits; ++bits) {
    const double quant_levels = static_cast<double>((1 << (bits - 1)) - 1);
    if (range / (2.0 * quant_levels) <= bound) return bits;
  }
  return kIncompressibleBits;
}

std::int64_t InterNodeCodec::compressedBytes(std::int64_t payload_bytes,
                                             int bits) {
  PGASEMB_CHECK(payload_bytes >= 0, "negative payload");
  PGASEMB_CHECK(payload_bytes % 4 == 0,
                "compressed payloads are fp32 arrays: ", payload_bytes);
  if (bits >= kIncompressibleBits) return payload_bytes;
  if (payload_bytes == 0) return 0;
  const std::int64_t elements = payload_bytes / 4;
  return (elements * bits + 7) / 8 + kFlowHeaderBytes;
}

int InterNodeCodec::aggregateBits(int node, SimTime at) const {
  if (!adaptive_) return min_bits_all_;
  // Look at the last *completed* egress window: the in-progress bucket
  // under-counts by construction and would flap the decision.
  const auto& counter = egress_[static_cast<std::size_t>(node)];
  const std::int64_t bucket =
      at.count() / counter.bucketWidth().count() - 1;
  double observed = 0.0;
  if (bucket >= 0 &&
      bucket < static_cast<std::int64_t>(counter.numBuckets())) {
    observed = counter.bucket(static_cast<std::size_t>(bucket));
  }
  const double capacity = nic_bandwidth_ * counter.bucketWidth().toSec();
  if (observed >= kHotUtilization * capacity) {
    ++hot_decisions_;
    return min_bits_all_;
  }
  ++cool_decisions_;
  return std::max(min_bits_all_, kLightBits);
}

float InterNodeCodec::transcode(std::int64_t table, float v) {
  TableStats& t = tables_[static_cast<std::size_t>(table)];
  float decoded = v;
  if (t.bits != kIncompressibleBits) {
    const std::int64_t quant_max = (1 << (t.bits - 1)) - 1;
    std::int64_t q = std::llround(static_cast<double>(v) * t.scale);
    q = std::clamp(q, -quant_max, quant_max);
    decoded = static_cast<float>(static_cast<double>(q) / t.scale);
  }
  const double err = std::abs(static_cast<double>(decoded) -
                              static_cast<double>(v));
  t.max_abs_error = std::max(t.max_abs_error, err);
  t.sum_abs_error += err;
  ++t.samples;
  return decoded;
}

void InterNodeCodec::recordFlow(std::int64_t raw_bytes,
                                std::int64_t wire_bytes) {
  raw_bytes_ += raw_bytes;
  wire_bytes_ += wire_bytes;
}

void InterNodeCodec::recordEgress(int node, SimTime at,
                                  std::int64_t wire_bytes) {
  egress_[static_cast<std::size_t>(node)].add(at,
                                              static_cast<double>(wire_bytes));
}

void InterNodeCodec::reset() {
  for (TableStats& t : tables_) {
    t.max_abs_error = 0.0;
    t.sum_abs_error = 0.0;
    t.samples = 0;
  }
  for (TimeSeriesCounter& c : egress_) c.reset();
  raw_bytes_ = 0;
  wire_bytes_ = 0;
  hot_decisions_ = 0;
  cool_decisions_ = 0;
}

}  // namespace pgasemb::fabric

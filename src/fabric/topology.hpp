// Interconnect topologies.
//
// A topology owns the directed links of a system and maps (src GPU, dst
// GPU) to the ordered sequence of links a flow traverses.
//
//  - NvlinkAllToAllTopology: the paper's testbed — every GPU pair is
//    directly connected (DGX V100, NVLink), one dedicated directed link
//    per ordered pair, so pairwise flows never contend.
//  - MultiNodeTopology: the future-work target — NVLink inside a node,
//    and one shared NIC up-link/down-link per node for inter-node flows
//    (higher latency, lower bandwidth, message-rate-limited), which is
//    where the async aggregator pays off.
#pragma once

#include <memory>
#include <vector>

#include "fabric/link.hpp"

namespace pgasemb::fabric {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual int numGpus() const = 0;

  /// Ordered links a flow from `src` to `dst` traverses. Empty for local
  /// (src == dst) transfers.
  virtual std::vector<Link*> route(int src, int dst) = 0;

  /// All links (for counters/reset/utilization reports).
  virtual std::vector<Link*> links() = 0;

  // --- Node structure (topology-aware routing) ----------------------------
  // Single-node topologies keep the defaults: one node holding every GPU,
  // so every pair classifies as intra-node.

  /// Routing class of a (src, dst) GPU pair: intra-node NVLink or
  /// inter-node NIC.  Local (src == dst) pairs are intra by convention.
  virtual LinkClass routeClass(int src, int dst) const {
    (void)src;
    (void)dst;
    return LinkClass::kIntra;
  }

  virtual int numNodes() const { return 1; }
  virtual int gpusPerNode() const { return numGpus(); }
  virtual int nodeOf(int gpu) const {
    (void)gpu;
    return 0;
  }

  /// Leader GPU of a node (the rank that stages hierarchical all-to-all
  /// traffic): the node's first GPU.  This is the *default* leadership;
  /// under a leader-fail fault window the injector's fault domains
  /// re-elect the next GPU on the node (see fault::NodeFaultDomains).
  int nodeLeader(int node) const { return node * gpusPerNode(); }

  /// The NIC links (up then down) of a node, for node-scoped fault
  /// arming. Single-node topologies have none.
  virtual std::vector<Link*> nicLinks(int node) {
    (void)node;
    return {};
  }

  /// True when every ordered (src, dst) pair routes over links used by
  /// no other pair, so flows from different sources can never contend.
  /// This is the topological safety condition for the TimingOnly
  /// per-flow coalescing fast path: reordering one source's injections
  /// relative to other sources' events cannot change any link grant.
  /// Shared-resource topologies (NVSwitch ports, ring hops, NICs) must
  /// keep the default `false`.
  virtual bool dedicatedPairLinks() const { return false; }
};

/// Fully connected single-node NVLink system (the paper's DGX).
class NvlinkAllToAllTopology final : public Topology {
 public:
  NvlinkAllToAllTopology(int num_gpus, const LinkParams& params);

  int numGpus() const override { return num_gpus_; }
  std::vector<Link*> route(int src, int dst) override;
  std::vector<Link*> links() override;
  bool dedicatedPairLinks() const override { return true; }

  Link& link(int src, int dst);

 private:
  int num_gpus_;
  // Dense (src, dst) matrix of directed links; diagonal unused.
  std::vector<std::unique_ptr<Link>> links_;
};

/// NVSwitch-style topology: every GPU has one full-bandwidth up link and
/// one down link to a central crossbar (DGX-2 / NVSwitch systems). All
/// of a GPU's egress traffic shares its up port, so fan-out flows
/// contend at the port rather than pairwise (contrast with
/// NvlinkAllToAllTopology's dedicated pair links).
class NvSwitchTopology final : public Topology {
 public:
  NvSwitchTopology(int num_gpus, const LinkParams& port_params);

  int numGpus() const override { return num_gpus_; }
  std::vector<Link*> route(int src, int dst) override;
  std::vector<Link*> links() override;

 private:
  int num_gpus_;
  std::vector<std::unique_ptr<Link>> up_;
  std::vector<std::unique_ptr<Link>> down_;
};

/// Unidirectional ring: GPU i connects to (i+1) % n; a flow to a
/// non-neighbor traverses every intermediate hop (store-and-forward).
/// Models constrained consumer multi-GPU boxes without full NVLink
/// meshes.
class RingTopology final : public Topology {
 public:
  RingTopology(int num_gpus, const LinkParams& params);

  int numGpus() const override { return num_gpus_; }
  std::vector<Link*> route(int src, int dst) override;
  std::vector<Link*> links() override;

 private:
  int num_gpus_;
  std::vector<std::unique_ptr<Link>> hops_;  // hops_[i]: i -> (i+1)%n
};

/// Multiple NVLink nodes joined by per-node NIC links.
///
/// With `shared_nic_queue` set, a node's down link serializes through
/// the up link's FIFO, modeling the NIC's single DMA engine: concurrent
/// flows touching one node's NIC in either direction contend per node
/// instead of per direction.
class MultiNodeTopology final : public Topology {
 public:
  MultiNodeTopology(int num_nodes, int gpus_per_node,
                    const LinkParams& intra_params,
                    const LinkParams& inter_params,
                    bool shared_nic_queue = false);

  int numGpus() const override { return num_nodes_ * gpus_per_node_; }
  std::vector<Link*> route(int src, int dst) override;
  std::vector<Link*> links() override;

  LinkClass routeClass(int src, int dst) const override {
    return nodeOf(src) == nodeOf(dst) ? LinkClass::kIntra : LinkClass::kInter;
  }
  int numNodes() const override { return num_nodes_; }
  int gpusPerNode() const override { return gpus_per_node_; }
  int nodeOf(int gpu) const override { return gpu / gpus_per_node_; }
  std::vector<Link*> nicLinks(int node) override;

 private:
  int num_nodes_;
  int gpus_per_node_;
  std::vector<std::unique_ptr<Link>> intra_links_;  // per (node, src, dst)
  std::vector<std::unique_ptr<Link>> nic_up_;       // per node
  std::vector<std::unique_ptr<Link>> nic_down_;     // per node
  Link& intraLink(int src, int dst);
};

}  // namespace pgasemb::fabric

// Full DLRM training step — the complete realization of the paper's §V
// future work.
//
// Per step: forward pass (either EMB retriever) -> BCE loss against
// synthetic click labels -> analytic backprop through the bottom MLP,
// the dot-product interaction, and the top MLP -> the resulting REAL
// upstream gradients drive the EMB backward pass (collective rounds or
// PGAS remote atomics) -> data-parallel MLP gradients are all-reduced
// and applied.
//
// Functional mode trains for real: the loss decreases and both backward
// schemes produce bit-identical parameters (see dlrm tests).
#pragma once

#include <memory>

#include "collective/communicator.hpp"
#include "core/retriever.hpp"
#include "dlrm/backward.hpp"
#include "dlrm/model.hpp"
#include "dlrm/pipeline.hpp"

namespace pgasemb::dlrm {

struct TrainStepResult {
  double loss = 0.0;  ///< mean BCE over the batch (functional mode only)
  SimTime total = SimTime::zero();
  core::BatchTiming emb_forward;
  BackwardTiming emb_backward;
  SimTime mlp_backward_time = SimTime::zero();  ///< incl. grad all-reduce
};

class DlrmTrainer {
 public:
  DlrmTrainer(DlrmModel& model, core::EmbeddingRetriever& retriever,
              collective::Communicator& comm, pgas::PgasRuntime& runtime,
              float learning_rate, BackwardScheme scheme);

  /// Deterministic synthetic click label for a sample.
  static float label(std::uint64_t seed, std::int64_t sample);

  TrainStepResult step(const DenseBatch& dense,
                       const emb::SparseBatch& sparse);

 private:
  DlrmModel& model_;
  core::EmbeddingRetriever& retriever_;
  collective::Communicator& comm_;
  InferencePipeline pipeline_;
  EmbBackwardEngine emb_backward_;
  float lr_;
  BackwardScheme scheme_;
  // dL/d(EMB output), [sample][table][col], refilled every step.
  std::vector<float> emb_upstream_;
};

}  // namespace pgasemb::dlrm

// Feature-interaction layer (paper Fig 1): fuses the dense-path
// embedding with the EMB-layer embeddings via pairwise dot products
// (facebookresearch/dlrm's default) or concatenation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/kernel.hpp"
#include "gpu/system.hpp"

namespace pgasemb::dlrm {

enum class InteractionKind { kDotProduct, kConcat };

class InteractionLayer {
 public:
  InteractionLayer(InteractionKind kind, int dim, std::int64_t num_sparse);

  InteractionKind kind() const { return kind_; }

  /// Output feature count for one sample.
  int outputDim() const;

  /// Functional fuse of one sample: `dense` is the dense-path embedding
  /// (size dim); `sparse` is the EMB output for this sample laid out
  /// [table][col] (num_sparse x dim).
  std::vector<float> fuse(std::span<const float> dense,
                          std::span<const float> sparse) const;

  /// Backprop of fuse() for one sample: given dL/d(fused output), adds
  /// dL/d(dense embedding) into `grad_dense` (size dim) and
  /// dL/d(sparse embeddings) into `grad_sparse` (num_sparse x dim).
  void fuseBackward(std::span<const float> dense,
                    std::span<const float> sparse,
                    std::span<const float> grad_output,
                    std::span<float> grad_dense,
                    std::span<float> grad_sparse) const;

  /// Kernel descriptor for a batched interaction pass.
  gpu::KernelDesc buildKernel(const gpu::MultiGpuSystem& system,
                              std::int64_t batch,
                              const std::string& name) const;

 private:
  InteractionKind kind_;
  int dim_;
  std::int64_t num_sparse_;
};

}  // namespace pgasemb::dlrm

// Multi-GPU DLRM inference pipeline (paper Fig 4).
//
// Per batch: the host partitions inputs (dense by mini-batch, sparse by
// table location) and copies them to the GPUs; the data-parallel top MLP
// runs on a side stream concurrently with the model-parallel EMB
// retrieval; the retriever converts the layout to data parallelism; the
// interaction layer and bottom MLP finish the prediction.
//
// The EMB-layer timing (what the paper measures: lookup + communication
// + unpack) is reported separately from the end-to-end batch time.
#pragma once

#include <vector>

#include "core/retriever.hpp"
#include "dlrm/model.hpp"

namespace pgasemb::dlrm {

struct PipelineResult {
  core::BatchTiming emb;        ///< the paper's measured quantity
  SimTime batch_total = SimTime::zero();  ///< end-to-end batch time
};

class InferencePipeline {
 public:
  InferencePipeline(DlrmModel& model, core::EmbeddingRetriever& retriever);

  /// Run one inference batch. In functional mode, per-GPU predictions
  /// are computed and kept (see predictions()).
  PipelineResult runBatch(const DenseBatch& dense,
                          const emb::SparseBatch& sparse);

  /// predictions()[gpu][local sample] — functional mode only.
  const std::vector<std::vector<float>>& predictions() const {
    return predictions_;
  }

 private:
  DlrmModel& model_;
  core::EmbeddingRetriever& retriever_;
  std::vector<gpu::Stream*> mlp_streams_;
  std::vector<std::vector<float>> predictions_;
};

}  // namespace pgasemb::dlrm

#include "dlrm/pipeline.hpp"

#include "util/expect.hpp"

namespace pgasemb::dlrm {

InferencePipeline::InferencePipeline(DlrmModel& model,
                                     core::EmbeddingRetriever& retriever)
    : model_(model), retriever_(retriever) {
  auto& system = model.embLayer().system();
  for (int g = 0; g < system.numGpus(); ++g) {
    mlp_streams_.push_back(&system.createStream(g, "mlp"));
  }
}

PipelineResult InferencePipeline::runBatch(const DenseBatch& dense,
                                           const emb::SparseBatch& sparse) {
  auto& layer = model_.embLayer();
  auto& system = layer.system();
  const auto& sharding = layer.sharding();
  PGASEMB_CHECK(dense.batch_size == sparse.batchSize(),
                "dense/sparse batch size mismatch");
  PGASEMB_CHECK(dense.dense_dim == model_.config().dense_dim,
                "dense feature width mismatch");

  PipelineResult result;
  const SimTime t0 = system.hostNow();

  // Host-side input partitioning + H2D copies (small with table-wise
  // sharding; excluded from the paper's EMB measurement).
  system.hostAdvance(SimTime::us(40.0));

  // Data-parallel top MLP on the side streams, concurrent with EMB.
  for (int g = 0; g < system.numGpus(); ++g) {
    auto desc = model_.topMlp().buildForwardKernel(
        system, sharding.miniBatchSize(g),
        "top_mlp.gpu" + std::to_string(g));
    system.launchKernelOn(*mlp_streams_[static_cast<std::size_t>(g)],
                          std::move(desc));
  }

  // Model-parallel EMB retrieval + layout conversion (either scheme).
  result.emb = retriever_.runBatch(sparse);

  // Interaction + bottom MLP (data-parallel), then final sync.
  for (int g = 0; g < system.numGpus(); ++g) {
    const auto mb = sharding.miniBatchSize(g);
    system.launchKernel(g, model_.interaction().buildKernel(
                               system, mb,
                               "interaction.gpu" + std::to_string(g)));
    system.launchKernel(g, model_.bottomMlp().buildForwardKernel(
                               system, mb,
                               "bottom_mlp.gpu" + std::to_string(g)));
  }
  system.syncAll();
  result.batch_total = system.hostNow() - t0;

  // Functional data plane: compute real predictions from the retriever's
  // output tensors.
  predictions_.clear();
  if (system.mode() == gpu::ExecutionMode::kFunctional &&
      sparse.materialized()) {
    const int dim = layer.dim();
    const std::int64_t tables = layer.spec().total_tables;
    predictions_.resize(static_cast<std::size_t>(system.numGpus()));
    for (int g = 0; g < system.numGpus(); ++g) {
      const auto out = retriever_.output(g).span();
      auto& preds = predictions_[static_cast<std::size_t>(g)];
      const std::int64_t mb = sharding.miniBatchSize(g);
      const std::int64_t b0 = sharding.miniBatchBegin(g);
      for (std::int64_t s = 0; s < mb; ++s) {
        const auto sparse_slice = out.subspan(
            static_cast<std::size_t>(s * tables * dim),
            static_cast<std::size_t>(tables * dim));
        preds.push_back(
            model_.predict(dense.sample(b0 + s), sparse_slice));
      }
    }
  }
  return result;
}

}  // namespace pgasemb::dlrm

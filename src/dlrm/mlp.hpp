// Dense multilayer perceptron for the DLRM's dense-feature path
// (paper Fig 1: "top MLP" feeds on dense inputs, "bottom MLP" consumes
// the interaction output — the paper's naming, which we follow).
//
// Weights are procedural (hash of (layer, i, j)) so the functional path
// is deterministic without storing large dense matrices; the timing path
// uses a GEMM roofline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/kernel.hpp"
#include "gpu/system.hpp"

namespace pgasemb::dlrm {

struct MlpConfig {
  int input_dim = 16;
  std::vector<int> layer_dims = {64, 32};  ///< hidden + output sizes
  std::uint64_t seed = 0x111;
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config);

  const MlpConfig& config() const { return config_; }
  int outputDim() const { return config_.layer_dims.back(); }

  /// Weight of (layer, out unit i, in unit j) in [-0.5, 0.5).
  float weight(int layer, int i, int j) const;
  /// Bias of (layer, out unit i).
  float bias(int layer, int i) const;

  /// Functional forward for one input vector (ReLU between layers,
  /// linear final layer).
  std::vector<float> forward(std::span<const float> input) const;

  // --- Training support -----------------------------------------------------

  /// Copy the procedural weights into mutable dense storage so SGD can
  /// update them. Idempotent.
  void materialize();
  bool materialized() const { return materialized_; }

  /// Per-layer activations of one forward pass: activations[0] is the
  /// input, activations[l + 1] is layer l's (post-ReLU) output.
  std::vector<std::vector<float>> forwardActivations(
      std::span<const float> input) const;

  /// Weight/bias gradients of one MLP, layer-major.
  struct Gradients {
    /// w[l][i * in_dim(l) + j] — same indexing as weight(l, i, j).
    std::vector<std::vector<float>> w;
    /// b[l][i].
    std::vector<std::vector<float>> b;

    void accumulate(const Gradients& other);
  };
  Gradients zeroGradients() const;

  /// Backprop one sample: given the activations from forwardActivations
  /// and dL/d(output), accumulates weight/bias grads into `grads` and
  /// returns dL/d(input).
  std::vector<float> backward(
      const std::vector<std::vector<float>>& activations,
      std::span<const float> grad_output, Gradients& grads) const;

  /// SGD step over the materialized weights.
  void applySgd(const Gradients& grads, float lr);

  int inputDim(int layer) const;

  /// fp32 FLOPs for a forward pass over `batch` samples.
  double forwardFlops(std::int64_t batch) const;
  /// Bytes touched (weights once + activations per sample).
  double forwardBytes(std::int64_t batch) const;

  /// Kernel descriptor for a batched forward on `system`'s cost model.
  gpu::KernelDesc buildForwardKernel(const gpu::MultiGpuSystem& system,
                                     std::int64_t batch,
                                     const std::string& name) const;

 private:
  MlpConfig config_;
  bool materialized_ = false;
  std::vector<std::vector<float>> dense_w_;  // per layer, [i * in + j]
  std::vector<std::vector<float>> dense_b_;  // per layer, [i]
};

}  // namespace pgasemb::dlrm

// EMB-layer backward pass — the paper's future-work extension (§V).
//
// In backprop the flow reverses: each GPU holds the upstream gradients
// for ITS mini-batch (data-parallel), and every bag entry's gradient must
// reach the GPU that owns that embedding row (model-parallel) and be
// summed with contributions from every other GPU that used the same row.
// The communicated volume is proportional to the bag entries touched by
// the batch — up to a pooling-factor larger than the forward pass.
//
//  - kCollective: grad kernel -> sync -> all-to-all of per-(table,
//    sample) gradients -> scatter-add kernel -> (P-1) rounds of ring
//    shifts with per-round synchronization (the paper's "multiple rounds
//    of collective calls, where embeddings are shifted to the next GPU")
//    -> apply.
//  - kPgasAtomics: one fused kernel per GPU that pushes each row
//    gradient as a remote ATOMIC ADD the moment it is computed, quiet,
//    then apply — no rounds, no extra synchronization.
#pragma once

#include <cstdint>
#include <functional>

#include "collective/communicator.hpp"
#include "emb/layer.hpp"
#include "pgas/runtime.hpp"

namespace pgasemb::dlrm {

enum class BackwardScheme { kCollective, kPgasAtomics };

struct BackwardTiming {
  SimTime total = SimTime::zero();
  SimTime grad_phase = SimTime::zero();       ///< local gradient kernels
  SimTime comm_phase = SimTime::zero();       ///< collective exchange
  SimTime aggregate_phase = SimTime::zero();  ///< multi-round shifts
  SimTime apply_phase = SimTime::zero();      ///< SGD update kernels
};

class EmbBackwardEngine {
 public:
  EmbBackwardEngine(emb::ShardedEmbeddingLayer& layer,
                    collective::Communicator& comm,
                    pgas::PgasRuntime& runtime, float learning_rate);

  /// Deterministic synthetic upstream gradient for output (table,
  /// sample, col) — stands in for the interaction layer's backprop.
  static float upstreamGrad(std::uint64_t seed, std::int64_t table,
                            std::int64_t sample, int col);

  /// Upstream gradient provider: dL/d(output of table t, sample b,
  /// col c). Defaults to the synthetic upstreamGrad() when null.
  using UpstreamGradFn =
      std::function<float(std::int64_t table, std::int64_t sample, int col)>;

  /// Run one backward pass over `batch`. In functional mode the dense
  /// embedding tables are updated in place (identically for both
  /// schemes).
  BackwardTiming runBatch(const emb::SparseBatch& batch,
                          BackwardScheme scheme,
                          const UpstreamGradFn& upstream = nullptr);

 private:
  void applyGradientsFunctional(const emb::SparseBatch& batch,
                                const UpstreamGradFn& upstream);

  emb::ShardedEmbeddingLayer& layer_;
  collective::Communicator& comm_;
  pgas::PgasRuntime& runtime_;
  float lr_;
};

}  // namespace pgasemb::dlrm

#include "dlrm/backward.hpp"

#include <map>

#include "emb/lookup_kernel.hpp"
#include "util/expect.hpp"

namespace pgasemb::dlrm {
EmbBackwardEngine::EmbBackwardEngine(emb::ShardedEmbeddingLayer& layer,
                                     collective::Communicator& comm,
                                     pgas::PgasRuntime& runtime,
                                     float learning_rate)
    : layer_(layer), comm_(comm), runtime_(runtime), lr_(learning_rate) {
  PGASEMB_CHECK(learning_rate > 0.0f, "learning rate must be positive");
}

float EmbBackwardEngine::upstreamGrad(std::uint64_t seed,
                                      std::int64_t table,
                                      std::int64_t sample, int col) {
  const std::uint64_t h = splitmix64(
      seed ^ (static_cast<std::uint64_t>(table) * 0x9e3779b9ULL +
              static_cast<std::uint64_t>(sample) * 0x85ebca6bULL +
              static_cast<std::uint64_t>(col)));
  // Small gradients in [-0.01, 0.01).
  return static_cast<float>(
      (static_cast<double>(h >> 40) * 0x1.0p-24 - 0.5) * 0.02);
}

void EmbBackwardEngine::applyGradientsFunctional(
    const emb::SparseBatch& batch, const UpstreamGradFn& upstream) {
  // Row gradients accumulated in a fixed (table, src GPU, sample, bag)
  // order so both schemes update the tables bit-identically.
  const auto& sh = layer_.sharding();
  const int dim = layer_.dim();
  const std::uint64_t seed = layer_.spec().seed ^ 0xbacca;
  for (std::int64_t t = 0; t < layer_.spec().total_tables; ++t) {
    std::map<std::int64_t, std::vector<float>> row_grads;
    const auto offs = batch.offsets(t);
    const auto idxs = batch.indices(t);
    for (std::int64_t b = 0; b < sh.batchSize(); ++b) {
      for (std::int64_t i = offs[static_cast<std::size_t>(b)];
           i < offs[static_cast<std::size_t>(b) + 1]; ++i) {
        const std::int64_t row =
            layer_.hashedRow(t, idxs[static_cast<std::size_t>(i)]);
        auto& acc = row_grads.try_emplace(
            row, std::vector<float>(static_cast<std::size_t>(dim), 0.0f))
            .first->second;
        for (int c = 0; c < dim; ++c) {
          // Sum pooling: the output gradient flows to every bag entry.
          acc[static_cast<std::size_t>(c)] +=
              upstream ? upstream(t, b, c) : upstreamGrad(seed, t, b, c);
        }
      }
    }
    for (const auto& [row, grad] : row_grads) {
      layer_.table(t).applyGradient(row, grad, lr_);
    }
  }
}

BackwardTiming EmbBackwardEngine::runBatch(const emb::SparseBatch& batch,
                                           BackwardScheme scheme,
                                           const UpstreamGradFn& upstream) {
  auto& system = layer_.system();
  const auto& sh = layer_.sharding();
  const auto& cm = system.costModel();
  const int p = system.numGpus();
  const int dim = layer_.dim();
  PGASEMB_CHECK(sh.scheme() == emb::ShardingScheme::kTableWise,
                "backward engine implements table-wise sharding");

  BackwardTiming timing;
  const SimTime t0 = system.hostNow();

  if (scheme == BackwardScheme::kCollective) {
    // Phase 1: local gradient kernels (upstream grads -> send buffers).
    for (int g = 0; g < p; ++g) {
      gpu::KernelDesc k;
      k.name = "emb_backward_grad.gpu" + std::to_string(g);
      const double bytes = 2.0 * static_cast<double>(sh.totalTables()) *
                           sh.miniBatchSize(g) * dim * 4.0;
      k.duration = cm.streamKernelTime(bytes);
      system.launchKernel(g, std::move(k));
    }
    const SimTime t1 = system.syncAll();
    timing.grad_phase = t1 - t0;

    // Phase 2: all-to-all of per-(table, sample) gradients to owners.
    std::vector<std::vector<std::int64_t>> matrix(
        static_cast<std::size_t>(p),
        std::vector<std::int64_t>(static_cast<std::size_t>(p), 0));
    for (int src = 0; src < p; ++src) {
      for (int dst = 0; dst < p; ++dst) {
        if (src == dst) continue;
        matrix[static_cast<std::size_t>(src)][static_cast<std::size_t>(
            dst)] = sh.tablesOn(dst) * sh.miniBatchSize(src) * dim * 4;
      }
    }
    auto req = comm_.allToAllSingle(matrix);
    const SimTime t2 = req.wait(system);
    timing.comm_phase = t2 - t1;

    // Phase 3: scatter-add into row-gradient buffers (gather-shaped).
    for (int g = 0; g < p; ++g) {
      const double rows =
          batch.totalIndices(sh.firstTableOn(g), sh.tablesOn(g));
      gpu::KernelDesc k;
      k.name = "emb_backward_scatter.gpu" + std::to_string(g);
      const double bytes =
          static_cast<double>(sh.tablesOn(g)) * sh.batchSize() * dim * 4.0 +
          rows * dim * 4.0 * 2.0;
      k.duration = cm.gatherKernelTime(rows * dim, bytes, rows);
      system.launchKernel(g, std::move(k));
    }
    const SimTime t3 = system.syncAll();

    // Phase 4: the paper's multi-round gradient consistency exchange —
    // embeddings shifted to the next GPU, synchronized every round.
    auto shift = comm_.ringShiftRounds(
        sh.tablesOn(0) * sh.miniBatchSize(0) * dim * 4, p - 1);
    const SimTime t4 = shift.wait(system);
    timing.aggregate_phase = (t4 - t3) + (t3 - t2);  // scatter + rounds

    // Phase 5: apply SGD updates.
    for (int g = 0; g < p; ++g) {
      const double rows =
          batch.totalIndices(sh.firstTableOn(g), sh.tablesOn(g));
      gpu::KernelDesc k;
      k.name = "emb_backward_apply.gpu" + std::to_string(g);
      k.duration = cm.streamKernelTime(rows * dim * 4.0 * 3.0);
      system.launchKernel(g, std::move(k));
    }
    const SimTime t5 = system.syncAll();
    timing.apply_phase = t5 - t4;
    timing.total = t5 - t0;
  } else {
    // PGAS: one fused kernel per GPU.  It (a) computes the upstream
    // gradient of every (table, sample) output in its mini-batch and
    // pushes each one to the table owner as remote atomic adds the
    // moment it is ready (same wire volume as the baseline's all-to-all,
    // but overlapped with compute), and (b) scatters the arriving
    // contributions into its own tables' row-gradient buffers — the
    // atomics subsume the baseline's multi-round aggregation entirely.
    for (int g = 0; g < p; ++g) {
      std::vector<std::int64_t> payload(static_cast<std::size_t>(p), 0);
      for (int dst = 0; dst < p; ++dst) {
        if (dst == g) continue;
        payload[static_cast<std::size_t>(dst)] =
            sh.tablesOn(dst) * sh.miniBatchSize(g) * dim * 4;
      }
      // Scatter workload for the tables this GPU owns (full batch).
      const double owned_rows =
          batch.totalIndices(sh.firstTableOn(g), sh.tablesOn(g));
      gpu::KernelDesc k;
      k.name = "emb_backward_pgas.gpu" + std::to_string(g);
      const double bytes =
          static_cast<double>(sh.totalTables()) * sh.miniBatchSize(g) *
              dim * 4.0 +
          owned_rows * dim * 4.0 * 2.0;
      k.duration =
          cm.gatherKernelTime(owned_rows * dim, bytes, owned_rows);
      auto plan = pgas::makeUniformPlan(payload, g, /*slices=*/128,
                                        emb::kCoalescedMessageBytes);
      runtime_.attachMessagePlan(k, g, std::move(plan));
      system.launchKernel(g, std::move(k));
    }
    const SimTime t1 = system.syncAll();
    timing.grad_phase = t1 - t0;

    // Apply SGD updates from the atomically accumulated buffers.
    for (int g = 0; g < p; ++g) {
      const double rows =
          batch.totalIndices(sh.firstTableOn(g), sh.tablesOn(g));
      gpu::KernelDesc k;
      k.name = "emb_backward_apply.gpu" + std::to_string(g);
      k.duration = cm.streamKernelTime(rows * dim * 4.0 * 3.0);
      system.launchKernel(g, std::move(k));
    }
    const SimTime t2 = system.syncAll();
    timing.apply_phase = t2 - t1;
    timing.total = t2 - t0;
  }

  if (system.mode() == gpu::ExecutionMode::kFunctional &&
      batch.materialized()) {
    applyGradientsFunctional(batch, upstream);
  }
  return timing;
}

}  // namespace pgasemb::dlrm

#include "dlrm/mlp.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace pgasemb::dlrm {

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  PGASEMB_CHECK(config.input_dim >= 1, "MLP needs positive input dim");
  PGASEMB_CHECK(!config.layer_dims.empty(), "MLP needs at least one layer");
  for (int d : config.layer_dims) {
    PGASEMB_CHECK(d >= 1, "MLP layer dims must be positive");
  }
}

namespace {

float proceduralMlpWeight(std::uint64_t seed, int layer, int i, int j) {
  const std::uint64_t h = splitmix64(
      seed ^ (static_cast<std::uint64_t>(layer) * 0x9e3779b9ULL +
              static_cast<std::uint64_t>(i) * 0x85ebca6bULL +
              static_cast<std::uint64_t>(j)));
  return static_cast<float>(static_cast<double>(h >> 40) * 0x1.0p-24 - 0.5);
}

}  // namespace

int Mlp::inputDim(int layer) const {
  PGASEMB_CHECK(layer >= 0 &&
                    layer < static_cast<int>(config_.layer_dims.size()),
                "bad layer ", layer);
  return layer == 0 ? config_.input_dim
                    : config_.layer_dims[static_cast<std::size_t>(layer - 1)];
}

float Mlp::weight(int layer, int i, int j) const {
  if (materialized_) {
    return dense_w_[static_cast<std::size_t>(layer)]
                   [static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(inputDim(layer)) +
                    static_cast<std::size_t>(j)];
  }
  return proceduralMlpWeight(config_.seed, layer, i, j);
}

float Mlp::bias(int layer, int i) const {
  if (materialized_) {
    return dense_b_[static_cast<std::size_t>(layer)]
                   [static_cast<std::size_t>(i)];
  }
  return proceduralMlpWeight(config_.seed, layer, i, 1 << 20);
}

void Mlp::materialize() {
  if (materialized_) return;
  const int layers = static_cast<int>(config_.layer_dims.size());
  dense_w_.resize(static_cast<std::size_t>(layers));
  dense_b_.resize(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    const int in = inputDim(l);
    const int out = config_.layer_dims[static_cast<std::size_t>(l)];
    auto& w = dense_w_[static_cast<std::size_t>(l)];
    auto& b = dense_b_[static_cast<std::size_t>(l)];
    w.resize(static_cast<std::size_t>(in) * out);
    b.resize(static_cast<std::size_t>(out));
    for (int i = 0; i < out; ++i) {
      b[static_cast<std::size_t>(i)] =
          proceduralMlpWeight(config_.seed, l, i, 1 << 20);
      for (int j = 0; j < in; ++j) {
        w[static_cast<std::size_t>(i) * in + j] =
            proceduralMlpWeight(config_.seed, l, i, j);
      }
    }
  }
  materialized_ = true;
}

std::vector<std::vector<float>> Mlp::forwardActivations(
    std::span<const float> input) const {
  PGASEMB_CHECK(static_cast<int>(input.size()) == config_.input_dim,
                "MLP input dim mismatch");
  std::vector<std::vector<float>> acts;
  acts.emplace_back(input.begin(), input.end());
  for (std::size_t layer = 0; layer < config_.layer_dims.size(); ++layer) {
    const int out_dim = config_.layer_dims[layer];
    const auto& cur = acts.back();
    std::vector<float> next(static_cast<std::size_t>(out_dim));
    const bool last = (layer + 1 == config_.layer_dims.size());
    for (int i = 0; i < out_dim; ++i) {
      float acc = bias(static_cast<int>(layer), i);
      for (std::size_t j = 0; j < cur.size(); ++j) {
        acc += weight(static_cast<int>(layer), i, static_cast<int>(j)) *
               cur[j];
      }
      next[static_cast<std::size_t>(i)] = last ? acc : std::max(0.0f, acc);
    }
    acts.push_back(std::move(next));
  }
  return acts;
}

void Mlp::Gradients::accumulate(const Gradients& other) {
  for (std::size_t l = 0; l < w.size(); ++l) {
    for (std::size_t k = 0; k < w[l].size(); ++k) w[l][k] += other.w[l][k];
    for (std::size_t k = 0; k < b[l].size(); ++k) b[l][k] += other.b[l][k];
  }
}

Mlp::Gradients Mlp::zeroGradients() const {
  Gradients g;
  const int layers = static_cast<int>(config_.layer_dims.size());
  g.w.resize(static_cast<std::size_t>(layers));
  g.b.resize(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    g.w[static_cast<std::size_t>(l)].assign(
        static_cast<std::size_t>(inputDim(l)) *
            config_.layer_dims[static_cast<std::size_t>(l)],
        0.0f);
    g.b[static_cast<std::size_t>(l)].assign(
        static_cast<std::size_t>(
            config_.layer_dims[static_cast<std::size_t>(l)]),
        0.0f);
  }
  return g;
}

std::vector<float> Mlp::backward(
    const std::vector<std::vector<float>>& activations,
    std::span<const float> grad_output, Gradients& grads) const {
  const int layers = static_cast<int>(config_.layer_dims.size());
  PGASEMB_CHECK(static_cast<int>(activations.size()) == layers + 1,
                "activation count mismatch");
  std::vector<float> grad(grad_output.begin(), grad_output.end());
  for (int l = layers - 1; l >= 0; --l) {
    const auto& in_act = activations[static_cast<std::size_t>(l)];
    const auto& out_act = activations[static_cast<std::size_t>(l) + 1];
    const int out_dim = config_.layer_dims[static_cast<std::size_t>(l)];
    const int in_dim = inputDim(l);
    const bool last = (l == layers - 1);
    PGASEMB_CHECK(static_cast<int>(grad.size()) == out_dim,
                  "gradient dim mismatch at layer ", l);
    // ReLU mask on hidden layers: grad flows only where output > 0.
    std::vector<float> dz(static_cast<std::size_t>(out_dim));
    for (int i = 0; i < out_dim; ++i) {
      const float g = grad[static_cast<std::size_t>(i)];
      dz[static_cast<std::size_t>(i)] =
          (last || out_act[static_cast<std::size_t>(i)] > 0.0f) ? g : 0.0f;
    }
    auto& wg = grads.w[static_cast<std::size_t>(l)];
    auto& bg = grads.b[static_cast<std::size_t>(l)];
    std::vector<float> grad_in(static_cast<std::size_t>(in_dim), 0.0f);
    for (int i = 0; i < out_dim; ++i) {
      const float d = dz[static_cast<std::size_t>(i)];
      bg[static_cast<std::size_t>(i)] += d;
      for (int j = 0; j < in_dim; ++j) {
        wg[static_cast<std::size_t>(i) * in_dim + j] +=
            d * in_act[static_cast<std::size_t>(j)];
        grad_in[static_cast<std::size_t>(j)] += d * weight(l, i, j);
      }
    }
    grad = std::move(grad_in);
  }
  return grad;
}

void Mlp::applySgd(const Gradients& grads, float lr) {
  PGASEMB_CHECK(materialized_, "applySgd requires materialize()");
  for (std::size_t l = 0; l < dense_w_.size(); ++l) {
    for (std::size_t k = 0; k < dense_w_[l].size(); ++k) {
      dense_w_[l][k] -= lr * grads.w[l][k];
    }
    for (std::size_t k = 0; k < dense_b_[l].size(); ++k) {
      dense_b_[l][k] -= lr * grads.b[l][k];
    }
  }
}

std::vector<float> Mlp::forward(std::span<const float> input) const {
  PGASEMB_CHECK(static_cast<int>(input.size()) == config_.input_dim,
                "MLP input dim mismatch: got ", input.size(), " expected ",
                config_.input_dim);
  std::vector<float> cur(input.begin(), input.end());
  for (std::size_t layer = 0; layer < config_.layer_dims.size(); ++layer) {
    const int out_dim = config_.layer_dims[layer];
    std::vector<float> next(static_cast<std::size_t>(out_dim));
    const bool last = (layer + 1 == config_.layer_dims.size());
    for (int i = 0; i < out_dim; ++i) {
      float acc = bias(static_cast<int>(layer), i);
      for (std::size_t j = 0; j < cur.size(); ++j) {
        acc += weight(static_cast<int>(layer), i, static_cast<int>(j)) *
               cur[j];
      }
      next[static_cast<std::size_t>(i)] =
          last ? acc : std::max(0.0f, acc);  // ReLU on hidden layers
    }
    cur = std::move(next);
  }
  return cur;
}

double Mlp::forwardFlops(std::int64_t batch) const {
  double flops = 0.0;
  int in = config_.input_dim;
  for (int out : config_.layer_dims) {
    flops += 2.0 * static_cast<double>(batch) * in * out;
    in = out;
  }
  return flops;
}

double Mlp::forwardBytes(std::int64_t batch) const {
  double bytes = 0.0;
  int in = config_.input_dim;
  for (int out : config_.layer_dims) {
    bytes += 4.0 * (static_cast<double>(in) * out +        // weights
                    static_cast<double>(batch) * (in + out));  // activations
    in = out;
  }
  return bytes;
}

gpu::KernelDesc Mlp::buildForwardKernel(const gpu::MultiGpuSystem& system,
                                        std::int64_t batch,
                                        const std::string& name) const {
  const auto& cm = system.costModel();
  gpu::KernelDesc desc;
  // Pure-compute GEMM cost model; callers pass "mlp_*" names from the
  // pure allowlist. pgaslint:allow(kernel-mem-effects)
  desc.name = name;
  const double flops = forwardFlops(batch);
  const double bytes = forwardBytes(batch);
  // GEMMs stream their operands; no gather degradation.
  const double compute_s = flops / (cm.peak_flops * 0.75);  // GEMM eff.
  const double memory_s = bytes / (cm.hbm_bandwidth * cm.stream_efficiency);
  desc.duration = std::max(SimTime::sec(std::max(compute_s, memory_s)),
                           cm.kernel_latency_floor);
  return desc;
}

}  // namespace pgasemb::dlrm

#include "dlrm/model.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace pgasemb::dlrm {

DlrmModel::DlrmModel(const DlrmConfig& config,
                     emb::ShardedEmbeddingLayer& layer)
    : config_(config),
      layer_(layer),
      top_(MlpConfig{config.dense_dim, config.top_mlp, config.seed ^ 0x1}),
      bottom_(MlpConfig{
          InteractionLayer(config.interaction, layer.dim(),
                           layer.spec().total_tables)
              .outputDim(),
          config.bottom_mlp, config.seed ^ 0x2}),
      interaction_(config.interaction, layer.dim(),
                   layer.spec().total_tables) {
  PGASEMB_CHECK(!config.top_mlp.empty() && !config.bottom_mlp.empty(),
                "DLRM needs non-empty MLP stacks");
  PGASEMB_CHECK(config.top_mlp.back() == layer.dim(),
                "top MLP output (", config.top_mlp.back(),
                ") must equal the embedding dim (", layer.dim(),
                ") for the interaction layer");
  PGASEMB_CHECK(config.bottom_mlp.back() == 1,
                "bottom MLP must end in a single logit");
}

float DlrmModel::predict(std::span<const float> dense_input,
                         std::span<const float> sparse_embeddings) const {
  const auto dense_emb = top_.forward(dense_input);
  const auto fused = interaction_.fuse(dense_emb, sparse_embeddings);
  const auto logit = bottom_.forward(fused);
  return 1.0f / (1.0f + std::exp(-logit[0]));
}

DenseBatch DenseBatch::generateUniform(std::int64_t batch_size,
                                       int dense_dim, Rng& rng) {
  PGASEMB_CHECK(batch_size >= 1 && dense_dim >= 1, "bad dense batch shape");
  DenseBatch b;
  b.batch_size = batch_size;
  b.dense_dim = dense_dim;
  b.values.resize(static_cast<std::size_t>(batch_size * dense_dim));
  for (auto& v : b.values) {
    v = static_cast<float>(rng.uniformDouble());
  }
  return b;
}

std::span<const float> DenseBatch::sample(std::int64_t b) const {
  PGASEMB_CHECK(b >= 0 && b < batch_size, "sample out of range: ", b);
  return std::span<const float>(
      values.data() + b * dense_dim, static_cast<std::size_t>(dense_dim));
}

}  // namespace pgasemb::dlrm

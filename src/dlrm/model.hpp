// Full DLRM model (paper Fig 1): dense features -> top MLP; sparse
// features -> EMB layer (via an EmbeddingRetriever); both fused by the
// interaction layer; bottom MLP + sigmoid produce the click probability.
//
// (The paper names the dense-side MLP "top" and the post-interaction MLP
// "bottom"; we keep that naming.)
#pragma once

#include <memory>

#include "dlrm/interaction.hpp"
#include "dlrm/mlp.hpp"
#include "emb/layer.hpp"

namespace pgasemb::dlrm {

struct DlrmConfig {
  int dense_dim = 13;  ///< facebookresearch/dlrm Criteo default
  /// Dense-path MLP; its last layer must equal the embedding dim so the
  /// dot-product interaction is well-formed.
  std::vector<int> top_mlp = {64, 32};
  /// Post-interaction MLP; last layer is the single logit.
  std::vector<int> bottom_mlp = {64, 16, 1};
  InteractionKind interaction = InteractionKind::kDotProduct;
  std::uint64_t seed = 0xd1;
};

class DlrmModel {
 public:
  DlrmModel(const DlrmConfig& config, emb::ShardedEmbeddingLayer& layer);

  const DlrmConfig& config() const { return config_; }
  emb::ShardedEmbeddingLayer& embLayer() { return layer_; }
  const Mlp& topMlp() const { return top_; }
  const Mlp& bottomMlp() const { return bottom_; }
  const InteractionLayer& interaction() const { return interaction_; }

  /// Functional prediction for one sample given its dense input and its
  /// EMB-layer output slice ([table][col]).
  float predict(std::span<const float> dense_input,
                std::span<const float> sparse_embeddings) const;

 private:
  DlrmConfig config_;
  emb::ShardedEmbeddingLayer& layer_;
  Mlp top_;
  Mlp bottom_;
  InteractionLayer interaction_;
};

/// Dense-feature batch (full batch on the host, mini-batched per GPU).
struct DenseBatch {
  std::int64_t batch_size = 0;
  int dense_dim = 0;
  std::vector<float> values;  ///< [sample][feature]

  static DenseBatch generateUniform(std::int64_t batch_size, int dense_dim,
                                    Rng& rng);
  std::span<const float> sample(std::int64_t b) const;
};

}  // namespace pgasemb::dlrm

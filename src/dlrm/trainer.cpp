#include "dlrm/trainer.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace pgasemb::dlrm {

DlrmTrainer::DlrmTrainer(DlrmModel& model,
                         core::EmbeddingRetriever& retriever,
                         collective::Communicator& comm,
                         pgas::PgasRuntime& runtime, float learning_rate,
                         BackwardScheme scheme)
    : model_(model),
      retriever_(retriever),
      comm_(comm),
      pipeline_(model, retriever),
      emb_backward_(model.embLayer(), comm, runtime, learning_rate),
      lr_(learning_rate),
      scheme_(scheme) {
  // Training mutates the MLPs; move them off the procedural weights.
  const_cast<Mlp&>(model.topMlp()).materialize();
  const_cast<Mlp&>(model.bottomMlp()).materialize();
}

float DlrmTrainer::label(std::uint64_t seed, std::int64_t sample) {
  return static_cast<float>(
      splitmix64(seed ^ static_cast<std::uint64_t>(sample)) & 1u);
}

TrainStepResult DlrmTrainer::step(const DenseBatch& dense,
                                  const emb::SparseBatch& sparse) {
  auto& layer = model_.embLayer();
  auto& system = layer.system();
  const auto& sharding = layer.sharding();
  const auto& cm = system.costModel();
  const int p = system.numGpus();
  const int dim = layer.dim();
  const std::int64_t tables = layer.spec().total_tables;
  const bool functional =
      system.mode() == gpu::ExecutionMode::kFunctional &&
      sparse.materialized();

  TrainStepResult result;
  const SimTime t0 = system.hostNow();

  // ---- Forward ------------------------------------------------------------
  const auto fwd = pipeline_.runBatch(dense, sparse);
  result.emb_forward = fwd.emb;

  // ---- Functional backprop through bottom MLP / interaction / top MLP ----
  auto& top = const_cast<Mlp&>(model_.topMlp());
  auto& bottom = const_cast<Mlp&>(model_.bottomMlp());
  auto top_grads = top.zeroGradients();
  auto bottom_grads = bottom.zeroGradients();
  if (functional) {
    emb_upstream_.assign(
        static_cast<std::size_t>(sparse.batchSize() * tables * dim), 0.0f);
    double loss_sum = 0.0;
    const std::uint64_t label_seed = layer.spec().seed ^ 0x1abe1;
    const float inv_batch = 1.0f / static_cast<float>(sparse.batchSize());
    for (int g = 0; g < p; ++g) {
      const auto emb_out = retriever_.output(g).span();
      const std::int64_t mb = sharding.miniBatchSize(g);
      const std::int64_t b0 = sharding.miniBatchBegin(g);
      for (std::int64_t s = 0; s < mb; ++s) {
        const std::int64_t b = b0 + s;
        const auto sparse_slice = emb_out.subspan(
            static_cast<std::size_t>(s * tables * dim),
            static_cast<std::size_t>(tables * dim));
        // Forward with cached activations.
        const auto top_acts = top.forwardActivations(dense.sample(b));
        const auto& dense_emb = top_acts.back();
        const auto fused =
            model_.interaction().fuse(dense_emb, sparse_slice);
        const auto bot_acts = bottom.forwardActivations(fused);
        const float logit = bot_acts.back()[0];
        const float prob = 1.0f / (1.0f + std::exp(-logit));
        const float y = label(label_seed, b);
        // Numerically-stable BCE.
        loss_sum += std::log1p(std::exp(-std::abs(logit))) +
                    (logit > 0 ? (1.0f - y) * logit : -y * logit);
        // dL/dlogit for sigmoid+BCE, averaged over the batch.
        const float dlogit = (prob - y) * inv_batch;
        const std::vector<float> grad_logit{dlogit};
        const auto grad_fused =
            bottom.backward(bot_acts, grad_logit, bottom_grads);
        std::vector<float> grad_dense_emb(static_cast<std::size_t>(dim),
                                          0.0f);
        const auto up_base = static_cast<std::size_t>(b * tables * dim);
        model_.interaction().fuseBackward(
            dense_emb, sparse_slice, grad_fused, grad_dense_emb,
            std::span<float>(emb_upstream_.data() + up_base,
                             static_cast<std::size_t>(tables * dim)));
        top.backward(top_acts, grad_dense_emb, top_grads);
      }
    }
    result.loss = loss_sum / static_cast<double>(sparse.batchSize());
  }

  // ---- Timing: MLP backward kernels + data-parallel grad all-reduce ------
  const SimTime t1 = system.hostNow();
  for (int g = 0; g < p; ++g) {
    const std::int64_t mb = sharding.miniBatchSize(g);
    auto desc = model_.bottomMlp().buildForwardKernel(
        system, mb, "bottom_mlp_bwd.gpu" + std::to_string(g));
    desc.duration = desc.duration * 2;  // dgrad + wgrad
    system.launchKernel(g, std::move(desc));
    auto desc2 = model_.topMlp().buildForwardKernel(
        system, mb, "top_mlp_bwd.gpu" + std::to_string(g));
    desc2.duration = desc2.duration * 2;
    system.launchKernel(g, std::move(desc2));
  }
  system.syncAll();
  std::int64_t mlp_param_bytes = 0;
  for (const Mlp* mlp : {&model_.topMlp(), &model_.bottomMlp()}) {
    const auto& cfg = mlp->config();
    int in = cfg.input_dim;
    for (int out : cfg.layer_dims) {
      mlp_param_bytes += 4LL * (in * out + out);
      in = out;
    }
  }
  auto allreduce = comm_.allReduce(mlp_param_bytes);
  allreduce.wait(system);
  result.mlp_backward_time = system.hostNow() - t1;
  (void)cm;

  // ---- EMB backward with the REAL upstream gradients ----------------------
  EmbBackwardEngine::UpstreamGradFn upstream;
  if (functional) {
    upstream = [this, tables, dim](std::int64_t t, std::int64_t b, int c) {
      return emb_upstream_[static_cast<std::size_t>(
          (b * tables + t) * dim + c)];
    };
  }
  result.emb_backward = emb_backward_.runBatch(sparse, scheme_, upstream);

  // ---- Apply the (all-reduced) MLP gradients ------------------------------
  if (functional) {
    top.applySgd(top_grads, lr_);
    bottom.applySgd(bottom_grads, lr_);
  }

  result.total = system.hostNow() - t0;
  return result;
}

}  // namespace pgasemb::dlrm

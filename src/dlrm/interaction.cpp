#include "dlrm/interaction.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::dlrm {

InteractionLayer::InteractionLayer(InteractionKind kind, int dim,
                                   std::int64_t num_sparse)
    : kind_(kind), dim_(dim), num_sparse_(num_sparse) {
  PGASEMB_CHECK(dim >= 1, "interaction needs positive dim");
  PGASEMB_CHECK(num_sparse >= 1, "interaction needs sparse features");
}

int InteractionLayer::outputDim() const {
  const std::int64_t n = num_sparse_ + 1;  // sparse embeddings + dense
  if (kind_ == InteractionKind::kDotProduct) {
    // Dense embedding concatenated with all pairwise dot products.
    return dim_ + static_cast<int>(n * (n - 1) / 2);
  }
  return static_cast<int>(n) * dim_;
}

std::vector<float> InteractionLayer::fuse(
    std::span<const float> dense, std::span<const float> sparse) const {
  PGASEMB_CHECK(static_cast<int>(dense.size()) == dim_,
                "dense embedding dim mismatch");
  PGASEMB_CHECK(static_cast<std::int64_t>(sparse.size()) ==
                    num_sparse_ * dim_,
                "sparse embedding count mismatch");
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(outputDim()));
  if (kind_ == InteractionKind::kConcat) {
    out.insert(out.end(), dense.begin(), dense.end());
    out.insert(out.end(), sparse.begin(), sparse.end());
    return out;
  }
  // Dot-product interaction over the (num_sparse + 1) embedding vectors.
  out.insert(out.end(), dense.begin(), dense.end());
  auto vec = [&](std::int64_t v) -> std::span<const float> {
    if (v == 0) return dense;
    return sparse.subspan(static_cast<std::size_t>((v - 1) * dim_),
                          static_cast<std::size_t>(dim_));
  };
  const std::int64_t n = num_sparse_ + 1;
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = a + 1; b < n; ++b) {
      const auto va = vec(a);
      const auto vb = vec(b);
      float dot = 0.0f;
      for (int c = 0; c < dim_; ++c) {
        dot += va[static_cast<std::size_t>(c)] *
               vb[static_cast<std::size_t>(c)];
      }
      out.push_back(dot);
    }
  }
  return out;
}

void InteractionLayer::fuseBackward(std::span<const float> dense,
                                    std::span<const float> sparse,
                                    std::span<const float> grad_output,
                                    std::span<float> grad_dense,
                                    std::span<float> grad_sparse) const {
  PGASEMB_CHECK(static_cast<int>(grad_output.size()) == outputDim(),
                "grad_output dim mismatch");
  PGASEMB_CHECK(static_cast<int>(grad_dense.size()) == dim_ &&
                    static_cast<std::int64_t>(grad_sparse.size()) ==
                        num_sparse_ * dim_,
                "gradient buffer shape mismatch");
  if (kind_ == InteractionKind::kConcat) {
    for (int c = 0; c < dim_; ++c) {
      grad_dense[static_cast<std::size_t>(c)] +=
          grad_output[static_cast<std::size_t>(c)];
    }
    for (std::size_t k = 0; k < grad_sparse.size(); ++k) {
      grad_sparse[k] += grad_output[static_cast<std::size_t>(dim_) + k];
    }
    return;
  }
  // Dot-product interaction: dense passthrough + pairwise dots.
  for (int c = 0; c < dim_; ++c) {
    grad_dense[static_cast<std::size_t>(c)] +=
        grad_output[static_cast<std::size_t>(c)];
  }
  auto vec = [&](std::int64_t v) -> std::span<const float> {
    if (v == 0) return dense;
    return sparse.subspan(static_cast<std::size_t>((v - 1) * dim_),
                          static_cast<std::size_t>(dim_));
  };
  auto grad_vec = [&](std::int64_t v) -> std::span<float> {
    if (v == 0) return grad_dense;
    return grad_sparse.subspan(static_cast<std::size_t>((v - 1) * dim_),
                               static_cast<std::size_t>(dim_));
  };
  const std::int64_t n = num_sparse_ + 1;
  std::size_t out_idx = static_cast<std::size_t>(dim_);
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = a + 1; b < n; ++b) {
      const float g = grad_output[out_idx++];
      const auto va = vec(a);
      const auto vb = vec(b);
      auto ga = grad_vec(a);
      auto gb = grad_vec(b);
      for (int c = 0; c < dim_; ++c) {
        // d(dot)/d(va) = vb and vice versa.
        ga[static_cast<std::size_t>(c)] +=
            g * vb[static_cast<std::size_t>(c)];
        gb[static_cast<std::size_t>(c)] +=
            g * va[static_cast<std::size_t>(c)];
      }
    }
  }
}

gpu::KernelDesc InteractionLayer::buildKernel(
    const gpu::MultiGpuSystem& system, std::int64_t batch,
    const std::string& name) const {
  const auto& cm = system.costModel();
  gpu::KernelDesc desc;
  // Pure-compute pairwise-dot cost model; callers pass "interaction.*"
  // names from the pure allowlist. pgaslint:allow(kernel-mem-effects)
  desc.name = name;
  const double n = static_cast<double>(num_sparse_ + 1);
  const double flops =
      static_cast<double>(batch) * n * (n - 1) / 2.0 * dim_ * 2.0;
  const double bytes = static_cast<double>(batch) *
                       (n * dim_ + outputDim()) * 4.0;
  const double compute_s = flops / (cm.peak_flops * 0.6);
  const double memory_s = bytes / (cm.hbm_bandwidth * cm.stream_efficiency);
  desc.duration = std::max(SimTime::sec(std::max(compute_s, memory_s)),
                           cm.kernel_latency_floor);
  return desc;
}

}  // namespace pgasemb::dlrm

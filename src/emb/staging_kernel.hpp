// Leader staging kernel builders for the hierarchical all-to-all
// (DESIGN.md §12).
//
// The node leader runs two small device kernels around the collective:
//  - emb_hier_gather: packs the leader's own inter-node contributions
//    from its send buffer into its slot of the node's gather staging
//    buffer (other members' contributions arrive over NVLink as part of
//    the collective's gather hop);
//  - emb_hier_scatter: demultiplexes the per-source-node recv staging
//    after the aggregated inter-node flows have landed, feeding the
//    ordinary unpack path.
//
// Both are plain streaming kernels (duration from
// CostModel::streamKernelTime) and declare their staging-buffer effects
// so simsan and pgaslint's kernel-mem-effects rule can hold them to the
// same bar as the lookup kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "emb/layer.hpp"
#include "gpu/device.hpp"
#include "gpu/kernel.hpp"

namespace pgasemb::emb {

/// Leader kernel packing `bytes` of the leader's own inter-node
/// contributions into its gather slot (`slot` is the slot's range within
/// `device`'s address space).
gpu::KernelDesc buildLeaderGatherKernel(ShardedEmbeddingLayer& layer,
                                        int node, int device,
                                        const simsan::StridedRange& slot,
                                        std::int64_t bytes);

/// Leader kernel demultiplexing `bytes` of landed inter-node traffic out
/// of the node's recv staging (`staging` spans every per-source slot).
gpu::KernelDesc buildLeaderScatterKernel(ShardedEmbeddingLayer& layer,
                                         int node, int device,
                                         const simsan::StridedRange& staging,
                                         std::int64_t bytes);

/// Standby-leader kernel replaying the node's staging layout after a
/// leader failover (DESIGN.md §13): re-initializes every gather and recv
/// slot (`slots`) on the new leader before members gather into them —
/// the node-wide re-quiet that publishes the rebuild rides the
/// communicator's rebuild sync key.
gpu::KernelDesc buildStagingRebuildKernel(
    ShardedEmbeddingLayer& layer, int node, int device,
    const std::vector<simsan::StridedRange>& slots, std::int64_t bytes);

}  // namespace pgasemb::emb

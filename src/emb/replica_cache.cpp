#include "emb/replica_cache.hpp"

#include <algorithm>
#include <cmath>

#include "emb/lookup_kernel.hpp"
#include "emb/workload.hpp"
#include "util/expect.hpp"

namespace pgasemb::emb {

ReplicaCache::ReplicaCache(ShardedEmbeddingLayer& layer,
                           std::int64_t capacity_rows)
    : layer_(layer) {
  PGASEMB_CHECK(capacity_rows >= 1, "replica cache needs capacity >= 1");
  PGASEMB_CHECK(layer.sharding().scheme() == ShardingScheme::kTableWise,
                "the replica cache filters table-wise exchanges; row-wise "
                "sharding already spreads every row");
  const auto& spec = layer.spec();
  capacity_rows_ = std::min<std::int64_t>(
      capacity_rows, static_cast<std::int64_t>(spec.index_space));
  index_hit_rate_ =
      spec.zipf_alpha > 0.0
          ? zipfTopMass(spec.index_space, spec.zipf_alpha,
                        static_cast<std::uint64_t>(capacity_rows_))
          : static_cast<double>(capacity_rows_) /
                static_cast<double>(spec.index_space);
  auto& system = layer.system();
  const std::int64_t elements =
      spec.total_tables * capacity_rows_ * spec.dim;
  for (int g = 0; g < system.numGpus(); ++g) {
    replicas_.push_back(system.device(g).alloc(elements));
  }
}

ReplicaCache::~ReplicaCache() {
  auto& system = layer_.system();
  for (int g = system.numGpus() - 1; g >= 0; --g) {
    system.device(g).free(replicas_[static_cast<std::size_t>(g)]);
  }
}

const gpu::DeviceBuffer& ReplicaCache::replica(int gpu) const {
  PGASEMB_CHECK(gpu >= 0 && gpu < static_cast<int>(replicas_.size()),
                "bad gpu id ", gpu);
  return replicas_[static_cast<std::size_t>(gpu)];
}

CacheFilter::CacheFilter(const ShardedEmbeddingLayer& layer,
                         const SparseBatch& batch, const ReplicaCache& cache)
    : layer_(layer), materialized_(batch.materialized()) {
  const auto& sharding = layer.sharding();
  const auto& spec = batch.spec();
  const int p = sharding.numGpus();
  const std::int64_t tables = spec.num_tables;
  const std::int64_t batch_size = spec.batch_size;
  const double out_bytes = static_cast<double>(layer.dim()) * 4.0;

  std::vector<std::vector<double>> miss_out(
      static_cast<std::size_t>(p),
      std::vector<double>(static_cast<std::size_t>(p), 0.0));
  std::vector<double> serve_out(static_cast<std::size_t>(p), 0.0);
  std::vector<double> miss_rows(static_cast<std::size_t>(p), 0.0);
  std::vector<double> serve_rows(static_cast<std::size_t>(p), 0.0);
  probed_.assign(static_cast<std::size_t>(p), 0.0);

  if (materialized_) {
    served_.resize(static_cast<std::size_t>(tables));
    for (std::int64_t t = 0; t < tables; ++t) {
      const int owner = sharding.tableOwner(t);
      auto& served = served_[static_cast<std::size_t>(t)];
      served.assign(static_cast<std::size_t>(batch_size), 0);
      const auto offs = batch.offsets(t);
      const auto idxs = batch.indices(t);
      for (std::int64_t s = 0; s < batch_size; ++s) {
        const std::int64_t lo = offs[static_cast<std::size_t>(s)];
        const std::int64_t hi = offs[static_cast<std::size_t>(s) + 1];
        const double bag = static_cast<double>(hi - lo);
        bool all_hot = true;
        for (std::int64_t i = lo; i < hi; ++i) {
          all_hot = all_hot &&
                    cache.hitsIndex(idxs[static_cast<std::size_t>(i)]);
        }
        const int dst = sharding.sampleOwner(s);
        // Both sides classify the bag: the owner partitions its tables'
        // full batch, the destination its mini-batch across all tables.
        probed_[static_cast<std::size_t>(owner)] += bag;
        probed_[static_cast<std::size_t>(dst)] += bag;
        lookups_ += bag;
        if (all_hot) {
          served[static_cast<std::size_t>(s)] = 1;
          serve_out[static_cast<std::size_t>(dst)] += 1.0;
          serve_rows[static_cast<std::size_t>(dst)] += bag;
          hits_ += bag;
          if (dst != owner) saved_wire_bytes_ += out_bytes;
        } else {
          miss_out[static_cast<std::size_t>(owner)]
                  [static_cast<std::size_t>(dst)] += 1.0;
          miss_rows[static_cast<std::size_t>(owner)] += bag;
        }
      }
    }
  } else {
    // Statistical batch: per-table expectations over the pooling
    // distribution. With index-hit probability h, a bag of L indices is
    // served with probability h^L (empty bags trivially), so
    //   P(bag served)          = E[h^L]
    //   E[rows served per bag] = E[L h^L]
    // over L ~ U(min_pooling, maxPoolingOf(t)).  Padded samples past the
    // serving fill (spec.activeSamples(); the mini-batches are
    // contiguous sample ranges, so the first destinations hold the
    // active samples) are NULL bags: trivially served with zero rows,
    // exactly the materialized empty-bag case.
    const double h = cache.indexHitRate();
    const std::int64_t active = spec.activeSamples();
    for (std::int64_t t = 0; t < tables; ++t) {
      const int owner = sharding.tableOwner(t);
      const int m = spec.min_pooling;
      const int M = spec.maxPoolingOf(t);
      double bag_hit = 0.0;
      double hit_rows = 0.0;
      for (int L = m; L <= M; ++L) {
        const double hl = std::pow(h, L);
        bag_hit += hl;
        hit_rows += static_cast<double>(L) * hl;
      }
      const double range = static_cast<double>(M - m + 1);
      bag_hit /= range;
      hit_rows /= range;
      const double avg = spec.avgPoolingOf(t);
      const double a = static_cast<double>(active);
      for (int d = 0; d < p; ++d) {
        const std::int64_t mb = sharding.miniBatchSize(d);
        const std::int64_t active_d = std::clamp<std::int64_t>(
            active - sharding.miniBatchBegin(d), 0, mb);
        const double ad = static_cast<double>(active_d);
        const double pad = static_cast<double>(mb - active_d);
        miss_out[static_cast<std::size_t>(owner)]
                [static_cast<std::size_t>(d)] += ad * (1.0 - bag_hit);
        serve_out[static_cast<std::size_t>(d)] += ad * bag_hit + pad;
        serve_rows[static_cast<std::size_t>(d)] += ad * hit_rows;
        probed_[static_cast<std::size_t>(d)] += ad * avg;
        if (d != owner) {
          saved_wire_bytes_ += (ad * bag_hit + pad) * out_bytes;
        }
      }
      miss_rows[static_cast<std::size_t>(owner)] += a * (avg - hit_rows);
      probed_[static_cast<std::size_t>(owner)] += a * avg;
      lookups_ += a * avg;
      hits_ += a * hit_rows;
    }
  }

  miss_work_.resize(static_cast<std::size_t>(p));
  serve_work_.resize(static_cast<std::size_t>(p));
  for (int g = 0; g < p; ++g) {
    auto& miss = miss_work_[static_cast<std::size_t>(g)];
    miss.gathered_rows = miss_rows[static_cast<std::size_t>(g)];
    miss.outputs_to.assign(static_cast<std::size_t>(p), 0);
    for (int d = 0; d < p; ++d) {
      miss.outputs_to[static_cast<std::size_t>(d)] = std::llround(
          miss_out[static_cast<std::size_t>(g)][static_cast<std::size_t>(d)]);
    }
    auto& serve = serve_work_[static_cast<std::size_t>(g)];
    serve.gathered_rows = serve_rows[static_cast<std::size_t>(g)];
    serve.outputs_to.assign(static_cast<std::size_t>(p), 0);
    serve.outputs_to[static_cast<std::size_t>(g)] =
        std::llround(serve_out[static_cast<std::size_t>(g)]);
  }
}

const GpuLookupWork& CacheFilter::missWork(int gpu) const {
  PGASEMB_CHECK(gpu >= 0 && gpu < static_cast<int>(miss_work_.size()),
                "bad gpu id ", gpu);
  return miss_work_[static_cast<std::size_t>(gpu)];
}

const GpuLookupWork& CacheFilter::serveWork(int gpu) const {
  PGASEMB_CHECK(gpu >= 0 && gpu < static_cast<int>(serve_work_.size()),
                "bad gpu id ", gpu);
  return serve_work_[static_cast<std::size_t>(gpu)];
}

double CacheFilter::probedIndices(int gpu) const {
  PGASEMB_CHECK(gpu >= 0 && gpu < static_cast<int>(probed_.size()),
                "bad gpu id ", gpu);
  return probed_[static_cast<std::size_t>(gpu)];
}

bool CacheFilter::bagServed(std::int64_t table, std::int64_t sample) const {
  PGASEMB_CHECK(materialized_, "bagServed() on a statistical filter");
  PGASEMB_CHECK(table >= 0 &&
                    table < static_cast<std::int64_t>(served_.size()),
                "bad table id ", table);
  const auto& served = served_[static_cast<std::size_t>(table)];
  PGASEMB_CHECK(sample >= 0 &&
                    sample < static_cast<std::int64_t>(served.size()),
                "bad sample id ", sample);
  return served[static_cast<std::size_t>(sample)] != 0;
}

gpu::KernelDesc buildCacheProbeKernel(const ShardedEmbeddingLayer& layer,
                                      const CacheFilter& filter, int gpu) {
  const auto& cm =
      const_cast<ShardedEmbeddingLayer&>(layer).system().costModel();
  gpu::KernelDesc desc;
  desc.name = "emb_cache_probe.gpu" + std::to_string(gpu);
  desc.duration = cm.cacheProbeTime(filter.probedIndices(gpu));
  return desc;
}

gpu::KernelDesc buildCacheServeKernel(ShardedEmbeddingLayer& layer,
                                      const SparseBatch& batch,
                                      const CacheFilter& filter, int gpu,
                                      const gpu::DeviceBuffer* replica,
                                      gpu::DeviceBuffer* output) {
  gpu::KernelDesc desc;
  desc.name = "emb_cache_serve.gpu" + std::to_string(gpu);
  desc.duration = lookupComputeTime(layer, filter.serveWork(gpu));

  if (replica != nullptr && output != nullptr &&
      layer.system().sanitizer() != nullptr) {
    desc.mem_effects.push_back(
        {gpu,
         simsan::StridedRange::contiguous(replica->offset(),
                                          replica->size()),
         simsan::AccessKind::kRead, ""});
    desc.mem_effects.push_back(
        {gpu,
         simsan::StridedRange::contiguous(output->offset(), output->size()),
         simsan::AccessKind::kWrite, ""});
  }
  if (output != nullptr && output->backed() && batch.materialized()) {
    desc.functional_body = [&layer, &batch, &filter, gpu, output] {
      // The replica holds bit-identical copies of the hot rows, so
      // pooling through the table yields exactly the served value.
      const auto& sh = layer.sharding();
      const int dim = layer.dim();
      auto out = output->span();
      const std::int64_t mb = sh.miniBatchSize(gpu);
      const std::int64_t b0 = sh.miniBatchBegin(gpu);
      for (std::int64_t t = 0; t < sh.totalTables(); ++t) {
        for (std::int64_t s = 0; s < mb; ++s) {
          if (!filter.bagServed(t, b0 + s)) continue;
          const auto pooled = layer.pooledValue(batch, t, b0 + s);
          for (int c = 0; c < dim; ++c) {
            out[static_cast<std::size_t>(
                sh.outputIndex(b0 + s, t, c, dim))] =
                pooled[static_cast<std::size_t>(c)];
          }
        }
      }
    };
  }
  return desc;
}

}  // namespace pgasemb::emb

#include "emb/hashing.hpp"

namespace pgasemb::emb {

float proceduralWeight(std::uint64_t table_seed, std::int64_t row, int col) {
  const std::uint64_t h = splitmix64(
      table_seed ^ (static_cast<std::uint64_t>(row) * 0x100000001b3ULL +
                    static_cast<std::uint64_t>(col)));
  // Map the top 24 bits to [-1, 1) — exactly representable steps so sums
  // of a few thousand terms stay well-conditioned in fp32 tests.
  const double unit = static_cast<double>(h >> 40) * 0x1.0p-24;
  return static_cast<float>(2.0 * unit - 1.0);
}

}  // namespace pgasemb::emb

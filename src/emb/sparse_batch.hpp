// Sparse input batches (paper §II-B, Fig 3).
//
// For each sparse feature (= table) each sample carries a *bag* of raw
// indices; the bag size is the pooling factor and may be zero (a NULL
// input, Fig 3's sample-3/feature-2 case).  The batch stores one CSR
// (offsets + indices) per table over the full batch, the layout the
// lookup kernels consume.
//
// A batch is either *materialized* (real indices — functional mode) or
// *statistical* (only the distribution parameters — timing-only mode at
// paper scale, where materializing ~270 M indices per GPU per batch
// would dwarf the simulation itself).  Workload descriptors are derived
// from exact counts when materialized and expectations otherwise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace pgasemb::emb {

struct SparseBatchSpec {
  std::int64_t num_tables = 1;
  std::int64_t batch_size = 1;
  int min_pooling = 1;   ///< 0 allows NULL (empty-bag) inputs
  int max_pooling = 1;   ///< inclusive; uniform over [min, max]
  std::uint64_t index_space = 1u << 20;  ///< raw index domain
  /// Optional per-table max pooling (skewed / "hot" features, as in
  /// RecShard [6]); overrides max_pooling per table when non-empty.
  std::vector<int> per_table_max_pooling;
  /// Zipf skew of the raw indices: rank r (= raw index r-1) is drawn
  /// with probability proportional to r^-zipf_alpha. 0 = uniform (the
  /// historical path, RNG-identical to before the knob existed).
  double zipf_alpha = 0.0;
  /// Serving fill: only the first `active_samples` samples carry real
  /// bags; the trailing samples are NULL (empty-bag) padding so a
  /// partially filled serving batch keeps the fixed shape the kernels
  /// and retriever buffers were sized for. 0 = fully active (the
  /// closed-loop path, behaviour-identical to before the knob existed).
  std::int64_t active_samples = 0;

  /// Samples that carry real bags (batch_size when not padding).
  std::int64_t activeSamples() const {
    return active_samples > 0 ? active_samples : batch_size;
  }

  int maxPoolingOf(std::int64_t table) const {
    if (per_table_max_pooling.empty()) return max_pooling;
    return per_table_max_pooling[static_cast<std::size_t>(table)];
  }
  double avgPooling() const { return (min_pooling + max_pooling) / 2.0; }
  double avgPoolingOf(std::int64_t table) const {
    return (min_pooling + maxPoolingOf(table)) / 2.0;
  }
};

class SparseBatch {
 public:
  /// Statistical batch: counts come from expectations.
  static SparseBatch statistical(const SparseBatchSpec& spec);

  /// Materialized batch: real uniform indices and pooling factors.
  static SparseBatch generateUniform(const SparseBatchSpec& spec, Rng& rng);

  const SparseBatchSpec& spec() const { return spec_; }
  bool materialized() const { return materialized_; }
  std::int64_t numTables() const { return spec_.num_tables; }
  std::int64_t batchSize() const { return spec_.batch_size; }

  /// CSR for one table (materialized only): offsets has batch_size + 1
  /// entries; bag of sample b is indices[offsets[b] .. offsets[b+1]).
  std::span<const std::int64_t> offsets(std::int64_t table) const;
  std::span<const std::uint64_t> indices(std::int64_t table) const;

  /// Bag size of (table, sample). Materialized only.
  std::int64_t poolingFactor(std::int64_t table, std::int64_t sample) const;

  /// Total indices across tables [first, first + count) (exact when
  /// materialized, expected otherwise) — the gather workload of a kernel
  /// owning those tables.
  double totalIndices(std::int64_t first, std::int64_t count) const;

  /// Exact total indices in one table. Materialized only.
  std::int64_t tableIndexCount(std::int64_t table) const;

 private:
  SparseBatchSpec spec_;
  bool materialized_ = false;
  // Per table: CSR arrays (empty when statistical).
  std::vector<std::vector<std::int64_t>> offsets_;
  std::vector<std::vector<std::uint64_t>> indices_;
};

}  // namespace pgasemb::emb

// Sparse-input partitioning (paper §V).
//
// "In our current implementation, we partition the sparse inputs on the
//  CPU and then copy it to the GPU. The time spent on input partitioning
//  is small in our experiments because we use a simple table sharding
//  scheme (partitioning by tables). However, if a more complicated
//  sharding scheme is used (partitioning by rows), the sparse input
//  partitioning and aggregation time will become more significant. A
//  potential optimization is to merge the sparse input partitioning into
//  the computation kernel..."
//
// This module models exactly that: the host-side cost of routing a
// global batch to the GPUs under each sharding scheme, and the paper's
// proposed fused alternative, where the kernel picks its own inputs out
// of the replicated batch (host cost vanishes; the kernel scans more
// index data).
#pragma once

#include "emb/layer.hpp"
#include "util/time.hpp"

namespace pgasemb::emb {

struct InputPartitionParams {
  /// Host cost to slice one table's CSR out of the global batch
  /// (table-wise sharding routes whole tables: a couple of pointer/size
  /// computations plus a memcpy descriptor).
  SimTime host_per_table = SimTime::ns(150.0);
  /// Host cost to hash one raw index and append it to the right GPU's
  /// bucket (row-wise sharding must route every index individually).
  SimTime host_per_index = SimTime::ns(2.5);
  /// Fixed per-batch overhead (allocation, H2D descriptor setup).
  SimTime host_fixed = SimTime::us(15.0);
};

struct InputPartitionCost {
  /// Serial CPU time charged before kernels can launch.
  SimTime host_time = SimTime::zero();
  /// Extra bytes each GPU's lookup kernel reads when partitioning is
  /// fused into it (it scans the whole replicated index stream and
  /// filters its own work).
  double extra_kernel_bytes_per_gpu = 0.0;
};

/// Cost of preparing `batch` for `layer`'s sharding scheme.
/// `fused` = the paper's proposed in-kernel partitioning.
InputPartitionCost inputPartitionCost(const ShardedEmbeddingLayer& layer,
                                      const SparseBatch& batch, bool fused,
                                      const InputPartitionParams& params = {});

}  // namespace pgasemb::emb

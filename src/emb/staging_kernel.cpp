#include "emb/staging_kernel.hpp"

#include "util/expect.hpp"

namespace pgasemb::emb {

gpu::KernelDesc buildLeaderGatherKernel(ShardedEmbeddingLayer& layer,
                                        int node, int device,
                                        const simsan::StridedRange& slot,
                                        std::int64_t bytes) {
  PGASEMB_CHECK(bytes >= 0, "negative gather staging size");
  gpu::KernelDesc desc;
  desc.name = "emb_hier_gather.node" + std::to_string(node);
  desc.duration = layer.system().costModel().streamKernelTime(
      static_cast<double>(bytes));
  if (layer.system().sanitizer() != nullptr && !slot.empty()) {
    desc.mem_effects.push_back(
        {device, slot, simsan::AccessKind::kWrite, ""});
  }
  return desc;
}

gpu::KernelDesc buildLeaderScatterKernel(ShardedEmbeddingLayer& layer,
                                         int node, int device,
                                         const simsan::StridedRange& staging,
                                         std::int64_t bytes) {
  PGASEMB_CHECK(bytes >= 0, "negative recv staging size");
  gpu::KernelDesc desc;
  desc.name = "emb_hier_scatter.node" + std::to_string(node);
  desc.duration = layer.system().costModel().streamKernelTime(
      static_cast<double>(bytes));
  if (layer.system().sanitizer() != nullptr && !staging.empty()) {
    desc.mem_effects.push_back(
        {device, staging, simsan::AccessKind::kRead, ""});
  }
  return desc;
}

gpu::KernelDesc buildStagingRebuildKernel(
    ShardedEmbeddingLayer& layer, int node, int device,
    const std::vector<simsan::StridedRange>& slots, std::int64_t bytes) {
  PGASEMB_CHECK(bytes >= 0, "negative rebuild staging size");
  gpu::KernelDesc desc;
  desc.name = "emb_hier_rebuild.node" + std::to_string(node);
  desc.duration = layer.system().costModel().streamKernelTime(
      static_cast<double>(bytes));
  if (layer.system().sanitizer() != nullptr) {
    for (const auto& slot : slots) {
      if (slot.empty()) continue;
      desc.mem_effects.push_back(
          {device, slot, simsan::AccessKind::kWrite, ""});
    }
  }
  return desc;
}

}  // namespace pgasemb::emb

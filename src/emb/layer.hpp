// Sharded embedding layer: the model-parallel collection of embedding
// tables distributed over the simulated GPUs, plus the reference
// (single-device) semantics tests compare against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "emb/sharding.hpp"
#include "emb/sparse_batch.hpp"
#include "emb/table.hpp"
#include "gpu/system.hpp"

namespace pgasemb::emb {

struct EmbLayerSpec {
  std::int64_t total_tables = 4;
  std::int64_t rows_per_table = 100;  ///< hash size M, identical per table
  int dim = 64;
  std::int64_t batch_size = 8;
  int min_pooling = 1;
  int max_pooling = 4;
  std::uint64_t seed = 0x5eed;
  std::uint64_t index_space = 1u << 20;
  /// Optional per-table max pooling (hot features) — skewed workloads.
  std::vector<int> table_max_pooling;
  /// Zipf skew of the raw indices (0 = uniform); see SparseBatchSpec.
  double zipf_alpha = 0.0;
  /// Table-wise only: pick table-block boundaries that balance expected
  /// gather work (RecShard-style) instead of equal table counts.
  bool balance_tables = false;

  SparseBatchSpec batchSpec() const {
    return SparseBatchSpec{total_tables,  batch_size, min_pooling,
                           max_pooling,   index_space,
                           table_max_pooling, zipf_alpha};
  }

  /// Device bytes required for the tables of one GPU.
  std::int64_t tableBytesPerGpu(int num_gpus) const;
};

/// Per-GPU lookup workload descriptor (exact for materialized batches,
/// expected for statistical ones) — what the kernel cost model and the
/// message plans are built from.
struct GpuLookupWork {
  double gathered_rows = 0;  ///< embedding rows read (pooling gathers)
  /// Pooled output vectors this GPU produces for each destination GPU's
  /// mini-batch (self included).
  std::vector<std::int64_t> outputs_to;

  std::int64_t totalOutputs() const;
  std::int64_t remoteOutputs(int self) const;
};

class ShardedEmbeddingLayer {
 public:
  ShardedEmbeddingLayer(gpu::MultiGpuSystem& system,
                        const EmbLayerSpec& spec,
                        ShardingScheme scheme = ShardingScheme::kTableWise);
  ~ShardedEmbeddingLayer();

  ShardedEmbeddingLayer(const ShardedEmbeddingLayer&) = delete;
  ShardedEmbeddingLayer& operator=(const ShardedEmbeddingLayer&) = delete;

  const EmbLayerSpec& spec() const { return spec_; }
  const Sharding& sharding() const { return sharding_; }
  gpu::MultiGpuSystem& system() { return system_; }
  int dim() const { return spec_.dim; }

  EmbeddingTable& table(std::int64_t global_table);
  const EmbeddingTable& table(std::int64_t global_table) const;

  /// Lookup workload of GPU `gpu` for `batch`.
  GpuLookupWork lookupWork(const SparseBatch& batch, int gpu) const;

  // --- Functional reference semantics --------------------------------------

  /// Hash a bag's raw indices for `table` into rows.
  std::int64_t hashedRow(std::int64_t table, std::uint64_t raw) const;

  /// Sum-pooled embedding of (table, sample): the gray-box operation of
  /// paper Fig 3. Empty bags yield zeros.
  std::vector<float> pooledValue(const SparseBatch& batch,
                                 std::int64_t table,
                                 std::int64_t sample) const;

  /// Row-wise sharding: the partial sum over the bag entries whose hashed
  /// row is owned by `gpu` (row r belongs to GPU r % P).
  std::vector<float> partialPooledValue(const SparseBatch& batch,
                                        std::int64_t table,
                                        std::int64_t sample, int gpu) const;

  /// The full expected output tensor of GPU `gpu`
  /// ([mini-batch sample][table][col]) computed serially — the oracle for
  /// both retriever implementations.
  std::vector<float> referenceOutput(const SparseBatch& batch,
                                     int gpu) const;

 private:
  gpu::MultiGpuSystem& system_;
  EmbLayerSpec spec_;
  Sharding sharding_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;
};

}  // namespace pgasemb::emb

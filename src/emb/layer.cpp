#include "emb/layer.hpp"

#include "util/expect.hpp"

namespace pgasemb::emb {

std::int64_t EmbLayerSpec::tableBytesPerGpu(int num_gpus) const {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  const BlockPartition part(total_tables, num_gpus);
  // The fattest shard (first part) bounds per-GPU memory.
  return part.size(0) * rows_per_table * dim * 4;
}

std::int64_t GpuLookupWork::totalOutputs() const {
  std::int64_t total = 0;
  for (const auto v : outputs_to) total += v;
  return total;
}

std::int64_t GpuLookupWork::remoteOutputs(int self) const {
  std::int64_t total = 0;
  for (int d = 0; d < static_cast<int>(outputs_to.size()); ++d) {
    if (d != self) total += outputs_to[static_cast<std::size_t>(d)];
  }
  return total;
}

namespace {

Sharding makeSharding(const EmbLayerSpec& spec, int num_gpus,
                      ShardingScheme scheme) {
  if (scheme == ShardingScheme::kTableWise && spec.balance_tables) {
    // Balance expected gather rows per GPU across skewed tables.
    const auto batch = spec.batchSpec();
    std::vector<double> weights(static_cast<std::size_t>(
        spec.total_tables));
    for (std::int64_t t = 0; t < spec.total_tables; ++t) {
      weights[static_cast<std::size_t>(t)] =
          batch.avgPoolingOf(t) * static_cast<double>(spec.batch_size);
    }
    return Sharding(balancedTableBoundaries(weights, num_gpus),
                    spec.batch_size, num_gpus);
  }
  return Sharding(spec.total_tables, spec.batch_size, num_gpus, scheme);
}

}  // namespace

ShardedEmbeddingLayer::ShardedEmbeddingLayer(gpu::MultiGpuSystem& system,
                                             const EmbLayerSpec& spec,
                                             ShardingScheme scheme)
    : system_(system),
      spec_(spec),
      sharding_(makeSharding(spec, system.numGpus(), scheme)) {
  const TableConfig config{spec.rows_per_table, spec.dim};
  tables_.reserve(static_cast<std::size_t>(spec.total_tables));
  if (scheme == ShardingScheme::kTableWise) {
    const bool dense = system.mode() == gpu::ExecutionMode::kFunctional;
    for (std::int64_t t = 0; t < spec.total_tables; ++t) {
      tables_.push_back(std::make_unique<EmbeddingTable>(
          system.device(sharding_.tableOwner(t)), config,
          tableSeed(spec.seed, t),
          dense ? TableStorage::kDense : TableStorage::kProcedural));
    }
  } else {
    // Row-wise: every table is striped over all GPUs (row r on GPU
    // r % P); charge each device its shard of every table.
    const int p = system.numGpus();
    const std::int64_t shard_rows = (spec.rows_per_table + p - 1) / p;
    for (int g = 0; g < p; ++g) {
      system.device(g).allocVirtual(shard_rows * spec.dim *
                                    spec.total_tables);
    }
    for (std::int64_t t = 0; t < spec.total_tables; ++t) {
      tables_.push_back(std::make_unique<EmbeddingTable>(
          config, tableSeed(spec.seed, t)));
    }
  }
}

ShardedEmbeddingLayer::~ShardedEmbeddingLayer() {
  if (sharding_.scheme() == ShardingScheme::kTableWise) {
    for (std::int64_t t = spec_.total_tables - 1; t >= 0; --t) {
      tables_[static_cast<std::size_t>(t)]->release(
          system_.device(sharding_.tableOwner(t)));
    }
  }
}

EmbeddingTable& ShardedEmbeddingLayer::table(std::int64_t global_table) {
  PGASEMB_CHECK(global_table >= 0 && global_table < spec_.total_tables,
                "bad table id ", global_table);
  return *tables_[static_cast<std::size_t>(global_table)];
}

const EmbeddingTable& ShardedEmbeddingLayer::table(
    std::int64_t global_table) const {
  PGASEMB_CHECK(global_table >= 0 && global_table < spec_.total_tables,
                "bad table id ", global_table);
  return *tables_[static_cast<std::size_t>(global_table)];
}

GpuLookupWork ShardedEmbeddingLayer::lookupWork(const SparseBatch& batch,
                                                int gpu) const {
  PGASEMB_CHECK(batch.numTables() == spec_.total_tables &&
                    batch.batchSize() == spec_.batch_size,
                "batch shape does not match layer spec");
  const int p = sharding_.numGpus();
  GpuLookupWork work;
  work.outputs_to.assign(static_cast<std::size_t>(p), 0);
  if (sharding_.scheme() == ShardingScheme::kTableWise) {
    const std::int64_t first = sharding_.firstTableOn(gpu);
    const std::int64_t count = sharding_.tablesOn(gpu);
    work.gathered_rows = batch.totalIndices(first, count);
    for (int d = 0; d < p; ++d) {
      work.outputs_to[static_cast<std::size_t>(d)] =
          count * sharding_.miniBatchSize(d);
    }
  } else {
    // Row-wise: every GPU scans all tables but gathers only ~1/p of each
    // bag, and emits one *partial* pooled vector per (table, sample).
    work.gathered_rows =
        batch.totalIndices(0, spec_.total_tables) / static_cast<double>(p);
    for (int d = 0; d < p; ++d) {
      work.outputs_to[static_cast<std::size_t>(d)] =
          spec_.total_tables * sharding_.miniBatchSize(d);
    }
  }
  return work;
}

std::int64_t ShardedEmbeddingLayer::hashedRow(std::int64_t table,
                                              std::uint64_t raw) const {
  return hashIndex(raw, tableSeed(spec_.seed, table), spec_.rows_per_table);
}

std::vector<float> ShardedEmbeddingLayer::pooledValue(
    const SparseBatch& batch, std::int64_t table,
    std::int64_t sample) const {
  std::vector<float> acc(static_cast<std::size_t>(spec_.dim), 0.0f);
  const auto offs = batch.offsets(table);
  const auto idxs = batch.indices(table);
  const auto b = static_cast<std::size_t>(sample);
  for (std::int64_t i = offs[b]; i < offs[b + 1]; ++i) {
    this->table(table).accumulateRow(
        hashedRow(table, idxs[static_cast<std::size_t>(i)]), acc);
  }
  return acc;
}

std::vector<float> ShardedEmbeddingLayer::partialPooledValue(
    const SparseBatch& batch, std::int64_t table, std::int64_t sample,
    int gpu) const {
  std::vector<float> acc(static_cast<std::size_t>(spec_.dim), 0.0f);
  const auto offs = batch.offsets(table);
  const auto idxs = batch.indices(table);
  const auto b = static_cast<std::size_t>(sample);
  const int p = sharding_.numGpus();
  for (std::int64_t i = offs[b]; i < offs[b + 1]; ++i) {
    const std::int64_t row =
        hashedRow(table, idxs[static_cast<std::size_t>(i)]);
    if (static_cast<int>(row % p) == gpu) {
      this->table(table).accumulateRow(row, acc);
    }
  }
  return acc;
}

std::vector<float> ShardedEmbeddingLayer::referenceOutput(
    const SparseBatch& batch, int gpu) const {
  const std::int64_t mb = sharding_.miniBatchSize(gpu);
  const std::int64_t b0 = sharding_.miniBatchBegin(gpu);
  std::vector<float> out(static_cast<std::size_t>(
      mb * spec_.total_tables * spec_.dim));
  for (std::int64_t s = 0; s < mb; ++s) {
    for (std::int64_t t = 0; t < spec_.total_tables; ++t) {
      const auto pooled = pooledValue(batch, t, b0 + s);
      const std::size_t base = static_cast<std::size_t>(
          (s * spec_.total_tables + t) * spec_.dim);
      for (int c = 0; c < spec_.dim; ++c) {
        out[base + static_cast<std::size_t>(c)] =
            pooled[static_cast<std::size_t>(c)];
      }
    }
  }
  return out;
}

}  // namespace pgasemb::emb

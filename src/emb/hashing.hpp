// Sparse-feature index hashing (paper §II-A).
//
// Raw categorical indices live in an arbitrarily large domain; a hash
// H: raw -> [0, M) maps them onto the table's M rows, trading collisions
// for bounded memory.  We use SplitMix64 with a per-table seed so tables
// hash independently.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace pgasemb::emb {

/// Per-table hash seed derived from a layer seed and the table id.
constexpr std::uint64_t tableSeed(std::uint64_t layer_seed,
                                  std::int64_t table) {
  return splitmix64(layer_seed ^ (0x9e3779b97f4a7c15ULL +
                                  static_cast<std::uint64_t>(table)));
}

/// Hash a raw sparse index into row [0, hash_size).
constexpr std::int64_t hashIndex(std::uint64_t raw_index,
                                 std::uint64_t table_seed,
                                 std::int64_t hash_size) {
  return static_cast<std::int64_t>(splitmix64(raw_index ^ table_seed) %
                                   static_cast<std::uint64_t>(hash_size));
}

/// Deterministic procedural embedding weight in [-1, 1): the "learned"
/// value of (table, row, col). Dense tables are initialized with this
/// same function so functional results are identical across storage
/// policies.
float proceduralWeight(std::uint64_t table_seed, std::int64_t row, int col);

}  // namespace pgasemb::emb

// The paper's experiment configurations (§IV) plus synthetic workload
// skew: Zipf(alpha) row-index popularity, the distribution real DLRM
// inference traffic follows ("Dissecting Embedding Bag Performance in
// DLRM Inference" — a small hot set absorbs most lookups).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "emb/layer.hpp"
#include "util/rng.hpp"

namespace pgasemb::emb {

/// Weak scaling (§IV-A): per GPU, 64 tables x 1M rows, dim 64, batch
/// 16384, pooling U(1, 128), 100 batches.
EmbLayerSpec weakScalingLayerSpec(int num_gpus);

/// Strong scaling (§IV-B): 96 tables x 1M rows total (sized to fill one
/// 32 GB V100), dim 64, batch 16384, pooling U(1, 32), 100 batches.
EmbLayerSpec strongScalingLayerSpec();

/// Number of inference batches both tests accumulate over.
inline constexpr int kPaperNumBatches = 100;

/// A small functional-mode spec for examples/tests (same shape, tiny
/// sizes).
EmbLayerSpec tinyLayerSpec();

/// Skewed inference-serving workload for the hot-row replica cache
/// (bench_cache): per GPU, 16 tables x 1M rows, dim 64, batch 16384,
/// single-id features (pooling 1), raw indices drawn Zipf(alpha) over
/// the row space so "capacity = x% of rows" maps directly onto the
/// analytic top-x% mass.
EmbLayerSpec cacheServingLayerSpec(int num_gpus);

/// Multi-node retrieval workload (bench_multinode --sweep): per GPU, 16
/// tables x 1M rows, dim 64, batch 2048, single-id features (pooling 1,
/// so the pooled-value range is exactly 1.0 and the inter-node codec's
/// per-table bound maps directly to quantizer bits). The small batch
/// keeps 16-node x 4-GPU sweeps tractable while every (src, dst) pair
/// still moves >100 KB per batch.
EmbLayerSpec multinodeServingLayerSpec(int num_gpus);

/// Open-loop serving workload (bench_serving): per GPU, 8 tables x 1M
/// rows, dim 64, pooling U(1, 32), batch shape = the dynamic batcher's
/// max batch size (retriever buffers are sized once; partially filled
/// batches pad with NULL inputs).
EmbLayerSpec servingLayerSpec(int num_gpus, std::int64_t max_batch_size);

// --- Zipf(alpha) row popularity -------------------------------------------
//
// Rank r (1-based) has probability r^-alpha / H(n, alpha).  Raw index
// (r - 1) is rank r, so the hottest rows are the lowest indices and a
// frequency-ranked cache of capacity C holds exactly raws [0, C).

/// Generalized harmonic number H(n, alpha) = sum_{i=1..n} i^-alpha.
/// Exact for small n; Euler–Maclaurin midpoint tail beyond, so it is
/// smooth and strictly increasing in n (the sampler inverts it).
double zipfHarmonic(std::uint64_t n, double alpha);

/// Probability mass of the top-k ranks under Zipf(alpha) over [1, n]:
/// H(k, alpha) / H(n, alpha).  alpha = 0 degenerates to k / n.
double zipfTopMass(std::uint64_t n, double alpha, std::uint64_t k);

/// Deterministic inverse-CDF Zipf sampler over ranks [1, n]: one
/// uniform draw per sample, binary-searched through the same
/// zipfHarmonic the analytic mass uses, so empirical top-k frequency
/// converges to zipfTopMass by construction.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  /// Rank in [1, n]; subtract 1 for a raw row index.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double prefixMass(std::uint64_t k) const;  ///< H(k, alpha), memoized head

  std::uint64_t n_;
  double alpha_;
  double total_;                 ///< H(n, alpha)
  std::vector<double> prefix_;   ///< H(1..kZipfExactPrefix, alpha)
};

// --- Per-query size distributions (serving) -------------------------------
//
// A query is one inference request carrying `size` candidate samples
// (DeepRecSys-style: the ranking model scores `size` items per user
// request). The dynamic batcher concatenates whole queries into one
// retrieval batch, so a batch's active sample count is the sum of its
// queries' sizes.

struct QuerySizeSpec {
  enum class Kind { kFixed, kUniform, kZipf };
  Kind kind = Kind::kFixed;
  /// kFixed: every query has `lo` samples. kUniform: U(lo, hi)
  /// inclusive. kZipf: size lo + (r - 1) with rank r ~ Zipf(alpha)
  /// over [1, hi - lo + 1] — most queries small, a heavy tail of large
  /// ones.
  std::int64_t lo = 1;
  std::int64_t hi = 1;
  double alpha = 1.0;  ///< kZipf only

  double meanSize() const;
};

/// Parses "fixed:N", "uniform:LO-HI", or "zipf:ALPHA:LO-HI" (e.g.
/// "zipf:1.2:1-256"). Throws InvalidArgumentError on malformed specs.
QuerySizeSpec parseQuerySizeSpec(const std::string& spec);

/// Round-trip of parseQuerySizeSpec, for reports and CSV keys.
std::string formatQuerySizeSpec(const QuerySizeSpec& spec);

/// Deterministic per-query sample-count sampler over a QuerySizeSpec
/// (one rng draw per query for the non-fixed kinds).
class QuerySizeSampler {
 public:
  explicit QuerySizeSampler(const QuerySizeSpec& spec);

  std::int64_t sample(Rng& rng) const;
  const QuerySizeSpec& spec() const { return spec_; }

 private:
  QuerySizeSpec spec_;
  std::optional<ZipfSampler> zipf_;  ///< kZipf: rank 1 = size `lo`
};

}  // namespace pgasemb::emb

// The paper's experiment configurations (§IV).
#pragma once

#include "emb/layer.hpp"

namespace pgasemb::emb {

/// Weak scaling (§IV-A): per GPU, 64 tables x 1M rows, dim 64, batch
/// 16384, pooling U(1, 128), 100 batches.
EmbLayerSpec weakScalingLayerSpec(int num_gpus);

/// Strong scaling (§IV-B): 96 tables x 1M rows total (sized to fill one
/// 32 GB V100), dim 64, batch 16384, pooling U(1, 32), 100 batches.
EmbLayerSpec strongScalingLayerSpec();

/// Number of inference batches both tests accumulate over.
inline constexpr int kPaperNumBatches = 100;

/// A small functional-mode spec for examples/tests (same shape, tiny
/// sizes).
EmbLayerSpec tinyLayerSpec();

}  // namespace pgasemb::emb

// The baseline's unpack / data-rearrangement kernel (paper §III-A item 1).
//
// After the all-to-all, GPU d's receive buffer holds contiguous chunks
// ordered by source GPU: [src][src-local table][d-local sample][col].
// The interaction layer needs [d-local sample][global table][col], so the
// baseline pays one extra streaming pass over all received (plus local)
// data.  The PGAS path has no analogue of this kernel — that is one of
// the paper's two headline savings.
#pragma once

#include <cstdint>

#include "emb/layer.hpp"
#include "gpu/kernel.hpp"

namespace pgasemb::emb {

class CacheFilter;  // replica_cache.hpp

/// Offset (elements) of (src GPU, src-local table, dst-local sample, col)
/// in GPU `dst`'s receive buffer.
std::int64_t recvBufferIndex(const Sharding& sharding, int dst, int src,
                             std::int64_t local_table,
                             std::int64_t local_sample, int col, int dim);

/// Elements in GPU `dst`'s receive buffer (all sources, local included).
std::int64_t recvBufferElements(const Sharding& sharding, int dst, int dim);

/// Build GPU `gpu`'s unpack kernel: rearranges `recv_buffer` into
/// `output` (the final [sample][table][col] tensor). Pass both buffers
/// in every mode — the builder declares the kernel's simsan read/write
/// effects from them when a checker is attached and runs the functional
/// body only when they are backed.  With a cache `filter` only the miss
/// bags are rearranged (the served bags never crossed the wire — the
/// serve kernel wrote them straight into `output`); the filter must
/// outlive the kernel's execution.
gpu::KernelDesc buildUnpackKernel(ShardedEmbeddingLayer& layer, int gpu,
                                  gpu::DeviceBuffer* recv_buffer,
                                  gpu::DeviceBuffer* output,
                                  const CacheFilter* filter = nullptr);

}  // namespace pgasemb::emb

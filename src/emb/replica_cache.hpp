// Per-GPU hot-row replica cache (HugeCTR HPS-style embedding cache).
//
// Real DLRM inference traffic is Zipf-skewed: a small hot set of rows
// absorbs most lookups.  Every GPU therefore holds a capacity-bounded
// replica of the globally hottest `capacity_rows` rows of EVERY table
// (frequency-ranked admission: under the library's Zipf workloads rank
// order equals raw-index order, so the hot set is raws [0, capacity)).
// A destination GPU can then pool a (table, sample) bag entirely from
// its local replica whenever all of the bag's indices are hot — that
// pooled output never enters the exchange: the collective's all-to-all
// split shrinks, and the PGAS path skips the remote put AND its
// per-message header (paper §IV header ablation), shortening quiet.
//
// CacheFilter is the per-batch partition of the lookup workload this
// induces: the owner-side miss lookup, the destination-side replica
// serve, the probe volume, and the hit/saved-bytes accounting — exact
// for materialized batches, expectations for statistical ones.
#pragma once

#include <cstdint>
#include <vector>

#include "emb/layer.hpp"
#include "gpu/kernel.hpp"

namespace pgasemb::emb {

class CacheFilter;

class ReplicaCache {
 public:
  /// Allocates one replica block per GPU: total_tables x capacity_rows
  /// x dim fp32 elements (capacity is clamped to the raw-index domain).
  /// Table-wise sharding only — row-wise already spreads every row.
  ReplicaCache(ShardedEmbeddingLayer& layer, std::int64_t capacity_rows);
  ~ReplicaCache();

  ReplicaCache(const ReplicaCache&) = delete;
  ReplicaCache& operator=(const ReplicaCache&) = delete;

  ShardedEmbeddingLayer& layer() const { return layer_; }
  std::int64_t capacityRows() const { return capacity_rows_; }

  /// Frequency-ranked admission: raw index r is replicated iff r <
  /// capacity (Zipf rank order == raw order in this library).
  bool hitsIndex(std::uint64_t raw) const {
    return raw < static_cast<std::uint64_t>(capacity_rows_);
  }

  /// P(one raw index is hot): the analytic Zipf top-capacity mass (or
  /// capacity / index_space when the workload is uniform).
  double indexHitRate() const { return index_hit_rate_; }

  /// GPU `gpu`'s replica block (simsan footprints, memory accounting).
  const gpu::DeviceBuffer& replica(int gpu) const;

 private:
  ShardedEmbeddingLayer& layer_;
  std::int64_t capacity_rows_;
  double index_hit_rate_;
  std::vector<gpu::DeviceBuffer> replicas_;
};

/// Per-batch cache partition of the lookup workload. A bag is *served*
/// when every index in it is hot (empty bags are trivially served).
/// Exact when the batch is materialized; per-table expectations over
/// the pooling distribution otherwise (bag-hit probability E[h^L]).
class CacheFilter {
 public:
  CacheFilter(const ShardedEmbeddingLayer& layer, const SparseBatch& batch,
              const ReplicaCache& cache);

  /// Owner-side residual lookup of GPU `gpu` (miss bags only): what the
  /// shrunk lookup kernel computes and the exchange carries.
  const GpuLookupWork& missWork(int gpu) const;

  /// Destination-side replica serve of GPU `gpu` (hit bags of its own
  /// mini-batch across ALL tables); outputs_to is nonzero only at self.
  const GpuLookupWork& serveWork(int gpu) const;

  /// Raw indices GPU `gpu`'s probe/partition kernel classifies: its own
  /// tables' full batch plus all tables' own mini-batch.
  double probedIndices(int gpu) const;

  /// Was bag (table, sample) served from the replica? Materialized only.
  bool bagServed(std::int64_t table, std::int64_t sample) const;

  double lookups() const { return lookups_; }  ///< total raw indices
  double hits() const { return hits_; }        ///< indices served locally
  double hitRate() const { return lookups_ > 0.0 ? hits_ / lookups_ : 0.0; }

  /// Exchange payload bytes the served bags would have put on the wire.
  double savedWireBytes() const { return saved_wire_bytes_; }

 private:
  const ShardedEmbeddingLayer& layer_;
  bool materialized_ = false;
  std::vector<GpuLookupWork> miss_work_;
  std::vector<GpuLookupWork> serve_work_;
  std::vector<double> probed_;
  std::vector<std::vector<std::uint8_t>> served_;  // [table][sample]
  double lookups_ = 0.0;
  double hits_ = 0.0;
  double saved_wire_bytes_ = 0.0;
};

/// Build GPU `gpu`'s probe/partition kernel: a streaming classification
/// pass over the raw indices that compacts miss lists for the lookup
/// and hit lists for the serve kernel. Metadata only — no tensor
/// traffic, so no functional body.
gpu::KernelDesc buildCacheProbeKernel(const ShardedEmbeddingLayer& layer,
                                      const CacheFilter& filter, int gpu);

/// Build GPU `gpu`'s replica-serve kernel: pools every served bag of
/// its own mini-batch from the local `replica` block straight into
/// `output` (the final [sample][table][col] tensor) — local HBM reads
/// instead of exchange traffic. Pass both buffers in every mode — the
/// builder declares the kernel's simsan replica-read / output-write
/// effects from them when a checker is attached and runs the functional
/// body only when `output` is backed and the batch is materialized.
gpu::KernelDesc buildCacheServeKernel(ShardedEmbeddingLayer& layer,
                                      const SparseBatch& batch,
                                      const CacheFilter& filter, int gpu,
                                      const gpu::DeviceBuffer* replica,
                                      gpu::DeviceBuffer* output);

}  // namespace pgasemb::emb

#include "emb/input_partition.hpp"

namespace pgasemb::emb {

InputPartitionCost inputPartitionCost(const ShardedEmbeddingLayer& layer,
                                      const SparseBatch& batch, bool fused,
                                      const InputPartitionParams& params) {
  const auto& spec = layer.spec();
  const double total_indices = batch.totalIndices(0, spec.total_tables);
  InputPartitionCost cost;
  if (fused) {
    // The kernel scans the full replicated (offsets + indices) stream
    // and picks out its own tables/rows; the host only ships one copy.
    cost.host_time = params.host_fixed;
    cost.extra_kernel_bytes_per_gpu =
        total_indices * 8.0 +
        static_cast<double>(spec.total_tables) * spec.batch_size * 8.0;
    return cost;
  }
  cost.host_time = params.host_fixed;
  if (layer.sharding().scheme() == ShardingScheme::kTableWise) {
    // Route whole tables: one slice per (table, destination).
    cost.host_time += params.host_per_table * spec.total_tables;
  } else {
    // Route every raw index by its hashed row's owner.
    cost.host_time += params.host_per_index *
                      static_cast<std::int64_t>(total_indices);
  }
  return cost;
}

}  // namespace pgasemb::emb

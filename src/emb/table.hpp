// Embedding tables (paper §II-A, Fig 2).
//
// A table is M rows of d learned fp32 weights on one device.  Storage is
// either dense (a real device buffer — functional mode, trainable) or
// procedural (weights computed from a hash of (table, row, col) — zero
// bytes of host memory, used for paper-scale timing runs).  Both policies
// expose identical values for the same seed, so correctness tests can
// compare the two paths bit-for-bit.
#pragma once

#include <cstdint>

#include "emb/hashing.hpp"
#include "gpu/device.hpp"

namespace pgasemb::emb {

enum class TableStorage { kDense, kProcedural };

struct TableConfig {
  std::int64_t hash_size = 100;  ///< M: rows after hashing
  int dim = 64;                  ///< d: embedding vector size
};

class EmbeddingTable {
 public:
  /// Allocates the table on `device` (dense storage is initialized to the
  /// procedural weights for `seed` so both policies agree).
  EmbeddingTable(gpu::Device& device, const TableConfig& config,
                 std::uint64_t seed, TableStorage storage);

  /// Procedural table whose device capacity is managed externally (used
  /// by row-wise sharding, where one table's rows are striped over all
  /// GPUs and each GPU charges only its shard).
  EmbeddingTable(const TableConfig& config, std::uint64_t seed);

  const TableConfig& config() const { return config_; }
  TableStorage storage() const { return storage_; }
  std::uint64_t seed() const { return seed_; }
  std::int64_t sizeBytes() const { return config_.hash_size * config_.dim * 4; }

  /// Weight of (row, col).
  float weight(std::int64_t row, int col) const;

  /// Accumulate row `row` into `acc` (size dim) — the pooling step.
  void accumulateRow(std::int64_t row, std::span<float> acc) const;

  /// Add `grad` (size dim) into row `row` scaled by -lr (SGD update).
  /// Dense storage only.
  void applyGradient(std::int64_t row, std::span<const float> grad,
                     float lr);

  /// Release the device allocation.
  void release(gpu::Device& device);

 private:
  TableConfig config_;
  std::uint64_t seed_;
  TableStorage storage_;
  gpu::DeviceBuffer buffer_;
};

}  // namespace pgasemb::emb

#include "emb/sparse_batch.hpp"

#include <optional>

#include "emb/workload.hpp"
#include "util/expect.hpp"

namespace pgasemb::emb {
namespace {

void validate(const SparseBatchSpec& spec) {
  PGASEMB_CHECK(spec.num_tables >= 1, "need at least one table");
  PGASEMB_CHECK(spec.batch_size >= 1, "need at least one sample");
  PGASEMB_CHECK(spec.min_pooling >= 0, "negative min pooling");
  PGASEMB_CHECK(spec.max_pooling >= spec.min_pooling,
                "max pooling below min pooling");
  PGASEMB_CHECK(spec.index_space >= 1, "empty index space");
  PGASEMB_CHECK(spec.zipf_alpha >= 0.0, "negative Zipf alpha");
  PGASEMB_CHECK(spec.per_table_max_pooling.empty() ||
                    static_cast<std::int64_t>(
                        spec.per_table_max_pooling.size()) ==
                        spec.num_tables,
                "per-table pooling list must match the table count");
  for (int m : spec.per_table_max_pooling) {
    PGASEMB_CHECK(m >= spec.min_pooling,
                  "per-table max pooling below min pooling");
  }
  PGASEMB_CHECK(spec.active_samples >= 0 &&
                    spec.active_samples <= spec.batch_size,
                "active samples outside [0, batch_size]");
}

}  // namespace

SparseBatch SparseBatch::statistical(const SparseBatchSpec& spec) {
  validate(spec);
  SparseBatch b;
  b.spec_ = spec;
  b.materialized_ = false;
  return b;
}

SparseBatch SparseBatch::generateUniform(const SparseBatchSpec& spec,
                                         Rng& rng) {
  validate(spec);
  SparseBatch b;
  b.spec_ = spec;
  b.materialized_ = true;
  b.offsets_.resize(static_cast<std::size_t>(spec.num_tables));
  b.indices_.resize(static_cast<std::size_t>(spec.num_tables));
  // Zipf skew: rank r maps to raw index r-1, so the hottest rows are
  // the lowest raws (the replica cache's admission order). alpha = 0
  // keeps the historical uniform draw verbatim.
  std::optional<ZipfSampler> zipf;
  if (spec.zipf_alpha > 0.0) {
    zipf.emplace(spec.index_space, spec.zipf_alpha);
  }
  // Samples past the active fill are NULL inputs (empty bags): no RNG
  // draws, so a fully active batch consumes the exact historical stream.
  const std::int64_t active = spec.activeSamples();
  for (std::int64_t t = 0; t < spec.num_tables; ++t) {
    auto& offs = b.offsets_[static_cast<std::size_t>(t)];
    auto& idxs = b.indices_[static_cast<std::size_t>(t)];
    offs.reserve(static_cast<std::size_t>(spec.batch_size) + 1);
    offs.push_back(0);
    for (std::int64_t s = 0; s < spec.batch_size; ++s) {
      const std::int64_t bag =
          s < active ? rng.uniformInt(spec.min_pooling, spec.maxPoolingOf(t))
                     : 0;
      for (std::int64_t i = 0; i < bag; ++i) {
        idxs.push_back(zipf ? zipf->sample(rng) - 1
                            : rng.nextBounded(spec.index_space));
      }
      offs.push_back(static_cast<std::int64_t>(idxs.size()));
    }
  }
  return b;
}

std::span<const std::int64_t> SparseBatch::offsets(std::int64_t table) const {
  PGASEMB_CHECK(materialized_, "offsets() on a statistical batch");
  PGASEMB_CHECK(table >= 0 && table < spec_.num_tables, "bad table ", table);
  return offsets_[static_cast<std::size_t>(table)];
}

std::span<const std::uint64_t> SparseBatch::indices(
    std::int64_t table) const {
  PGASEMB_CHECK(materialized_, "indices() on a statistical batch");
  PGASEMB_CHECK(table >= 0 && table < spec_.num_tables, "bad table ", table);
  return indices_[static_cast<std::size_t>(table)];
}

std::int64_t SparseBatch::poolingFactor(std::int64_t table,
                                        std::int64_t sample) const {
  const auto offs = offsets(table);
  PGASEMB_CHECK(sample >= 0 && sample < spec_.batch_size, "bad sample ",
                sample);
  return offs[static_cast<std::size_t>(sample) + 1] -
         offs[static_cast<std::size_t>(sample)];
}

double SparseBatch::totalIndices(std::int64_t first,
                                 std::int64_t count) const {
  PGASEMB_CHECK(first >= 0 && count >= 0 &&
                    first + count <= spec_.num_tables,
                "bad table range [", first, ", ", first + count, ")");
  if (!materialized_) {
    double total = 0.0;
    for (std::int64_t t = first; t < first + count; ++t) {
      total += static_cast<double>(spec_.activeSamples()) *
               spec_.avgPoolingOf(t);
    }
    return total;
  }
  std::int64_t total = 0;
  for (std::int64_t t = first; t < first + count; ++t) {
    total += tableIndexCount(t);
  }
  return static_cast<double>(total);
}

std::int64_t SparseBatch::tableIndexCount(std::int64_t table) const {
  PGASEMB_CHECK(materialized_, "tableIndexCount() on a statistical batch");
  return static_cast<std::int64_t>(
      indices_[static_cast<std::size_t>(table)].size());
}

}  // namespace pgasemb::emb

#include "emb/table.hpp"

#include "util/expect.hpp"

namespace pgasemb::emb {

EmbeddingTable::EmbeddingTable(gpu::Device& device,
                               const TableConfig& config, std::uint64_t seed,
                               TableStorage storage)
    : config_(config), seed_(seed), storage_(storage) {
  PGASEMB_CHECK(config.hash_size >= 1, "table needs at least one row");
  PGASEMB_CHECK(config.dim >= 1, "table needs positive dim");
  const std::int64_t elements = config.hash_size * config.dim;
  if (storage == TableStorage::kDense) {
    buffer_ = device.alloc(elements);
    if (buffer_.backed()) {
      auto data = buffer_.span();
      for (std::int64_t r = 0; r < config.hash_size; ++r) {
        for (int c = 0; c < config.dim; ++c) {
          data[static_cast<std::size_t>(r * config.dim + c)] =
              proceduralWeight(seed, r, c);
        }
      }
    }
  } else {
    // Capacity is still charged — the paper's strong-scaling config is
    // sized by what fits in one 32 GB GPU.
    buffer_ = device.allocVirtual(elements);
  }
}

EmbeddingTable::EmbeddingTable(const TableConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed), storage_(TableStorage::kProcedural) {
  PGASEMB_CHECK(config.hash_size >= 1, "table needs at least one row");
  PGASEMB_CHECK(config.dim >= 1, "table needs positive dim");
}

float EmbeddingTable::weight(std::int64_t row, int col) const {
  PGASEMB_CHECK(row >= 0 && row < config_.hash_size, "row out of range: ",
                row);
  PGASEMB_CHECK(col >= 0 && col < config_.dim, "col out of range: ", col);
  if (storage_ == TableStorage::kDense && buffer_.backed()) {
    return buffer_.span()[static_cast<std::size_t>(row * config_.dim + col)];
  }
  return proceduralWeight(seed_, row, col);
}

void EmbeddingTable::accumulateRow(std::int64_t row,
                                   std::span<float> acc) const {
  PGASEMB_CHECK(static_cast<int>(acc.size()) == config_.dim,
                "accumulator size mismatch");
  if (storage_ == TableStorage::kDense && buffer_.backed()) {
    const auto data = buffer_.span();
    const std::size_t base = static_cast<std::size_t>(row * config_.dim);
    for (int c = 0; c < config_.dim; ++c) {
      acc[static_cast<std::size_t>(c)] += data[base +
                                               static_cast<std::size_t>(c)];
    }
  } else {
    for (int c = 0; c < config_.dim; ++c) {
      acc[static_cast<std::size_t>(c)] += proceduralWeight(seed_, row, c);
    }
  }
}

void EmbeddingTable::applyGradient(std::int64_t row,
                                   std::span<const float> grad, float lr) {
  PGASEMB_CHECK(storage_ == TableStorage::kDense && buffer_.backed(),
                "applyGradient requires dense backed storage");
  PGASEMB_CHECK(static_cast<int>(grad.size()) == config_.dim,
                "gradient size mismatch");
  auto data = buffer_.span();
  const std::size_t base = static_cast<std::size_t>(row * config_.dim);
  for (int c = 0; c < config_.dim; ++c) {
    data[base + static_cast<std::size_t>(c)] -=
        lr * grad[static_cast<std::size_t>(c)];
  }
}

void EmbeddingTable::release(gpu::Device& device) {
  if (buffer_.valid()) device.free(buffer_);
}

}  // namespace pgasemb::emb

#include "emb/lookup_kernel.hpp"

#include "emb/replica_cache.hpp"
#include "util/expect.hpp"

namespace pgasemb::emb {

SimTime lookupComputeTime(const ShardedEmbeddingLayer& layer,
                          const GpuLookupWork& work) {
  const auto& cm =
      const_cast<ShardedEmbeddingLayer&>(layer).system().costModel();
  const double dim = static_cast<double>(layer.dim());
  const double outputs = static_cast<double>(work.totalOutputs());
  // CSR offsets + raw indices + gathered rows + pooled output writes.
  const double bytes = outputs * 8.0 + work.gathered_rows * 8.0 +
                       work.gathered_rows * dim * 4.0 +
                       outputs * dim * 4.0;
  const double flops = work.gathered_rows * dim;
  return cm.gatherKernelTime(flops, bytes, work.gathered_rows);
}

std::int64_t sendBufferElements(const Sharding& sharding, int gpu,
                                int dim) {
  return sharding.tablesOn(gpu) * sharding.batchSize() * dim;
}

std::int64_t sendBufferIndex(const Sharding& sharding, int gpu,
                             std::int64_t local_table, std::int64_t sample,
                             int col, int dim) {
  const int dst = sharding.sampleOwner(sample);
  const std::int64_t t_local_count = sharding.tablesOn(gpu);
  const std::int64_t region_base =
      sharding.miniBatchBegin(dst) * t_local_count;
  const std::int64_t in_region =
      local_table * sharding.miniBatchSize(dst) +
      (sample - sharding.miniBatchBegin(dst));
  return (region_base + in_region) * dim + col;
}

BaselineLookupKernel buildBaselineLookupKernel(
    ShardedEmbeddingLayer& layer, const SparseBatch& batch, int gpu,
    gpu::DeviceBuffer* send_buffer, const CacheFilter* filter) {
  const auto& sharding = layer.sharding();
  PGASEMB_CHECK(sharding.scheme() == ShardingScheme::kTableWise,
                "baseline send-buffer layout is table-wise only");
  const GpuLookupWork work =
      filter ? filter->missWork(gpu) : layer.lookupWork(batch, gpu);
  const int p = sharding.numGpus();
  const int dim = layer.dim();

  BaselineLookupKernel out;
  out.desc.name = "emb_lookup_baseline.gpu" + std::to_string(gpu);
  out.desc.duration = lookupComputeTime(layer, work);
  out.send_bytes.resize(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    out.send_bytes[static_cast<std::size_t>(d)] =
        work.outputs_to[static_cast<std::size_t>(d)] * dim * 4;
  }

  if (send_buffer != nullptr) {
    PGASEMB_CHECK(send_buffer->size() >=
                      sendBufferElements(sharding, gpu, dim),
                  "send buffer too small");
    if (layer.system().sanitizer() != nullptr) {
      out.desc.mem_effects.push_back(
          {gpu,
           simsan::StridedRange::contiguous(send_buffer->offset(),
                                            send_buffer->size()),
           simsan::AccessKind::kWrite, ""});
    }
  }
  if (send_buffer != nullptr && send_buffer->backed() &&
      batch.materialized()) {
    out.desc.functional_body = [&layer, &batch, gpu, send_buffer, filter] {
      const auto& sh = layer.sharding();
      const std::int64_t first = sh.firstTableOn(gpu);
      const std::int64_t count = sh.tablesOn(gpu);
      auto dst_span = send_buffer->span();
      for (std::int64_t lt = 0; lt < count; ++lt) {
        for (std::int64_t b = 0; b < sh.batchSize(); ++b) {
          if (filter && filter->bagServed(first + lt, b)) continue;
          const auto pooled = layer.pooledValue(batch, first + lt, b);
          for (int c = 0; c < layer.dim(); ++c) {
            dst_span[static_cast<std::size_t>(
                sendBufferIndex(sh, gpu, lt, b, c, layer.dim()))] =
                pooled[static_cast<std::size_t>(c)];
          }
        }
      }
    };
  }
  return out;
}

FusedLookupKernel buildFusedLookupKernel(
    ShardedEmbeddingLayer& layer, const SparseBatch& batch, int gpu,
    std::vector<gpu::DeviceBuffer>* outputs, int slices,
    const CacheFilter* filter, fabric::InterNodeCodec* codec,
    int gpus_per_node) {
  PGASEMB_CHECK(slices >= 1, "need at least one slice");
  const auto& sharding = layer.sharding();
  PGASEMB_CHECK(filter == nullptr ||
                    sharding.scheme() == ShardingScheme::kTableWise,
                "the replica cache is table-wise only");
  PGASEMB_CHECK(codec == nullptr ||
                    (gpus_per_node > 0 &&
                     sharding.scheme() == ShardingScheme::kTableWise),
                "inter-node compression is table-wise only and needs the "
                "node shape");
  const GpuLookupWork work =
      filter ? filter->missWork(gpu) : layer.lookupWork(batch, gpu);
  const int p = sharding.numGpus();
  const int dim = layer.dim();

  FusedLookupKernel out;
  out.desc.name = "emb_lookup_pgas_fused.gpu" + std::to_string(gpu);
  out.desc.duration = lookupComputeTime(layer, work);

  std::vector<std::int64_t> payload(static_cast<std::size_t>(p), 0);
  for (int d = 0; d < p; ++d) {
    payload[static_cast<std::size_t>(d)] =
        work.outputs_to[static_cast<std::size_t>(d)] * dim * 4;
  }
  out.plan = pgas::makeUniformPlan(payload, gpu, slices,
                                   kCoalescedMessageBytes);

  const bool row_wise = sharding.scheme() == ShardingScheme::kRowWise;
  if (outputs != nullptr) {
    PGASEMB_CHECK(static_cast<int>(outputs->size()) == p,
                  "need one output tensor per GPU");
    if (layer.system().sanitizer() != nullptr) {
      // Local slice of the fused write runs under the stream actor; the
      // one-sided remote writes run under the kernel's put actor until
      // quiet joins them back (PgasRuntime::attachMessagePlan).
      for (int d = 0; d < p; ++d) {
        auto range = fusedWriteFootprint(sharding, gpu, d, dim);
        range.begin += (*outputs)[static_cast<std::size_t>(d)].offset();
        if (d == gpu) {
          out.desc.mem_effects.push_back(
              {d, range,
               row_wise ? simsan::AccessKind::kAtomicAdd
                        : simsan::AccessKind::kWrite,
               ""});
        } else {
          out.remote_writes.push_back(
              {d, range,
               row_wise ? simsan::AccessKind::kAtomicAdd
                        : simsan::AccessKind::kRemoteWrite,
               out.desc.name + ".put"});
        }
      }
    }
  }
  if (outputs != nullptr &&
      (*outputs)[static_cast<std::size_t>(gpu)].backed() &&
      batch.materialized()) {
    out.desc.functional_body = [&layer, &batch, gpu, outputs, row_wise,
                                filter, codec, gpus_per_node] {
      const auto& sh = layer.sharding();
      const int dim2 = layer.dim();
      const std::int64_t first =
          row_wise ? 0 : sh.firstTableOn(gpu);
      const std::int64_t count =
          row_wise ? sh.totalTables() : sh.tablesOn(gpu);
      for (std::int64_t lt = 0; lt < count; ++lt) {
        const std::int64_t t = first + lt;
        for (std::int64_t b = 0; b < sh.batchSize(); ++b) {
          if (filter && filter->bagServed(t, b)) continue;
          const int dst = sh.sampleOwner(b);
          auto dst_span =
              (*outputs)[static_cast<std::size_t>(dst)].span();
          const auto pooled =
              row_wise ? layer.partialPooledValue(batch, t, b, gpu)
                       : layer.pooledValue(batch, t, b);
          // Puts leaving the node really go through the codec, so the
          // landed outputs carry the measured compression error.
          const bool compress =
              codec != nullptr &&
              dst / gpus_per_node != gpu / gpus_per_node;
          for (int c = 0; c < dim2; ++c) {
            const auto idx = static_cast<std::size_t>(
                sh.outputIndex(b, t, c, dim2));
            const float v = compress
                                ? codec->transcode(
                                      t, pooled[static_cast<std::size_t>(c)])
                                : pooled[static_cast<std::size_t>(c)];
            // One-sided store for table-wise ownership; remote atomic
            // add for row-wise partial sums (paper §V).
            if (row_wise) {
              dst_span[idx] += v;
            } else {
              dst_span[idx] = v;
            }
          }
        }
      }
    };
  }
  return out;
}

simsan::StridedRange fusedWriteFootprint(const Sharding& sharding, int src,
                                         int dst, int dim) {
  if (sharding.scheme() == ShardingScheme::kRowWise) {
    // Row-wise partial sums touch every (sample, table) cell of dst.
    return simsan::StridedRange::contiguous(
        0, sharding.outputElements(dst, dim));
  }
  // Table-wise: dst's output is [mini-batch sample][global table][col];
  // src owns one contiguous table block, hit once per dst-local sample.
  return simsan::StridedRange{
      /*begin=*/sharding.firstTableOn(src) * dim,
      /*len=*/sharding.tablesOn(src) * dim,
      /*stride=*/sharding.totalTables() * dim,
      /*count=*/sharding.miniBatchSize(dst)};
}

}  // namespace pgasemb::emb

// Sharding: how embedding tables and the batch are split across GPUs
// (paper §II-C, Fig 4).
//
// - Tables are model-parallel: table-wise sharding (the paper's scheme)
//   gives each GPU a contiguous block of whole tables; row-wise sharding
//   (paper §V / RecShard [6]) stripes every table's rows round-robin
//   across GPUs.
// - The output batch is data-parallel: sample b belongs to the GPU whose
//   contiguous mini-batch block contains b.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace pgasemb::emb {

/// Block distribution of `count` items over `parts` parts; the first
/// (count % parts) parts get one extra item. Used both for table->GPU
/// ownership and for the batch->mini-batch split.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(std::int64_t count, int parts);

  /// Explicit block boundaries: boundaries[k]..boundaries[k+1] is part
  /// k's range; boundaries.front() == 0, strictly increasing overall.
  /// Used by load-balanced table sharding (RecShard-style sizing).
  explicit BlockPartition(std::vector<std::int64_t> boundaries);

  std::int64_t count() const { return count_; }
  int parts() const { return parts_; }

  std::int64_t begin(int part) const;
  std::int64_t end(int part) const { return begin(part) + size(part); }
  std::int64_t size(int part) const;
  int ownerOf(std::int64_t item) const;

 private:
  std::int64_t count_ = 0;
  int parts_ = 1;
  std::vector<std::int64_t> boundaries_;  // empty = uniform split
};

enum class ShardingScheme { kTableWise, kRowWise };

/// Table-wise sharding + batch partitioning for one EMB layer instance.
class Sharding {
 public:
  Sharding() = default;
  Sharding(std::int64_t total_tables, std::int64_t batch_size, int num_gpus,
           ShardingScheme scheme = ShardingScheme::kTableWise);

  /// Table-wise sharding with explicit table-block boundaries (from
  /// balancedTableBoundaries or a custom planner).
  Sharding(std::vector<std::int64_t> table_boundaries,
           std::int64_t batch_size, int num_gpus);

  ShardingScheme scheme() const { return scheme_; }
  int numGpus() const { return tables_.parts(); }
  std::int64_t totalTables() const { return tables_.count(); }
  std::int64_t batchSize() const { return batch_.count(); }

  // Model-parallel side (table-wise).
  const BlockPartition& tablePartition() const { return tables_; }
  int tableOwner(std::int64_t table) const { return tables_.ownerOf(table); }
  std::int64_t tablesOn(int gpu) const { return tables_.size(gpu); }
  std::int64_t firstTableOn(int gpu) const { return tables_.begin(gpu); }

  // Data-parallel side.
  const BlockPartition& batchPartition() const { return batch_; }
  int sampleOwner(std::int64_t sample) const { return batch_.ownerOf(sample); }
  std::int64_t miniBatchSize(int gpu) const { return batch_.size(gpu); }
  std::int64_t miniBatchBegin(int gpu) const { return batch_.begin(gpu); }

  /// Index of (sample, table, col) in GPU `owner`'s final output tensor
  /// laid out [mini-batch sample][global table][col] — the layout the
  /// interaction layer consumes, and the address PGAS writes target.
  std::int64_t outputIndex(std::int64_t sample, std::int64_t table,
                           int col, int dim) const;

  /// Elements in one GPU's final output tensor.
  std::int64_t outputElements(int gpu, int dim) const;

 private:
  BlockPartition tables_;
  BlockPartition batch_;
  ShardingScheme scheme_ = ShardingScheme::kTableWise;
};

/// Contiguous table-block boundaries over `parts` GPUs that balance the
/// per-GPU sum of `weights` (expected gathered rows, bytes, ...): a
/// greedy sweep that closes a block once it reaches the ideal share.
/// Returns parts + 1 boundaries suitable for Sharding.
std::vector<std::int64_t> balancedTableBoundaries(
    const std::vector<double>& weights, int parts);

}  // namespace pgasemb::emb

#include "emb/unpack_kernel.hpp"

#include "emb/replica_cache.hpp"
#include "util/expect.hpp"

namespace pgasemb::emb {

std::int64_t recvBufferIndex(const Sharding& sharding, int dst, int src,
                             std::int64_t local_table,
                             std::int64_t local_sample, int col, int dim) {
  // Chunks are ordered by source GPU; source g contributes
  // tablesOn(g) * miniBatchSize(dst) rows. Because tables are
  // block-partitioned, the chunk base is firstTableOn(src) rows-worth.
  const std::int64_t mb = sharding.miniBatchSize(dst);
  const std::int64_t base = sharding.firstTableOn(src) * mb;
  return (base + local_table * mb + local_sample) * dim + col;
}

std::int64_t recvBufferElements(const Sharding& sharding, int dst, int dim) {
  return sharding.totalTables() * sharding.miniBatchSize(dst) * dim;
}

gpu::KernelDesc buildUnpackKernel(ShardedEmbeddingLayer& layer, int gpu,
                                  gpu::DeviceBuffer* recv_buffer,
                                  gpu::DeviceBuffer* output,
                                  const CacheFilter* filter) {
  const auto& sharding = layer.sharding();
  const int dim = layer.dim();
  const auto& cm = layer.system().costModel();

  gpu::KernelDesc desc;
  desc.name = "emb_unpack.gpu" + std::to_string(gpu);
  // One streaming read + one write of every received element. With a
  // cache filter only the miss outputs arrive, so only they are moved.
  double received = static_cast<double>(recvBufferElements(sharding, gpu, dim));
  if (filter != nullptr) {
    double miss_outputs = 0.0;
    for (int src = 0; src < sharding.numGpus(); ++src) {
      miss_outputs += static_cast<double>(
          filter->missWork(src).outputs_to[static_cast<std::size_t>(gpu)]);
    }
    received = miss_outputs * static_cast<double>(dim);
  }
  const double bytes = 2.0 * received * 4.0;
  desc.duration = cm.unpackKernelTime(bytes);

  if (recv_buffer != nullptr && output != nullptr) {
    if (layer.system().sanitizer() != nullptr) {
      desc.mem_effects.push_back(
          {gpu,
           simsan::StridedRange::contiguous(recv_buffer->offset(),
                                            recv_buffer->size()),
           simsan::AccessKind::kRead, ""});
      desc.mem_effects.push_back(
          {gpu,
           simsan::StridedRange::contiguous(output->offset(),
                                            output->size()),
           simsan::AccessKind::kWrite, ""});
    }
  }
  if (recv_buffer != nullptr && output != nullptr &&
      recv_buffer->backed() && output->backed()) {
    desc.functional_body = [&layer, gpu, recv_buffer, output, filter] {
      const auto& sh = layer.sharding();
      const int dim2 = layer.dim();
      const auto recv = recv_buffer->span();
      auto out = output->span();
      const std::int64_t mb = sh.miniBatchSize(gpu);
      const std::int64_t b0 = sh.miniBatchBegin(gpu);
      for (int src = 0; src < sh.numGpus(); ++src) {
        const std::int64_t first = sh.firstTableOn(src);
        const std::int64_t count = sh.tablesOn(src);
        for (std::int64_t lt = 0; lt < count; ++lt) {
          for (std::int64_t s = 0; s < mb; ++s) {
            if (filter && filter->bagServed(first + lt, b0 + s)) continue;
            for (int c = 0; c < dim2; ++c) {
              out[static_cast<std::size_t>(
                  sh.outputIndex(b0 + s, first + lt, c, dim2))] =
                  recv[static_cast<std::size_t>(recvBufferIndex(
                      sh, gpu, src, lt, s, c, dim2))];
            }
          }
        }
      }
    };
  }
  return desc;
}

}  // namespace pgasemb::emb

#include "emb/sharding.hpp"

#include <algorithm>
#include <cmath>

namespace pgasemb::emb {

BlockPartition::BlockPartition(std::int64_t count, int parts)
    : count_(count), parts_(parts) {
  PGASEMB_CHECK(count >= 0, "negative item count");
  PGASEMB_CHECK(parts >= 1, "need at least one part");
}

BlockPartition::BlockPartition(std::vector<std::int64_t> boundaries)
    : boundaries_(std::move(boundaries)) {
  PGASEMB_CHECK(boundaries_.size() >= 2, "need at least one part");
  PGASEMB_CHECK(boundaries_.front() == 0, "boundaries must start at 0");
  for (std::size_t k = 1; k < boundaries_.size(); ++k) {
    PGASEMB_CHECK(boundaries_[k] >= boundaries_[k - 1],
                  "boundaries must be non-decreasing");
  }
  parts_ = static_cast<int>(boundaries_.size()) - 1;
  count_ = boundaries_.back();
}

std::int64_t BlockPartition::begin(int part) const {
  PGASEMB_CHECK(part >= 0 && part < parts_, "bad part ", part);
  if (!boundaries_.empty()) {
    return boundaries_[static_cast<std::size_t>(part)];
  }
  const std::int64_t base = count_ / parts_;
  const std::int64_t extra = count_ % parts_;
  return static_cast<std::int64_t>(part) * base +
         std::min<std::int64_t>(part, extra);
}

std::int64_t BlockPartition::size(int part) const {
  PGASEMB_CHECK(part >= 0 && part < parts_, "bad part ", part);
  if (!boundaries_.empty()) {
    return boundaries_[static_cast<std::size_t>(part) + 1] -
           boundaries_[static_cast<std::size_t>(part)];
  }
  const std::int64_t base = count_ / parts_;
  const std::int64_t extra = count_ % parts_;
  return base + (part < extra ? 1 : 0);
}

int BlockPartition::ownerOf(std::int64_t item) const {
  PGASEMB_CHECK(item >= 0 && item < count_, "item out of range: ", item);
  if (!boundaries_.empty()) {
    // First part whose end exceeds the item.
    const auto it = std::upper_bound(boundaries_.begin() + 1,
                                     boundaries_.end(), item);
    return static_cast<int>(it - boundaries_.begin()) - 1;
  }
  const std::int64_t base = count_ / parts_;
  const std::int64_t extra = count_ % parts_;
  const std::int64_t fat = (base + 1) * extra;  // items in the fat prefix
  if (item < fat) {
    return static_cast<int>(item / (base + 1));
  }
  PGASEMB_ASSERT(base > 0, "ownerOf: ragged partition inconsistency");
  return static_cast<int>(extra + (item - fat) / base);
}

Sharding::Sharding(std::int64_t total_tables, std::int64_t batch_size,
                   int num_gpus, ShardingScheme scheme)
    : tables_(total_tables, num_gpus),
      batch_(batch_size, num_gpus),
      scheme_(scheme) {
  PGASEMB_CHECK(total_tables >= 1, "need at least one table");
  PGASEMB_CHECK(batch_size >= num_gpus,
                "batch must have at least one sample per GPU");
}

Sharding::Sharding(std::vector<std::int64_t> table_boundaries,
                   std::int64_t batch_size, int num_gpus)
    : tables_(std::move(table_boundaries)),
      batch_(batch_size, num_gpus),
      scheme_(ShardingScheme::kTableWise) {
  PGASEMB_CHECK(tables_.parts() == num_gpus,
                "boundary count must match the GPU count");
  PGASEMB_CHECK(batch_size >= num_gpus,
                "batch must have at least one sample per GPU");
}

std::vector<std::int64_t> balancedTableBoundaries(
    const std::vector<double>& weights, int parts) {
  PGASEMB_CHECK(parts >= 1, "need at least one part");
  PGASEMB_CHECK(static_cast<int>(weights.size()) >= parts,
                "need at least one table per part");
  double remaining = 0.0;
  for (double w : weights) {
    PGASEMB_CHECK(w >= 0.0, "negative table weight");
    remaining += w;
  }
  const std::int64_t n = static_cast<std::int64_t>(weights.size());
  std::vector<std::int64_t> boundaries{0};
  std::int64_t t = 0;
  for (int part = 0; part < parts - 1; ++part) {
    const int parts_left = parts - part;
    const double target = remaining / parts_left;
    // Each block takes at least one table, then keeps extending while
    // that brings its load closer to the remaining-average target —
    // without starving the later parts of their one-table minimum.
    double acc = weights[static_cast<std::size_t>(t++)];
    while (t < n - (parts_left - 1)) {
      const double with = acc + weights[static_cast<std::size_t>(t)];
      if (std::abs(with - target) > std::abs(acc - target)) break;
      acc = with;
      ++t;
    }
    remaining -= acc;
    boundaries.push_back(t);
  }
  boundaries.push_back(n);
  return boundaries;
}

std::int64_t Sharding::outputIndex(std::int64_t sample, std::int64_t table,
                                   int col, int dim) const {
  const int owner = sampleOwner(sample);
  const std::int64_t local_sample = sample - batch_.begin(owner);
  return (local_sample * tables_.count() + table) * dim + col;
}

std::int64_t Sharding::outputElements(int gpu, int dim) const {
  return batch_.size(gpu) * tables_.count() * dim;
}

}  // namespace pgasemb::emb

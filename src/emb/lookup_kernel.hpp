// Lookup+pooling kernel builders (paper §II-B and Listing 2).
//
// Both retrieval schemes run the same gather/pool compute; they differ in
// where results are written:
//  - baseline: into a local *send buffer* in all-to-all order (so NCCL
//    can ship contiguous chunks), later unpacked on the receiver;
//  - PGAS fused: directly into the (possibly remote) final output tensor
//    via one-sided writes issued as results are produced — no staging,
//    no unpack.
#pragma once

#include <cstdint>
#include <vector>

#include "emb/layer.hpp"
#include "fabric/compression.hpp"
#include "gpu/kernel.hpp"
#include "pgas/message_plan.hpp"
#include "simsan/access.hpp"

namespace pgasemb::emb {

class CacheFilter;  // replica_cache.hpp

/// Warp-coalesced one-sided message granularity (paper Figs 7/10 use
/// 256-byte units; one dim-64 fp32 embedding row is exactly 256 B).
inline constexpr std::int64_t kCoalescedMessageBytes = 256;

struct BaselineLookupKernel {
  gpu::KernelDesc desc;
  /// Payload bytes destined to each GPU (self entry = the local chunk,
  /// which moves as a device-local copy, not over the fabric).
  std::vector<std::int64_t> send_bytes;
};

/// Build GPU `gpu`'s baseline lookup kernel. `send_buffer` receives the
/// pooled embeddings laid out [dst][local table][dst-local sample][col];
/// pass it in every mode — the builder declares the kernel's simsan
/// write effect from it when a checker is attached and runs the
/// functional body only when the buffer is backed and the batch is
/// materialized.  With a cache `filter` only the miss bags are computed
/// and shipped (served bags never enter the send buffer); the filter
/// must outlive the kernel's execution.
BaselineLookupKernel buildBaselineLookupKernel(
    ShardedEmbeddingLayer& layer, const SparseBatch& batch, int gpu,
    gpu::DeviceBuffer* send_buffer, const CacheFilter* filter = nullptr);

struct FusedLookupKernel {
  gpu::KernelDesc desc;  ///< message plan not yet attached (PgasRuntime)
  pgas::MessagePlan plan;
  /// One-sided write footprints into the other GPUs' output tensors
  /// (device-address elements), declared by the builder when a checker
  /// is attached. Hand to PgasRuntime::attachMessagePlan, which logs
  /// them per delivered flow and rides them on KernelDesc::put_effects.
  std::vector<simsan::MemEffect> remote_writes;
};

/// Build GPU `gpu`'s PGAS fused lookup kernel. `outputs[d]` is GPU d's
/// final output tensor ([mini-batch sample][global table][col]); pass
/// the views in every mode — the builder declares the local write
/// effect and the remote put footprints from them when a checker is
/// attached, and runs the functional body (direct remote stores;
/// row-wise sharding accumulates partial sums instead) only when the
/// local view is backed and the batch is materialized.  With a cache
/// `filter` only the miss bags are computed and put — fewer one-sided
/// messages AND fewer per-message headers, so a shorter quiet; the
/// filter must outlive the kernel's execution.
/// With a `codec` (and `gpus_per_node` > 0) the functional body really
/// encodes/decodes values whose destination lies on another node, so the
/// landed outputs carry the measured compression error (table-wise only;
/// row-wise partial sums don't compose with per-value bounds).
FusedLookupKernel buildFusedLookupKernel(
    ShardedEmbeddingLayer& layer, const SparseBatch& batch, int gpu,
    std::vector<gpu::DeviceBuffer>* outputs, int slices,
    const CacheFilter* filter = nullptr,
    fabric::InterNodeCodec* codec = nullptr, int gpus_per_node = 0);

/// Compute cost shared by both kernels (gather + pool + output writes).
SimTime lookupComputeTime(const ShardedEmbeddingLayer& layer,
                          const GpuLookupWork& work);

/// Offset (elements) of (local table, destination, dst-local sample)
/// within a baseline send buffer.
std::int64_t sendBufferIndex(const Sharding& sharding, int gpu,
                             std::int64_t local_table, std::int64_t sample,
                             int col, int dim);

/// Elements in GPU `gpu`'s baseline send buffer.
std::int64_t sendBufferElements(const Sharding& sharding, int gpu, int dim);

/// simsan footprint of GPU `src`'s fused-kernel writes into GPU `dst`'s
/// output tensor, in elements relative to the output buffer start.
/// Table-wise: one run per dst-local sample covering src's table block
/// ([sample][global table][col] layout).  Row-wise: every source
/// accumulates partial sums over the whole tensor.
simsan::StridedRange fusedWriteFootprint(const Sharding& sharding, int src,
                                         int dst, int dim);

}  // namespace pgasemb::emb

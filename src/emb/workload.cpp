#include "emb/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace pgasemb::emb {

EmbLayerSpec weakScalingLayerSpec(int num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  EmbLayerSpec spec;
  spec.total_tables = 64LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  spec.min_pooling = 1;
  spec.max_pooling = 128;
  spec.seed = 0x5eed'0001;
  spec.index_space = 1ULL << 40;  // large raw domain; hashing compresses
  return spec;
}

EmbLayerSpec strongScalingLayerSpec() {
  EmbLayerSpec spec;
  spec.total_tables = 96;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  spec.min_pooling = 1;
  spec.max_pooling = 32;
  spec.seed = 0x5eed'0002;
  spec.index_space = 1ULL << 40;
  return spec;
}

EmbLayerSpec tinyLayerSpec() {
  EmbLayerSpec spec;
  spec.total_tables = 8;
  spec.rows_per_table = 100;
  spec.dim = 8;
  spec.batch_size = 12;
  spec.min_pooling = 0;  // exercise NULL inputs
  spec.max_pooling = 6;
  spec.seed = 0x5eed'0003;
  spec.index_space = 1u << 16;
  return spec;
}

EmbLayerSpec cacheServingLayerSpec(int num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  EmbLayerSpec spec;
  spec.total_tables = 16LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  // Single-id categorical features (user id, item id, ...): the common
  // inference case where every lookup is one row, so a bag is served
  // from the replica iff its one index is hot.
  spec.min_pooling = 1;
  spec.max_pooling = 1;
  spec.seed = 0x5eed'0004;
  // Raw domain == row count: Zipf rank r is raw index r-1, and a cache
  // of capacity C rows holds exactly the top-C mass.
  spec.index_space = 1'000'000;
  return spec;
}

namespace {

/// Exact-summation prefix length for zipfHarmonic; beyond it the
/// midpoint (Euler–Maclaurin) integral tail is accurate to ~1e-6.
constexpr std::uint64_t kZipfExactPrefix = 64;

double exactHarmonic(std::uint64_t n, double alpha) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += std::pow(static_cast<double>(i), -alpha);
  }
  return sum;
}

/// Integral of x^-alpha over [a + 0.5, b + 0.5] — the midpoint-rule
/// continuation of the harmonic sum past the exact prefix.
double harmonicTail(double a, double b, double alpha) {
  if (std::abs(1.0 - alpha) < 1e-12) {
    return std::log((b + 0.5) / (a + 0.5));
  }
  const double e = 1.0 - alpha;
  return (std::pow(b + 0.5, e) - std::pow(a + 0.5, e)) / e;
}

}  // namespace

double zipfHarmonic(std::uint64_t n, double alpha) {
  PGASEMB_CHECK(alpha >= 0.0, "negative Zipf alpha");
  if (n == 0) return 0.0;
  if (n <= kZipfExactPrefix) return exactHarmonic(n, alpha);
  return exactHarmonic(kZipfExactPrefix, alpha) +
         harmonicTail(static_cast<double>(kZipfExactPrefix),
                      static_cast<double>(n), alpha);
}

double zipfTopMass(std::uint64_t n, double alpha, std::uint64_t k) {
  PGASEMB_CHECK(n >= 1, "empty Zipf domain");
  k = std::min(k, n);
  if (k == 0) return 0.0;
  return zipfHarmonic(k, alpha) / zipfHarmonic(n, alpha);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  PGASEMB_CHECK(n >= 1, "empty Zipf domain");
  PGASEMB_CHECK(alpha >= 0.0, "negative Zipf alpha");
  const std::uint64_t head = std::min(n, kZipfExactPrefix);
  prefix_.reserve(static_cast<std::size_t>(head));
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= head; ++i) {
    sum += std::pow(static_cast<double>(i), -alpha);
    prefix_.push_back(sum);
  }
  total_ = zipfHarmonic(n, alpha);
}

double ZipfSampler::prefixMass(std::uint64_t k) const {
  if (k == 0) return 0.0;
  if (k <= prefix_.size()) {
    return prefix_[static_cast<std::size_t>(k - 1)];
  }
  return prefix_.back() +
         harmonicTail(static_cast<double>(prefix_.size()),
                      static_cast<double>(k), alpha_);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Invert the CDF: smallest rank k with H(k) >= u * H(n).  H is
  // strictly increasing, so binary search over [1, n] terminates with
  // the unique preimage.
  const double target = rng.uniformDouble() * total_;
  std::uint64_t lo = 1;
  std::uint64_t hi = n_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (prefixMass(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace pgasemb::emb

#include "emb/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>

#include "util/expect.hpp"

namespace pgasemb::emb {

EmbLayerSpec weakScalingLayerSpec(int num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  EmbLayerSpec spec;
  spec.total_tables = 64LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  spec.min_pooling = 1;
  spec.max_pooling = 128;
  spec.seed = 0x5eed'0001;
  spec.index_space = 1ULL << 40;  // large raw domain; hashing compresses
  return spec;
}

EmbLayerSpec strongScalingLayerSpec() {
  EmbLayerSpec spec;
  spec.total_tables = 96;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  spec.min_pooling = 1;
  spec.max_pooling = 32;
  spec.seed = 0x5eed'0002;
  spec.index_space = 1ULL << 40;
  return spec;
}

EmbLayerSpec tinyLayerSpec() {
  EmbLayerSpec spec;
  spec.total_tables = 8;
  spec.rows_per_table = 100;
  spec.dim = 8;
  spec.batch_size = 12;
  spec.min_pooling = 0;  // exercise NULL inputs
  spec.max_pooling = 6;
  spec.seed = 0x5eed'0003;
  spec.index_space = 1u << 16;
  return spec;
}

EmbLayerSpec servingLayerSpec(int num_gpus, std::int64_t max_batch_size) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  PGASEMB_CHECK(max_batch_size >= 1, "need a positive max batch size");
  EmbLayerSpec spec;
  // Inference-sized layer: the serving sweeps run thousands of batches
  // per point, so the per-batch work is kept ~1/16 of the weak-scaling
  // training shape (8 tables/GPU, pooling U(1, 32)).
  spec.total_tables = 8LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = max_batch_size;
  spec.min_pooling = 1;
  spec.max_pooling = 32;
  spec.seed = 0x5eed'0005;
  spec.index_space = 1ULL << 40;
  return spec;
}

EmbLayerSpec multinodeServingLayerSpec(int num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  EmbLayerSpec spec;
  spec.total_tables = 16LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 2'048;
  // Single-id features: pooled values stay inside the weight range
  // [-1, 1), giving the codec a tight per-table bound (range 1.0).
  spec.min_pooling = 1;
  spec.max_pooling = 1;
  spec.seed = 0x5eed'0006;
  spec.index_space = 1ULL << 40;
  return spec;
}

EmbLayerSpec cacheServingLayerSpec(int num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  EmbLayerSpec spec;
  spec.total_tables = 16LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  // Single-id categorical features (user id, item id, ...): the common
  // inference case where every lookup is one row, so a bag is served
  // from the replica iff its one index is hot.
  spec.min_pooling = 1;
  spec.max_pooling = 1;
  spec.seed = 0x5eed'0004;
  // Raw domain == row count: Zipf rank r is raw index r-1, and a cache
  // of capacity C rows holds exactly the top-C mass.
  spec.index_space = 1'000'000;
  return spec;
}

namespace {

/// Exact-summation prefix length for zipfHarmonic; beyond it the
/// midpoint (Euler–Maclaurin) integral tail is accurate to ~1e-6.
constexpr std::uint64_t kZipfExactPrefix = 64;

double exactHarmonic(std::uint64_t n, double alpha) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += std::pow(static_cast<double>(i), -alpha);
  }
  return sum;
}

/// Integral of x^-alpha over [a + 0.5, b + 0.5] — the midpoint-rule
/// continuation of the harmonic sum past the exact prefix.
double harmonicTail(double a, double b, double alpha) {
  if (std::abs(1.0 - alpha) < 1e-12) {
    return std::log((b + 0.5) / (a + 0.5));
  }
  const double e = 1.0 - alpha;
  return (std::pow(b + 0.5, e) - std::pow(a + 0.5, e)) / e;
}

}  // namespace

double zipfHarmonic(std::uint64_t n, double alpha) {
  PGASEMB_CHECK(alpha >= 0.0, "negative Zipf alpha");
  if (n == 0) return 0.0;
  if (n <= kZipfExactPrefix) return exactHarmonic(n, alpha);
  return exactHarmonic(kZipfExactPrefix, alpha) +
         harmonicTail(static_cast<double>(kZipfExactPrefix),
                      static_cast<double>(n), alpha);
}

double zipfTopMass(std::uint64_t n, double alpha, std::uint64_t k) {
  PGASEMB_CHECK(n >= 1, "empty Zipf domain");
  k = std::min(k, n);
  if (k == 0) return 0.0;
  return zipfHarmonic(k, alpha) / zipfHarmonic(n, alpha);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  PGASEMB_CHECK(n >= 1, "empty Zipf domain");
  PGASEMB_CHECK(alpha >= 0.0, "negative Zipf alpha");
  const std::uint64_t head = std::min(n, kZipfExactPrefix);
  prefix_.reserve(static_cast<std::size_t>(head));
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= head; ++i) {
    sum += std::pow(static_cast<double>(i), -alpha);
    prefix_.push_back(sum);
  }
  total_ = zipfHarmonic(n, alpha);
}

double ZipfSampler::prefixMass(std::uint64_t k) const {
  if (k == 0) return 0.0;
  if (k <= prefix_.size()) {
    return prefix_[static_cast<std::size_t>(k - 1)];
  }
  return prefix_.back() +
         harmonicTail(static_cast<double>(prefix_.size()),
                      static_cast<double>(k), alpha_);
}

namespace {

/// Strict integer/double field parsers for the query-size grammar:
/// the whole field must consume, so "uniform:16-64x" fails at parse
/// time instead of silently truncating.
std::int64_t parseSizeField(const std::string& field,
                            const std::string& spec) {
  std::size_t used = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(field, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  PGASEMB_CHECK(!field.empty() && used == field.size(),
                "bad query-size number '", field, "' in '", spec, "'");
  return value;
}

double parseAlphaField(const std::string& field, const std::string& spec) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  PGASEMB_CHECK(!field.empty() && used == field.size(),
                "bad query-size alpha '", field, "' in '", spec, "'");
  return value;
}

/// Splits "LO-HI" (or a bare "N" meaning N-N) into the spec's range.
void parseSizeRange(const std::string& field, const std::string& spec,
                    QuerySizeSpec& out) {
  const auto dash = field.find('-');
  if (dash == std::string::npos) {
    out.lo = out.hi = parseSizeField(field, spec);
  } else {
    out.lo = parseSizeField(field.substr(0, dash), spec);
    out.hi = parseSizeField(field.substr(dash + 1), spec);
  }
  PGASEMB_CHECK(out.lo >= 1, "query sizes must be >= 1 in '", spec, "'");
  PGASEMB_CHECK(out.hi >= out.lo, "query-size range is inverted in '", spec,
                "'");
}

}  // namespace

double QuerySizeSpec::meanSize() const {
  switch (kind) {
    case Kind::kFixed:
      return static_cast<double>(lo);
    case Kind::kUniform:
      return static_cast<double>(lo + hi) / 2.0;
    case Kind::kZipf: {
      // E[size] = lo - 1 + E[rank]; E[rank] over Zipf(alpha) on [1, n]
      // is sum r^-(alpha-1) / H(n, alpha). The numerator's exponent can
      // be negative (alpha < 1), which the midpoint-tail continuation
      // handles just like any other exponent.
      const auto n = static_cast<std::uint64_t>(hi - lo + 1);
      double num = 0.0;
      const std::uint64_t head = std::min<std::uint64_t>(n, kZipfExactPrefix);
      for (std::uint64_t r = 1; r <= head; ++r) {
        num += std::pow(static_cast<double>(r), 1.0 - alpha);
      }
      if (n > head) {
        num += harmonicTail(static_cast<double>(head),
                            static_cast<double>(n), alpha - 1.0);
      }
      return static_cast<double>(lo) - 1.0 + num / zipfHarmonic(n, alpha);
    }
  }
  return static_cast<double>(lo);
}

QuerySizeSpec parseQuerySizeSpec(const std::string& spec) {
  const auto colon = spec.find(':');
  PGASEMB_CHECK(colon != std::string::npos,
                "query-size spec '", spec,
                "' needs kind:params (fixed:N | uniform:LO-HI | "
                "zipf:ALPHA:LO-HI)");
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  QuerySizeSpec out;
  if (kind == "fixed") {
    out.kind = QuerySizeSpec::Kind::kFixed;
    out.lo = out.hi = parseSizeField(rest, spec);
    PGASEMB_CHECK(out.lo >= 1, "query sizes must be >= 1 in '", spec, "'");
  } else if (kind == "uniform") {
    out.kind = QuerySizeSpec::Kind::kUniform;
    parseSizeRange(rest, spec, out);
  } else if (kind == "zipf") {
    out.kind = QuerySizeSpec::Kind::kZipf;
    const auto second = rest.find(':');
    PGASEMB_CHECK(second != std::string::npos,
                  "zipf query-size spec '", spec, "' needs zipf:ALPHA:LO-HI");
    out.alpha = parseAlphaField(rest.substr(0, second), spec);
    PGASEMB_CHECK(out.alpha >= 0.0,
                  "negative zipf alpha in '", spec, "'");
    parseSizeRange(rest.substr(second + 1), spec, out);
  } else {
    PGASEMB_CHECK(false, "unknown query-size kind '", kind, "' in '", spec,
                  "' (fixed | uniform | zipf)");
  }
  return out;
}

std::string formatQuerySizeSpec(const QuerySizeSpec& spec) {
  switch (spec.kind) {
    case QuerySizeSpec::Kind::kFixed:
      return "fixed:" + std::to_string(spec.lo);
    case QuerySizeSpec::Kind::kUniform:
      return "uniform:" + std::to_string(spec.lo) + "-" +
             std::to_string(spec.hi);
    case QuerySizeSpec::Kind::kZipf: {
      char alpha[32];
      snprintf(alpha, sizeof(alpha), "%g", spec.alpha);
      return std::string("zipf:") + alpha + ":" + std::to_string(spec.lo) +
             "-" + std::to_string(spec.hi);
    }
  }
  return "fixed:" + std::to_string(spec.lo);
}

QuerySizeSampler::QuerySizeSampler(const QuerySizeSpec& spec) : spec_(spec) {
  PGASEMB_CHECK(spec.lo >= 1, "query sizes must be >= 1");
  PGASEMB_CHECK(spec.hi >= spec.lo, "query-size range is inverted");
  if (spec.kind == QuerySizeSpec::Kind::kZipf) {
    zipf_.emplace(static_cast<std::uint64_t>(spec.hi - spec.lo + 1),
                  spec.alpha);
  }
}

std::int64_t QuerySizeSampler::sample(Rng& rng) const {
  switch (spec_.kind) {
    case QuerySizeSpec::Kind::kFixed:
      return spec_.lo;
    case QuerySizeSpec::Kind::kUniform:
      return rng.uniformInt(spec_.lo, spec_.hi);
    case QuerySizeSpec::Kind::kZipf:
      return spec_.lo + static_cast<std::int64_t>(zipf_->sample(rng)) - 1;
  }
  return spec_.lo;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Invert the CDF: smallest rank k with H(k) >= u * H(n).  H is
  // strictly increasing, so binary search over [1, n] terminates with
  // the unique preimage.
  const double target = rng.uniformDouble() * total_;
  std::uint64_t lo = 1;
  std::uint64_t hi = n_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (prefixMass(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace pgasemb::emb

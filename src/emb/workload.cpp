#include "emb/workload.hpp"

#include "util/expect.hpp"

namespace pgasemb::emb {

EmbLayerSpec weakScalingLayerSpec(int num_gpus) {
  PGASEMB_CHECK(num_gpus >= 1, "need at least one GPU");
  EmbLayerSpec spec;
  spec.total_tables = 64LL * num_gpus;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  spec.min_pooling = 1;
  spec.max_pooling = 128;
  spec.seed = 0x5eed'0001;
  spec.index_space = 1ULL << 40;  // large raw domain; hashing compresses
  return spec;
}

EmbLayerSpec strongScalingLayerSpec() {
  EmbLayerSpec spec;
  spec.total_tables = 96;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16'384;
  spec.min_pooling = 1;
  spec.max_pooling = 32;
  spec.seed = 0x5eed'0002;
  spec.index_space = 1ULL << 40;
  return spec;
}

EmbLayerSpec tinyLayerSpec() {
  EmbLayerSpec spec;
  spec.total_tables = 8;
  spec.rows_per_table = 100;
  spec.dim = 8;
  spec.batch_size = 12;
  spec.min_pooling = 0;  // exercise NULL inputs
  spec.max_pooling = 6;
  spec.seed = 0x5eed'0003;
  spec.index_space = 1u << 16;
  return spec;
}

}  // namespace pgasemb::emb

// Small-buffer event callable for the discrete-event simulator.
//
// The event loop used to store callbacks as `std::function<void()>`,
// which heap-allocates any capture larger than its 16-byte inline
// buffer and copies the whole closure on every queue move.  Hot paths
// (per-slice PGAS injections, stream op starts) capture 24-48 bytes, so
// nearly every scheduled event paid one allocation plus a managed copy.
//
// `EventFn` is a move-only callable with a 48-byte inline buffer sized
// for every hot-path closure in the simulator; captures that do not fit
// fall back to a thread-local slab allocator (size-class freelists, so
// steady-state overflow events recycle blocks instead of hitting the
// global heap).  Moves are two pointer stores plus a memcpy of the
// inline buffer — no allocation ever.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pgasemb::sim {

namespace detail {
/// Slab allocator for EventFn overflow captures: size-class freelists
/// (64/128/256 bytes) that recycle blocks for the lifetime of the
/// thread; larger captures go straight to operator new.
void* slabAlloc(std::size_t bytes);
void slabFree(void* p, std::size_t bytes);
}  // namespace detail

class EventFn {
 public:
  /// Sized so every hot-path closure (shared_ptr + slice index + time,
  /// stream op start with an inline std::function) stays inline.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event captures are not supported");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = &invokeInline<Fn>;
      manage_ = &manageInline<Fn>;
    } else {
      void* p = detail::slabAlloc(sizeof(Fn));
      ::new (p) Fn(std::forward<F>(f));
      heapPtr() = p;
      invoke_ = &invokeHeap<Fn>;
      manage_ = &manageHeap<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { moveFrom(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroy the held callable (and release its captures) immediately.
  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op { kDestroy, kMove };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* other);

  void*& heapPtr() { return *reinterpret_cast<void**>(buf_); }

  void moveFrom(EventFn& o) noexcept {
    if (o.manage_ != nullptr) o.manage_(Op::kMove, o.buf_, buf_);
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  template <typename Fn>
  static void invokeInline(void* s) {
    (*std::launder(reinterpret_cast<Fn*>(s)))();
  }
  template <typename Fn>
  static void manageInline(Op op, void* self, void* other) {
    Fn* f = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kMove) ::new (other) Fn(std::move(*f));
    f->~Fn();
  }

  template <typename Fn>
  static void invokeHeap(void* s) {
    (*static_cast<Fn*>(*reinterpret_cast<void**>(s)))();
  }
  template <typename Fn>
  static void manageHeap(Op op, void* self, void* other) {
    void* p = *reinterpret_cast<void**>(self);
    if (op == Op::kMove) {
      *reinterpret_cast<void**>(other) = p;
      return;  // ownership transferred; source pointers are nulled out
    }
    static_cast<Fn*>(p)->~Fn();
    detail::slabFree(p, sizeof(Fn));
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace pgasemb::sim

#include "sim/event_fn.hpp"

#include <cstdint>
#include <vector>

namespace pgasemb::sim::detail {
namespace {

// Overflow size classes. Captures above the largest class are rare
// (cold control-plane events) and go straight to the global heap.
constexpr std::size_t kClassBytes[] = {64, 128, 256};
constexpr int kNumClasses = 3;
// Freelist cap per class: bounds idle memory at 256 KiB/thread worst
// case while still absorbing the steady-state churn of a large run.
constexpr std::size_t kMaxFreePerClass = 1024;

int classOf(std::size_t bytes) {
  for (int c = 0; c < kNumClasses; ++c) {
    if (bytes <= kClassBytes[c]) return c;
  }
  return -1;
}

struct Slab {
  std::vector<void*> free_lists[kNumClasses];
  ~Slab() {
    for (auto& list : free_lists) {
      for (void* p : list) ::operator delete(p);
    }
  }
};

Slab& slab() {
  thread_local Slab s;
  return s;
}

}  // namespace

void* slabAlloc(std::size_t bytes) {
  const int c = classOf(bytes);
  if (c < 0) return ::operator new(bytes);
  auto& list = slab().free_lists[c];
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    return p;
  }
  return ::operator new(kClassBytes[c]);
}

void slabFree(void* p, std::size_t bytes) {
  const int c = classOf(bytes);
  if (c < 0) {
    ::operator delete(p);
    return;
  }
  auto& list = slab().free_lists[c];
  if (list.size() < kMaxFreePerClass) {
    list.push_back(p);
  } else {
    ::operator delete(p);
  }
}

}  // namespace pgasemb::sim::detail

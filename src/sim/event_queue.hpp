// Priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, sequence number): two events at the same
// simulated instant fire in insertion order, which makes every run fully
// deterministic regardless of host scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace pgasemb::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Enqueue `fn` to fire at absolute time `at`. Returns the event's
  /// sequence number (monotonic), usable for debugging/tracing.
  std::uint64_t push(SimTime at, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; SimTime::max() when empty.
  SimTime nextTime() const;

  /// Pop the earliest event. Precondition: !empty().
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  Entry pop();

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    // Index into storage_ — keeps the heap nodes small and cheap to swap.
    std::size_t slot;
    bool operator>(const HeapEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::vector<EventFn> storage_;
  std::vector<std::size_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pgasemb::sim

// Priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, sequence number): two events at the same
// simulated instant fire in insertion order, which makes every run fully
// deterministic regardless of host scheduling.
//
// Layout: heap nodes are 24-byte (time, seq, slot) triples in a manual
// 4-ary min-heap (shallower than binary for the same size, and sift
// steps stay inside one cache line of children), while the callables
// live in an open-addressed slot arena with a free list, so heap swaps
// never touch a capture.  `pop()` clears the slot's callable immediately
// — captures die when the event fires, not when the slot is recycled —
// and a drained queue releases its arena once it has grown past the
// shrink threshold (high-water shrink), so one pathological burst does
// not pin memory for the rest of the run.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/time.hpp"

namespace pgasemb::sim {

class EventQueue {
 public:
  /// Slot-arena size above which a fully drained queue releases its
  /// buffers instead of keeping them warm for the next burst.
  static constexpr std::size_t kShrinkSlots = 4096;

  /// Enqueue `fn` to fire at absolute time `at`. Returns the event's
  /// sequence number (monotonic), usable for debugging/tracing.
  std::uint64_t push(SimTime at, EventFn fn);

  /// One pending (time, callable) pair for pushBatch().
  struct Batch {
    SimTime at;
    EventFn fn;
  };

  /// Bulk enqueue: reserves heap and arena space once, then pushes every
  /// entry (consuming its callable). `events` keeps its capacity so hot
  /// callers can reuse the same staging vector across calls.
  void pushBatch(std::vector<Batch>& events);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; SimTime::max() when empty.
  SimTime nextTime() const;

  /// Pop the earliest event. Precondition: !empty().
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  Entry pop();

  /// Slots currently held by the arena (live + recyclable); test hook
  /// for the high-water shrink behavior.
  std::size_t storageSlots() const { return storage_.size(); }

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    // Index into storage_ — keeps the heap nodes small and cheap to swap.
    std::uint32_t slot;
  };
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::uint32_t allocSlot(EventFn fn);
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);

  // Manual 4-ary min-heap over (time, seq); children of i are
  // 4i+1 .. 4i+4.
  std::vector<HeapEntry> heap_;
  std::vector<EventFn> storage_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pgasemb::sim

// The discrete-event simulator core.
//
// A single `Simulator` instance owns the event queue and the simulated
// clock for one multi-GPU system.  Higher layers (devices, fabric links,
// collectives, PGAS runtime) schedule callbacks; `run()` drains events in
// deterministic (time, insertion) order.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace pgasemb::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Outside run() this is the time the last
  /// drained event fired at (or zero before any run).
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (>= now()).
  void scheduleAt(SimTime at, EventFn fn);

  /// Schedule `fn` `delay` after now().
  void scheduleAfter(SimTime delay, EventFn fn);

  /// Bulk schedule: validates and enqueues every entry with one heap
  /// reservation, so hot callers (e.g. a kernel scheduling one event per
  /// timeline slice) amortize the per-push cost. Consumes the entries;
  /// `events` is cleared but keeps its capacity for reuse.
  void scheduleBatch(std::vector<EventQueue::Batch>& events);

  /// Drain all events. Returns the time of the last event processed.
  SimTime run();

  /// Drain events with time <= `until`; the clock advances to `until`
  /// even if the queue empties earlier. Returns now().
  SimTime runUntil(SimTime until);

  bool idle() const { return queue_.empty(); }
  std::uint64_t eventsProcessed() const { return events_processed_; }

  /// Advance the clock without processing events. Used by host-side code
  /// to model CPU time (e.g. the latency of triggering a collective call)
  /// passing between enqueues.
  ///
  /// Precondition: `to` must not pass the earliest pending event — doing
  /// so would let host code observe a clock beyond events that have not
  /// fired (silent time travel), after which every subsequent timestamp
  /// is suspect. Violations throw pgasemb::Error naming both times; the
  /// caller should drain with run()/runUntil() first. Backwards calls
  /// (to <= now()) are no-ops.
  void advanceClock(SimTime to);

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t events_processed_ = 0;
};

}  // namespace pgasemb::sim

// A serially-occupied simulated resource (one direction of an NVLink
// link, a DMA engine, a device's SM array at kernel granularity, ...).
//
// Requests are served in submission order; the event loop submits them in
// nondecreasing simulated-time order, so this models a FIFO hardware
// queue.  The resource tracks cumulative busy time for utilization
// reporting (used to reproduce the paper's ncu throughput observation).
#pragma once

#include <string>

#include "util/time.hpp"

namespace pgasemb::sim {

class FifoResource {
 public:
  explicit FifoResource(std::string name) : name_(std::move(name)) {}

  struct Grant {
    SimTime start;  ///< When service begins (>= arrival).
    SimTime end;    ///< When service completes.
  };

  /// Request the resource for `duration`, arriving at `arrival`.
  Grant acquire(SimTime arrival, SimTime duration);

  /// Earliest time a request arriving at `at` could begin service.
  SimTime nextFreeTime(SimTime at) const;

  /// Pending committed work beyond `at` (zero when the queue is drained).
  SimTime backlog(SimTime at) const;

  SimTime busyTime() const { return busy_; }
  SimTime freeAt() const { return free_at_; }
  const std::string& name() const { return name_; }

  /// Utilization over [0, horizon].
  double utilization(SimTime horizon) const;

  void reset();

 private:
  std::string name_;
  SimTime free_at_ = SimTime::zero();
  SimTime busy_ = SimTime::zero();
};

}  // namespace pgasemb::sim

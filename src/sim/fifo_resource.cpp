#include "sim/fifo_resource.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::sim {

FifoResource::Grant FifoResource::acquire(SimTime arrival, SimTime duration) {
  PGASEMB_ASSERT(duration >= SimTime::zero(), "negative service duration");
  const SimTime start = std::max(arrival, free_at_);
  const SimTime end = start + duration;
  free_at_ = end;
  busy_ += duration;
  return Grant{start, end};
}

SimTime FifoResource::nextFreeTime(SimTime at) const {
  return std::max(at, free_at_);
}

SimTime FifoResource::backlog(SimTime at) const {
  if (free_at_ <= at) return SimTime::zero();
  return free_at_ - at;
}

double FifoResource::utilization(SimTime horizon) const {
  if (horizon <= SimTime::zero()) return 0.0;
  return std::min(1.0, busy_ / horizon);
}

void FifoResource::reset() {
  free_at_ = SimTime::zero();
  busy_ = SimTime::zero();
}

}  // namespace pgasemb::sim

#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/expect.hpp"

namespace pgasemb::sim {

std::uint32_t EventQueue::allocSlot(EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    storage_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(storage_.size());
    storage_.push_back(std::move(fn));
  }
  return slot;
}

void EventQueue::siftUp(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

std::uint64_t EventQueue::push(SimTime at, EventFn fn) {
  const std::uint32_t slot = allocSlot(std::move(fn));
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(HeapEntry{at, seq, slot});
  siftUp(heap_.size() - 1);
  return seq;
}

void EventQueue::pushBatch(std::vector<Batch>& events) {
  // Geometric growth, never exact-fit: an exact reserve() per batch
  // would realloc on every call and turn repeated batches quadratic.
  const auto growTo = [](auto& vec, std::size_t need) {
    if (need > vec.capacity()) {
      vec.reserve(std::max(need, vec.capacity() * 2));
    }
  };
  growTo(heap_, heap_.size() + events.size());
  const std::size_t needed =
      events.size() > free_slots_.size() ? events.size() - free_slots_.size()
                                         : 0;
  growTo(storage_, storage_.size() + needed);
  for (auto& e : events) push(e.at, std::move(e.fn));
  events.clear();  // capacity kept for the caller's next batch
}

SimTime EventQueue::nextTime() const {
  if (heap_.empty()) return SimTime::max();
  return heap_.front().time;
}

EventQueue::Entry EventQueue::pop() {
  PGASEMB_ASSERT(!heap_.empty(), "pop() on empty event queue");
  const HeapEntry top = heap_.front();
  // Clear the callable now: its captures (shared state, closures) must
  // not be pinned until the slot happens to be reused.
  Entry e{top.time, top.seq, std::move(storage_[top.slot])};
  storage_[top.slot].reset();
  free_slots_.push_back(top.slot);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);
  if (heap_.empty() && storage_.size() > kShrinkSlots) {
    // High-water shrink: the queue is fully drained and the arena grew
    // past the threshold during a burst — release it rather than pin
    // peak memory for the rest of the run.
    storage_.clear();
    storage_.shrink_to_fit();
    free_slots_.clear();
    free_slots_.shrink_to_fit();
    heap_.shrink_to_fit();
  }
  return e;
}

}  // namespace pgasemb::sim

#include "sim/event_queue.hpp"

#include "util/expect.hpp"

namespace pgasemb::sim {

std::uint64_t EventQueue::push(SimTime at, EventFn fn) {
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    storage_[slot] = std::move(fn);
  } else {
    slot = storage_.size();
    storage_.push_back(std::move(fn));
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapEntry{at, seq, slot});
  return seq;
}

SimTime EventQueue::nextTime() const {
  if (heap_.empty()) return SimTime::max();
  return heap_.top().time;
}

EventQueue::Entry EventQueue::pop() {
  PGASEMB_ASSERT(!heap_.empty(), "pop() on empty event queue");
  const HeapEntry top = heap_.top();
  heap_.pop();
  Entry e{top.time, top.seq, std::move(storage_[top.slot])};
  storage_[top.slot] = nullptr;
  free_slots_.push_back(top.slot);
  return e;
}

}  // namespace pgasemb::sim

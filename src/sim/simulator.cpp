#include "sim/simulator.hpp"

#include "util/expect.hpp"

namespace pgasemb::sim {

void Simulator::scheduleAt(SimTime at, EventFn fn) {
  PGASEMB_ASSERT(at >= now_, "event scheduled in the past: at=",
                 at.toString(), " now=", now_.toString());
  queue_.push(at, std::move(fn));
}

void Simulator::scheduleAfter(SimTime delay, EventFn fn) {
  PGASEMB_ASSERT(delay >= SimTime::zero(), "negative delay");
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::scheduleBatch(std::vector<EventQueue::Batch>& events) {
  for (const auto& e : events) {
    PGASEMB_ASSERT(e.at >= now_, "event scheduled in the past: at=",
                   e.at.toString(), " now=", now_.toString());
  }
  queue_.pushBatch(events);
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    EventQueue::Entry e = queue_.pop();
    now_ = e.time;
    ++events_processed_;
    e.fn();
  }
  return now_;
}

SimTime Simulator::runUntil(SimTime until) {
  while (!queue_.empty() && queue_.nextTime() <= until) {
    EventQueue::Entry e = queue_.pop();
    now_ = e.time;
    ++events_processed_;
    e.fn();
  }
  if (now_ < until) now_ = until;
  return now_;
}

void Simulator::advanceClock(SimTime to) {
  if (to <= now_) return;
  if (!queue_.empty() && queue_.nextTime() < to) {
    throw Error(
        "Simulator::advanceClock(" + to.toString() +
        ") would skip the earliest pending event at " +
        queue_.nextTime().toString() +
        " — the host clock may not pass unfired events (silent time "
        "travel); drain with run()/runUntil() first");
  }
  now_ = to;
}

}  // namespace pgasemb::sim

// Open-loop query load generator (DeepRecSys-style): a deterministic,
// seeded stream of timestamped queries at a configured offered load.
//
// Open loop means arrivals do not depend on service times — when the
// system falls behind, the queue grows and the tail blows up, which is
// exactly the regime the closed-loop benches cannot express. Two
// arrival processes: Poisson (exponential inter-arrivals) and bursty
// on/off (Poisson inside `burst_on_ms` windows at an elevated rate,
// silence for `burst_off_ms`, long-run average = qps). Per-query
// sample counts come from the configured QuerySizeSpec.
#pragma once

#include <cstdint>
#include <optional>

#include "emb/workload.hpp"
#include "engine/experiment.hpp"
#include "util/rng.hpp"

namespace pgasemb::engine {

/// One inference request: `samples` candidate items arriving at
/// `arrival` (simulated time).
struct Query {
  std::int64_t id = 0;
  SimTime arrival = SimTime::zero();
  std::int64_t samples = 1;
};

class LoadGenerator {
 public:
  /// `max_samples` caps each query's sample count at the batcher's
  /// fixed batch shape (a query must fit in an empty batch).
  LoadGenerator(const ServingConfig& config, std::int64_t max_samples);

  /// The next query, with non-decreasing arrival times; nullopt once
  /// `num_queries` have been produced.
  std::optional<Query> next();

  std::int64_t produced() const { return produced_; }

 private:
  SimTime nextArrival();

  ServingConfig config_;
  std::int64_t max_samples_;
  emb::QuerySizeSampler sizes_;
  Rng rng_;
  std::int64_t produced_ = 0;
  /// kPoisson: wall-clock arrival accumulator. kBursty: accumulator in
  /// "burst time" (the concatenation of on-windows), mapped to wall
  /// time by re-inserting one off-window per elapsed on-window.
  double clock_s_ = 0.0;
};

}  // namespace pgasemb::engine

#include "engine/scenario_runner.hpp"

#include "engine/batch_executor.hpp"

namespace pgasemb::engine {

ExperimentConfig weakScalingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::weakScalingLayerSpec(num_gpus);
  return cfg;
}

ExperimentConfig strongScalingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::strongScalingLayerSpec();
  return cfg;
}

ExperimentConfig cacheServingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::cacheServingLayerSpec(num_gpus);
  // PCIe-class per-pair bandwidth: the HPS-style inference node the
  // replica cache targets is exchange-bound, unlike the NVLink training
  // testbed (where the lookup compute dominates and a cache could only
  // ever trim the exchange tail).
  cfg.link.bandwidth_bytes_per_sec = 12e9;
  return cfg;
}

ScenarioRunner::ScenarioRunner(const ExperimentConfig& config)
    : builder_(config) {}

ExperimentResult ScenarioRunner::run(const std::string& retriever_name) {
  const ExperimentConfig& config = builder_.config();
  config.validate();

  builder_.reset();
  BatchExecutor exec(builder_, retriever_name,
                     BatchExecutor::SloMode::kPerBatch);

  ExperimentResult result;
  Rng rng(config.batch_seed);
  const bool functional = config.mode == gpu::ExecutionMode::kFunctional;
  // Timing-only runs reuse one statistical batch: the workload is the
  // distribution's expectation every batch, as in the paper's uniform
  // synthetic inputs.
  emb::SparseBatch statistical =
      emb::SparseBatch::statistical(config.layer.batchSpec());
  for (int b = 0; b < config.num_batches; ++b) {
    if (functional) {
      const auto batch =
          emb::SparseBatch::generateUniform(config.layer.batchSpec(), rng);
      exec.runOne(batch, result);
    } else {
      exec.runOne(statistical, result);
    }
  }
  exec.finishRun(result);

  finalizeResult(builder_, exec, statistical, result);
  return result;
}

std::vector<NamedResult> ScenarioRunner::runAll(
    const std::vector<std::string>& names) {
  std::vector<NamedResult> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    out.push_back({name, run(name)});
  }
  return out;
}

}  // namespace pgasemb::engine

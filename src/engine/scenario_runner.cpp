#include "engine/scenario_runner.hpp"

#include <memory>

#include "emb/lookup_kernel.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "util/expect.hpp"

namespace pgasemb::engine {

double ExperimentResult::avgBatchMs() const {
  return stats.batches ? stats.total.toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgComputeMs() const {
  return stats.batches ? stats.compute_phase.toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgCommunicationMs() const {
  return stats.batches ? stats.communication().toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgSyncUnpackMs() const {
  return stats.batches ? stats.syncUnpack().toMs() / stats.batches : 0.0;
}

ExperimentConfig weakScalingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::weakScalingLayerSpec(num_gpus);
  return cfg;
}

ExperimentConfig strongScalingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::strongScalingLayerSpec();
  return cfg;
}

ExperimentConfig cacheServingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::cacheServingLayerSpec(num_gpus);
  // PCIe-class per-pair bandwidth: the HPS-style inference node the
  // replica cache targets is exchange-bound, unlike the NVLink training
  // testbed (where the lookup compute dominates and a cache could only
  // ever trim the exchange tail).
  cfg.link.bandwidth_bytes_per_sec = 12e9;
  return cfg;
}

ScenarioRunner::ScenarioRunner(const ExperimentConfig& config)
    : builder_(config) {}

ExperimentResult ScenarioRunner::run(const std::string& retriever_name) {
  const ExperimentConfig& config = builder_.config();
  PGASEMB_CHECK(config.num_batches >= 1, "need at least one batch");

  builder_.reset();
  std::unique_ptr<core::EmbeddingRetriever> retriever =
      core::RetrieverRegistry::instance().create(retriever_name,
                                                 builder_.context());

  ExperimentResult result;
  Rng rng(config.batch_seed);
  const bool functional = config.mode == gpu::ExecutionMode::kFunctional;
  // Timing-only runs reuse one statistical batch: the workload is the
  // distribution's expectation every batch, as in the paper's uniform
  // synthetic inputs.
  emb::SparseBatch statistical =
      emb::SparseBatch::statistical(config.layer.batchSpec());
  core::SloTracker slo(config.fallback);
  std::string active = retriever_name;
  std::int64_t fallback_switches = 0;
  for (int b = 0; b < config.num_batches; ++b) {
    core::BatchTiming t;
    if (functional) {
      const auto batch =
          emb::SparseBatch::generateUniform(config.layer.batchSpec(), rng);
      t = retriever->runBatch(batch);
    } else {
      t = retriever->runBatch(statistical);
    }
    result.stats.add(t);
    result.per_batch.push_back(t);
    if (slo.record(t.total) && config.fallback.fallback_to != active &&
        core::RetrieverRegistry::instance().contains(
            config.fallback.fallback_to)) {
      // Degradation policy: the active strategy keeps blowing its SLO —
      // drain it and finish the run on the fallback strategy.
      result.stats.total += retriever->finish();
      retriever.reset();
      active = config.fallback.fallback_to;
      retriever = core::RetrieverRegistry::instance().create(
          active, builder_.context());
      ++fallback_switches;
    }
  }
  // Epilogue: pipelined strategies still have batches in flight; their
  // drain time belongs to the run total. No-op (zero) for the rest.
  result.stats.total += retriever->finish();

  {
    fault::ResilienceStats resilience;
    auto* injector = builder_.faultInjector();
    if (injector != nullptr) resilience = injector->stats();
    resilience.fallback_switches = fallback_switches;
    if (fallback_switches > 0) resilience.fallback_retriever = active;
    if (injector != nullptr || resilience.any()) {
      result.resilience = resilience;
    }
  }

  if (auto* san = builder_.sanitizer()) {
    // The host consumes every GPU's final output tensor (standing in for
    // the downstream interaction layer) — the reader the last batch's
    // writes must be ordered against.
    const SimTime now = builder_.system().hostNow();
    for (int g = 0; g < config.num_gpus; ++g) {
      const auto& out = retriever->output(g);
      san->access(simsan::Checker::kHost, g,
                  simsan::StridedRange::contiguous(out.offset(), out.size()),
                  simsan::AccessKind::kRead, now, now,
                  "host.consume_output.gpu" + std::to_string(g));
    }
    // Destroy the retriever (frees its working buffers), then audit.
    retriever.reset();
    san->leakCheck();
    result.sanitizer = san->summary();
  }

  // Delivery (wire-occupancy) counter: for PGAS this matches the paper's
  // in-kernel issue counter; for the baseline it spreads each chunk over
  // its serialization window, exactly the paper's "linearly interpolated
  // over the communication time" dashed line.
  const auto& counter = builder_.fabric().deliveryCounter();
  result.bucket_width = counter.bucketWidth();
  result.wire_bytes_over_time.resize(counter.numBuckets());
  for (std::size_t i = 0; i < counter.numBuckets(); ++i) {
    result.wire_bytes_over_time[i] = counter.bucket(i);
  }
  result.total_wire_bytes = builder_.fabric().totalPayloadBytes();
  result.total_wire_messages = builder_.fabric().totalMessages();

  // ncu-style throughput of the lookup kernel on GPU 0.
  {
    auto& layer = builder_.layer();
    const auto work = layer.lookupWork(statistical, 0);
    const double dim = static_cast<double>(config.layer.dim);
    const double outputs = static_cast<double>(work.totalOutputs());
    const double bytes = outputs * 8.0 + work.gathered_rows * 8.0 +
                         work.gathered_rows * dim * 4.0 +
                         outputs * dim * 4.0;
    // ncu's SM throughput counts all scalar instructions (index math,
    // addressing), not just the pooling adds.
    const double instructions =
        work.gathered_rows * dim *
        config.cost_model.compute_instructions_per_element;
    const SimTime duration = emb::lookupComputeTime(layer, work);
    const auto tp =
        config.cost_model.kernelThroughput(instructions, bytes, duration);
    result.lookup_compute_throughput = tp.compute;
    result.lookup_memory_throughput = tp.memory;
  }
  return result;
}

std::vector<NamedResult> ScenarioRunner::runAll(
    const std::vector<std::string>& names) {
  std::vector<NamedResult> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    out.push_back({name, run(name)});
  }
  return out;
}

}  // namespace pgasemb::engine

#include "engine/serving_runner.hpp"

#include <algorithm>
#include <optional>

#include "engine/admission.hpp"
#include "engine/batch_executor.hpp"
#include "engine/dynamic_batcher.hpp"
#include "engine/load_generator.hpp"
#include "engine/scenario_runner.hpp"
#include "util/expect.hpp"

namespace pgasemb::engine {
namespace {

/// Nearest-rank p95 of a window of latencies, in ms.
double windowP95Ms(std::vector<SimTime>& window) {
  std::sort(window.begin(), window.end());
  const auto n = window.size();
  auto rank = static_cast<std::size_t>(0.95 * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return window[rank].toMs();
}

}  // namespace

ServingRunner::ServingRunner(const ExperimentConfig& config)
    : builder_(config) {}

ExperimentResult ServingRunner::run(const std::string& retriever_name) {
  const ExperimentConfig& config = builder_.config();
  PGASEMB_CHECK(config.serving.enabled(),
                "ServingRunner needs serving.num_queries > 0");
  config.validate();

  builder_.reset();
  BatchExecutor exec(builder_, retriever_name,
                     BatchExecutor::SloMode::kPerQuery);

  ExperimentResult result;
  result.serving.emplace();
  ServingResult& sv = *result.serving;

  const std::int64_t max_batch = config.serving.max_batch_size > 0
                                     ? config.serving.max_batch_size
                                     : config.layer.batch_size;
  LoadGenerator generator(config.serving, max_batch);
  std::optional<AdmissionController> admission;
  if (config.serving.admissionEnabled()) {
    AdmissionParams ap;
    ap.queue_limit = config.serving.admit_queue;
    ap.policy = config.serving.shed_policy;
    ap.query_deadline = SimTime::ms(config.serving.query_deadline_ms);
    ap.window = config.serving.admit_window;
    ap.slo = SimTime::ms(config.serving.slo_ms);
    admission.emplace(ap);
  }
  DynamicBatcher batcher(generator, max_batch,
                         SimTime::ms(config.serving.max_wait_ms),
                         admission ? &*admission : nullptr);
  Rng wl_rng(config.batch_seed);
  const bool functional = config.mode == gpu::ExecutionMode::kFunctional;
  const SimTime slo = SimTime::ms(config.serving.slo_ms);
  auto& system = builder_.system();

  bool first_arrival_seen = false;
  SimTime first_arrival = SimTime::zero();
  SimTime last_completion = SimTime::zero();
  std::int64_t total_samples = 0;
  std::int64_t good_queries = 0;  ///< served within the SLO (all, if none)
  double queue_depth_sum = 0.0;
  std::vector<SimTime> window;
  window.reserve(static_cast<std::size_t>(config.serving.timeline_window));

  while (auto formed = batcher.nextBatch(system.hostNow())) {
    // The host sits idle until the batch closes (arrival-bound gaps).
    if (formed->close_time > system.hostNow()) {
      system.hostAdvance(formed->close_time - system.hostNow());
    }
    // The formed batch is the concatenation of its queries' lookups,
    // padded to the fixed batch shape with NULL inputs.
    emb::SparseBatchSpec spec = config.layer.batchSpec();
    spec.active_samples = formed->samples;
    if (functional) {
      const auto batch = emb::SparseBatch::generateUniform(spec, wl_rng);
      exec.runOne(batch, result);
    } else {
      exec.runOne(emb::SparseBatch::statistical(spec), result);
    }
    const SimTime completion = system.hostNow();

    for (const auto& q : formed->queries) {
      if (!first_arrival_seen || q.arrival < first_arrival) {
        first_arrival = q.arrival;
        first_arrival_seen = true;
      }
      const SimTime total = completion - q.arrival;
      sv.latency.add(total);
      sv.queue_latency.add(formed->close_time - q.arrival);
      if (slo > SimTime::zero() && total > slo) {
        ++sv.slo_violations;
      } else {
        ++good_queries;
      }
      if (admission) admission->onCompletion(total);
      exec.recordQueryLatency(total);
      window.push_back(total);
      if (static_cast<int>(window.size()) >= config.serving.timeline_window) {
        sv.window_p95_ms.push_back(windowP95Ms(window));
        window.clear();
      }
    }
    last_completion = completion;
    total_samples += formed->samples;
    queue_depth_sum += static_cast<double>(formed->queue_depth_at_close);
    sv.max_queue_depth =
        std::max(sv.max_queue_depth, formed->queue_depth_at_close);
    sv.per_batch_samples.push_back(formed->samples);
    ++sv.batches;
    sv.queries += static_cast<std::int64_t>(formed->queries.size());
    // A pending p95-triggered fallback swaps between batches: the drain
    // advances the host clock, so queued queries wait through it (the
    // switch cost lands on the in-flight tail, not nowhere).
    exec.maybeSwap(result);
  }
  exec.finishRun(result);

  sv.p50_ms = sv.latency.percentileMs(50.0);
  sv.p95_ms = sv.latency.percentileMs(95.0);
  sv.p99_ms = sv.latency.percentileMs(99.0);
  sv.mean_ms = sv.latency.meanMs();
  sv.max_ms = sv.latency.max().toMs();
  sv.mean_queue_ms = sv.queue_latency.meanMs();
  sv.offered_qps = config.serving.qps;
  const double span_s = (last_completion - first_arrival).toSec();
  sv.achieved_qps =
      span_s > 0.0 ? static_cast<double>(sv.queries) / span_s : 0.0;
  sv.goodput_qps =
      span_s > 0.0 ? static_cast<double>(good_queries) / span_s : 0.0;
  if (admission) {
    sv.admission = true;
    sv.shed_queue = admission->shedQueue();
    sv.shed_overload = admission->shedOverload();
    sv.deadline_misses = admission->deadlineMisses();
    sv.blocked_arrivals = admission->blockedArrivals();
  }
  sv.mean_batch_fill =
      sv.batches > 0 ? static_cast<double>(total_samples) /
                           (static_cast<double>(sv.batches) *
                            static_cast<double>(max_batch))
                     : 0.0;
  sv.mean_queue_depth =
      sv.batches > 0 ? queue_depth_sum / static_cast<double>(sv.batches)
                     : 0.0;

  // The throughput probe uses the full-shape batch (capacity, not the
  // run's average fill).
  const emb::SparseBatch full =
      emb::SparseBatch::statistical(config.layer.batchSpec());
  finalizeResult(builder_, exec, full, result);
  return result;
}

std::vector<NamedResult> ServingRunner::runAll(
    const std::vector<std::string>& names) {
  std::vector<NamedResult> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    out.push_back({name, run(name)});
  }
  return out;
}

}  // namespace pgasemb::engine

#include "engine/experiment.hpp"

#include "util/expect.hpp"

namespace pgasemb::engine {

ArrivalPattern parseArrivalPattern(const std::string& name) {
  if (name == "poisson") return ArrivalPattern::kPoisson;
  if (name == "bursty") return ArrivalPattern::kBursty;
  PGASEMB_CHECK(false, "unknown arrival pattern '", name,
                "' (poisson | bursty)");
  return ArrivalPattern::kPoisson;
}

std::string formatArrivalPattern(ArrivalPattern pattern) {
  return pattern == ArrivalPattern::kPoisson ? "poisson" : "bursty";
}

void ExperimentConfig::validate() const {
  PGASEMB_CHECK(num_batches >= 1, "need at least one batch");
  PGASEMB_CHECK(compress_bound >= 0.0,
                "compress-bound must be >= 0 (0 = off)");
  PGASEMB_CHECK(!compress_adaptive || compress_bound > 0.0,
                "compress-adaptive needs a positive compress-bound");
  PGASEMB_CHECK(compress_bound == 0.0 ||
                    sharding == emb::ShardingScheme::kTableWise,
                "inter-node compression is table-wise only (per-table "
                "error bounds do not compose with row-wise partial sums)");
  PGASEMB_CHECK(!hier_bug_scatter || hierarchical_a2a,
                "hier-bug-scatter needs hierarchical-a2a");
  for (const auto& spec : faults.specs) {
    if (!fault::nodeScoped(spec.kind)) continue;
    PGASEMB_CHECK(num_nodes > 1, "node-scoped fault '", spec.describe(),
                  "' needs a multi-node layout (--nodes > 1)");
    if (spec.kind == fault::FaultKind::kLeaderFail) {
      PGASEMB_CHECK(num_gpus / num_nodes >= 2,
                    "leader-fail needs >= 2 GPUs per node (no standby "
                    "leader to elect otherwise)");
    }
  }
  PGASEMB_CHECK(!faults.bug_rebuild_without_requiet ||
                    hierarchical_a2a,
                "bug-rebuild-without-requiet needs hierarchical-a2a");
  if (!serving.enabled()) {
    PGASEMB_CHECK(serving.admit_queue == 0 &&
                      serving.query_deadline_ms == 0.0 &&
                      serving.admit_window == 0,
                  "admission-control knobs (--admit-queue / "
                  "--query-deadline-ms / --admit-window) need serving "
                  "mode (--serving-queries > 0)");
    return;
  }
  PGASEMB_CHECK(serving.qps > 0.0, "serving qps must be positive");
  PGASEMB_CHECK(serving.max_wait_ms >= 0.0,
                "serving max-wait must be >= 0");
  PGASEMB_CHECK(serving.slo_ms >= 0.0, "serving SLO must be >= 0");
  PGASEMB_CHECK(serving.timeline_window >= 1,
                "serving timeline window must be >= 1");
  PGASEMB_CHECK(serving.admit_queue >= 0,
                "admit-queue must be >= 0 (0 = unbounded)");
  PGASEMB_CHECK(serving.query_deadline_ms >= 0.0,
                "query-deadline must be >= 0 (0 = off)");
  PGASEMB_CHECK(serving.admit_window >= 0,
                "admit-window must be >= 0 (0 = off)");
  PGASEMB_CHECK(serving.admit_window == 0 || serving.slo_ms > 0.0,
                "the admission controller (--admit-window) sheds "
                "against the SLO; set --serving-slo-ms > 0");
  if (serving.arrival == ArrivalPattern::kBursty) {
    PGASEMB_CHECK(serving.burst_on_ms > 0.0 && serving.burst_off_ms >= 0.0,
                  "bursty arrivals need burst-on > 0 and burst-off >= 0");
  }
  PGASEMB_CHECK(serving.query_size.lo >= 1,
                "query sizes must be >= 1");
  PGASEMB_CHECK(serving.query_size.hi >= serving.query_size.lo,
                "query-size range is inverted");
  const std::int64_t max_batch = serving.max_batch_size > 0
                                     ? serving.max_batch_size
                                     : layer.batch_size;
  // The retriever buffers and kernel shapes are sized once from the
  // layer's batch_size; the batcher pads partially filled batches up to
  // that fixed shape, so its cap cannot exceed it.
  PGASEMB_CHECK(max_batch <= layer.batch_size,
                "serving max-batch ", max_batch,
                " exceeds the layer batch size ", layer.batch_size);
}

double CompressionReport::maxAbsError() const {
  double max_error = 0.0;
  for (const auto& t : tables) {
    if (t.max_abs_error > max_error) max_error = t.max_abs_error;
  }
  return max_error;
}

double ExperimentResult::avgBatchMs() const {
  return stats.batches ? stats.total.toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgComputeMs() const {
  return stats.batches ? stats.compute_phase.toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgCommunicationMs() const {
  return stats.batches ? stats.communication().toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgSyncUnpackMs() const {
  return stats.batches ? stats.syncUnpack().toMs() / stats.batches : 0.0;
}

}  // namespace pgasemb::engine

#include "engine/admission.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::engine {

ShedPolicy parseShedPolicy(const std::string& name) {
  if (name == "block") return ShedPolicy::kBlock;
  if (name == "shed-oldest") return ShedPolicy::kShedOldest;
  if (name == "shed-newest") return ShedPolicy::kShedNewest;
  PGASEMB_CHECK(false, "unknown shed policy '", name,
                "' (block | shed-oldest | shed-newest)");
  return ShedPolicy::kBlock;
}

std::string formatShedPolicy(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kBlock:
      return "block";
    case ShedPolicy::kShedOldest:
      return "shed-oldest";
    case ShedPolicy::kShedNewest:
      return "shed-newest";
  }
  return "block";
}

AdmissionController::AdmissionController(AdmissionParams params)
    : params_(params) {
  PGASEMB_CHECK(params_.queue_limit >= 0, "admit-queue must be >= 0");
  PGASEMB_CHECK(params_.window >= 0, "admit-window must be >= 0");
  if (params_.window > 0) {
    window_.reserve(static_cast<std::size_t>(params_.window));
  }
}

bool AdmissionController::admit(const Query& query,
                                std::deque<Query>& pending) {
  (void)query;  // sheds are positional (FIFO), never content-based
  // Overload controller first: a query the controller sheds never
  // reaches the queue, so the bound below sees the post-shed stream.
  if (shed_fraction_ > 0.0) {
    debt_ += shed_fraction_;
    if (debt_ >= 1.0) {
      debt_ -= 1.0;
      ++shed_overload_;
      return false;
    }
  }
  if (params_.queue_limit > 0 &&
      static_cast<std::int64_t>(pending.size()) >= params_.queue_limit) {
    switch (params_.policy) {
      case ShedPolicy::kBlock:
        ++blocked_;
        break;  // open-loop client cannot be back-pressured: admit
      case ShedPolicy::kShedOldest:
        pending.pop_front();
        ++shed_queue_;
        break;
      case ShedPolicy::kShedNewest:
        ++shed_queue_;
        return false;
    }
  }
  return true;
}

void AdmissionController::expire(SimTime now, std::deque<Query>& pending) {
  if (params_.query_deadline <= SimTime::zero()) return;
  // Pending is FIFO by arrival, so expired queries sit at the front.
  while (!pending.empty() &&
         now - pending.front().arrival > params_.query_deadline) {
    pending.pop_front();
    ++deadline_misses_;
  }
}

void AdmissionController::onCompletion(SimTime latency) {
  if (params_.window <= 0 || params_.slo <= SimTime::zero()) return;
  const auto cap = static_cast<std::size_t>(params_.window);
  if (window_.size() < cap) {
    window_.push_back(latency);
  } else {
    window_[window_next_] = latency;
    window_next_ = (window_next_ + 1) % cap;
    window_full_ = true;
  }
  if (!window_full_ && window_.size() < cap) return;
  window_full_ = true;
  // Nearest-rank p95 over the window (same convention as the serving
  // timeline), then additive-increase / additive-decrease on the shed
  // fraction: react fast to an SLO breach, release load back slowly.
  std::vector<SimTime> sorted = window_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank = (sorted.size() * 95 + 99) / 100;
  const SimTime p95 = sorted[std::min(rank == 0 ? 0 : rank - 1,
                                      sorted.size() - 1)];
  if (p95 > params_.slo) {
    shed_fraction_ = std::min(0.9, shed_fraction_ + 0.1);
  } else {
    shed_fraction_ = std::max(0.0, shed_fraction_ - 0.05);
    if (shed_fraction_ == 0.0) debt_ = 0.0;
  }
}

}  // namespace pgasemb::engine

// Overload-resilient admission control for the open-loop serving path
// (DESIGN.md §13).
//
// Three independent mechanisms, each absent-neutral when its knob is at
// the default:
//  - bounded admission queue (`queue_limit`): when the backlog is at the
//    bound, the shed policy decides who pays — block (admit anyway,
//    count the over-bound admit), shed-oldest (evict the head of the
//    queue; its deadline is already the most hopeless) or shed-newest
//    (drop the incoming query at the door);
//  - per-query queue-wait deadline (`query_deadline`): a query still
//    waiting when its deadline expires is shed as a deadline miss
//    instead of being served hopelessly late;
//  - sliding-window admission controller (`window`, `slo`): tracks the
//    p95 of the last `window` completed queries and sheds a
//    deterministic (error-diffusion, no RNG) fraction of incoming
//    queries while the window p95 sits above the SLO, backing off
//    additively once it recovers.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "engine/experiment.hpp"
#include "engine/load_generator.hpp"
#include "util/time.hpp"

namespace pgasemb::engine {

struct AdmissionParams {
  std::int64_t queue_limit = 0;  ///< pending queries; 0 = unbounded
  ShedPolicy policy = ShedPolicy::kBlock;
  SimTime query_deadline = SimTime::zero();  ///< 0 = no deadline
  int window = 0;          ///< completed-query p95 window; 0 = off
  SimTime slo = SimTime::zero();  ///< controller target (per-query)

  bool any() const {
    return queue_limit > 0 || query_deadline > SimTime::zero() ||
           (window > 0 && slo > SimTime::zero());
  }
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionParams params);

  /// Gate an arriving query before it enters `pending`. Returns false
  /// when the query is shed at the door (controller shed, or
  /// shed-newest on a full queue); may evict from `pending` instead
  /// (shed-oldest). The caller pushes the query itself on true.
  bool admit(const Query& query, std::deque<Query>& pending);

  /// Shed every pending query whose queue wait exceeded the deadline by
  /// `now` (counted as deadline misses). No-op without a deadline.
  void expire(SimTime now, std::deque<Query>& pending);

  /// Completed-query feedback for the sliding-window controller.
  void onCompletion(SimTime latency);

  /// Incoming queries currently shed per unit by the controller (0 when
  /// the window p95 has been at or under the SLO long enough).
  double shedFraction() const { return shed_fraction_; }

  std::int64_t shedQueue() const { return shed_queue_; }
  std::int64_t shedOverload() const { return shed_overload_; }
  std::int64_t deadlineMisses() const { return deadline_misses_; }
  std::int64_t blockedArrivals() const { return blocked_; }
  /// Every query shed by any mechanism (never served).
  std::int64_t totalShed() const {
    return shed_queue_ + shed_overload_ + deadline_misses_;
  }

 private:
  AdmissionParams params_;
  /// Ring of the last `window` completed-query latencies.
  std::vector<SimTime> window_;
  std::size_t window_next_ = 0;
  bool window_full_ = false;
  double shed_fraction_ = 0.0;
  double debt_ = 0.0;  ///< error-diffusion accumulator (deterministic)
  std::int64_t shed_queue_ = 0;
  std::int64_t shed_overload_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t blocked_ = 0;
};

}  // namespace pgasemb::engine

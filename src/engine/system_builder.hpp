// SystemBuilder: assembles the simulated system an ExperimentConfig
// describes — devices, interconnect fabric, collective communicator,
// PGAS runtime, and the sharded embedding layer — and hands it to
// retriever factories as a core::SystemContext.
//
// The builder owns the assembly and can reset() it onto a fresh clock,
// so one builder serves any number of retriever runs (ScenarioRunner
// resets before each run; the simulation is deterministic, so a rebuilt
// system reproduces the seed harness bit-for-bit).
#pragma once

#include <memory>
#include <vector>

#include "core/registry.hpp"
#include "engine/experiment.hpp"
#include "gpu/device.hpp"

namespace pgasemb {
namespace collective {
class Communicator;
struct HierStaging;
}
namespace emb {
class ReplicaCache;
}
namespace fabric {
class Fabric;
class InterNodeCodec;
}
namespace fault {
class FaultInjector;
}
namespace pgas {
class PgasRuntime;
}
namespace simsan {
class Checker;
class StrictEffects;
}
}  // namespace pgasemb

namespace pgasemb::engine {

class SystemBuilder {
 public:
  /// Copies `config`; the stored copy backs the aggregator pointer in
  /// context(), so it must not be mutated between reset() and the last
  /// use of a retriever built from that context.
  explicit SystemBuilder(const ExperimentConfig& config);
  ~SystemBuilder();

  SystemBuilder(const SystemBuilder&) = delete;
  SystemBuilder& operator=(const SystemBuilder&) = delete;

  /// Tears the assembly down (reverse construction order) and rebuilds
  /// it from the stored config on a fresh simulation clock.
  void reset();

  const ExperimentConfig& config() const { return config_; }

  gpu::MultiGpuSystem& system() { return *system_; }
  fabric::Fabric& fabric() { return *fabric_; }
  collective::Communicator& comm() { return *comm_; }
  pgas::PgasRuntime& runtime() { return *runtime_; }
  emb::ShardedEmbeddingLayer& layer() { return *layer_; }

  /// The hot-row replica cache of the current assembly, or nullptr when
  /// ExperimentConfig::cache_rows is 0. Invalidated by reset().
  emb::ReplicaCache* cache() { return cache_.get(); }

  /// The simsan checker attached to the current assembly, or nullptr
  /// when ExperimentConfig::simsan is off. Invalidated by reset().
  simsan::Checker* sanitizer() { return sanitizer_.get(); }

  /// The strict-effects recorder, or nullptr when
  /// ExperimentConfig::simsan_strict is off. Invalidated by reset().
  simsan::StrictEffects* strictEffects() { return strict_.get(); }

  /// The armed fault injector of the current assembly, or nullptr when
  /// ExperimentConfig::faults is empty. Invalidated by reset().
  fault::FaultInjector* faultInjector() { return injector_.get(); }

  /// The inter-node codec, or nullptr when ExperimentConfig::
  /// compress_bound is 0 or the topology is single-node. Invalidated by
  /// reset().
  fabric::InterNodeCodec* codec() { return codec_.get(); }

  /// The retriever-factory view of the current assembly. Invalidated by
  /// reset(); any retriever built from it must be destroyed first.
  core::SystemContext context();

 private:
  void build();
  /// Allocate the per-node leader staging buffers of the hierarchical
  /// all-to-all and carve their gather/recv slot ranges (table-wise
  /// sharding only; other schemes run the hierarchy timing-only).
  void buildHierStaging(int nodes, int gpus_per_node);

  ExperimentConfig config_;
  // Destroyed after the system (teardown frees report into it).
  std::unique_ptr<simsan::Checker> sanitizer_;
  std::unique_ptr<simsan::StrictEffects> strict_;
  std::unique_ptr<gpu::MultiGpuSystem> system_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<collective::Communicator> comm_;
  std::unique_ptr<pgas::PgasRuntime> runtime_;
  std::unique_ptr<emb::ShardedEmbeddingLayer> layer_;
  std::unique_ptr<emb::ReplicaCache> cache_;  // holds layer allocations
  // Armed against the system + fabric; runtime/comm hold raw pointers to
  // it, so it is torn down before them and rebuilt fresh on reset().
  std::unique_ptr<fault::FaultInjector> injector_;
  // Inter-node codec; runtime/comm hold raw pointers, torn down with the
  // assembly on reset().
  std::unique_ptr<fabric::InterNodeCodec> codec_;
  // Hierarchical leader staging: device allocations (freed in reset(),
  // before the devices go) and the slot ranges carved from them.
  std::vector<gpu::DeviceBuffer> hier_buffers_;
  std::vector<collective::HierStaging> hier_staging_;
  // Standby staging on each node's failover leader, provisioned only
  // when the fault plan can fail a leader (empty otherwise).
  std::vector<collective::HierStaging> hier_standby_;
};

}  // namespace pgasemb::engine

#include "engine/load_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace pgasemb::engine {

LoadGenerator::LoadGenerator(const ServingConfig& config,
                             std::int64_t max_samples)
    : config_(config),
      max_samples_(max_samples),
      sizes_(config.query_size),
      rng_(config.seed) {
  PGASEMB_CHECK(config.qps > 0.0, "serving qps must be positive");
  PGASEMB_CHECK(max_samples >= 1, "need a positive sample cap");
}

SimTime LoadGenerator::nextArrival() {
  // Inverse-CDF exponential inter-arrival: -ln(1 - u) / rate. In burst
  // mode the draw runs at the elevated in-burst rate on the "burst
  // time" axis (off-windows excised), then maps back to wall time.
  const double u = rng_.uniformDouble();
  if (config_.arrival == ArrivalPattern::kPoisson) {
    clock_s_ += -std::log1p(-u) / config_.qps;
    return SimTime::sec(clock_s_);
  }
  const double on_s = config_.burst_on_ms * 1e-3;
  const double off_s = config_.burst_off_ms * 1e-3;
  const double burst_rate = config_.qps * (on_s + off_s) / on_s;
  clock_s_ += -std::log1p(-u) / burst_rate;
  const double full_windows = std::floor(clock_s_ / on_s);
  return SimTime::sec(clock_s_ + full_windows * off_s);
}

std::optional<Query> LoadGenerator::next() {
  if (produced_ >= config_.num_queries) return std::nullopt;
  Query q;
  q.id = produced_;
  q.arrival = nextArrival();
  q.samples = std::min(sizes_.sample(rng_), max_samples_);
  ++produced_;
  return q;
}

}  // namespace pgasemb::engine

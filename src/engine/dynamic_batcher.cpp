#include "engine/dynamic_batcher.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::engine {

DynamicBatcher::DynamicBatcher(LoadGenerator& generator,
                               std::int64_t max_batch, SimTime max_wait,
                               AdmissionController* admission)
    : generator_(generator),
      max_batch_(max_batch),
      max_wait_(max_wait),
      admission_(admission) {
  PGASEMB_CHECK(max_batch >= 1, "need a positive max batch size");
  PGASEMB_CHECK(max_wait >= SimTime::zero(), "negative max wait");
}

void DynamicBatcher::pullArrivals(SimTime until) {
  while (true) {
    if (!lookahead_) {
      if (exhausted_) return;
      auto q = generator_.next();
      if (!q) {
        exhausted_ = true;
        return;
      }
      lookahead_ = *q;
    }
    if (lookahead_->arrival > until) return;
    if (admission_ != nullptr &&
        !admission_->admit(*lookahead_, pending_)) {
      lookahead_.reset();
      continue;
    }
    pending_.push_back(*lookahead_);
    lookahead_.reset();
  }
}

std::optional<FormedBatch> DynamicBatcher::nextBatch(SimTime free_at) {
  SimTime open = SimTime::zero();
  for (;;) {
    // Anchor the window on the earliest unserved (and admitted) query.
    while (pending_.empty()) {
      if (!lookahead_) {
        if (exhausted_) return std::nullopt;
        auto q = generator_.next();
        if (!q) {
          exhausted_ = true;
          return std::nullopt;
        }
        lookahead_ = *q;
      }
      if (admission_ != nullptr &&
          !admission_->admit(*lookahead_, pending_)) {
        lookahead_.reset();
        continue;
      }
      pending_.push_back(*lookahead_);
      lookahead_.reset();
    }
    open = std::max(free_at, pending_.front().arrival);
    pullArrivals(open);
    if (admission_ == nullptr) break;
    // Queries whose queue wait blew the deadline by the window open are
    // shed instead of served; re-anchor when that empties the queue.
    admission_->expire(open, pending_);
    if (!pending_.empty()) break;
  }

  FormedBatch batch;
  batch.close_time = open;
  // FIFO-pack whole queries that already arrived. Every query fits an
  // empty batch (the generator caps sizes at the batch shape), so the
  // batch always takes at least the front query.
  while (!pending_.empty() &&
         batch.samples + pending_.front().samples <= max_batch_) {
    batch.samples += pending_.front().samples;
    batch.queries.push_back(pending_.front());
    pending_.pop_front();
  }

  if (pending_.empty() && batch.samples < max_batch_) {
    // Not full and no backlog: hold the batch open under the latency
    // budget of its first query, admitting arrivals as they come.
    const SimTime deadline =
        std::max(open, batch.queries.front().arrival + max_wait_);
    batch.close_time = deadline;
    while (batch.samples < max_batch_) {
      if (!lookahead_) {
        if (exhausted_) break;  // stream over; still wait out the budget
        auto q = generator_.next();
        if (!q) {
          exhausted_ = true;
          break;
        }
        lookahead_ = *q;
      }
      if (lookahead_->arrival > deadline) break;
      if (admission_ != nullptr &&
          !admission_->admit(*lookahead_, pending_)) {
        lookahead_.reset();
        continue;
      }
      if (batch.samples + lookahead_->samples <= max_batch_) {
        batch.samples += lookahead_->samples;
        batch.queries.push_back(*lookahead_);
        if (batch.samples >= max_batch_) {
          // Filled mid-wait: dispatch at the achieving arrival.
          batch.close_time = lookahead_->arrival;
        }
        lookahead_.reset();
      } else {
        // The arrival overflows the batch: dispatch now; it leads the
        // next batch.
        batch.close_time = lookahead_->arrival;
        pending_.push_back(*lookahead_);
        lookahead_.reset();
        break;
      }
    }
  }

  // Backlog accounting: everything that had arrived by the close and
  // is still unserved.
  pullArrivals(batch.close_time);
  batch.queue_depth_at_close = static_cast<std::int64_t>(pending_.size());
  return batch;
}

}  // namespace pgasemb::engine

// ScenarioRunner: runs any registered retrieval strategy — by string
// name, through core::RetrieverRegistry — against the system a
// SystemBuilder assembles, and collects the full ExperimentResult.
//
// Each run() resets the builder onto a fresh clock, so results are
// independent and bit-reproducible regardless of run order; runAll()
// sweeps a list of strategies over the same config (the engine behind
// the benches' --retrievers=a,b,c flag).
#pragma once

#include <string>
#include <vector>

#include "engine/system_builder.hpp"

namespace pgasemb::engine {

/// One strategy's result, tagged with its registry name.
struct NamedResult {
  std::string retriever;
  ExperimentResult result;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return builder_.config(); }
  SystemBuilder& builder() { return builder_; }

  /// Rebuilds the system and runs `retriever_name`'s full batch schedule
  /// (runBatch() per batch, then finish()). Throws InvalidArgumentError
  /// for unregistered names.
  ExperimentResult run(const std::string& retriever_name);

  /// run() for each name, in order.
  std::vector<NamedResult> runAll(const std::vector<std::string>& names);

 private:
  SystemBuilder builder_;
};

}  // namespace pgasemb::engine

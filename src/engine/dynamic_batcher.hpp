// Dynamic batcher: forms fixed-shape retrieval batches from the query
// stream under a latency budget, on the simulated clock.
//
// A batch closes when it holds `max_batch` samples, when an arriving
// query would overflow it, or when the first query in it has waited
// `max_wait` — whichever comes first once the executor is free. Whole
// queries are packed FIFO (a query's samples never split across
// batches), so per-query latency is well-defined: arrival -> its
// batch's completion.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "engine/admission.hpp"
#include "engine/load_generator.hpp"

namespace pgasemb::engine {

/// One closed batch: the queries it carries, the simulated time it
/// closed (dispatch time), and the backlog left behind.
struct FormedBatch {
  std::vector<Query> queries;
  SimTime close_time = SimTime::zero();
  std::int64_t samples = 0;
  /// Queries that had arrived by close_time but did not fit.
  std::int64_t queue_depth_at_close = 0;
};

class DynamicBatcher {
 public:
  /// `admission` (optional) gates every arrival before it joins the
  /// pending queue and sheds deadline-expired queries at window open;
  /// nullptr keeps the pre-admission behavior exactly.
  DynamicBatcher(LoadGenerator& generator, std::int64_t max_batch,
                 SimTime max_wait, AdmissionController* admission = nullptr);

  /// Forms the next batch given that the executor is busy until
  /// `free_at`: the batching window opens at max(free_at, first pending
  /// arrival), and the close rules run from there. nullopt when the
  /// query stream is exhausted.
  std::optional<FormedBatch> nextBatch(SimTime free_at);

 private:
  /// Pulls generator arrivals <= `until` into the pending queue.
  void pullArrivals(SimTime until);

  LoadGenerator& generator_;
  std::int64_t max_batch_;
  SimTime max_wait_;
  AdmissionController* admission_ = nullptr;
  std::deque<Query> pending_;
  std::optional<Query> lookahead_;  ///< pulled but not yet <= the window
  bool exhausted_ = false;
};

}  // namespace pgasemb::engine

// ServingRunner: the open-loop serving front end — load generator ->
// dynamic batcher -> BatchExecutor — reporting per-query tail latency.
//
// Queries arrive on the simulated clock independent of service times
// (open loop); the batcher forms fixed-shape batches (padding the tail
// with NULL inputs) and the executor runs them back to back, advancing
// the host clock through idle gaps. Per-query latency = arrival ->
// host-observed completion of the query's batch; its queueing component
// is arrival -> batch close. The SLO fallback fires on the sliding
// per-query p95 (BatchExecutor query mode), so retriever choice adapts
// to load, and a fault plan can run underneath for brownout scenarios.
#pragma once

#include <string>
#include <vector>

#include "engine/system_builder.hpp"

namespace pgasemb::engine {

struct NamedResult;

class ServingRunner {
 public:
  /// `config.serving.enabled()` must be true.
  explicit ServingRunner(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return builder_.config(); }
  SystemBuilder& builder() { return builder_; }

  /// Rebuilds the system and serves the full query stream through
  /// `retriever_name`, returning the closed-loop fields plus a
  /// populated ExperimentResult::serving section.
  ExperimentResult run(const std::string& retriever_name);

  /// run() for each name, in order (same seeded query stream each).
  std::vector<NamedResult> runAll(const std::vector<std::string>& names);

 private:
  SystemBuilder builder_;
};

}  // namespace pgasemb::engine

// Experiment description and result types for the engine layer.
//
// ExperimentConfig describes one simulated system + workload (devices,
// fabric, sharded EMB layer, batch schedule); ExperimentResult collects
// everything the paper's tables and figures report — phase breakdowns,
// wire traffic over time, and ncu-style kernel throughput fractions.
// SystemBuilder assembles the system; ScenarioRunner runs any registered
// retriever strategy on it by name.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fallback.hpp"
#include "core/latency_histogram.hpp"
#include "core/retriever.hpp"
#include "emb/workload.hpp"
#include "fabric/link.hpp"
#include "fault/plan.hpp"
#include "gpu/cost_model.hpp"
#include "pgas/aggregator.hpp"
#include "simsan/checker.hpp"

namespace pgasemb::engine {

/// Query arrival process of the open-loop load generator.
enum class ArrivalPattern {
  kPoisson,  ///< exponential inter-arrivals at `qps`
  kBursty,   ///< on/off: Poisson bursts at an elevated rate, then silence
};

/// Parses "poisson" / "bursty" (throws InvalidArgumentError otherwise).
ArrivalPattern parseArrivalPattern(const std::string& name);
std::string formatArrivalPattern(ArrivalPattern pattern);

/// What the admission layer does with an arriving query when the
/// bounded queue (`ServingConfig::admit_queue`) is full.
enum class ShedPolicy {
  kBlock,       ///< admit anyway; count the over-bound admit
  kShedOldest,  ///< evict the head of the queue, admit the arrival
  kShedNewest,  ///< drop the arrival at the door
};

/// Parses "block" / "shed-oldest" / "shed-newest" (throws
/// InvalidArgumentError otherwise).
ShedPolicy parseShedPolicy(const std::string& name);
std::string formatShedPolicy(ShedPolicy policy);

/// Open-loop serving front end (ServingRunner): a timestamped query
/// stream feeding a dynamic batcher in front of the retriever. Default
/// num_queries = 0 keeps serving off and every closed-loop code path
/// untouched.
struct ServingConfig {
  /// Queries to generate; 0 disables the serving path entirely.
  std::int64_t num_queries = 0;
  /// Offered load in queries per second (of simulated time).
  double qps = 1000.0;
  ArrivalPattern arrival = ArrivalPattern::kPoisson;
  /// kBursty: burst / silence window lengths. The in-burst rate is
  /// scaled up so the long-run average stays `qps`.
  double burst_on_ms = 5.0;
  double burst_off_ms = 5.0;
  /// Samples (candidate items) per query.
  emb::QuerySizeSpec query_size;
  /// Dynamic-batcher close rules: a batch dispatches when it holds
  /// `max_batch_size` samples (0 = the layer's batch_size) or the first
  /// query in it has waited `max_wait_ms` of simulated time.
  std::int64_t max_batch_size = 0;
  double max_wait_ms = 0.1;
  /// Absolute per-query latency SLO for violation counting (and the
  /// knee-of-the-curve summaries); 0 = no SLO accounting.
  double slo_ms = 0.0;
  /// Seed of the arrival/size stream (independent of batch_seed).
  std::uint64_t seed = 0x5e12;
  /// Queries per non-overlapping window of the p95-over-time timeline.
  int timeline_window = 100;
  /// Bounded admission queue (pending queries); 0 = unbounded, exactly
  /// the pre-admission behavior. When the backlog hits the bound,
  /// `shed_policy` decides which query pays.
  std::int64_t admit_queue = 0;
  ShedPolicy shed_policy = ShedPolicy::kBlock;
  /// Per-query queue-wait deadline (ms of simulated time): a query
  /// still unserved when it expires is shed as a deadline miss instead
  /// of being served hopelessly late. 0 = off.
  double query_deadline_ms = 0.0;
  /// Sliding-window admission controller: completed queries per p95
  /// window; while the window p95 exceeds `slo_ms` a deterministic
  /// fraction of incoming queries is shed at the door. 0 = off
  /// (requires slo_ms > 0 when set).
  int admit_window = 0;

  bool enabled() const { return num_queries > 0; }
  bool admissionEnabled() const {
    return admit_queue > 0 || query_deadline_ms > 0.0 ||
           (admit_window > 0 && slo_ms > 0.0);
  }
};

struct ExperimentConfig {
  emb::EmbLayerSpec layer;
  int num_gpus = 4;
  int num_batches = emb::kPaperNumBatches;
  gpu::ExecutionMode mode = gpu::ExecutionMode::kTimingOnly;
  std::int64_t device_memory_bytes = 32LL * 1024 * 1024 * 1024;
  gpu::CostModel cost_model;
  fabric::LinkParams link;  ///< defaults = V100 NVLink
  emb::ShardingScheme sharding = emb::ShardingScheme::kTableWise;
  int pgas_slices = 128;
  bool use_aggregator = false;
  pgas::AggregatorParams aggregator;
  /// In-flight batches for the pipelined collective strategy.
  int pipeline_depth = 2;
  /// Hot-row replica cache capacity per table per GPU (rows); 0 disables
  /// the cache entirely (every code path identical to a cache-less
  /// build). Table-wise sharding only.
  std::int64_t cache_rows = 0;
  /// Multi-node layout: 0 = single node (paper testbed). When > 0,
  /// `num_gpus` must be divisible by it and `inter_node_link` applies to
  /// cross-node traffic.
  int num_nodes = 0;
  fabric::LinkParams inter_node_link;
  /// Hierarchical all-to-all (--hierarchical-a2a): stage inter-node
  /// traffic at per-node leaders, ship one aggregated flow per node
  /// pair, scatter on arrival. Requires num_nodes > 1 to do anything;
  /// false keeps every path bit-identical to earlier builds.
  bool hierarchical_a2a = false;
  /// Error-bounded inter-node compression (--compress-bound): absolute
  /// per-value bound of the lossy codec; 0 = off (no codec is built and
  /// every path is bit-identical to earlier builds). Needs num_nodes > 1
  /// and table-wise sharding.
  double compress_bound = 0.0;
  /// Adaptive ratio control (--compress-adaptive): compress at the
  /// minimal width only while the node's observed NIC egress is hot,
  /// light 16-bit mantissas otherwise. Implies compress_bound > 0.
  bool compress_adaptive = false;
  /// Model each node's NIC as a single serialization engine: the down
  /// link drains through the up link's FIFO, so a node's ingress and
  /// egress contend (real NICs share DMA/PCIe resources). Off by
  /// default for parity with earlier builds.
  bool nic_shared_queue = false;
  /// Seeded bug for simsan certification: the hierarchical intra-node
  /// scatter is injected when the inter-node flow *starts* instead of
  /// when it is delivered, and the happens-before edge is dropped.
  bool hier_bug_scatter = false;
  /// Time-series bucket width for the comm-volume traces.
  SimTime counter_bucket = SimTime::us(20.0);
  /// TimingOnly fast path: coalesce a kernel's per-slice injection
  /// events into one synchronous per-flow pass when provably
  /// result-identical (see PgasRuntime::setCoalescingEnabled). False =
  /// the --no-coalesce escape hatch: always schedule one simulator
  /// event per slice. Simulated results are identical either way; only
  /// wall-clock differs.
  bool coalesce_flows = true;
  std::uint64_t batch_seed = 0xbeef;
  /// Attach the simsan happens-before/bounds/lifetime checker to the
  /// run. Purely observational: timings and outputs are unchanged.
  bool simsan = false;
  /// Strict-effects mode (--simsan-strict, implies `simsan`): record the
  /// simulated-memory ranges each kernel/transfer actually touches and
  /// fail the run when an access escapes the declared MemEffect
  /// footprint. Purely observational: timings and outputs are unchanged.
  bool simsan_strict = false;
  /// Deterministic fault plan (--faults/--fault-seed). Empty = no
  /// injector is built and every code path stays bit-identical to a
  /// fault-free build.
  fault::FaultPlan faults;
  /// SLO degradation policy: when enabled, the closed-loop path swaps
  /// the active retriever for `fallback.fallback_to` after `patience`
  /// consecutive over-SLO batches; the serving path fires on the
  /// sliding-window per-query p95 instead.
  core::FallbackPolicy fallback;
  /// Open-loop serving front end; `serving.enabled()` == false keeps
  /// every closed-loop code path untouched.
  ServingConfig serving;

  /// Cross-field validation shared by benches (at flag-parse time) and
  /// runners (before a run). Throws InvalidArgumentError with a pointed
  /// message on the first violation.
  void validate() const;
};

/// One drained retriever at a mid-run SLO fallback: the swap's
/// finish() time, which the run total absorbs but no batch timing
/// carries (satellite of the tail-latency work — without it the
/// post-fallback tail understates the switch cost).
struct DrainEntry {
  int after_batch = 0;        ///< batches completed when the drain ran
  std::string retriever;      ///< the strategy that was drained
  SimTime drain_time = SimTime::zero();
};

/// Serving-path results (per-query tails); populated only when
/// ServingConfig::enabled().
struct ServingResult {
  std::int64_t queries = 0;
  std::int64_t batches = 0;

  /// End-to-end per-query latency (arrival -> batch completion) and its
  /// queueing component (arrival -> batch close).
  core::LatencyHistogram latency;
  core::LatencyHistogram queue_latency;

  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double mean_queue_ms = 0.0;

  /// Offered vs sustained load: achieved = queries / (last completion -
  /// first arrival). Achieved far below offered = the system fell
  /// behind (the queue grew without bound over the run).
  double offered_qps = 0.0;
  double achieved_qps = 0.0;

  /// Dynamic-batcher shape: mean fill of the fixed-size batch and the
  /// per-batch active-sample counts (the batch-size histogram).
  double mean_batch_fill = 0.0;
  std::vector<std::int64_t> per_batch_samples;

  /// Queries still queued when each batch closed (mean/max over
  /// batches) — the backlog the batcher could not drain.
  double mean_queue_depth = 0.0;
  std::int64_t max_queue_depth = 0;

  /// Queries whose end-to-end latency exceeded ServingConfig::slo_ms.
  std::int64_t slo_violations = 0;

  /// p95 (ms) per non-overlapping window of `timeline_window` queries,
  /// in completion order — brownout recovery is visible here.
  std::vector<double> window_p95_ms;

  /// Overload-resilience accounting (ServingConfig admission knobs);
  /// all zero — and `admission` false — when none of them is set.
  bool admission = false;
  std::int64_t shed_queue = 0;       ///< bounded-queue sheds
  std::int64_t shed_overload = 0;    ///< admission-controller sheds
  std::int64_t deadline_misses = 0;  ///< queue-wait deadline sheds
  std::int64_t blocked_arrivals = 0; ///< over-bound admits under block
  /// Queries served within the SLO per second of run span: the
  /// throughput that actually counted. Equals achieved_qps when no SLO
  /// is set; shed queries never contribute.
  double goodput_qps = 0.0;

  std::int64_t totalShed() const {
    return shed_queue + shed_overload + deadline_misses;
  }
};

/// Per-link-class wire accounting of a multi-node run.  The
/// wire-equivalent numbers convert link occupancy back to bytes at
/// nominal bandwidth, so they include headers, message-rate padding and
/// protocol-efficiency loss — what the traffic actually cost the wire.
struct InterNodeTraffic {
  std::int64_t inter_payload_bytes = 0;
  std::int64_t inter_messages = 0;
  double inter_wire_equivalent_bytes = 0.0;
  std::int64_t intra_payload_bytes = 0;
  std::int64_t intra_messages = 0;
  double intra_wire_equivalent_bytes = 0.0;
};

/// Measured (not estimated) accuracy of the inter-node codec for one
/// table; errors are only non-zero in Functional mode, where values are
/// really encoded and decoded.
struct CompressionTableReport {
  std::int64_t table = 0;
  int bits = 32;  ///< mantissa width (32 = incompressible, ships raw)
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  std::int64_t samples = 0;
};

/// Inter-node codec accounting; populated only when a codec was armed.
struct CompressionReport {
  double bound = 0.0;
  bool adaptive = false;
  std::int64_t raw_bytes = 0;   ///< payload entering the codec
  std::int64_t wire_bytes = 0;  ///< what actually crossed the NIC
  std::int64_t hot_decisions = 0;   ///< adaptive: minimal-width flows
  std::int64_t cool_decisions = 0;  ///< adaptive: light-width flows
  std::vector<CompressionTableReport> tables;

  double ratio() const {
    return wire_bytes > 0
               ? static_cast<double>(raw_bytes) /
                     static_cast<double>(wire_bytes)
               : 1.0;
  }
  double maxAbsError() const;
};

struct ExperimentResult {
  core::RetrieverStats stats;
  std::vector<core::BatchTiming> per_batch;

  /// Payload bytes injected into the fabric per time bucket over the full
  /// run (paper Figs 7/10 series, in bytes; divide by 256 for the
  /// paper's units).
  std::vector<double> wire_bytes_over_time;
  SimTime bucket_width = SimTime::zero();

  std::int64_t total_wire_bytes = 0;
  std::int64_t total_wire_messages = 0;

  /// ncu-style sustained throughput fractions of the lookup kernel
  /// (paper §IV-B2a reports 38% compute / 57% memory at 2 GPUs).
  double lookup_compute_throughput = 0.0;
  double lookup_memory_throughput = 0.0;

  /// simsan verdict; populated only when ExperimentConfig::simsan is on.
  std::optional<simsan::Summary> sanitizer;

  /// Resilience accounting; populated only when a fault plan was armed
  /// or the SLO fallback policy fired.
  std::optional<fault::ResilienceStats> resilience;

  /// Mid-run SLO fallback drains (empty unless a switch happened). The
  /// drained time is already inside stats.total; these entries say
  /// where it came from.
  std::vector<DrainEntry> drains;

  /// Per-query serving results; populated only when serving was on.
  std::optional<ServingResult> serving;

  /// Intra vs inter link-class traffic; populated on multi-node runs.
  std::optional<InterNodeTraffic> inter_node;

  /// Codec accounting; populated only when compress_bound > 0.
  std::optional<CompressionReport> compression;

  double avgBatchMs() const;
  double avgComputeMs() const;
  double avgCommunicationMs() const;
  double avgSyncUnpackMs() const;

  /// Replica-cache accounting over the run (zero when no cache).
  double cacheHitRate() const { return stats.cacheHitRate(); }
  double cacheSavedBytes() const { return stats.cache_saved_bytes; }
};

/// Convenience: paper weak-scaling config at `num_gpus`.
ExperimentConfig weakScalingConfig(int num_gpus);

/// Convenience: paper strong-scaling config at `num_gpus`.
ExperimentConfig strongScalingConfig(int num_gpus);

/// Convenience: inference cache-serving config at `num_gpus` — single-id
/// (pooling 1) Zipf-skewed lookups over a PCIe-class fabric, the
/// HugeCTR-HPS-style deployment the hot-row replica cache targets. The
/// caller sets `layer.zipf_alpha` and `cache_rows`.
ExperimentConfig cacheServingConfig(int num_gpus);

}  // namespace pgasemb::engine

// Experiment description and result types for the engine layer.
//
// ExperimentConfig describes one simulated system + workload (devices,
// fabric, sharded EMB layer, batch schedule); ExperimentResult collects
// everything the paper's tables and figures report — phase breakdowns,
// wire traffic over time, and ncu-style kernel throughput fractions.
// SystemBuilder assembles the system; ScenarioRunner runs any registered
// retriever strategy on it by name.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fallback.hpp"
#include "core/retriever.hpp"
#include "emb/workload.hpp"
#include "fabric/link.hpp"
#include "fault/plan.hpp"
#include "gpu/cost_model.hpp"
#include "pgas/aggregator.hpp"
#include "simsan/checker.hpp"

namespace pgasemb::engine {

struct ExperimentConfig {
  emb::EmbLayerSpec layer;
  int num_gpus = 4;
  int num_batches = emb::kPaperNumBatches;
  gpu::ExecutionMode mode = gpu::ExecutionMode::kTimingOnly;
  std::int64_t device_memory_bytes = 32LL * 1024 * 1024 * 1024;
  gpu::CostModel cost_model;
  fabric::LinkParams link;  ///< defaults = V100 NVLink
  emb::ShardingScheme sharding = emb::ShardingScheme::kTableWise;
  int pgas_slices = 128;
  bool use_aggregator = false;
  pgas::AggregatorParams aggregator;
  /// In-flight batches for the pipelined collective strategy.
  int pipeline_depth = 2;
  /// Hot-row replica cache capacity per table per GPU (rows); 0 disables
  /// the cache entirely (every code path identical to a cache-less
  /// build). Table-wise sharding only.
  std::int64_t cache_rows = 0;
  /// Multi-node layout: 0 = single node (paper testbed). When > 0,
  /// `num_gpus` must be divisible by it and `inter_node_link` applies to
  /// cross-node traffic.
  int num_nodes = 0;
  fabric::LinkParams inter_node_link;
  /// Time-series bucket width for the comm-volume traces.
  SimTime counter_bucket = SimTime::us(20.0);
  /// TimingOnly fast path: coalesce a kernel's per-slice injection
  /// events into one synchronous per-flow pass when provably
  /// result-identical (see PgasRuntime::setCoalescingEnabled). False =
  /// the --no-coalesce escape hatch: always schedule one simulator
  /// event per slice. Simulated results are identical either way; only
  /// wall-clock differs.
  bool coalesce_flows = true;
  std::uint64_t batch_seed = 0xbeef;
  /// Attach the simsan happens-before/bounds/lifetime checker to the
  /// run. Purely observational: timings and outputs are unchanged.
  bool simsan = false;
  /// Deterministic fault plan (--faults/--fault-seed). Empty = no
  /// injector is built and every code path stays bit-identical to a
  /// fault-free build.
  fault::FaultPlan faults;
  /// SLO degradation policy: when enabled, ScenarioRunner swaps the
  /// active retriever for `fallback.fallback_to` after `patience`
  /// consecutive over-SLO batches.
  core::FallbackPolicy fallback;
};

struct ExperimentResult {
  core::RetrieverStats stats;
  std::vector<core::BatchTiming> per_batch;

  /// Payload bytes injected into the fabric per time bucket over the full
  /// run (paper Figs 7/10 series, in bytes; divide by 256 for the
  /// paper's units).
  std::vector<double> wire_bytes_over_time;
  SimTime bucket_width = SimTime::zero();

  std::int64_t total_wire_bytes = 0;
  std::int64_t total_wire_messages = 0;

  /// ncu-style sustained throughput fractions of the lookup kernel
  /// (paper §IV-B2a reports 38% compute / 57% memory at 2 GPUs).
  double lookup_compute_throughput = 0.0;
  double lookup_memory_throughput = 0.0;

  /// simsan verdict; populated only when ExperimentConfig::simsan is on.
  std::optional<simsan::Summary> sanitizer;

  /// Resilience accounting; populated only when a fault plan was armed
  /// or the SLO fallback policy fired.
  std::optional<fault::ResilienceStats> resilience;

  double avgBatchMs() const;
  double avgComputeMs() const;
  double avgCommunicationMs() const;
  double avgSyncUnpackMs() const;

  /// Replica-cache accounting over the run (zero when no cache).
  double cacheHitRate() const { return stats.cacheHitRate(); }
  double cacheSavedBytes() const { return stats.cache_saved_bytes; }
};

/// Convenience: paper weak-scaling config at `num_gpus`.
ExperimentConfig weakScalingConfig(int num_gpus);

/// Convenience: paper strong-scaling config at `num_gpus`.
ExperimentConfig strongScalingConfig(int num_gpus);

/// Convenience: inference cache-serving config at `num_gpus` — single-id
/// (pooling 1) Zipf-skewed lookups over a PCIe-class fabric, the
/// HugeCTR-HPS-style deployment the hot-row replica cache targets. The
/// caller sets `layer.zipf_alpha` and `cache_rows`.
ExperimentConfig cacheServingConfig(int num_gpus);

}  // namespace pgasemb::engine

#include "engine/system_builder.hpp"

#include "collective/communicator.hpp"
#include "emb/replica_cache.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "pgas/runtime.hpp"
#include "simsan/checker.hpp"
#include "simsan/strict.hpp"
#include "util/expect.hpp"

namespace pgasemb::engine {

SystemBuilder::SystemBuilder(const ExperimentConfig& config)
    : config_(config) {
  build();
}

SystemBuilder::~SystemBuilder() = default;

void SystemBuilder::reset() {
  // Reverse construction order: the cache and the layer hold device
  // allocations, the runtime/communicator hold fabric endpoints. The
  // checker outlives the system so teardown frees still report into it.
  injector_.reset();
  cache_.reset();
  layer_.reset();
  runtime_.reset();
  comm_.reset();
  fabric_.reset();
  system_.reset();
  strict_.reset();
  sanitizer_.reset();
  build();
}

void SystemBuilder::build() {
  if (config_.simsan || config_.simsan_strict) {
    sanitizer_ = std::make_unique<simsan::Checker>();
  }
  if (config_.simsan_strict) {
    strict_ = std::make_unique<simsan::StrictEffects>();
  }
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = config_.num_gpus;
  sys_cfg.memory_capacity_bytes = config_.device_memory_bytes;
  sys_cfg.mode = config_.mode;
  sys_cfg.cost_model = config_.cost_model;
  sys_cfg.sanitizer = sanitizer_.get();
  sys_cfg.strict_effects = strict_.get();
  system_ = std::make_unique<gpu::MultiGpuSystem>(sys_cfg);

  std::unique_ptr<fabric::Topology> topo;
  if (config_.num_nodes > 0) {
    PGASEMB_CHECK(config_.num_gpus % config_.num_nodes == 0,
                  "num_gpus must divide evenly across nodes");
    topo = std::make_unique<fabric::MultiNodeTopology>(
        config_.num_nodes, config_.num_gpus / config_.num_nodes, config_.link,
        config_.inter_node_link);
  } else {
    topo = std::make_unique<fabric::NvlinkAllToAllTopology>(config_.num_gpus,
                                                            config_.link);
  }
  fabric_ = std::make_unique<fabric::Fabric>(
      system_->simulator(), std::move(topo), config_.counter_bucket);

  comm_ = std::make_unique<collective::Communicator>(*system_, *fabric_);
  runtime_ = std::make_unique<pgas::PgasRuntime>(*system_, *fabric_);
  runtime_->setCoalescingEnabled(config_.coalesce_flows);
  layer_ = std::make_unique<emb::ShardedEmbeddingLayer>(
      *system_, config_.layer, config_.sharding);
  if (config_.cache_rows > 0) {
    cache_ = std::make_unique<emb::ReplicaCache>(*layer_, config_.cache_rows);
  }
  if (!config_.faults.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.faults);
    injector_->arm(*system_, *fabric_);
    runtime_->setFaultInjector(injector_.get());
    comm_->setFaultInjector(injector_.get());
  }
  if (sanitizer_ != nullptr) {
    // Table shards and other assembly-lifetime allocations are not leaks.
    sanitizer_->setBaseline();
  }
}

core::SystemContext SystemBuilder::context() {
  core::SystemContext ctx{*system_, *fabric_, *comm_, *runtime_, *layer_};
  ctx.pgas_slices = config_.pgas_slices;
  ctx.aggregator = config_.use_aggregator ? &config_.aggregator : nullptr;
  ctx.pipeline_depth = config_.pipeline_depth;
  ctx.cache = cache_.get();
  return ctx;
}

}  // namespace pgasemb::engine

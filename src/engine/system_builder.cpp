#include "engine/system_builder.hpp"

#include <algorithm>

#include "collective/communicator.hpp"
#include "emb/replica_cache.hpp"
#include "emb/staging_kernel.hpp"
#include "fabric/compression.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "pgas/runtime.hpp"
#include "simsan/checker.hpp"
#include "simsan/strict.hpp"
#include "util/expect.hpp"

namespace pgasemb::engine {

SystemBuilder::SystemBuilder(const ExperimentConfig& config)
    : config_(config) {
  build();
}

SystemBuilder::~SystemBuilder() = default;

void SystemBuilder::reset() {
  // Reverse construction order: the cache and the layer hold device
  // allocations, the runtime/communicator hold fabric endpoints. The
  // checker outlives the system so teardown frees still report into it.
  injector_.reset();
  for (auto& buffer : hier_buffers_) {
    buffer.device()->free(buffer);
  }
  hier_buffers_.clear();
  hier_staging_.clear();
  hier_standby_.clear();
  codec_.reset();
  cache_.reset();
  layer_.reset();
  runtime_.reset();
  comm_.reset();
  fabric_.reset();
  system_.reset();
  strict_.reset();
  sanitizer_.reset();
  build();
}

void SystemBuilder::build() {
  if (config_.simsan || config_.simsan_strict) {
    sanitizer_ = std::make_unique<simsan::Checker>();
  }
  if (config_.simsan_strict) {
    strict_ = std::make_unique<simsan::StrictEffects>();
  }
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = config_.num_gpus;
  sys_cfg.memory_capacity_bytes = config_.device_memory_bytes;
  sys_cfg.mode = config_.mode;
  sys_cfg.cost_model = config_.cost_model;
  sys_cfg.sanitizer = sanitizer_.get();
  sys_cfg.strict_effects = strict_.get();
  system_ = std::make_unique<gpu::MultiGpuSystem>(sys_cfg);

  std::unique_ptr<fabric::Topology> topo;
  if (config_.num_nodes > 0) {
    PGASEMB_CHECK(config_.num_gpus % config_.num_nodes == 0,
                  "num_gpus must divide evenly across nodes");
    topo = std::make_unique<fabric::MultiNodeTopology>(
        config_.num_nodes, config_.num_gpus / config_.num_nodes, config_.link,
        config_.inter_node_link, config_.nic_shared_queue);
  } else {
    topo = std::make_unique<fabric::NvlinkAllToAllTopology>(config_.num_gpus,
                                                            config_.link);
  }
  fabric_ = std::make_unique<fabric::Fabric>(
      system_->simulator(), std::move(topo), config_.counter_bucket);

  comm_ = std::make_unique<collective::Communicator>(*system_, *fabric_);
  runtime_ = std::make_unique<pgas::PgasRuntime>(*system_, *fabric_);
  runtime_->setCoalescingEnabled(config_.coalesce_flows);
  layer_ = std::make_unique<emb::ShardedEmbeddingLayer>(
      *system_, config_.layer, config_.sharding);
  if (config_.cache_rows > 0) {
    cache_ = std::make_unique<emb::ReplicaCache>(*layer_, config_.cache_rows);
  }
  const int nodes = std::max(config_.num_nodes, 1);
  const int per_node = config_.num_gpus / nodes;
  if (config_.compress_bound > 0.0 && nodes > 1) {
    // Per-table value range: every weight lies in [-1, 1) and a pooled
    // output sums at most max_pooling rows, so |v| < pooling (floor 1
    // for single-id tables).
    std::vector<double> ranges(
        static_cast<std::size_t>(config_.layer.total_tables));
    for (std::size_t t = 0; t < ranges.size(); ++t) {
      int pooling = config_.layer.max_pooling;
      if (t < config_.layer.table_max_pooling.size()) {
        pooling = config_.layer.table_max_pooling[t];
      }
      ranges[t] = static_cast<double>(std::max(pooling, 1));
    }
    codec_ = std::make_unique<fabric::InterNodeCodec>(
        std::move(ranges), config_.compress_bound, config_.compress_adaptive,
        nodes, config_.inter_node_link.bandwidth_bytes_per_sec,
        config_.counter_bucket);
  }
  const bool hier = config_.hierarchical_a2a && nodes > 1;
  if (hier && config_.sharding == emb::ShardingScheme::kTableWise) {
    buildHierStaging(nodes, per_node);
  }
  if (hier || codec_ != nullptr) {
    collective::HierarchicalParams hp;
    hp.enabled = hier;
    hp.codec = codec_.get();
    hp.bug_scatter_before_interflow = config_.hier_bug_scatter;
    hp.staging = hier_staging_;
    hp.standby_staging = hier_standby_;
    hp.bug_rebuild_without_requiet =
        config_.faults.bug_rebuild_without_requiet;
    if (!hier_standby_.empty()) {
      // Failover rebuild hook: replay the staging layout on the standby
      // leader as a real device kernel with declared write effects
      // (raw captures are rebuilt with the assembly on every reset()).
      auto* system = system_.get();
      auto* layer = layer_.get();
      auto standby = hier_standby_;
      hp.rebuild = [system, layer, standby](int node, int device) {
        const auto& stg = standby[static_cast<std::size_t>(node)];
        std::vector<simsan::StridedRange> slots = stg.gather_slots;
        slots.insert(slots.end(), stg.recv_slots.begin(),
                     stg.recv_slots.end());
        std::int64_t elems = 0;
        for (const auto& slot : slots) elems += slot.len;
        return system->launchKernel(
            device, emb::buildStagingRebuildKernel(*layer, node, device,
                                                   slots, elems * 4));
      };
    }
    comm_->setHierarchical(std::move(hp));
    runtime_->setHierarchical(hier);
    runtime_->setCodec(codec_.get());
  }
  if (!config_.faults.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.faults);
    injector_->arm(*system_, *fabric_);
    runtime_->setFaultInjector(injector_.get());
    comm_->setFaultInjector(injector_.get());
  }
  if (sanitizer_ != nullptr) {
    // Table shards and other assembly-lifetime allocations are not leaks.
    sanitizer_->setBaseline();
  }
}

void SystemBuilder::buildHierStaging(int nodes, int gpus_per_node) {
  const auto& sharding = layer_->sharding();
  const int dim = layer_->dim();
  const int num_gpus = config_.num_gpus;
  // Standby staging is provisioned only when the armed plan can move a
  // node's staging leadership and the node has a next healthy GPU to
  // move it to (the failover target, DESIGN.md §13).
  bool leader_fail = false;
  for (const auto& spec : config_.faults.specs) {
    if (spec.kind == fault::FaultKind::kLeaderFail) leader_fail = true;
  }
  const bool standby = leader_fail && gpus_per_node >= 2;
  hier_staging_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    const int leader = n * gpus_per_node;
    // Gather staging: one slot per member holding its full inter-node
    // contribution; recv staging: one slot per source node. Sized from
    // the sharding's worst case, so cache-filtered (smaller) exchanges
    // stay inside the declared ranges.
    std::vector<std::int64_t> member_elems(
        static_cast<std::size_t>(gpus_per_node), 0);
    std::int64_t gather_total = 0;
    for (int local = 0; local < gpus_per_node; ++local) {
      const int g = leader + local;
      std::int64_t elems = 0;
      for (int dst = 0; dst < num_gpus; ++dst) {
        if (dst / gpus_per_node == n) continue;
        elems += sharding.tablesOn(g) * sharding.miniBatchSize(dst) * dim;
      }
      member_elems[static_cast<std::size_t>(local)] = elems;
      gather_total += elems;
    }
    std::vector<std::int64_t> src_elems(static_cast<std::size_t>(nodes), 0);
    std::int64_t recv_total = 0;
    for (int s = 0; s < nodes; ++s) {
      if (s == n) continue;
      std::int64_t elems = 0;
      for (int src = s * gpus_per_node; src < (s + 1) * gpus_per_node;
           ++src) {
        for (int dst = leader; dst < leader + gpus_per_node; ++dst) {
          elems += sharding.tablesOn(src) * sharding.miniBatchSize(dst) * dim;
        }
      }
      src_elems[static_cast<std::size_t>(s)] = elems;
      recv_total += elems;
    }
    // Identical layout on the default leader and (when provisioned) the
    // standby: one gather slot per member, one recv slot per source node.
    const auto carve = [&](int device) {
      auto buffer = system_->device(device).alloc(gather_total + recv_total);
      collective::HierStaging staging;
      staging.device = device;
      std::int64_t pos = buffer.offset();
      for (int local = 0; local < gpus_per_node; ++local) {
        const auto len = member_elems[static_cast<std::size_t>(local)];
        staging.gather_slots.push_back(
            simsan::StridedRange::contiguous(pos, len));
        pos += len;
      }
      for (int s = 0; s < nodes; ++s) {
        const auto len = src_elems[static_cast<std::size_t>(s)];
        staging.recv_slots.push_back(
            simsan::StridedRange::contiguous(pos, len));
        pos += len;
      }
      hier_buffers_.push_back(buffer);
      return staging;
    };
    hier_staging_.push_back(carve(leader));
    if (standby) hier_standby_.push_back(carve(leader + 1));
  }
}

core::SystemContext SystemBuilder::context() {
  core::SystemContext ctx{*system_, *fabric_, *comm_, *runtime_, *layer_};
  ctx.pgas_slices = config_.pgas_slices;
  ctx.aggregator = config_.use_aggregator ? &config_.aggregator : nullptr;
  ctx.pipeline_depth = config_.pipeline_depth;
  ctx.cache = cache_.get();
  ctx.num_nodes = std::max(config_.num_nodes, 1);
  ctx.gpus_per_node = config_.num_gpus / ctx.num_nodes;
  ctx.hierarchical_a2a = config_.hierarchical_a2a && ctx.num_nodes > 1;
  ctx.codec = codec_.get();
  ctx.hier_staging = hier_staging_.empty() ? nullptr : &hier_staging_;
  ctx.hier_standby = hier_standby_.empty() ? nullptr : &hier_standby_;
  ctx.injector = injector_.get();
  return ctx;
}

}  // namespace pgasemb::engine

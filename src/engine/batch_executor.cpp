#include "engine/batch_executor.hpp"

#include "emb/lookup_kernel.hpp"
#include "fabric/compression.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "simsan/strict.hpp"

namespace pgasemb::engine {

BatchExecutor::BatchExecutor(SystemBuilder& builder,
                             const std::string& retriever_name,
                             SloMode slo_mode)
    : builder_(builder),
      retriever_(core::RetrieverRegistry::instance().create(
          retriever_name, builder.context())),
      slo_(builder.config().fallback),
      slo_mode_(slo_mode),
      active_(retriever_name) {}

core::BatchTiming BatchExecutor::runOne(const emb::SparseBatch& batch,
                                        ExperimentResult& result) {
  const core::BatchTiming t = retriever_->runBatch(batch);
  result.stats.add(t);
  result.per_batch.push_back(t);
  ++batches_run_;
  if (slo_mode_ == SloMode::kPerBatch) {
    if (slo_.record(t.total)) requestSwapIfEligible();
    maybeSwap(result);
  }
  return t;
}

bool BatchExecutor::recordQueryLatency(SimTime latency) {
  if (slo_.recordQuery(latency)) requestSwapIfEligible();
  return swap_pending_;
}

void BatchExecutor::requestSwapIfEligible() {
  // The tracker fired (it fires exactly once); the swap only proceeds
  // when the fallback target is a different, registered strategy.
  const auto& fallback = builder_.config().fallback;
  if (fallback.fallback_to != active_ &&
      core::RetrieverRegistry::instance().contains(fallback.fallback_to)) {
    swap_pending_ = true;
  }
}

bool BatchExecutor::maybeSwap(ExperimentResult& result) {
  if (!swap_pending_) return false;
  swap_pending_ = false;
  // Degradation policy: the active strategy keeps blowing its SLO —
  // drain it and finish the run on the fallback strategy. The drain
  // advances the host clock (queued queries wait through it) and joins
  // stats.total as before; the DrainEntry records where it came from.
  const SimTime drain = retriever_->finish();
  result.stats.total += drain;
  result.drains.push_back({batches_run_, active_, drain});
  retriever_.reset();
  active_ = builder_.config().fallback.fallback_to;
  retriever_ = core::RetrieverRegistry::instance().create(
      active_, builder_.context());
  ++fallback_switches_;
  return true;
}

void BatchExecutor::finishRun(ExperimentResult& result) {
  // Epilogue: pipelined strategies still have batches in flight; their
  // drain time belongs to the run total. No-op (zero) for the rest.
  result.stats.total += retriever_->finish();
}

const gpu::DeviceBuffer& BatchExecutor::output(int gpu) const {
  return retriever_->output(gpu);
}

void finalizeResult(SystemBuilder& builder, BatchExecutor& exec,
                    const emb::SparseBatch& throughput_batch,
                    ExperimentResult& result) {
  const ExperimentConfig& config = builder.config();

  {
    fault::ResilienceStats resilience;
    auto* injector = builder.faultInjector();
    if (injector != nullptr) resilience = injector->stats();
    resilience.fallback_switches = exec.fallbackSwitches();
    if (exec.fallbackSwitches() > 0) {
      resilience.fallback_retriever = exec.activeName();
    }
    if (injector != nullptr || resilience.any()) {
      result.resilience = resilience;
    }
  }

  if (auto* san = builder.sanitizer()) {
    // The host consumes every GPU's final output tensor (standing in for
    // the downstream interaction layer) — the reader the last batch's
    // writes must be ordered against.
    const SimTime now = builder.system().hostNow();
    for (int g = 0; g < config.num_gpus; ++g) {
      const auto& out = exec.output(g);
      san->access(simsan::Checker::kHost, g,
                  simsan::StridedRange::contiguous(out.offset(), out.size()),
                  simsan::AccessKind::kRead, now, now,
                  "host.consume_output.gpu" + std::to_string(g));
    }
    // Destroy the retriever (frees its working buffers), then audit.
    exec.destroyRetriever();
    san->leakCheck();
    result.sanitizer = san->summary();
    if (auto* strict = builder.strictEffects()) {
      // Fold undeclared-effect findings into the same verdict (clean()
      // goes false when any kernel or transfer escaped its declaration).
      strict->mergeInto(*result.sanitizer);
    }
  }

  // Delivery (wire-occupancy) counter: for PGAS this matches the paper's
  // in-kernel issue counter; for the baseline it spreads each chunk over
  // its serialization window, exactly the paper's "linearly interpolated
  // over the communication time" dashed line.
  const auto& counter = builder.fabric().deliveryCounter();
  result.bucket_width = counter.bucketWidth();
  result.wire_bytes_over_time.resize(counter.numBuckets());
  for (std::size_t i = 0; i < counter.numBuckets(); ++i) {
    result.wire_bytes_over_time[i] = counter.bucket(i);
  }
  result.total_wire_bytes = builder.fabric().totalPayloadBytes();
  result.total_wire_messages = builder.fabric().totalMessages();

  if (config.num_nodes > 1) {
    const auto inter =
        builder.fabric().classTraffic(fabric::LinkClass::kInter);
    const auto intra =
        builder.fabric().classTraffic(fabric::LinkClass::kIntra);
    InterNodeTraffic traffic;
    traffic.inter_payload_bytes = inter.payload_bytes;
    traffic.inter_messages = inter.messages;
    traffic.inter_wire_equivalent_bytes = inter.wire_equivalent_bytes;
    traffic.intra_payload_bytes = intra.payload_bytes;
    traffic.intra_messages = intra.messages;
    traffic.intra_wire_equivalent_bytes = intra.wire_equivalent_bytes;
    result.inter_node = traffic;
  }

  if (auto* codec = builder.codec()) {
    CompressionReport report;
    report.bound = codec->bound();
    report.adaptive = codec->adaptive();
    report.raw_bytes = codec->rawBytes();
    report.wire_bytes = codec->wireBytes();
    report.hot_decisions = codec->hotDecisions();
    report.cool_decisions = codec->coolDecisions();
    const auto& tables = codec->tableStats();
    report.tables.reserve(tables.size());
    for (std::size_t t = 0; t < tables.size(); ++t) {
      const auto& s = tables[t];
      report.tables.push_back(
          {static_cast<std::int64_t>(t), s.bits, s.max_abs_error,
           s.samples > 0 ? s.sum_abs_error / static_cast<double>(s.samples)
                         : 0.0,
           s.samples});
    }
    result.compression = report;
  }

  // ncu-style throughput of the lookup kernel on GPU 0.
  {
    auto& layer = builder.layer();
    const auto work = layer.lookupWork(throughput_batch, 0);
    const double dim = static_cast<double>(config.layer.dim);
    const double outputs = static_cast<double>(work.totalOutputs());
    const double bytes = outputs * 8.0 + work.gathered_rows * 8.0 +
                         work.gathered_rows * dim * 4.0 +
                         outputs * dim * 4.0;
    // ncu's SM throughput counts all scalar instructions (index math,
    // addressing), not just the pooling adds.
    const double instructions =
        work.gathered_rows * dim *
        config.cost_model.compute_instructions_per_element;
    const SimTime duration = emb::lookupComputeTime(layer, work);
    const auto tp =
        config.cost_model.kernelThroughput(instructions, bytes, duration);
    result.lookup_compute_throughput = tp.compute;
    result.lookup_memory_throughput = tp.memory;
  }
}

}  // namespace pgasemb::engine

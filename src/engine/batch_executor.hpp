// BatchExecutor: the per-batch execution body both front ends share.
//
// The closed-loop ScenarioRunner and the open-loop ServingRunner differ
// only in where batches come from (a fixed schedule vs a dynamic
// batcher over a query stream) and in what feeds the SLO tracker
// (per-batch totals vs per-query latencies). Everything else — run the
// batch, record its timing, evaluate the SLO, drain and swap to the
// fallback retriever, drain at end of run — lives here, once, so the
// two paths cannot drift.
#pragma once

#include <memory>
#include <string>

#include "core/fallback.hpp"
#include "core/retriever.hpp"
#include "engine/system_builder.hpp"

namespace pgasemb::engine {

class BatchExecutor {
 public:
  /// How the SLO tracker is fed. Batch mode evaluates each batch total
  /// and swaps inline (the historical closed-loop behaviour); query
  /// mode leaves the tracker to recordQueryLatency() and defers the
  /// swap to the next maybeSwap() call, between batches.
  enum class SloMode { kPerBatch, kPerQuery };

  /// Creates the initial retriever from the registry. The builder must
  /// already be reset() onto a fresh clock.
  BatchExecutor(SystemBuilder& builder, const std::string& retriever_name,
                SloMode slo_mode = SloMode::kPerBatch);

  /// Runs one batch on the active retriever and records its timing into
  /// `result` (stats + per_batch). In batch mode also feeds the SLO
  /// tracker and performs a pending fallback swap immediately.
  core::BatchTiming runOne(const emb::SparseBatch& batch,
                           ExperimentResult& result);

  /// Query mode: feed one end-to-end query latency to the SLO tracker.
  /// Returns true when the tracker fired and a swap is now pending.
  bool recordQueryLatency(SimTime latency);

  /// Performs a pending fallback swap: drain the active retriever
  /// (recorded as a DrainEntry; the drain time joins stats.total as
  /// before), then recreate from the registry as the fallback strategy.
  /// Returns true when a swap actually happened.
  bool maybeSwap(ExperimentResult& result);

  /// End of schedule: drain in-flight batches (pipelined strategies)
  /// into stats.total.
  void finishRun(ExperimentResult& result);

  /// The active retriever's output tensor on `gpu` (simsan epilogue).
  const gpu::DeviceBuffer& output(int gpu) const;

  /// Frees the retriever's working buffers (before a leak audit).
  void destroyRetriever() { retriever_.reset(); }

  const std::string& activeName() const { return active_; }
  std::int64_t fallbackSwitches() const { return fallback_switches_; }
  int batchesRun() const { return batches_run_; }
  const core::SloTracker& slo() const { return slo_; }

 private:
  void requestSwapIfEligible();

  SystemBuilder& builder_;
  std::unique_ptr<core::EmbeddingRetriever> retriever_;
  core::SloTracker slo_;
  SloMode slo_mode_;
  std::string active_;
  std::int64_t fallback_switches_ = 0;
  int batches_run_ = 0;
  bool swap_pending_ = false;
};

/// The shared run epilogue: resilience accounting, the simsan
/// output-consumption + leak audit, wire counters, and the ncu-style
/// lookup throughput (computed from `throughput_batch`, the full-shape
/// statistical batch). Destroys the executor's retriever when simsan
/// is attached (the leak audit requires it).
void finalizeResult(SystemBuilder& builder, BatchExecutor& exec,
                    const emb::SparseBatch& throughput_batch,
                    ExperimentResult& result);

}  // namespace pgasemb::engine

#include "trace/chrome_trace.hpp"

#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace pgasemb::trace {
namespace {

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void ChromeTraceRecorder::attach(gpu::MultiGpuSystem& system,
                                 fabric::Fabric& fabric) {
  PGASEMB_CHECK(system_ == nullptr, "recorder already attached");
  system_ = &system;
  fabric_ = &fabric;
  system.setKernelObserver([this](int device, const std::string& name,
                                  SimTime start, SimTime end,
                                  SimTime completion) {
    kernels_.push_back(KernelSpan{device, name, start, end, completion});
  });
  fabric.setFlowObserver([this](int src, int dst, std::int64_t bytes,
                                std::int64_t messages, SimTime start,
                                SimTime end) {
    flows_.push_back(FlowSpan{src, dst, bytes, messages, start, end});
  });
}

void ChromeTraceRecorder::markFaultWindows(
    const std::vector<fault::FaultSpec>& specs) {
  faults_.insert(faults_.end(), specs.begin(), specs.end());
}

void ChromeTraceRecorder::detach() {
  if (system_ != nullptr) system_->setKernelObserver(nullptr);
  if (fabric_ != nullptr) fabric_->setFlowObserver(nullptr);
  system_ = nullptr;
  fabric_ = nullptr;
}

std::string ChromeTraceRecorder::toJson() const {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& cat, int pid,
                  int tid, SimTime start, SimTime dur,
                  const std::string& args) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"name\": \"" << escapeJson(name) << "\", \"cat\": \"" << cat
        << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"ts\": " << start.toUs() << ", \"dur\": " << dur.toUs();
    if (!args.empty()) out << ", \"args\": {" << args << "}";
    out << "}";
  };

  // pid 0 = GPUs (one tid per device); pid 1 = fabric (one tid per
  // ordered pair, encoded src*64+dst).
  for (const auto& k : kernels_) {
    emit(k.name, "kernel", 0, k.device, k.start, k.end - k.start, "");
    if (k.completion > k.end) {
      emit(k.name + ".quiet", "quiet", 0, k.device, k.end,
           k.completion - k.end, "");
    }
  }
  for (const auto& f : flows_) {
    std::ostringstream args;
    args << "\"bytes\": " << f.bytes << ", \"messages\": " << f.messages;
    emit("flow " + std::to_string(f.src) + "->" + std::to_string(f.dst),
         "wire", 1, f.src * 64 + f.dst, f.start, f.end - f.start,
         args.str());
  }
  // pid 2 = fault windows, all in one lane so they overlay the timeline.
  for (const auto& spec : faults_) {
    emit(spec.describe(), "fault", 2, 0, spec.start, spec.end - spec.start,
         "");
  }
  out << "\n]\n";
  return out.str();
}

void ChromeTraceRecorder::writeFile(const std::string& path) const {
  std::ofstream f(path);
  PGASEMB_CHECK(f.good(), "cannot open trace file: ", path);
  f << toJson();
}

void ChromeTraceRecorder::clear() {
  kernels_.clear();
  flows_.clear();
  faults_.clear();
}

}  // namespace pgasemb::trace

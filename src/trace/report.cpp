#include "trace/report.hpp"

#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace pgasemb::trace {

double geomeanSpeedup(const std::vector<ScalingPoint>& points) {
  std::vector<double> speedups;
  for (const auto& p : points) {
    if (p.gpus >= 2) speedups.push_back(p.speedup());
  }
  return speedups.empty() ? 0.0 : geomean(speedups);
}

std::string renderSpeedupTable(const std::vector<ScalingPoint>& points) {
  std::vector<std::string> headers{"Speedup"};
  std::vector<std::string> row{"PGAS over baseline"};
  for (const auto& p : points) {
    if (p.gpus < 2) continue;
    headers.push_back(std::to_string(p.gpus) + " GPUs");
    row.push_back(ConsoleTable::num(p.speedup(), 2) + "x");
  }
  headers.push_back("geo-mean");
  row.push_back(ConsoleTable::num(geomeanSpeedup(points), 2) + "x");
  ConsoleTable table(headers);
  table.addRow(row);
  return table.render();
}

std::string renderScalingChart(const std::vector<ScalingPoint>& points,
                               bool weak) {
  PGASEMB_CHECK(!points.empty(), "no scaling points");
  double base_baseline = 0.0, base_pgas = 0.0;
  for (const auto& p : points) {
    if (p.gpus == 1) {
      base_baseline = p.baseline.avgBatchMs();
      base_pgas = p.pgas.avgBatchMs();
    }
  }
  PGASEMB_CHECK(base_baseline > 0.0 && base_pgas > 0.0,
                "scaling chart needs a 1-GPU reference point");

  ChartSeries sb{"baseline", {}, {}, 'b'};
  ChartSeries sp{"PGAS fused", {}, {}, 'p'};
  ChartSeries ideal{"ideal", {}, {}, '.'};
  for (const auto& p : points) {
    const double x = p.gpus;
    sb.x.push_back(x);
    sp.x.push_back(x);
    ideal.x.push_back(x);
    if (weak) {
      // Weak-scaling factor: 1-GPU runtime / runtime (ideal flat 1.0).
      sb.y.push_back(base_baseline / p.baseline.avgBatchMs());
      sp.y.push_back(base_pgas / p.pgas.avgBatchMs());
      ideal.y.push_back(1.0);
    } else {
      // Strong-scaling factor: 1-GPU runtime / runtime (ideal = p).
      sb.y.push_back(base_baseline / p.baseline.avgBatchMs());
      sp.y.push_back(base_pgas / p.pgas.avgBatchMs());
      ideal.y.push_back(x);
    }
  }
  AsciiLineChart chart(weak ? "Weak scaling factor (ideal = 1.0)"
                            : "Strong scaling factor (ideal = #GPUs)");
  chart.setAxisLabels("GPUs", "scaling factor");
  chart.addSeries(ideal);
  chart.addSeries(sb);
  chart.addSeries(sp);
  return chart.render();
}

std::string renderBreakdownBars(const std::vector<ScalingPoint>& points,
                                const std::string& title) {
  AsciiStackedBars bars(title,
                        {"computation", "communication", "sync+unpack"});
  for (const auto& p : points) {
    const std::string g = std::to_string(p.gpus) + "gpu";
    bars.addBar("baseline " + g,
                {p.baseline.avgComputeMs(), p.baseline.avgCommunicationMs(),
                 p.baseline.avgSyncUnpackMs()});
    bars.addBar("pgas     " + g, {p.pgas.avgBatchMs(), 0.0, 0.0});
  }
  return bars.render() + "  (bars in ms per batch; PGAS is one fused "
                         "phase — no separable comm/unpack)\n";
}

std::string renderCommVolumeChart(const ExperimentResult& pgas,
                                  const ExperimentResult& baseline,
                                  const std::string& title) {
  ChartSeries sp{"PGAS fused", {}, {}, 'p'};
  for (std::size_t i = 0; i < pgas.wire_bytes_over_time.size(); ++i) {
    sp.x.push_back(pgas.bucket_width.toUs() * (static_cast<double>(i) + 0.5));
    sp.y.push_back(pgas.wire_bytes_over_time[i] / 256.0);
  }
  ChartSeries sb{"baseline", {}, {}, 'b'};
  for (std::size_t i = 0; i < baseline.wire_bytes_over_time.size(); ++i) {
    sb.x.push_back(baseline.bucket_width.toUs() *
                   (static_cast<double>(i) + 0.5));
    sb.y.push_back(baseline.wire_bytes_over_time[i] / 256.0);
  }
  AsciiLineChart chart(title);
  chart.setAxisLabels("time (us)", "comm volume (256 B units per bucket)");
  if (!sb.x.empty()) chart.addSeries(sb);
  if (!sp.x.empty()) chart.addSeries(sp);
  return chart.render();
}

void writeScalingCsv(const std::string& path,
                     const std::vector<ScalingPoint>& points) {
  CsvWriter csv(path,
                {"gpus", "baseline_ms", "pgas_ms", "speedup",
                 "baseline_compute_ms", "baseline_comm_ms",
                 "baseline_sync_unpack_ms", "pgas_wire_bytes",
                 "baseline_wire_bytes"});
  for (const auto& p : points) {
    csv.addRow({std::to_string(p.gpus),
                ConsoleTable::num(p.baseline.avgBatchMs(), 4),
                ConsoleTable::num(p.pgas.avgBatchMs(), 4),
                ConsoleTable::num(p.speedup(), 3),
                ConsoleTable::num(p.baseline.avgComputeMs(), 4),
                ConsoleTable::num(p.baseline.avgCommunicationMs(), 4),
                ConsoleTable::num(p.baseline.avgSyncUnpackMs(), 4),
                std::to_string(p.pgas.total_wire_bytes),
                std::to_string(p.baseline.total_wire_bytes)});
  }
}

}  // namespace pgasemb::trace

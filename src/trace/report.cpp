#include "trace/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace pgasemb::trace {

RunStyle runStyle(const std::string& retriever) {
  if (retriever == "nccl_collective") return {"baseline", "baseline", 'b'};
  if (retriever == "pgas_fused") return {"PGAS fused", "PGAS", 'p'};
  if (retriever == "nccl_pipelined") return {"pipelined", "pipelined", 'l'};
  return {retriever, retriever, retriever.empty() ? '?' : retriever[0]};
}

std::string runKey(const std::string& retriever) {
  std::string key = runStyle(retriever).short_name;
  std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return key;
}

namespace {

/// True when the run's phase timings separate into the paper's three
/// bars; fused (PGAS) and pipelined runs report a single amortized
/// phase.
bool hasSeparablePhases(const engine::ExperimentResult& r) {
  return r.stats.communication() > SimTime::zero() ||
         r.stats.syncUnpack() > SimTime::zero();
}

}  // namespace

const engine::NamedResult& ScalingPoint::reference() const {
  PGASEMB_CHECK(!runs.empty(), "scaling point has no runs");
  return runs.front();
}

const engine::NamedResult& ScalingPoint::treatment() const {
  PGASEMB_CHECK(!runs.empty(), "scaling point has no runs");
  return runs.back();
}

const engine::NamedResult* ScalingPoint::find(
    const std::string& retriever) const {
  for (const auto& run : runs) {
    if (run.retriever == retriever) return &run;
  }
  return nullptr;
}

double ScalingPoint::speedup() const {
  if (runs.empty()) return 0.0;
  const double treat = treatment().result.avgBatchMs();
  return treat > 0.0 ? reference().result.avgBatchMs() / treat : 0.0;
}

double geomeanSpeedup(const std::vector<ScalingPoint>& points) {
  std::vector<double> speedups;
  for (const auto& p : points) {
    if (p.gpus >= 2) speedups.push_back(p.speedup());
  }
  return speedups.empty() ? 0.0 : geomean(speedups);
}

std::string renderSpeedupTable(const std::vector<ScalingPoint>& points) {
  std::vector<std::string> headers{"Speedup"};
  for (const auto& p : points) {
    if (p.gpus < 2) continue;
    headers.push_back(std::to_string(p.gpus) + " GPUs");
  }
  headers.push_back("geo-mean");
  ConsoleTable table(headers);

  // One row per non-reference retriever, in first-point run order.
  const std::size_t num_runs = points.empty() ? 0 : points.front().runs.size();
  for (std::size_t r = 1; r < num_runs; ++r) {
    std::vector<std::string> row;
    std::vector<double> speedups;
    for (const auto& p : points) {
      if (p.gpus < 2 || r >= p.runs.size()) continue;
      if (row.empty()) {
        row.push_back(runStyle(p.runs[r].retriever).short_name + " over " +
                      runStyle(p.reference().retriever).short_name);
      }
      const double run_ms = p.runs[r].result.avgBatchMs();
      const double s =
          run_ms > 0.0 ? p.reference().result.avgBatchMs() / run_ms : 0.0;
      speedups.push_back(s);
      row.push_back(ConsoleTable::num(s, 2) + "x");
    }
    if (row.empty()) continue;
    row.push_back(
        ConsoleTable::num(speedups.empty() ? 0.0 : geomean(speedups), 2) +
        "x");
    table.addRow(row);
  }
  return table.render();
}

std::string renderScalingChart(const std::vector<ScalingPoint>& points,
                               bool weak) {
  PGASEMB_CHECK(!points.empty(), "no scaling points");
  const auto& run_names = points.front().runs;
  PGASEMB_CHECK(!run_names.empty(), "scaling points carry no runs");

  const ScalingPoint* one_gpu = nullptr;
  for (const auto& p : points) {
    if (p.gpus == 1) one_gpu = &p;
  }
  PGASEMB_CHECK(one_gpu != nullptr,
                "scaling chart needs a 1-GPU reference point");

  AsciiLineChart chart(weak ? "Weak scaling factor (ideal = 1.0)"
                            : "Strong scaling factor (ideal = #GPUs)");
  chart.setAxisLabels("GPUs", "scaling factor");

  ChartSeries ideal{"ideal", {}, {}, '.'};
  for (const auto& p : points) {
    ideal.x.push_back(p.gpus);
    ideal.y.push_back(weak ? 1.0 : static_cast<double>(p.gpus));
  }
  chart.addSeries(ideal);

  for (const auto& named : run_names) {
    const auto* base_run = one_gpu->find(named.retriever);
    PGASEMB_CHECK(base_run != nullptr,
                  "1-GPU point is missing retriever '" + named.retriever +
                      "'");
    const double base = base_run->result.avgBatchMs();
    PGASEMB_CHECK(base > 0.0,
                  "scaling chart needs a positive 1-GPU runtime for '" +
                      named.retriever + "'");
    const RunStyle style = runStyle(named.retriever);
    ChartSeries series{style.display, {}, {}, style.marker};
    for (const auto& p : points) {
      const auto* run = p.find(named.retriever);
      if (run == nullptr || run->result.avgBatchMs() <= 0.0) continue;
      series.x.push_back(p.gpus);
      // Scaling factor: 1-GPU runtime / runtime (ideal flat 1.0 for
      // weak scaling, ideal = p for strong scaling).
      series.y.push_back(base / run->result.avgBatchMs());
    }
    chart.addSeries(series);
  }
  return chart.render();
}

std::string renderBreakdownBars(const std::vector<ScalingPoint>& points,
                                const std::string& title) {
  AsciiStackedBars bars(title,
                        {"computation", "communication", "sync+unpack"});
  std::size_t label_width = 0;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      label_width =
          std::max(label_width, runStyle(run.retriever).short_name.size());
    }
  }
  bool any_fused = false;
  for (const auto& p : points) {
    const std::string g = std::to_string(p.gpus) + "gpu";
    for (const auto& run : p.runs) {
      std::string label = runStyle(run.retriever).short_name;
      // CSV keys stay as-is; bar labels keep the historical casing.
      std::transform(label.begin(), label.end(), label.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                     });
      label.resize(label_width, ' ');
      const auto& r = run.result;
      if (hasSeparablePhases(r)) {
        bars.addBar(label + " " + g,
                    {r.avgComputeMs(), r.avgCommunicationMs(),
                     r.avgSyncUnpackMs()});
      } else {
        any_fused = true;
        bars.addBar(label + " " + g, {r.avgBatchMs(), 0.0, 0.0});
      }
    }
  }
  std::string out = bars.render();
  if (any_fused) {
    out += "  (bars in ms per batch; PGAS is one fused "
           "phase — no separable comm/unpack)\n";
  }
  return out;
}

std::string renderCommVolumeChart(const std::vector<engine::NamedResult>& runs,
                                  const std::string& title) {
  AsciiLineChart chart(title);
  chart.setAxisLabels("time (us)", "comm volume (256 B units per bucket)");
  for (const auto& named : runs) {
    const RunStyle style = runStyle(named.retriever);
    ChartSeries series{style.display, {}, {}, style.marker};
    const auto& r = named.result;
    for (std::size_t i = 0; i < r.wire_bytes_over_time.size(); ++i) {
      series.x.push_back(r.bucket_width.toUs() *
                         (static_cast<double>(i) + 0.5));
      series.y.push_back(r.wire_bytes_over_time[i] / 256.0);
    }
    if (!series.x.empty()) chart.addSeries(series);
  }
  return chart.render();
}

std::string renderCacheTable(const std::vector<ScalingPoint>& points) {
  bool any_cache = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any_cache = any_cache || run.result.stats.cache_lookups > 0.0;
    }
  }
  if (!any_cache) return "";

  ConsoleTable table(
      {"Replica cache", "GPUs", "hit rate", "saved MB/batch"});
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      const auto& r = run.result;
      if (r.stats.cache_lookups <= 0.0) continue;
      const double batches =
          r.stats.batches > 0 ? static_cast<double>(r.stats.batches) : 1.0;
      table.addRow({runStyle(run.retriever).short_name,
                    std::to_string(p.gpus),
                    ConsoleTable::num(r.cacheHitRate() * 100.0, 1) + "%",
                    ConsoleTable::num(
                        r.cacheSavedBytes() / batches / 1e6, 2)});
    }
  }
  return table.render();
}

std::string renderCompressionTable(
    const std::vector<engine::NamedResult>& runs) {
  bool any = false;
  for (const auto& run : runs) {
    any = any || run.result.compression.has_value();
  }
  if (!any) return "";

  ConsoleTable table({"Compression", "table", "bits", "ratio",
                      "max |err|", "mean |err|", "samples"});
  for (const auto& run : runs) {
    const auto& cr = run.result.compression;
    if (!cr.has_value()) continue;
    const std::string who = runStyle(run.retriever).short_name +
                            (cr->adaptive ? " (adaptive)" : "");
    table.addRow({who, "all", "-", ConsoleTable::num(cr->ratio(), 2) + "x",
                  ConsoleTable::num(cr->maxAbsError(), 6), "-", "-"});
    for (const auto& t : cr->tables) {
      // Tables never sampled (TimingOnly runs, or tables whose traffic
      // stayed intra-node) carry no measured error — render "-".
      const bool sampled = t.samples > 0;
      table.addRow({"", std::to_string(t.table), std::to_string(t.bits),
                    "", sampled ? ConsoleTable::num(t.max_abs_error, 6) : "-",
                    sampled ? ConsoleTable::num(t.mean_abs_error, 6) : "-",
                    std::to_string(t.samples)});
    }
  }
  return table.render();
}

std::string renderResilienceTable(const std::vector<ScalingPoint>& points) {
  bool any = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any = any || run.result.resilience.has_value();
    }
  }
  if (!any) return "";

  ConsoleTable table({"Resilience", "GPUs", "drops", "retransmits",
                      "reissues", "launch retries", "recovery ms",
                      "hier fb", "degraded ms", "failovers", "rebuilds",
                      "fallback"});
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      const auto& rs = run.result.resilience;
      if (!rs.has_value()) continue;
      table.addRow({runStyle(run.retriever).short_name,
                    std::to_string(p.gpus),
                    std::to_string(rs->dropped_flows),
                    std::to_string(rs->retransmits),
                    std::to_string(rs->collective_reissues),
                    std::to_string(rs->launch_retries),
                    ConsoleTable::num(rs->recovery_latency.toMs(), 3),
                    std::to_string(rs->hier_fallbacks),
                    ConsoleTable::num(rs->degraded_time.toMs(), 3),
                    std::to_string(rs->leader_failovers),
                    std::to_string(rs->staging_rebuilds),
                    rs->fallback_switches > 0 ? rs->fallback_retriever
                                              : "-"});
    }
  }
  return table.render();
}

void writeScalingCsv(const std::string& path,
                     const std::vector<ScalingPoint>& points) {
  PGASEMB_CHECK(!points.empty() && !points.front().runs.empty(),
                "no scaling points to write");
  // Column layout mirrors the historical baseline-vs-PGAS schema:
  // per-run avg times, the headline speedup, the reference run's phase
  // breakdown, then wire bytes (non-reference runs first).
  const auto& runs = points.front().runs;
  const std::string ref_key = runKey(runs.front().retriever);
  std::vector<std::string> headers{"gpus"};
  for (const auto& run : runs) headers.push_back(runKey(run.retriever) + "_ms");
  headers.push_back("speedup");
  headers.push_back(ref_key + "_compute_ms");
  headers.push_back(ref_key + "_comm_ms");
  headers.push_back(ref_key + "_sync_unpack_ms");
  for (std::size_t r = runs.size(); r-- > 1;) {
    headers.push_back(runKey(runs[r].retriever) + "_wire_bytes");
  }
  headers.push_back(ref_key + "_wire_bytes");

  // Replica-cache columns appear only when some run actually probed a
  // cache, so cache-less sweeps keep the historical schema byte-for-byte.
  bool any_cache = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any_cache = any_cache || run.result.stats.cache_lookups > 0.0;
    }
  }
  if (any_cache) {
    for (const auto& run : runs) {
      headers.push_back(runKey(run.retriever) + "_cache_hit_rate");
      headers.push_back(runKey(run.retriever) + "_cache_saved_bytes");
    }
  }

  // Resilience columns likewise appear only on faulted sweeps, keeping
  // fault-free CSVs byte-identical to the historical schema.
  bool any_resilience = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any_resilience = any_resilience || run.result.resilience.has_value();
    }
  }
  if (any_resilience) {
    for (const auto& run : runs) {
      const std::string key = runKey(run.retriever);
      headers.push_back(key + "_retransmits");
      headers.push_back(key + "_reissues");
      headers.push_back(key + "_fallbacks");
      headers.push_back(key + "_hier_fallbacks");
      headers.push_back(key + "_degraded_ms");
      headers.push_back(key + "_leader_failovers");
      headers.push_back(key + "_staging_rebuilds");
    }
  }

  CsvWriter csv(path, headers);
  for (const auto& p : points) {
    const auto& ref = p.reference().result;
    std::vector<std::string> row{std::to_string(p.gpus)};
    for (const auto& run : p.runs) {
      row.push_back(ConsoleTable::num(run.result.avgBatchMs(), 4));
    }
    row.push_back(ConsoleTable::num(p.speedup(), 3));
    row.push_back(ConsoleTable::num(ref.avgComputeMs(), 4));
    row.push_back(ConsoleTable::num(ref.avgCommunicationMs(), 4));
    row.push_back(ConsoleTable::num(ref.avgSyncUnpackMs(), 4));
    for (std::size_t r = p.runs.size(); r-- > 1;) {
      row.push_back(std::to_string(p.runs[r].result.total_wire_bytes));
    }
    row.push_back(std::to_string(ref.total_wire_bytes));
    if (any_cache) {
      for (const auto& run : p.runs) {
        row.push_back(ConsoleTable::num(run.result.cacheHitRate(), 4));
        row.push_back(
            ConsoleTable::num(run.result.cacheSavedBytes(), 0));
      }
    }
    if (any_resilience) {
      for (const auto& run : p.runs) {
        const auto& rs = run.result.resilience;
        row.push_back(std::to_string(rs ? rs->retransmits : 0));
        row.push_back(std::to_string(rs ? rs->collective_reissues : 0));
        row.push_back(std::to_string(rs ? rs->fallback_switches : 0));
        row.push_back(std::to_string(rs ? rs->hier_fallbacks : 0));
        row.push_back(ConsoleTable::num(
            rs ? rs->degraded_time.toMs() : 0.0, 4));
        row.push_back(std::to_string(rs ? rs->leader_failovers : 0));
        row.push_back(std::to_string(rs ? rs->staging_rebuilds : 0));
      }
    }
    csv.addRow(row);
  }
}

namespace {

/// The serving section of a run; throws when the run was closed-loop.
const engine::ServingResult& servingOf(const engine::NamedResult& run) {
  PGASEMB_CHECK(run.result.serving.has_value(),
                "run '" + run.retriever + "' carries no serving results");
  return *run.result.serving;
}

/// Sustained = the system kept up with the offered load (achieved
/// within 5% of offered) and, when an SLO is set, met it at the tail.
bool sustained(const engine::ServingResult& sv, double slo_ms) {
  if (sv.achieved_qps < 0.95 * sv.offered_qps) return false;
  return slo_ms <= 0.0 || sv.p99_ms <= slo_ms;
}

}  // namespace

std::string renderServingTable(const std::vector<ServingPoint>& points) {
  // Admission columns appear only when some run armed an admission
  // knob, so knob-less sweeps keep the historical table byte-for-byte.
  bool any_admission = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any_admission = any_admission || servingOf(run).admission;
    }
  }

  std::vector<std::string> headers{
      "Serving", "arrival", "qps", "queries", "p50 ms", "p95 ms",
      "p99 ms",  "max ms",  "achieved", "fill", "queue", "viol"};
  if (any_admission) {
    headers.insert(headers.end(),
                   {"shed", "miss", "blocked", "goodput"});
  }
  ConsoleTable table(headers);
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      const auto& sv = servingOf(run);
      std::vector<std::string> row{
          runStyle(run.retriever).short_name, p.arrival,
          ConsoleTable::num(p.qps, 0),
          std::to_string(sv.queries),
          ConsoleTable::num(sv.p50_ms, 3),
          ConsoleTable::num(sv.p95_ms, 3),
          ConsoleTable::num(sv.p99_ms, 3),
          ConsoleTable::num(sv.max_ms, 3),
          ConsoleTable::num(sv.achieved_qps, 0),
          ConsoleTable::num(sv.mean_batch_fill * 100.0, 0) + "%",
          ConsoleTable::num(sv.mean_queue_depth, 1),
          std::to_string(sv.slo_violations)};
      if (any_admission) {
        row.push_back(std::to_string(sv.shed_queue + sv.shed_overload));
        row.push_back(std::to_string(sv.deadline_misses));
        row.push_back(std::to_string(sv.blocked_arrivals));
        row.push_back(ConsoleTable::num(sv.goodput_qps, 0));
      }
      table.addRow(row);
    }
  }
  return table.render();
}

std::string renderServingResilienceTable(
    const std::vector<ServingPoint>& points) {
  bool any = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any = any || run.result.resilience.has_value();
    }
  }
  if (!any) return "";

  ConsoleTable table({"Resilience", "arrival", "qps", "drops",
                      "retransmits", "reissues", "recovery ms", "hier fb",
                      "degraded ms", "failovers", "rebuilds", "fallback"});
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      const auto& rs = run.result.resilience;
      if (!rs.has_value()) continue;
      table.addRow({runStyle(run.retriever).short_name, p.arrival,
                    ConsoleTable::num(p.qps, 0),
                    std::to_string(rs->dropped_flows),
                    std::to_string(rs->retransmits),
                    std::to_string(rs->collective_reissues),
                    ConsoleTable::num(rs->recovery_latency.toMs(), 3),
                    std::to_string(rs->hier_fallbacks),
                    ConsoleTable::num(rs->degraded_time.toMs(), 3),
                    std::to_string(rs->leader_failovers),
                    std::to_string(rs->staging_rebuilds),
                    rs->fallback_switches > 0 ? rs->fallback_retriever
                                              : "-"});
    }
  }
  return table.render();
}

std::string renderServingSummary(const std::vector<ServingPoint>& points,
                                 double slo_ms) {
  PGASEMB_CHECK(!points.empty() && !points.front().runs.empty(),
                "no serving points to summarize");
  // Preserve first-appearance order of arrivals and retrievers.
  std::vector<std::string> arrivals;
  for (const auto& p : points) {
    if (std::find(arrivals.begin(), arrivals.end(), p.arrival) ==
        arrivals.end()) {
      arrivals.push_back(p.arrival);
    }
  }

  ConsoleTable table({"Max sustainable QPS", "arrival", "knee qps",
                      "p99 ms at knee"});
  for (const auto& named : points.front().runs) {
    for (const auto& arrival : arrivals) {
      const engine::ServingResult* knee = nullptr;
      double knee_qps = 0.0;
      for (const auto& p : points) {
        if (p.arrival != arrival) continue;
        for (const auto& run : p.runs) {
          if (run.retriever != named.retriever) continue;
          const auto& sv = servingOf(run);
          if (sustained(sv, slo_ms) && p.qps > knee_qps) {
            knee = &sv;
            knee_qps = p.qps;
          }
        }
      }
      table.addRow({runStyle(named.retriever).short_name, arrival,
                    knee ? ConsoleTable::num(knee_qps, 0) : "-",
                    knee ? ConsoleTable::num(knee->p99_ms, 3) : "-"});
    }
  }
  return table.render();
}

std::string renderLatencyHistogram(const engine::ExperimentResult& result,
                                   const std::string& title) {
  PGASEMB_CHECK(result.serving.has_value(),
                "latency histogram needs serving results");
  const auto& hist = result.serving->latency;
  AsciiLineChart chart(title);
  chart.setAxisLabels("log10(latency ms)", "queries per bin");
  ChartSeries series{"queries", {}, {}, '*'};
  // Span the occupied bins (zeros in between included, so queueing gaps
  // show as valleys).
  std::size_t lo = hist.numBins();
  std::size_t hi = 0;
  for (std::size_t b = 0; b < hist.numBins(); ++b) {
    if (hist.binCount(b) == 0) continue;
    if (lo == hist.numBins()) lo = b;
    hi = b;
  }
  for (std::size_t b = lo; b < hist.numBins() && b <= hi; ++b) {
    const double center =
        0.5 * (hist.binLowMs(b) + hist.binHighMs(b));
    series.x.push_back(std::log10(std::max(center, 1e-6)));
    series.y.push_back(static_cast<double>(hist.binCount(b)));
  }
  if (!series.x.empty()) chart.addSeries(series);
  return chart.render();
}

std::string renderP95Timeline(const std::vector<engine::NamedResult>& runs,
                              const std::string& title) {
  AsciiLineChart chart(title);
  chart.setAxisLabels("window #", "p95 (ms)");
  for (const auto& named : runs) {
    const auto& sv = servingOf(named);
    const RunStyle style = runStyle(named.retriever);
    ChartSeries series{style.display, {}, {}, style.marker};
    for (std::size_t w = 0; w < sv.window_p95_ms.size(); ++w) {
      series.x.push_back(static_cast<double>(w + 1));
      series.y.push_back(sv.window_p95_ms[w]);
    }
    if (!series.x.empty()) chart.addSeries(series);
  }
  return chart.render();
}

void writeServingCsv(const std::string& path,
                     const std::vector<ServingPoint>& points) {
  PGASEMB_CHECK(!points.empty() && !points.front().runs.empty(),
                "no serving points to write");
  // Admission and hierarchical-resilience columns appear only when some
  // run armed the corresponding knobs, keeping knob-less sweep CSVs
  // byte-identical to the historical schema.
  bool any_admission = false;
  bool any_hier = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      any_admission = any_admission || servingOf(run).admission;
      const auto& rs = run.result.resilience;
      any_hier = any_hier ||
                 (rs && (rs->hier_fallbacks > 0 || rs->leader_failovers > 0 ||
                         rs->staging_rebuilds > 0));
    }
  }
  std::vector<std::string> headers{
      "arrival", "qps", "retriever", "queries", "batches", "p50_ms",
      "p95_ms", "p99_ms", "mean_ms", "max_ms", "mean_queue_ms",
      "offered_qps", "achieved_qps", "mean_batch_fill",
      "mean_queue_depth", "max_queue_depth", "slo_violations",
      "fallback_switches"};
  if (any_admission) {
    headers.insert(headers.end(),
                   {"shed_queue", "shed_overload", "deadline_misses",
                    "blocked_arrivals", "goodput_qps"});
  }
  if (any_hier) {
    headers.insert(headers.end(),
                   {"hier_fallbacks", "degraded_ms", "leader_failovers",
                    "staging_rebuilds"});
  }
  CsvWriter csv(path, headers);
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      const auto& sv = servingOf(run);
      const auto& rs = run.result.resilience;
      std::vector<std::string> row{
          p.arrival, ConsoleTable::num(p.qps, 1),
          runKey(run.retriever), std::to_string(sv.queries),
          std::to_string(sv.batches),
          ConsoleTable::num(sv.p50_ms, 4),
          ConsoleTable::num(sv.p95_ms, 4),
          ConsoleTable::num(sv.p99_ms, 4),
          ConsoleTable::num(sv.mean_ms, 4),
          ConsoleTable::num(sv.max_ms, 4),
          ConsoleTable::num(sv.mean_queue_ms, 4),
          ConsoleTable::num(sv.offered_qps, 1),
          ConsoleTable::num(sv.achieved_qps, 1),
          ConsoleTable::num(sv.mean_batch_fill, 4),
          ConsoleTable::num(sv.mean_queue_depth, 2),
          std::to_string(sv.max_queue_depth),
          std::to_string(sv.slo_violations),
          std::to_string(rs ? rs->fallback_switches : 0)};
      if (any_admission) {
        row.push_back(std::to_string(sv.shed_queue));
        row.push_back(std::to_string(sv.shed_overload));
        row.push_back(std::to_string(sv.deadline_misses));
        row.push_back(std::to_string(sv.blocked_arrivals));
        row.push_back(ConsoleTable::num(sv.goodput_qps, 1));
      }
      if (any_hier) {
        row.push_back(std::to_string(rs ? rs->hier_fallbacks : 0));
        row.push_back(ConsoleTable::num(
            rs ? rs->degraded_time.toMs() : 0.0, 4));
        row.push_back(std::to_string(rs ? rs->leader_failovers : 0));
        row.push_back(std::to_string(rs ? rs->staging_rebuilds : 0));
      }
      csv.addRow(row);
    }
  }
}

}  // namespace pgasemb::trace

#include "trace/experiment.hpp"

#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "emb/lookup_kernel.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb::trace {

std::string retrieverName(RetrieverKind kind) {
  switch (kind) {
    case RetrieverKind::kCollectiveBaseline:
      return "nccl_baseline";
    case RetrieverKind::kPgasFused:
      return "pgas_fused";
  }
  return "?";
}

double ExperimentResult::avgBatchMs() const {
  return stats.batches ? stats.total.toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgComputeMs() const {
  return stats.batches ? stats.compute_phase.toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgCommunicationMs() const {
  return stats.batches ? stats.communication().toMs() / stats.batches : 0.0;
}
double ExperimentResult::avgSyncUnpackMs() const {
  return stats.batches ? stats.syncUnpack().toMs() / stats.batches : 0.0;
}

ExperimentResult runExperiment(const ExperimentConfig& config,
                               RetrieverKind kind) {
  PGASEMB_CHECK(config.num_batches >= 1, "need at least one batch");

  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = config.num_gpus;
  sys_cfg.memory_capacity_bytes = config.device_memory_bytes;
  sys_cfg.mode = config.mode;
  sys_cfg.cost_model = config.cost_model;
  gpu::MultiGpuSystem system(sys_cfg);

  std::unique_ptr<fabric::Topology> topo;
  if (config.num_nodes > 0) {
    PGASEMB_CHECK(config.num_gpus % config.num_nodes == 0,
                  "num_gpus must divide evenly across nodes");
    topo = std::make_unique<fabric::MultiNodeTopology>(
        config.num_nodes, config.num_gpus / config.num_nodes, config.link,
        config.inter_node_link);
  } else {
    topo = std::make_unique<fabric::NvlinkAllToAllTopology>(config.num_gpus,
                                                            config.link);
  }
  fabric::Fabric fabric(system.simulator(), std::move(topo),
                        config.counter_bucket);

  collective::Communicator comm(system, fabric);
  pgas::PgasRuntime runtime(system, fabric);

  emb::ShardedEmbeddingLayer layer(system, config.layer, config.sharding);

  std::unique_ptr<core::EmbeddingRetriever> retriever;
  if (kind == RetrieverKind::kCollectiveBaseline) {
    retriever = std::make_unique<core::CollectiveRetriever>(layer, comm);
  } else {
    core::PgasRetrieverOptions opts;
    opts.slices = config.pgas_slices;
    opts.aggregator = config.use_aggregator ? &config.aggregator : nullptr;
    retriever = std::make_unique<core::PgasFusedRetriever>(layer, runtime,
                                                           opts);
  }

  ExperimentResult result;
  Rng rng(config.batch_seed);
  const bool functional = config.mode == gpu::ExecutionMode::kFunctional;
  // Timing-only runs reuse one statistical batch: the workload is the
  // distribution's expectation every batch, as in the paper's uniform
  // synthetic inputs.
  emb::SparseBatch statistical =
      emb::SparseBatch::statistical(config.layer.batchSpec());
  for (int b = 0; b < config.num_batches; ++b) {
    if (functional) {
      const auto batch =
          emb::SparseBatch::generateUniform(config.layer.batchSpec(), rng);
      const auto t = retriever->runBatch(batch);
      result.stats.add(t);
      result.per_batch.push_back(t);
    } else {
      const auto t = retriever->runBatch(statistical);
      result.stats.add(t);
      result.per_batch.push_back(t);
    }
  }

  // Delivery (wire-occupancy) counter: for PGAS this matches the paper's
  // in-kernel issue counter; for the baseline it spreads each chunk over
  // its serialization window, exactly the paper's "linearly interpolated
  // over the communication time" dashed line.
  const auto& counter = fabric.deliveryCounter();
  result.bucket_width = counter.bucketWidth();
  result.wire_bytes_over_time.resize(counter.numBuckets());
  for (std::size_t i = 0; i < counter.numBuckets(); ++i) {
    result.wire_bytes_over_time[i] = counter.bucket(i);
  }
  result.total_wire_bytes = fabric.totalPayloadBytes();
  result.total_wire_messages = fabric.totalMessages();

  // ncu-style throughput of the lookup kernel on GPU 0.
  {
    const auto work = layer.lookupWork(statistical, 0);
    const double dim = static_cast<double>(config.layer.dim);
    const double outputs = static_cast<double>(work.totalOutputs());
    const double bytes = outputs * 8.0 + work.gathered_rows * 8.0 +
                         work.gathered_rows * dim * 4.0 +
                         outputs * dim * 4.0;
    // ncu's SM throughput counts all scalar instructions (index math,
    // addressing), not just the pooling adds.
    const double instructions =
        work.gathered_rows * dim *
        config.cost_model.compute_instructions_per_element;
    const SimTime duration = emb::lookupComputeTime(layer, work);
    const auto tp =
        config.cost_model.kernelThroughput(instructions, bytes, duration);
    result.lookup_compute_throughput = tp.compute;
    result.lookup_memory_throughput = tp.memory;
  }
  return result;
}

ExperimentConfig weakScalingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::weakScalingLayerSpec(num_gpus);
  return cfg;
}

ExperimentConfig strongScalingConfig(int num_gpus) {
  ExperimentConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.layer = emb::strongScalingLayerSpec();
  return cfg;
}

}  // namespace pgasemb::trace

// Reporters shared by the benchmark binaries: paper-style speedup
// tables, scaling-factor charts, breakdown bars, and comm-volume traces.
#pragma once

#include <string>
#include <vector>

#include "trace/experiment.hpp"

namespace pgasemb::trace {

/// One (gpus, baseline, pgas) scaling data point.
struct ScalingPoint {
  int gpus = 0;
  ExperimentResult baseline;
  ExperimentResult pgas;

  double speedup() const {
    return pgas.avgBatchMs() > 0.0
               ? baseline.avgBatchMs() / pgas.avgBatchMs()
               : 0.0;
  }
};

/// Renders the paper's speedup table ("Speedup | 2 GPUs | 3 GPUs | 4
/// GPUs") plus the geometric mean, from multi-GPU points.
std::string renderSpeedupTable(const std::vector<ScalingPoint>& points);

/// Geometric mean of the multi-GPU speedups (the paper's headline
/// 1.97x / 2.63x numbers).
double geomeanSpeedup(const std::vector<ScalingPoint>& points);

/// Weak-scaling factor chart (runtime / 1-GPU runtime; ideal = 1.0,
/// paper Fig 5) or strong-scaling chart (1-GPU runtime / runtime; ideal
/// = p, paper Fig 8).
std::string renderScalingChart(const std::vector<ScalingPoint>& points,
                               bool weak);

/// Runtime-breakdown stacked bars (paper Figs 6 / 9).
std::string renderBreakdownBars(const std::vector<ScalingPoint>& points,
                                const std::string& title);

/// Comm-volume-over-time chart in 256-byte units (paper Figs 7 / 10).
std::string renderCommVolumeChart(const ExperimentResult& pgas,
                                  const ExperimentResult& baseline,
                                  const std::string& title);

/// Write a scaling sweep as CSV rows for offline plotting.
void writeScalingCsv(const std::string& path,
                     const std::vector<ScalingPoint>& points);

}  // namespace pgasemb::trace

// Reporters shared by the benchmark binaries: paper-style speedup
// tables, scaling-factor charts, breakdown bars, and comm-volume traces.
//
// All reporters consume engine::NamedResult runs keyed by registry name,
// so they render any subset of retrievers the benches sweep. The first
// run in a point is the reference (the paper's NCCL baseline in the
// default sweeps); speedups are reference over the last run.
#pragma once

#include <string>
#include <vector>

#include "engine/scenario_runner.hpp"

namespace pgasemb::trace {

/// Presentation metadata for a registry name: chart legend label, short
/// table/CSV key, and plot marker. Unknown names fall back to the raw
/// registry name and its first character.
struct RunStyle {
  std::string display;
  std::string short_name;
  char marker;
};
RunStyle runStyle(const std::string& retriever);

/// Lowercase short key for CSV columns and compact console rows
/// ("baseline", "pgas", "pipelined", ...).
std::string runKey(const std::string& retriever);

/// One scaling data point: every retriever's result at `gpus`.
struct ScalingPoint {
  int gpus = 0;
  std::vector<engine::NamedResult> runs;

  /// Reference run (first; the baseline in the default sweeps).
  const engine::NamedResult& reference() const;
  /// Treatment run (last; PGAS fused in the default sweeps).
  const engine::NamedResult& treatment() const;
  const engine::NamedResult* find(const std::string& retriever) const;

  /// reference avg-batch time / treatment avg-batch time. Returns 0.0
  /// (no crash, no inf) when the point is empty or the treatment time
  /// is not positive.
  double speedup() const;
};

/// Renders the paper's speedup table ("Speedup | 2 GPUs | 3 GPUs | 4
/// GPUs") plus the geometric mean, from multi-GPU points: one row per
/// non-reference retriever.
std::string renderSpeedupTable(const std::vector<ScalingPoint>& points);

/// Geometric mean of the multi-GPU reference/treatment speedups (the
/// paper's headline 1.97x / 2.63x numbers).
double geomeanSpeedup(const std::vector<ScalingPoint>& points);

/// Weak-scaling factor chart (runtime / 1-GPU runtime; ideal = 1.0,
/// paper Fig 5) or strong-scaling chart (1-GPU runtime / runtime; ideal
/// = p, paper Fig 8), one series per retriever.
std::string renderScalingChart(const std::vector<ScalingPoint>& points,
                               bool weak);

/// Runtime-breakdown stacked bars (paper Figs 6 / 9). Runs with a
/// separable communication or sync+unpack phase get three components;
/// fused/pipelined runs render as one bar segment.
std::string renderBreakdownBars(const std::vector<ScalingPoint>& points,
                                const std::string& title);

/// Comm-volume-over-time chart in 256-byte units (paper Figs 7 / 10),
/// one series per run.
std::string renderCommVolumeChart(const std::vector<engine::NamedResult>& runs,
                                  const std::string& title);

/// Replica-cache summary table (hit rate and exchange bytes saved per
/// retriever per GPU count). Returns "" when no run probed a cache, so
/// callers can print it unconditionally and stay absent-neutral.
std::string renderCacheTable(const std::vector<ScalingPoint>& points);

/// Inter-node compression summary (DESIGN.md §12): per run, the wire
/// compression ratio and adaptive hot/cool decisions, then one row per
/// table with the quantization width and the measured (Functional mode)
/// max/mean absolute error. Returns "" when no run carried a
/// compression report, so callers can print it unconditionally and stay
/// absent-neutral.
std::string renderCompressionTable(
    const std::vector<engine::NamedResult>& runs);

/// Resilience summary table (drops, retransmits, collective reissues,
/// launch retries, recovery time, SLO fallbacks per retriever per GPU
/// count). Returns "" when no run recorded resilience stats, so callers
/// can print it unconditionally and stay absent-neutral.
std::string renderResilienceTable(const std::vector<ScalingPoint>& points);

/// Write a scaling sweep as CSV rows for offline plotting. Column names
/// derive from each run's short name; the default baseline-vs-PGAS sweep
/// reproduces the historical schema (gpus, baseline_ms, pgas_ms, ...).
void writeScalingCsv(const std::string& path,
                     const std::vector<ScalingPoint>& points);

// --- Serving (open-loop) reporters ----------------------------------------

/// One serving sweep point: every retriever's result at (arrival
/// pattern, offered qps). Each run must carry a populated
/// ExperimentResult::serving section.
struct ServingPoint {
  std::string arrival;  ///< "poisson" / "bursty"
  double qps = 0.0;
  std::vector<engine::NamedResult> runs;
};

/// Per-point tail-latency table: p50/p95/p99, achieved vs offered QPS,
/// batch fill, queue depth, SLO violations per retriever. Admission
/// columns (shed counts, deadline misses, goodput) appear only when
/// some run enabled an admission knob.
std::string renderServingTable(const std::vector<ServingPoint>& points);

/// Resilience summary of a serving sweep (same columns as the scaling
/// variant, keyed by arrival/qps instead of GPU count). Returns "" when
/// no run recorded resilience stats, so callers can print it
/// unconditionally and stay absent-neutral.
std::string renderServingResilienceTable(
    const std::vector<ServingPoint>& points);

/// Knee-of-the-curve summary: per (arrival, retriever), the largest
/// offered QPS the system sustains — achieved >= 95% of offered and
/// (when slo_ms > 0) p99 <= slo_ms. "-" when no point qualifies.
std::string renderServingSummary(const std::vector<ServingPoint>& points,
                                 double slo_ms);

/// Latency histogram chart of one run (count per log-spaced bin).
std::string renderLatencyHistogram(const engine::ExperimentResult& result,
                                   const std::string& title);

/// p95-over-time chart (one point per timeline window of queries), one
/// series per run — brownout dips and fallback recovery show up here.
std::string renderP95Timeline(const std::vector<engine::NamedResult>& runs,
                              const std::string& title);

/// Serving sweep CSV: one row per (arrival, qps, retriever).
void writeServingCsv(const std::string& path,
                     const std::vector<ServingPoint>& points);

}  // namespace pgasemb::trace

// Chrome-trace (chrome://tracing / Perfetto) exporter for the simulated
// timeline: kernel compute spans, in-kernel quiet tails, and wire flows
// per GPU pair.  Attach to a system + fabric before running, then write
// the JSON; the overlap structure of the two retrieval schemes becomes
// directly visible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"
#include "fault/plan.hpp"
#include "gpu/system.hpp"

namespace pgasemb::trace {

class ChromeTraceRecorder {
 public:
  /// Install observers on `system` and `fabric`. The recorder must
  /// outlive both (or detach() first).
  void attach(gpu::MultiGpuSystem& system, fabric::Fabric& fabric);

  /// Remove the observers.
  void detach();

  std::size_t kernelSpanCount() const { return kernels_.size(); }
  std::size_t flowCount() const { return flows_.size(); }
  std::size_t faultSpanCount() const { return faults_.size(); }

  /// Add marker spans for an armed fault plan (one lane, one span per
  /// materialized window) so degradation windows line up visually with
  /// the kernel and wire spans they perturb. Feed it
  /// FaultInjector::materialized().
  void markFaultWindows(const std::vector<fault::FaultSpec>& specs);

  /// Serialize to the Chrome trace-event JSON array format.
  std::string toJson() const;

  /// Write toJson() to `path`.
  void writeFile(const std::string& path) const;

  void clear();

 private:
  struct KernelSpan {
    int device;
    std::string name;
    SimTime start;
    SimTime end;
    SimTime completion;
  };
  struct FlowSpan {
    int src;
    int dst;
    std::int64_t bytes;
    std::int64_t messages;
    SimTime start;
    SimTime end;
  };

  gpu::MultiGpuSystem* system_ = nullptr;
  fabric::Fabric* fabric_ = nullptr;
  std::vector<KernelSpan> kernels_;
  std::vector<FlowSpan> flows_;
  std::vector<fault::FaultSpec> faults_;
};

}  // namespace pgasemb::trace

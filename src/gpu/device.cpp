#include "gpu/device.hpp"

#include <sstream>

namespace pgasemb::gpu {

std::span<float> DeviceBuffer::span() {
  PGASEMB_CHECK(valid(), "span() on an invalid buffer");
  PGASEMB_CHECK(backed_,
                "span() on an unbacked buffer (timing-only mode or virtual "
                "allocation)");
  return device_->storageSpan(offset_, size_);
}

std::span<const float> DeviceBuffer::span() const {
  PGASEMB_CHECK(valid(), "span() on an invalid buffer");
  PGASEMB_CHECK(backed_, "span() on an unbacked buffer");
  return device_->storageSpan(offset_, size_);
}

Device::Device(int id, std::int64_t memory_capacity_bytes, ExecutionMode mode)
    : id_(id),
      capacity_bytes_(memory_capacity_bytes),
      mode_(mode),
      compute_("gpu" + std::to_string(id) + ".compute") {
  PGASEMB_CHECK(memory_capacity_bytes > 0, "device needs positive capacity");
}

DeviceBuffer Device::alloc(std::int64_t n) {
  PGASEMB_CHECK(n > 0, "alloc size must be positive, got ", n);
  const std::int64_t bytes = n * 4;
  if (used_bytes_ + bytes > capacity_bytes_) {
    std::ostringstream oss;
    oss << "simulated device " << id_ << " out of memory: requested " << bytes
        << " B, used " << used_bytes_ << " of " << capacity_bytes_ << " B";
    throw OutOfMemoryError(oss.str());
  }
  const std::int64_t offset = next_offset_;
  next_offset_ += n;
  used_bytes_ += bytes;
  const bool backed = (mode_ == ExecutionMode::kFunctional);
  if (backed) {
    storage_.resize(static_cast<std::size_t>(next_offset_), 0.0f);
  }
  return DeviceBuffer(this, offset, n, backed);
}

DeviceBuffer Device::allocVirtual(std::int64_t n) {
  PGASEMB_CHECK(n > 0, "alloc size must be positive, got ", n);
  const std::int64_t bytes = n * 4;
  if (used_bytes_ + bytes > capacity_bytes_) {
    std::ostringstream oss;
    oss << "simulated device " << id_ << " out of memory: requested " << bytes
        << " B, used " << used_bytes_ << " of " << capacity_bytes_ << " B";
    throw OutOfMemoryError(oss.str());
  }
  const std::int64_t offset = next_offset_;
  next_offset_ += n;
  used_bytes_ += bytes;
  return DeviceBuffer(this, offset, n, /*backed=*/false);
}

void Device::free(DeviceBuffer& buffer) {
  PGASEMB_CHECK(buffer.valid() && buffer.device() == this,
                "free() of a foreign or invalid buffer");
  used_bytes_ -= buffer.sizeBytes();
  if (buffer.offset() + buffer.size() == next_offset_) {
    next_offset_ = buffer.offset();
    if (buffer.backed()) {
      storage_.resize(static_cast<std::size_t>(next_offset_));
    }
  }
  buffer = DeviceBuffer();
}

std::span<float> Device::storageSpan(std::int64_t offset, std::int64_t size) {
  PGASEMB_ASSERT(offset >= 0 && offset + size <=
                     static_cast<std::int64_t>(storage_.size()),
                 "storage span out of range");
  return std::span<float>(storage_.data() + offset,
                          static_cast<std::size_t>(size));
}

}  // namespace pgasemb::gpu

#include "gpu/device.hpp"

#include <algorithm>
#include <sstream>

#include "simsan/checker.hpp"
#include "simsan/strict.hpp"

namespace pgasemb::gpu {

std::span<float> DeviceBuffer::span() {
  PGASEMB_CHECK(valid(), "span() on an invalid buffer");
  PGASEMB_CHECK(backed_,
                "span() on an unbacked buffer (timing-only mode or virtual "
                "allocation)");
  // Strict-effects shadow touch: a mutable span materialized while a
  // kernel's functional body runs is an observed write-capable access
  // of this buffer's range (reads use the const overload).
  if (auto* strict = device_->strictEffects()) {
    strict->touch(device_->id(), offset_, size_);
  }
  return device_->storageSpan(offset_, size_);
}

std::span<const float> DeviceBuffer::span() const {
  PGASEMB_CHECK(valid(), "span() on an invalid buffer");
  PGASEMB_CHECK(backed_, "span() on an unbacked buffer");
  return device_->storageSpan(offset_, size_);
}

Device::Device(int id, std::int64_t memory_capacity_bytes, ExecutionMode mode,
               simsan::Checker* sanitizer,
               simsan::StrictEffects* strict_effects)
    : id_(id),
      capacity_bytes_(memory_capacity_bytes),
      mode_(mode),
      sanitizer_(sanitizer),
      strict_effects_(strict_effects),
      compute_("gpu" + std::to_string(id) + ".compute") {
  PGASEMB_CHECK(memory_capacity_bytes > 0, "device needs positive capacity");
}

std::int64_t Device::takeOffset(std::int64_t n) {
  // First-fit from the free list, carving from the block's front so the
  // remainder stays sorted in place.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->size < n) continue;
    const std::int64_t offset = it->offset;
    if (it->size == n) {
      free_list_.erase(it);
    } else {
      it->offset += n;
      it->size -= n;
    }
    if (mode_ == ExecutionMode::kFunctional) {
      // Reused backing storage must come up zeroed like a fresh block.
      std::fill(storage_.begin() + offset, storage_.begin() + offset + n,
                0.0f);
    }
    return offset;
  }
  const std::int64_t offset = next_offset_;
  next_offset_ += n;
  return offset;
}

DeviceBuffer Device::alloc(std::int64_t n) {
  PGASEMB_CHECK(n > 0, "alloc size must be positive, got ", n);
  const std::int64_t bytes = n * 4;
  if (used_bytes_ + bytes > capacity_bytes_) {
    std::ostringstream oss;
    oss << "simulated device " << id_ << " out of memory: requested " << bytes
        << " B, used " << used_bytes_ << " of " << capacity_bytes_ << " B";
    throw OutOfMemoryError(oss.str());
  }
  const std::int64_t offset = takeOffset(n);
  used_bytes_ += bytes;
  const bool backed = (mode_ == ExecutionMode::kFunctional);
  if (backed && offset + n > static_cast<std::int64_t>(storage_.size())) {
    storage_.resize(static_cast<std::size_t>(offset + n), 0.0f);
  }
  if (sanitizer_ != nullptr) {
    sanitizer_->onAlloc(id_, offset, n,
                        "gpu" + std::to_string(id_) + ".alloc#" +
                            std::to_string(alloc_seq_++));
  }
  return DeviceBuffer(this, offset, n, backed);
}

DeviceBuffer Device::allocVirtual(std::int64_t n) {
  PGASEMB_CHECK(n > 0, "alloc size must be positive, got ", n);
  const std::int64_t bytes = n * 4;
  if (used_bytes_ + bytes > capacity_bytes_) {
    std::ostringstream oss;
    oss << "simulated device " << id_ << " out of memory: requested " << bytes
        << " B, used " << used_bytes_ << " of " << capacity_bytes_ << " B";
    throw OutOfMemoryError(oss.str());
  }
  const std::int64_t offset = takeOffset(n);
  used_bytes_ += bytes;
  if (sanitizer_ != nullptr) {
    sanitizer_->onAlloc(id_, offset, n,
                        "gpu" + std::to_string(id_) + ".valloc#" +
                            std::to_string(alloc_seq_++));
  }
  return DeviceBuffer(this, offset, n, /*backed=*/false);
}

void Device::free(DeviceBuffer& buffer) {
  PGASEMB_CHECK(buffer.valid() && buffer.device() == this,
                "free() of a foreign or invalid buffer");
  used_bytes_ -= buffer.sizeBytes();
  if (sanitizer_ != nullptr) {
    sanitizer_->onFree(id_, buffer.offset(), buffer.size());
  }

  // Insert the hole sorted by offset and coalesce with both neighbors.
  FreeBlock block{buffer.offset(), buffer.size()};
  auto it = std::lower_bound(
      free_list_.begin(), free_list_.end(), block,
      [](const FreeBlock& a, const FreeBlock& b) { return a.offset < b.offset; });
  it = free_list_.insert(it, block);
  if (it + 1 != free_list_.end() && it->offset + it->size == (it + 1)->offset) {
    it->size += (it + 1)->size;
    free_list_.erase(it + 1);
  }
  if (it != free_list_.begin() &&
      (it - 1)->offset + (it - 1)->size == it->offset) {
    (it - 1)->size += it->size;
    it = free_list_.erase(it) - 1;
  }
  // Shrink the high-water mark past any free tail (this also reclaims
  // blocks freed earlier out of LIFO order, fixing the old asymmetry
  // where only the most recent allocation's space was ever recovered).
  if (!free_list_.empty() &&
      free_list_.back().offset + free_list_.back().size == next_offset_) {
    next_offset_ = free_list_.back().offset;
    free_list_.pop_back();
    if (mode_ == ExecutionMode::kFunctional &&
        static_cast<std::int64_t>(storage_.size()) > next_offset_) {
      storage_.resize(static_cast<std::size_t>(next_offset_));
    }
  }
  buffer = DeviceBuffer();
}

void Device::addSlowdownWindow(SimTime start, SimTime end, double factor) {
  PGASEMB_CHECK(end > start, "slowdown window must have start < end");
  PGASEMB_CHECK(factor >= 1.0, "slowdown factor must be >= 1, got ", factor);
  slowdown_windows_.push_back(SlowdownWindow{start, end, factor});
}

double Device::slowdownAt(SimTime at) const {
  double factor = 1.0;
  for (const auto& w : slowdown_windows_) {
    if (at >= w.start && at < w.end) factor = std::max(factor, w.factor);
  }
  return factor;
}

std::span<float> Device::storageSpan(std::int64_t offset, std::int64_t size) {
  PGASEMB_EXPECT_GE(offset, 0, "storage span on device ", id_);
  PGASEMB_EXPECT_GE(size, 0, "storage span on device ", id_);
  PGASEMB_EXPECT_LE(offset + size, static_cast<std::int64_t>(storage_.size()),
                    "storage span out of range on device ", id_);
  return std::span<float>(storage_.data() + offset,
                          static_cast<std::size_t>(size));
}

}  // namespace pgasemb::gpu

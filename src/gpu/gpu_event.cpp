#include "gpu/gpu_event.hpp"

#include "util/expect.hpp"

namespace pgasemb::gpu {

SimTime GpuEvent::time() const {
  PGASEMB_CHECK(recorded_, "GpuEvent::time() before record()");
  return time_;
}

void GpuEvent::record(SimTime at) {
  PGASEMB_ASSERT(!recorded_, "GpuEvent recorded twice without reset()");
  recorded_ = true;
  time_ = at;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& fn : waiters) fn(at);
}

void GpuEvent::onRecorded(std::function<void(SimTime)> fn) {
  if (recorded_) {
    fn(time_);
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void GpuEvent::reset() {
  PGASEMB_ASSERT(waiters_.empty(), "reset() with pending waiters");
  recorded_ = false;
  time_ = SimTime::zero();
}

}  // namespace pgasemb::gpu

// Simulated CUDA stream: a FIFO of asynchronous operations on one device.
//
// Each operation starts once (a) the previous operation on the stream has
// completed and (b) its host-side ready time has passed, then reports its
// own completion time (possibly via simulator events, e.g. a kernel whose
// quiet waits on remote deliveries).
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "gpu/kernel.hpp"
#include "sim/event_queue.hpp"
#include "simsan/checker.hpp"
#include "util/time.hpp"

namespace pgasemb::sim {
class Simulator;
}

namespace pgasemb::gpu {

class Device;
class GpuEvent;

class Stream {
 public:
  Stream(sim::Simulator& simulator, Device& device, std::string name);

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// An operation: invoked with its start time; must call `done(end)`
  /// exactly once with end >= start (synchronously or from a later event).
  using Op = std::function<void(SimTime start,
                                std::function<void(SimTime end)> done)>;

  /// Generic enqueue. `ready` is the earliest start (host enqueue time).
  void enqueue(SimTime ready, std::string label, Op op);

  /// Enqueue a kernel launch; occupies the device compute resource.
  void enqueueKernel(SimTime ready, KernelDesc desc);

  /// Enqueue an operation with a fixed duration (e.g. a D2D copy).
  void enqueueFixed(SimTime ready, std::string label, SimTime duration,
                    std::function<void()> body = nullptr);

  /// Enqueue an event record (completes instantly when reached).
  void enqueueRecord(SimTime ready, GpuEvent& event);

  /// Enqueue a wait: the stream stalls until `event` is recorded.
  void enqueueWaitEvent(SimTime ready, GpuEvent& event);

  bool idle() const { return !busy_ && queue_.empty(); }

  /// Completion time of the most recently finished operation.
  SimTime lastCompletion() const { return last_completion_; }

  Device& device() { return device_; }
  const std::string& name() const { return name_; }

  /// Attach the simsan checker: creates this stream's actor and starts
  /// recording happens-before edges (host-order at enqueue, event
  /// release/acquire, kernel footprints). Call before any enqueue.
  void enableSanitizer(simsan::Checker& checker);

  simsan::Checker* sanitizer() const { return sanitizer_; }
  simsan::ActorId sanitizerActor() const { return actor_; }

 private:
  struct Pending {
    SimTime ready;
    std::string label;
    Op op;
  };

  void tryStartNext();
  void opFinished(SimTime end);

  sim::Simulator& simulator_;
  Device& device_;
  std::string name_;
  simsan::Checker* sanitizer_ = nullptr;
  simsan::ActorId actor_ = -1;
  std::deque<Pending> queue_;
  bool busy_ = false;
  SimTime last_completion_ = SimTime::zero();
  /// Staging buffer for per-slice events, reused across kernel launches
  /// so the hot path does not reallocate it per kernel.
  std::vector<sim::EventQueue::Batch> slice_batch_;
};

}  // namespace pgasemb::gpu

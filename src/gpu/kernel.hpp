// Kernel descriptor for the simulated CUDA runtime.
//
// A kernel occupies its device's compute resource for a precomputed
// duration (from the CostModel).  Its timeline is subdivided into
// `slices`; the PGAS layer uses the slice hook to inject one-sided
// messages *throughout* kernel execution, which is exactly the paper's
// fine-grained overlap mechanism.  `finalize` lets the PGAS layer stretch
// kernel completion to the last remote delivery (nvshmem_quiet
// semantics); for ordinary kernels completion equals compute end.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simsan/access.hpp"
#include "util/time.hpp"

namespace pgasemb::gpu {

struct KernelDesc {
  std::string name;

  /// Compute-resource occupancy (from CostModel::*KernelTime).
  SimTime duration = SimTime::zero();

  /// Number of timeline subdivisions; `on_slice` fires at the end of each.
  int slices = 1;

  /// Called at the end of slice `i` (0-based) at simulated time `at`.
  /// Slice `slices - 1` fires exactly at compute end.
  std::function<void(int slice, SimTime at)> on_slice;

  /// Fast path (set by the PGAS runtime when provably safe): run every
  /// slice callback synchronously at kernel start, passing each slice
  /// its original future timestamp, instead of scheduling one simulator
  /// event per slice. Timing-identical only when nothing else can
  /// interleave with this kernel's flows between kernel start and
  /// compute end (dedicated pair links, no simsan/faults/counters — see
  /// PgasRuntime::attachMessagePlan).
  bool coalesce_slices = false;

  /// Host-side functional data-plane work, run once when the kernel
  /// starts. Null in timing-only mode.
  std::function<void()> functional_body;

  /// Maps compute-end time to kernel completion time (>= compute end).
  /// Used for in-kernel communication quiet; null means identity.
  std::function<SimTime(SimTime compute_end)> finalize;

  /// Declared memory footprint, logged under the launching stream's
  /// actor when the kernel starts (simsan only; empty when the checker
  /// is off). Remote one-sided writes are NOT listed here — the PGAS
  /// runtime logs those under its own put actor as slices deliver.
  std::vector<simsan::MemEffect> mem_effects;

  /// Declared one-sided put footprint (set by
  /// PgasRuntime::attachMessagePlan from the retriever's remote_writes;
  /// empty otherwise). Logged by the PGAS put actor, not the stream —
  /// kept on the descriptor so strict-effects mode can treat remote
  /// output ranges as declared while the functional body runs.
  std::vector<simsan::MemEffect> put_effects;
};

}  // namespace pgasemb::gpu

// CUDA-event analogue: records a point in a stream's execution that other
// streams (or the host) can wait on.
#pragma once

#include <functional>
#include <vector>

#include "util/time.hpp"

namespace pgasemb::gpu {

class GpuEvent {
 public:
  bool recorded() const { return recorded_; }

  /// Time the event completed; only valid once recorded.
  SimTime time() const;

  /// Mark the event complete at `at` and release all waiters.
  void record(SimTime at);

  /// Invoke `fn(completion_time)` once recorded (immediately if already).
  void onRecorded(std::function<void(SimTime)> fn);

  /// Re-arm for reuse across batches.
  void reset();

 private:
  bool recorded_ = false;
  SimTime time_ = SimTime::zero();
  std::vector<std::function<void(SimTime)>> waiters_;
};

}  // namespace pgasemb::gpu

#include "gpu/system.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::gpu {

MultiGpuSystem::MultiGpuSystem(const SystemConfig& config) : config_(config) {
  PGASEMB_CHECK(config.num_gpus >= 1, "need at least one GPU, got ",
                config.num_gpus);
  devices_.reserve(static_cast<std::size_t>(config.num_gpus));
  default_streams_.reserve(static_cast<std::size_t>(config.num_gpus));
  for (int i = 0; i < config.num_gpus; ++i) {
    devices_.push_back(std::make_unique<Device>(
        i, config.memory_capacity_bytes, config.mode, config.sanitizer,
        config.strict_effects));
    default_streams_.push_back(std::make_unique<Stream>(
        simulator_, *devices_.back(), "gpu" + std::to_string(i) + ".default"));
    if (config.sanitizer != nullptr) {
      default_streams_.back()->enableSanitizer(*config.sanitizer);
    }
  }
}

Device& MultiGpuSystem::device(int id) {
  PGASEMB_CHECK(id >= 0 && id < numGpus(), "bad device id ", id);
  return *devices_[static_cast<std::size_t>(id)];
}

Stream& MultiGpuSystem::stream(int id) {
  PGASEMB_CHECK(id >= 0 && id < numGpus(), "bad device id ", id);
  return *default_streams_[static_cast<std::size_t>(id)];
}

Stream& MultiGpuSystem::createStream(int id, const std::string& name) {
  extra_streams_.push_back(std::make_unique<Stream>(
      simulator_, device(id), "gpu" + std::to_string(id) + "." + name));
  if (config_.sanitizer != nullptr) {
    extra_streams_.back()->enableSanitizer(*config_.sanitizer);
  }
  return *extra_streams_.back();
}

void MultiGpuSystem::setKernelObserver(KernelObserver observer) {
  kernel_observer_ = std::move(observer);
  for (auto& dev : devices_) {
    if (kernel_observer_) {
      dev->setKernelSpanObserver(
          [this, id = dev->id()](const std::string& name, SimTime start,
                                 SimTime end, SimTime completion) {
            kernel_observer_(id, name, start, end, completion);
          });
    } else {
      dev->setKernelSpanObserver(nullptr);
    }
  }
}

SimTime MultiGpuSystem::launchKernel(int id, KernelDesc desc) {
  return launchKernelOn(stream(id), std::move(desc));
}

SimTime MultiGpuSystem::launchKernelOn(Stream& stream, KernelDesc desc) {
  if (launch_fault_hook_) {
    // Transient launch failures: the host burns retry time before the
    // launch that finally sticks.
    host_now_ += launch_fault_hook_(stream.device().id(), host_now_);
  }
  host_now_ += config_.cost_model.kernel_launch_overhead;
  stream.enqueueKernel(host_now_, std::move(desc));
  return host_now_;
}

SimTime MultiGpuSystem::syncDevice(int id) {
  simulator_.run();
  if (config_.sanitizer != nullptr) {
    // cudaStreamSynchronize edge: the synced stream's history is now
    // visible to the host.
    config_.sanitizer->joinActor(simsan::Checker::kHost,
                                 stream(id).sanitizerActor());
  }
  host_now_ = std::max(host_now_, stream(id).lastCompletion()) +
              config_.cost_model.stream_sync_overhead;
  return host_now_;
}

SimTime MultiGpuSystem::syncAll() {
  simulator_.run();
  if (config_.sanitizer != nullptr) {
    // cudaDeviceSynchronize loop: every stream's history joins the host.
    for (const auto& s : default_streams_) {
      config_.sanitizer->joinActor(simsan::Checker::kHost,
                                   s->sanitizerActor());
    }
    for (const auto& s : extra_streams_) {
      config_.sanitizer->joinActor(simsan::Checker::kHost,
                                   s->sanitizerActor());
    }
  }
  SimTime latest = host_now_;
  for (const auto& s : default_streams_) {
    latest = std::max(latest, s->lastCompletion());
  }
  for (const auto& s : extra_streams_) {
    latest = std::max(latest, s->lastCompletion());
  }
  // One sync call per device, as in the paper's Listing 2 loop.
  host_now_ = latest + config_.cost_model.stream_sync_overhead *
                           static_cast<std::int64_t>(devices_.size());
  return host_now_;
}

}  // namespace pgasemb::gpu

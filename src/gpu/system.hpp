// MultiGpuSystem: the simulated single-node multi-GPU machine.
//
// Owns the simulator, the devices, one default stream per device, and the
// host clock.  Host-side API calls (kernel launches, stream syncs) charge
// realistic CPU overheads to the host clock — these are precisely the
// "communication control path" costs the paper attributes to the
// collective baseline (§III-A).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/stream.hpp"
#include "sim/simulator.hpp"

namespace pgasemb::gpu {

struct SystemConfig {
  int num_gpus = 4;
  std::int64_t memory_capacity_bytes = 32LL * 1024 * 1024 * 1024;  // V100 32GB
  ExecutionMode mode = ExecutionMode::kTimingOnly;
  CostModel cost_model;
  /// Optional happens-before/bounds/lifetime checker (simsan). Not
  /// owned; must outlive the system. Null (the default) disables every
  /// hook — the simulation is bit-identical either way.
  simsan::Checker* sanitizer = nullptr;
  /// Optional strict-effects recorder (--simsan-strict): observed
  /// memory touches are checked against declared MemEffect footprints.
  /// Not owned; must outlive the system. Requires `sanitizer` (the
  /// findings surface through its Summary). Null disables every hook.
  simsan::StrictEffects* strict_effects = nullptr;
};

class MultiGpuSystem {
 public:
  explicit MultiGpuSystem(const SystemConfig& config);

  int numGpus() const { return static_cast<int>(devices_.size()); }
  ExecutionMode mode() const { return config_.mode; }
  const CostModel& costModel() const { return config_.cost_model; }

  sim::Simulator& simulator() { return simulator_; }
  Device& device(int id);
  Stream& stream(int id);

  /// The attached simsan checker, or null when checking is off.
  simsan::Checker* sanitizer() const { return config_.sanitizer; }

  /// The attached strict-effects recorder, or null (plain simsan / off).
  simsan::StrictEffects* strictEffects() const {
    return config_.strict_effects;
  }

  /// Create an extra stream on device `id` (e.g. a side stream for the
  /// data-parallel MLP so it time-shares with the EMB kernel).
  Stream& createStream(int id, const std::string& name);

  // --- Host clock ----------------------------------------------------------

  /// Current host (CPU) time. The host clock only moves forward.
  SimTime hostNow() const { return host_now_; }

  /// Charge host CPU time (API call overheads, input partitioning, ...).
  void hostAdvance(SimTime duration) { host_now_ += duration; }

  /// Launch a kernel on device `id`'s default stream; charges the host
  /// launch overhead and returns the host time after the call.
  SimTime launchKernel(int id, KernelDesc desc);
  SimTime launchKernelOn(Stream& stream, KernelDesc desc);

  /// Fault-injection hook consulted before every kernel launch: returns
  /// the extra host time transient launch failures cost (zero = the
  /// launch succeeds first try). Null (the default) skips the hook
  /// entirely — the launch path is identical to a fault-free build.
  /// Installed by fault::FaultInjector.
  using LaunchFaultHook = std::function<SimTime(int device, SimTime host_now)>;
  void setLaunchFaultHook(LaunchFaultHook hook) {
    launch_fault_hook_ = std::move(hook);
  }

  /// Block the host until device `id`'s default stream drains; charges
  /// the sync overhead. Returns host time after the call.
  SimTime syncDevice(int id);

  /// cudaDeviceSynchronize loop over all devices (paper Listing 2).
  SimTime syncAll();

  /// Drain the simulator without charging host overhead (used by tests).
  void drain() { simulator_.run(); }

  /// Observer invoked at each kernel completion with
  /// (device id, kernel name, compute start, compute end, completion).
  /// Completion > compute end when an in-kernel quiet waited on remote
  /// deliveries. Used by the timeline/Chrome-trace exporters.
  using KernelObserver =
      std::function<void(int device, const std::string& name,
                         SimTime start, SimTime end, SimTime completion)>;
  void setKernelObserver(KernelObserver observer);
  const KernelObserver& kernelObserver() const { return kernel_observer_; }

 private:
  KernelObserver kernel_observer_;
  LaunchFaultHook launch_fault_hook_;
  SystemConfig config_;
  sim::Simulator simulator_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<Stream>> default_streams_;
  std::vector<std::unique_ptr<Stream>> extra_streams_;
  SimTime host_now_ = SimTime::zero();
};

}  // namespace pgasemb::gpu

#include "gpu/stream.hpp"

#include <algorithm>
#include <utility>

#include "gpu/device.hpp"
#include "gpu/gpu_event.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::gpu {

Stream::Stream(sim::Simulator& simulator, Device& device, std::string name)
    : simulator_(simulator), device_(device), name_(std::move(name)) {}

void Stream::enableSanitizer(simsan::Checker& checker) {
  sanitizer_ = &checker;
  actor_ = checker.newActor(name_);
}

void Stream::enqueue(SimTime ready, std::string label, Op op) {
  if (sanitizer_ != nullptr) {
    // Host-order edge: everything the host observed before this enqueue
    // happens-before the op's execution (cudaLaunch semantics — the op
    // may consume host-prepared state).
    op = [this, snap = sanitizer_->snapshot(simsan::Checker::kHost),
          inner = std::move(op)](SimTime start,
                                 std::function<void(SimTime)> done) mutable {
      sanitizer_->joinClock(actor_, snap);
      inner(start, std::move(done));
    };
  }
  queue_.push_back(Pending{ready, std::move(label), std::move(op)});
  if (!busy_) tryStartNext();
}

void Stream::tryStartNext() {
  if (busy_ || queue_.empty()) return;
  Pending next = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;

  const SimTime start =
      std::max({last_completion_, next.ready, simulator_.now()});
  // Invoke the op at its start time so any resource acquisitions it makes
  // happen in global simulated-time order.
  simulator_.scheduleAt(
      start, [this, start, op = std::move(next.op)]() mutable {
        op(start, [this](SimTime end) {
          PGASEMB_ASSERT(end >= simulator_.now(),
                         "op completion in the past");
          if (end == simulator_.now()) {
            opFinished(end);
          } else {
            simulator_.scheduleAt(end, [this, end] { opFinished(end); });
          }
        });
      });
}

void Stream::opFinished(SimTime end) {
  busy_ = false;
  last_completion_ = std::max(last_completion_, end);
  tryStartNext();
}

void Stream::enqueueKernel(SimTime ready, KernelDesc desc) {
  PGASEMB_CHECK(desc.slices >= 1, "kernel needs >= 1 slice");
  enqueue(ready, desc.name,
          [this, desc = std::move(desc)](
              SimTime start, std::function<void(SimTime)> done) {
            SimTime duration = desc.duration;
            if (device_.hasSlowdownWindows()) {
              // Straggler fault: stretch the kernel by the slowdown in
              // force when its compute actually starts (deterministic —
              // the FIFO fixes the start).
              const double factor = device_.slowdownAt(
                  device_.computeResource().nextFreeTime(start));
              if (factor > 1.0) duration = duration * factor;
            }
            auto grant = device_.computeResource().acquire(start, duration);
            if (sanitizer_ != nullptr) {
              for (const auto& effect : desc.mem_effects) {
                sanitizer_->access(actor_, effect.device, effect.range,
                                   effect.kind, grant.start, grant.end,
                                   effect.label.empty() ? desc.name
                                                        : effect.label);
              }
            }
            if (desc.functional_body) desc.functional_body();
            if (desc.on_slice) {
              const std::int64_t dur = duration.count();
              for (int i = 0; i < desc.slices; ++i) {
                const SimTime at =
                    grant.start +
                    SimTime(dur * (i + 1) / desc.slices);
                simulator_.scheduleAt(
                    at, [i, at, fn = desc.on_slice] { fn(i, at); });
              }
            }
            simulator_.scheduleAt(
                grant.end,
                [this, grant, done = std::move(done),
                 finalize = desc.finalize, name = desc.name] {
                  const SimTime completion =
                      finalize ? finalize(grant.end) : grant.end;
                  PGASEMB_ASSERT(
                      completion >= grant.end,
                      "finalize moved completion before compute end");
                  device_.notifyKernelSpan(name, grant.start, grant.end,
                                           completion);
                  done(completion);
                });
          });
}

void Stream::enqueueFixed(SimTime ready, std::string label, SimTime duration,
                          std::function<void()> body) {
  enqueue(ready, std::move(label),
          [duration, body = std::move(body)](
              SimTime start, std::function<void(SimTime)> done) {
            if (body) body();
            done(start + duration);
          });
}

void Stream::enqueueRecord(SimTime ready, GpuEvent& event) {
  enqueue(ready, "record",
          [this, &event](SimTime start, std::function<void(SimTime)> done) {
            if (sanitizer_ != nullptr) sanitizer_->release(actor_, &event);
            event.record(start);
            done(start);
          });
}

void Stream::enqueueWaitEvent(SimTime ready, GpuEvent& event) {
  enqueue(ready, "wait_event",
          [this, &event](SimTime start, std::function<void(SimTime)> done) {
            event.onRecorded(
                [this, &event, start, done = std::move(done)](SimTime at) {
                  if (sanitizer_ != nullptr) {
                    sanitizer_->acquire(actor_, &event);
                  }
                  done(std::max(start, at));
                });
          });
}

}  // namespace pgasemb::gpu

#include "gpu/stream.hpp"

#include <algorithm>
#include <utility>

#include "gpu/device.hpp"
#include "gpu/gpu_event.hpp"
#include "simsan/strict.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::gpu {

Stream::Stream(sim::Simulator& simulator, Device& device, std::string name)
    : simulator_(simulator), device_(device), name_(std::move(name)) {}

void Stream::enableSanitizer(simsan::Checker& checker) {
  sanitizer_ = &checker;
  actor_ = checker.newActor(name_);
}

void Stream::enqueue(SimTime ready, std::string label, Op op) {
  if (sanitizer_ != nullptr) {
    // Host-order edge: everything the host observed before this enqueue
    // happens-before the op's execution (cudaLaunch semantics — the op
    // may consume host-prepared state).
    op = [this, snap = sanitizer_->snapshot(simsan::Checker::kHost),
          inner = std::move(op)](SimTime start,
                                 std::function<void(SimTime)> done) mutable {
      sanitizer_->joinClock(actor_, snap);
      inner(start, std::move(done));
    };
  }
  queue_.push_back(Pending{ready, std::move(label), std::move(op)});
  if (!busy_) tryStartNext();
}

void Stream::tryStartNext() {
  if (busy_ || queue_.empty()) return;
  Pending next = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;

  const SimTime start =
      std::max({last_completion_, next.ready, simulator_.now()});
  // Invoke the op at its start time so any resource acquisitions it makes
  // happen in global simulated-time order.
  simulator_.scheduleAt(
      start, [this, start, op = std::move(next.op)]() mutable {
        op(start, [this](SimTime end) {
          PGASEMB_ASSERT(end >= simulator_.now(),
                         "op completion in the past");
          if (end == simulator_.now()) {
            opFinished(end);
          } else {
            simulator_.scheduleAt(end, [this, end] { opFinished(end); });
          }
        });
      });
}

void Stream::opFinished(SimTime end) {
  busy_ = false;
  last_completion_ = std::max(last_completion_, end);
  tryStartNext();
}

namespace {

/// Per-launch state shared between a kernel's op, its slice events and
/// its completion event.  Holding the descriptor here (instead of
/// copying it into every closure) is what keeps slice events at a
/// shared_ptr + index + timestamp — small enough for EventFn's inline
/// buffer, and free of the per-slice deep copy of the descriptor's
/// capture (the message plan) that used to dominate hot-run profiles.
struct KernelLaunch {
  KernelDesc desc;
  SimTime grant_start;
  SimTime grant_end;
  std::function<void(SimTime)> done;
};

}  // namespace

void Stream::enqueueKernel(SimTime ready, KernelDesc desc) {
  PGASEMB_CHECK(desc.slices >= 1, "kernel needs >= 1 slice");
  auto state = std::make_shared<KernelLaunch>();
  state->desc = std::move(desc);
  enqueue(ready, state->desc.name,
          [this, state](SimTime start, std::function<void(SimTime)> done) {
            const KernelDesc& d = state->desc;
            SimTime duration = d.duration;
            if (device_.hasSlowdownWindows()) {
              // Straggler fault: stretch the kernel by the slowdown in
              // force when its compute actually starts (deterministic —
              // the FIFO fixes the start).
              const double factor = device_.slowdownAt(
                  device_.computeResource().nextFreeTime(start));
              if (factor > 1.0) duration = duration * factor;
            }
            const auto grant =
                device_.computeResource().acquire(start, duration);
            state->grant_start = grant.start;
            state->grant_end = grant.end;
            if (sanitizer_ != nullptr) {
              for (const auto& effect : d.mem_effects) {
                sanitizer_->access(actor_, effect.device, effect.range,
                                   effect.kind, grant.start, grant.end,
                                   effect.label.empty() ? d.name
                                                        : effect.label);
              }
            }
            if (d.functional_body) {
              // Strict-effects scope: every mutable span materialized
              // inside the body is checked against the declared
              // footprint (mem_effects plus attached put_effects).
              auto* strict = device_.strictEffects();
              if (strict != nullptr) {
                strict->beginKernel(d.name, d.mem_effects, d.put_effects);
                d.functional_body();
                strict->endKernel();
              } else {
                d.functional_body();
              }
            }
            if (d.on_slice) {
              const std::int64_t dur = duration.count();
              if (d.coalesce_slices) {
                // Fast path: emit every slice synchronously with its
                // original timestamp. The flows land on the fabric in
                // the same order at the same times, so link grants —
                // and therefore every simulated result — are identical
                // (see KernelDesc::coalesce_slices for the safety
                // conditions).
                for (int i = 0; i < d.slices; ++i) {
                  d.on_slice(i, grant.start +
                                    SimTime(dur * (i + 1) / d.slices));
                }
              } else {
                slice_batch_.reserve(static_cast<std::size_t>(d.slices));
                for (int i = 0; i < d.slices; ++i) {
                  const SimTime at =
                      grant.start + SimTime(dur * (i + 1) / d.slices);
                  slice_batch_.push_back(
                      {at, [state, i, at] { state->desc.on_slice(i, at); }});
                }
                simulator_.scheduleBatch(slice_batch_);
              }
            }
            state->done = std::move(done);
            simulator_.scheduleAt(grant.end, [this, state] {
              const SimTime completion =
                  state->desc.finalize
                      ? state->desc.finalize(state->grant_end)
                      : state->grant_end;
              PGASEMB_ASSERT(
                  completion >= state->grant_end,
                  "finalize moved completion before compute end");
              device_.notifyKernelSpan(state->desc.name, state->grant_start,
                                       state->grant_end, completion);
              // Detach before invoking: done() may start the next op,
              // which must not observe this launch's callback as live.
              auto done_cb = std::move(state->done);
              done_cb(completion);
            });
          });
}

void Stream::enqueueFixed(SimTime ready, std::string label, SimTime duration,
                          std::function<void()> body) {
  enqueue(ready, std::move(label),
          [duration, body = std::move(body)](
              SimTime start, std::function<void(SimTime)> done) {
            if (body) body();
            done(start + duration);
          });
}

void Stream::enqueueRecord(SimTime ready, GpuEvent& event) {
  enqueue(ready, "record",
          [this, &event](SimTime start, std::function<void(SimTime)> done) {
            if (sanitizer_ != nullptr) sanitizer_->release(actor_, &event);
            event.record(start);
            done(start);
          });
}

void Stream::enqueueWaitEvent(SimTime ready, GpuEvent& event) {
  enqueue(ready, "wait_event",
          [this, &event](SimTime start, std::function<void(SimTime)> done) {
            event.onRecorded(
                [this, &event, start, done = std::move(done)](SimTime at) {
                  if (sanitizer_ != nullptr) {
                    sanitizer_->acquire(actor_, &event);
                  }
                  done(std::max(start, at));
                });
          });
}

}  // namespace pgasemb::gpu

// Roofline-style cost model for simulated GPU kernels and host overheads.
//
// The defaults are calibrated to the paper's testbed: an NVIDIA DGX with
// four V100-SXM2-32GB GPUs fully connected by NVLink.  Every constant can
// be overridden, and the scaling *shapes* the benchmarks reproduce depend
// on the relative magnitudes (compute vs. link bandwidth vs. per-call
// overheads), not on the absolute values.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace pgasemb::gpu {

struct CostModel {
  // --- Device compute/memory ---------------------------------------------
  /// Peak fp32 throughput (V100: 15.7 TFLOP/s).
  double peak_flops = 15.7e12;
  /// Peak HBM2 bandwidth in bytes/s (V100: 900 GB/s).
  double hbm_bandwidth = 900e9;
  /// Achievable fraction of peak HBM bandwidth for gather-heavy kernels
  /// (embedding lookups are random-access row gathers).  Calibrated to
  /// the paper's ncu observation of 57% memory throughput (§IV-B2a).
  double gather_efficiency = 0.57;
  /// Below this many gathered rows per kernel the gather cannot keep
  /// enough loads in flight to hide HBM latency, and achieved bandwidth
  /// falls off linearly (Little's law).  This is what flattens the
  /// strong-scaling computation time beyond 2 GPUs (paper §IV-B2a: the
  /// kernel is latency-limited, 38% compute / 57% memory throughput).
  double gather_saturation_rows = 16e6;
  /// Upper bound on the latency-limited penalty: a sub-saturation kernel
  /// never takes longer than full-bandwidth time plus this much per
  /// gathered row (amortized issue cost of one outstanding load).
  SimTime gather_row_issue_latency = SimTime::ps(1200);
  /// Achievable fraction of peak HBM bandwidth for streaming kernels
  /// (memsets, contiguous copies).
  double stream_efficiency = 0.82;
  /// Achieved fraction of peak HBM bandwidth for the baseline's
  /// unpack/data-rearrangement step.  The PyTorch baseline realizes the
  /// layout conversion as a permuted, strided scatter plus per-table
  /// tensor splits — far below streaming bandwidth.  Calibrated so the
  /// baseline's Sync+Unpack component matches the paper's Fig 6 ratios.
  double unpack_efficiency = 0.033;
  /// Achieved fraction of a link's raw bandwidth for NCCL collective
  /// transfers (protocol handshakes, staging copies, channel setup on
  /// the V100/NCCL-2.x path).  Calibrated so the baseline communication
  /// phase matches Fig 6 ("the communication phase takes roughly the
  /// same time as the computation phase").  PGAS direct stores use the
  /// raw link bandwidth (minus per-message headers) instead.
  double collective_protocol_efficiency = 0.175;
  /// ncu-style reporting only: scalar instructions executed per gathered
  /// element (index math, address computation, predication) — calibrated
  /// to the paper's reported 38% compute throughput.
  double compute_instructions_per_element = 53.0;
  /// Fixed per-kernel latency floor: wave quantization, tail effects and
  /// instruction issue latency. Keeps tiny kernels latency-limited, which
  /// drives the paper's strong-scaling stall beyond 2 GPUs (§IV-B).
  SimTime kernel_latency_floor = SimTime::us(6.0);

  // --- Host-side overheads -------------------------------------------------
  /// CPU cost of one cudaLaunchKernel call (driver + runtime).
  SimTime kernel_launch_overhead = SimTime::us(7.0);
  /// CPU cost of a stream/device synchronize returning after idle.
  SimTime stream_sync_overhead = SimTime::us(10.0);
  /// CPU cost of triggering one NCCL collective (enqueue + proxy wakeup).
  /// The paper calls this the "communication control path" overhead.
  SimTime collective_trigger_overhead = SimTime::us(28.0);
  /// Per-chunk bookkeeping inside the collective (proxy progression).
  SimTime collective_chunk_overhead = SimTime::us(1.5);

  /// Bytes moved per raw index by the replica-cache probe/partition
  /// kernel: one 8-byte index read plus the amortized compacted
  /// miss-list write (~4 B).  The probe is a streaming classification
  /// pass, far cheaper than the 260+ B/row gather it shrinks.
  double cache_probe_bytes_per_index = 12.0;

  // --- Derived helpers ------------------------------------------------------
  /// Time for a kernel moving `bytes` with random-access (gather)
  /// traffic over `gathered_rows` independent row reads, executing
  /// `flops` fp32 operations.  Below gather_saturation_rows the
  /// achieved bandwidth degrades linearly (latency-limited gathers).
  SimTime gatherKernelTime(double flops, double bytes,
                           double gathered_rows) const;

  /// Time for a streaming (memset/contiguous copy) kernel moving `bytes`.
  SimTime streamKernelTime(double bytes) const;

  /// Time for the baseline's strided unpack/rearrangement over `bytes`.
  SimTime unpackKernelTime(double bytes) const;

  /// Time for the replica-cache probe/partition kernel classifying
  /// `indices` raw indices into replica hits and exchange misses.
  SimTime cacheProbeTime(double indices) const;

  /// Compute and memory "throughput" fractions the simulator reports for
  /// a kernel, mirroring what ncu would show (paper §IV-B2a).
  struct Throughput {
    double compute;  ///< fraction of peak_flops actually sustained
    double memory;   ///< fraction of hbm_bandwidth actually sustained
  };
  Throughput kernelThroughput(double flops, double bytes,
                              SimTime duration) const;
};

}  // namespace pgasemb::gpu

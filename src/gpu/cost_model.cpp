#include "gpu/cost_model.hpp"

#include <algorithm>

namespace pgasemb::gpu {

SimTime CostModel::gatherKernelTime(double flops, double bytes,
                                    double gathered_rows) const {
  const double compute_s = flops / peak_flops;
  const double full_bw_s = bytes / (hbm_bandwidth * gather_efficiency);
  // Latency-limited regime: too few independent row gathers in flight to
  // saturate HBM, so achieved bandwidth scales with the working set —
  // but never worse than issuing the rows serially at the per-row issue
  // cost (which keeps truly tiny kernels at the latency floor).
  double memory_s = full_bw_s;
  if (gather_saturation_rows > 0.0 && gathered_rows > 0.0 &&
      gathered_rows < gather_saturation_rows) {
    const double degraded_s =
        full_bw_s * gather_saturation_rows / gathered_rows;
    const double issue_bound_s =
        full_bw_s + gathered_rows * gather_row_issue_latency.toSec();
    memory_s = std::min(degraded_s, issue_bound_s);
  }
  const SimTime body = SimTime::sec(std::max(compute_s, memory_s));
  return std::max(body, kernel_latency_floor);
}

SimTime CostModel::streamKernelTime(double bytes) const {
  const double memory_s = bytes / (hbm_bandwidth * stream_efficiency);
  return std::max(SimTime::sec(memory_s), kernel_latency_floor);
}

SimTime CostModel::unpackKernelTime(double bytes) const {
  const double memory_s = bytes / (hbm_bandwidth * unpack_efficiency);
  return std::max(SimTime::sec(memory_s), kernel_latency_floor);
}

SimTime CostModel::cacheProbeTime(double indices) const {
  return streamKernelTime(indices * cache_probe_bytes_per_index);
}

CostModel::Throughput CostModel::kernelThroughput(double flops, double bytes,
                                                  SimTime duration) const {
  Throughput t{0.0, 0.0};
  const double s = duration.toSec();
  if (s <= 0.0) return t;
  t.compute = std::min(1.0, flops / s / peak_flops);
  t.memory = std::min(1.0, bytes / s / hbm_bandwidth);
  return t;
}

}  // namespace pgasemb::gpu

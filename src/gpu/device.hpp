// Simulated GPU device: memory capacity accounting, optional functional
// backing storage, and the per-device compute resource kernels serialize
// on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/fifo_resource.hpp"
#include "util/expect.hpp"
#include "util/time.hpp"

namespace pgasemb::simsan {
class Checker;
class StrictEffects;
}

namespace pgasemb::gpu {

/// How kernels execute on this system.
///
/// `kFunctional` runs the real data-plane arithmetic into real buffers so
/// outputs can be checked bit-for-bit; `kTimingOnly` runs the identical
/// timing/cost path but skips per-element work and backing storage so
/// paper-scale configurations (tens of GB of simulated embedding tables)
/// fit on the host.
enum class ExecutionMode { kFunctional, kTimingOnly };

class Device;

/// A device-memory allocation measured in fp32 elements.
///
/// In functional mode the buffer is backed by host storage owned by the
/// device; in timing-only mode only the address range exists (capacity is
/// still charged, so simulated OOM behaves identically in both modes).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  bool valid() const { return device_ != nullptr; }
  Device* device() const { return device_; }
  std::int64_t offset() const { return offset_; }
  std::int64_t size() const { return size_; }
  std::int64_t sizeBytes() const { return size_ * 4; }
  bool backed() const { return backed_; }

  /// Mutable view of the backing storage. Functional mode only.
  std::span<float> span();
  std::span<const float> span() const;

 private:
  friend class Device;
  DeviceBuffer(Device* device, std::int64_t offset, std::int64_t size,
               bool backed)
      : device_(device), offset_(offset), size_(size), backed_(backed) {}

  Device* device_ = nullptr;
  std::int64_t offset_ = 0;
  std::int64_t size_ = 0;
  bool backed_ = false;
};

class Device {
 public:
  Device(int id, std::int64_t memory_capacity_bytes, ExecutionMode mode,
         simsan::Checker* sanitizer = nullptr,
         simsan::StrictEffects* strict_effects = nullptr);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  ExecutionMode mode() const { return mode_; }
  std::int64_t memoryCapacityBytes() const { return capacity_bytes_; }
  std::int64_t memoryUsedBytes() const { return used_bytes_; }
  std::int64_t memoryFreeBytes() const { return capacity_bytes_ - used_bytes_; }

  /// Allocate `n` fp32 elements; throws OutOfMemoryError past capacity.
  DeviceBuffer alloc(std::int64_t n);

  /// Allocate address space and charge capacity but never create backing
  /// storage, even in functional mode.  Used for paper-scale embedding
  /// tables with procedural contents.
  DeviceBuffer allocVirtual(std::int64_t n);

  /// Release a buffer: capacity is uncharged and the address range goes
  /// onto a coalescing free list, so later allocations reuse it
  /// (first-fit). Freeing the high-water allocation shrinks the address
  /// space (and any backing storage) back past every free block that
  /// touches the end.
  void free(DeviceBuffer& buffer);

  /// Address-space high-water mark in elements (tests/diagnostics).
  std::int64_t addressSpaceEnd() const { return next_offset_; }

  simsan::Checker* sanitizer() const { return sanitizer_; }
  simsan::StrictEffects* strictEffects() const { return strict_effects_; }

  /// The FIFO resource kernels serialize on (one kernel in flight at a
  /// time per device, as with a single busy CUDA stream).
  sim::FifoResource& computeResource() { return compute_; }

  // --- Fault injection (see fault::FaultInjector) -------------------------

  /// Install a straggler window: kernels whose compute starts inside
  /// [start, end) run `factor`x slower.  An empty window list keeps the
  /// kernel path identical to a fault-free build.
  void addSlowdownWindow(SimTime start, SimTime end, double factor);
  void clearSlowdownWindows() { slowdown_windows_.clear(); }
  bool hasSlowdownWindows() const { return !slowdown_windows_.empty(); }

  /// Compute slowdown factor at `at` (max over overlapping windows;
  /// 1.0 outside every window).
  double slowdownAt(SimTime at) const;

  /// Observer for completed kernels (name, compute start/end, final
  /// completion including any in-kernel quiet).
  using KernelSpanFn = std::function<void(
      const std::string& name, SimTime start, SimTime end,
      SimTime completion)>;
  void setKernelSpanObserver(KernelSpanFn fn) {
    kernel_span_observer_ = std::move(fn);
  }
  void notifyKernelSpan(const std::string& name, SimTime start, SimTime end,
                        SimTime completion) const {
    if (kernel_span_observer_) {
      kernel_span_observer_(name, start, end, completion);
    }
  }

  std::span<float> storageSpan(std::int64_t offset, std::int64_t size);

 private:
  /// A reusable hole in the bump-allocated address space, kept sorted by
  /// offset and coalesced with its neighbors.
  struct FreeBlock {
    std::int64_t offset;
    std::int64_t size;
  };

  struct SlowdownWindow {
    SimTime start;
    SimTime end;
    double factor;
  };

  std::int64_t takeOffset(std::int64_t n);

  int id_;
  std::int64_t capacity_bytes_;
  ExecutionMode mode_;
  simsan::Checker* sanitizer_ = nullptr;
  simsan::StrictEffects* strict_effects_ = nullptr;
  std::int64_t used_bytes_ = 0;
  std::int64_t next_offset_ = 0;
  std::int64_t alloc_seq_ = 0;
  std::vector<FreeBlock> free_list_;
  std::vector<float> storage_;
  std::vector<SlowdownWindow> slowdown_windows_;
  sim::FifoResource compute_;
  KernelSpanFn kernel_span_observer_;
};

}  // namespace pgasemb::gpu

#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/expect.hpp"
#include "util/parse.hpp"

namespace pgasemb {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::addInt(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Kind::kInt, v, v, help};
  order_.push_back(name);
}

void CliParser::addDouble(const std::string& name, double default_value,
                          const std::string& help) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%g", default_value);
  flags_[name] = Flag{Kind::kDouble, buf, buf, help};
  order_.push_back(name);
}

void CliParser::addString(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{Kind::kString, default_value, default_value, help};
  order_.push_back(name);
}

void CliParser::addBool(const std::string& name, bool default_value,
                        const std::string& help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, v, v, help};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printf("%s", usage().c_str());
      return false;
    }
    PGASEMB_CHECK(arg.rfind("--", 0) == 0, "unexpected argument: ", arg);
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      PGASEMB_CHECK(it != flags_.end(), "unknown flag: --", name);
      if (it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag enables a bool
      } else {
        PGASEMB_CHECK(i + 1 < argc, "flag --", name, " needs a value");
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    PGASEMB_CHECK(it != flags_.end(), "unknown flag: --", name);
    // Validate now, so `--gpus twelve` fails at the command line with
    // the flag named, not deep inside a sweep when the value is read.
    switch (it->second.kind) {
      case Kind::kInt:
        parseIntStrict(value, "flag --" + name);
        break;
      case Kind::kDouble:
        parseDoubleStrict(value, "flag --" + name);
        break;
      case Kind::kBool:
        parseBoolStrict(value, "flag --" + name);
        break;
      case Kind::kString:
        break;
    }
    it->second.value = value;
  }
  return true;
}

bool CliParser::parseOrExit(int argc, const char* const* argv) {
  try {
    return parse(argc, argv);
  } catch (const Error& e) {
    fprintf(stderr, "%s: %s\n(run with --help for usage)\n",
            argc > 0 ? argv[0] : "?", e.what());
    std::exit(2);
  }
}

const CliParser::Flag& CliParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  PGASEMB_CHECK(it != flags_.end(), "flag not registered: --", name);
  PGASEMB_CHECK(it->second.kind == kind, "flag --", name,
                " accessed with wrong type");
  return it->second;
}

std::int64_t CliParser::getInt(const std::string& name) const {
  return parseIntStrict(find(name, Kind::kInt).value, "flag --" + name);
}

double CliParser::getDouble(const std::string& name) const {
  return parseDoubleStrict(find(name, Kind::kDouble).value,
                           "flag --" + name);
}

std::string CliParser::getString(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliParser::getBool(const std::string& name) const {
  return parseBoolStrict(find(name, Kind::kBool).value, "flag --" + name);
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    out << "  --" << name << " (default: " << f.default_value << ")\n"
        << "      " << f.help << "\n";
  }
  return out.str();
}

}  // namespace pgasemb

// Minimal ASCII charts so the benchmark binaries can render the paper's
// figures (scaling lines, runtime-breakdown bars, comm-volume-over-time
// traces) directly in the terminal next to the CSV output.
#pragma once

#include <string>
#include <vector>

namespace pgasemb {

/// One named series of a line chart.
struct ChartSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

/// Renders one or more (x, y) series on a shared character grid with
/// y-axis labels, suitable for scaling curves and volume-over-time plots.
class AsciiLineChart {
 public:
  AsciiLineChart(std::string title, int width = 72, int height = 18);

  void addSeries(ChartSeries series);
  void setAxisLabels(std::string x_label, std::string y_label);

  /// Force y-axis bounds (otherwise auto-fit to the data, floored at 0).
  void setYRange(double y_min, double y_max);

  std::string render() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  bool has_y_range_ = false;
  double y_min_ = 0.0;
  double y_max_ = 0.0;
  std::vector<ChartSeries> series_;
};

/// Horizontal stacked-bar chart used for runtime-breakdown figures
/// (paper Figs 6 and 9): each row is a configuration, segments are the
/// named time components.
class AsciiStackedBars {
 public:
  AsciiStackedBars(std::string title, std::vector<std::string> segment_names,
                   int width = 60);

  /// `values` must have one entry per segment name.
  void addBar(std::string label, std::vector<double> values);

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> segment_names_;
  std::vector<std::pair<std::string, std::vector<double>>> bars_;
  int width_;
};

}  // namespace pgasemb

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace pgasemb {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    PGASEMB_CHECK(v > 0.0, "geomean requires strictly positive values, got ",
                  v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  PGASEMB_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range: ", p);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(const std::vector<double>& values) {
  return percentile(values, 50.0);
}

}  // namespace pgasemb

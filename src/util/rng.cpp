#include "util/rng.hpp"

#include <cmath>

namespace pgasemb {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x = splitmix64(x);
    s = x;
  }
  // Avoid the all-zero state (probability ~0, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::nextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextBounded(span));
}

double Rng::uniformDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformDouble(double lo, double hi) {
  return lo + (hi - lo) * uniformDouble();
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniformDouble(-1.0, 1.0);
    v = uniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

Rng Rng::fork() { return Rng(next() ^ 0xabcdef0123456789ULL); }

}  // namespace pgasemb

#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace pgasemb {

AsciiLineChart::AsciiLineChart(std::string title, int width, int height)
    : title_(std::move(title)), width_(width), height_(height) {
  PGASEMB_CHECK(width_ >= 16 && height_ >= 4, "chart too small");
}

void AsciiLineChart::addSeries(ChartSeries series) {
  PGASEMB_CHECK(series.x.size() == series.y.size(),
                "series x/y size mismatch");
  series_.push_back(std::move(series));
}

void AsciiLineChart::setAxisLabels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

void AsciiLineChart::setYRange(double y_min, double y_max) {
  PGASEMB_CHECK(y_max > y_min, "invalid y range");
  has_y_range_ = true;
  y_min_ = y_min;
  y_max_ = y_max;
}

std::string AsciiLineChart::render() const {
  double x_min = 0, x_max = 1, y_min = 0, y_max = 1;
  bool first = true;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (first) {
        x_min = x_max = s.x[i];
        y_min = y_max = s.y[i];
        first = false;
      } else {
        x_min = std::min(x_min, s.x[i]);
        x_max = std::max(x_max, s.x[i]);
        y_min = std::min(y_min, s.y[i]);
        y_max = std::max(y_max, s.y[i]);
      }
    }
  }
  y_min = std::min(y_min, 0.0);
  if (has_y_range_) {
    y_min = y_min_;
    y_max = y_max_;
  }
  if (x_max == x_min) x_max = x_min + 1;
  if (y_max == y_min) y_max = y_min + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_),
                                            ' '));
  auto plot = [&](double x, double y, char m) {
    const int cx = static_cast<int>(std::lround(
        (x - x_min) / (x_max - x_min) * (width_ - 1)));
    const int cy = static_cast<int>(std::lround(
        (y - y_min) / (y_max - y_min) * (height_ - 1)));
    if (cx < 0 || cx >= width_ || cy < 0 || cy >= height_) return;
    grid[static_cast<std::size_t>(height_ - 1 - cy)]
        [static_cast<std::size_t>(cx)] = m;
  };

  for (const auto& s : series_) {
    // Linear interpolation between consecutive points for a continuous line.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const int steps = width_;
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        plot(s.x[i] + t * (s.x[i + 1] - s.x[i]),
             s.y[i] + t * (s.y[i + 1] - s.y[i]), s.marker);
      }
    }
    if (s.x.size() == 1) plot(s.x[0], s.y[0], s.marker);
  }

  std::ostringstream out;
  out << title_ << "\n";
  if (!y_label_.empty()) out << "  [y: " << y_label_ << "]\n";
  char label[32];
  for (int r = 0; r < height_; ++r) {
    const double yv =
        y_max - (y_max - y_min) * static_cast<double>(r) / (height_ - 1);
    snprintf(label, sizeof(label), "%10.3f |", yv);
    out << label << grid[static_cast<std::size_t>(r)] << "\n";
  }
  out << std::string(11, ' ') << "+" << std::string(
      static_cast<std::size_t>(width_), '-') << "\n";
  snprintf(label, sizeof(label), "%.3f", x_min);
  std::string xa = label;
  snprintf(label, sizeof(label), "%.3f", x_max);
  std::string xb = label;
  out << std::string(12, ' ') << xa;
  const int pad = width_ - static_cast<int>(xa.size()) -
                  static_cast<int>(xb.size());
  out << std::string(static_cast<std::size_t>(std::max(1, pad)), ' ') << xb;
  if (!x_label_.empty()) out << "   [x: " << x_label_ << "]";
  out << "\n";
  for (const auto& s : series_) {
    out << "    " << s.marker << " = " << s.name << "\n";
  }
  return out.str();
}

AsciiStackedBars::AsciiStackedBars(std::string title,
                                   std::vector<std::string> segment_names,
                                   int width)
    : title_(std::move(title)),
      segment_names_(std::move(segment_names)),
      width_(width) {
  PGASEMB_CHECK(!segment_names_.empty(), "need at least one segment");
}

void AsciiStackedBars::addBar(std::string label, std::vector<double> values) {
  PGASEMB_CHECK(values.size() == segment_names_.size(),
                "bar segment count mismatch");
  bars_.emplace_back(std::move(label), std::move(values));
}

std::string AsciiStackedBars::render() const {
  static constexpr char kFill[] = {'#', '=', '.', '%', '+', 'o'};
  double max_total = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, values] : bars_) {
    double total = 0.0;
    for (double v : values) total += v;
    max_total = std::max(max_total, total);
    label_w = std::max(label_w, label.size());
  }
  if (max_total <= 0.0) max_total = 1.0;

  std::ostringstream out;
  out << title_ << "\n";
  for (const auto& [label, values] : bars_) {
    out << "  " << label << std::string(label_w - label.size(), ' ') << " |";
    double total = 0.0;
    for (std::size_t s = 0; s < values.size(); ++s) {
      const int cells = static_cast<int>(
          std::lround(values[s] / max_total * width_));
      out << std::string(static_cast<std::size_t>(std::max(0, cells)),
                         kFill[s % sizeof(kFill)]);
      total += values[s];
    }
    char buf[64];
    snprintf(buf, sizeof(buf), "  (%.3f)", total);
    out << buf << "\n";
  }
  out << "  legend:";
  for (std::size_t s = 0; s < segment_names_.size(); ++s) {
    out << " [" << kFill[s % sizeof(kFill)] << "] " << segment_names_[s];
  }
  out << "\n";
  return out.str();
}

}  // namespace pgasemb

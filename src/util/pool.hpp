// Recycling allocator for hot-path shared control records.
//
// Simulation hot paths create one small shared record per kernel launch
// (PGAS quiet tracking) or per collective (completion state); at
// thousands of launches per run the one-make_shared-each churn shows up
// in wall-clock profiles.  `SharedPool<T>::make` services those records
// from a pooled arena instead.
//
// Lifetime: the arena itself is shared_ptr-owned and every allocation
// holds a reference through the allocator stored in the shared_ptr
// control block, so a record captured by a still-pending simulator
// event outlives the subsystem that owns the pool.  Deallocated blocks
// return to the arena's free lists and are recycled by the next make().
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <utility>

namespace pgasemb::util {

template <typename T>
class SharedPool {
 public:
  SharedPool()
      : arena_(std::make_shared<std::pmr::unsynchronized_pool_resource>()) {}

  template <typename... Args>
  std::shared_ptr<T> make(Args&&... args) {
    return std::allocate_shared<T>(Alloc<T>{arena_},
                                   std::forward<Args>(args)...);
  }

 private:
  using Arena = std::shared_ptr<std::pmr::unsynchronized_pool_resource>;

  template <typename U>
  struct Alloc {
    using value_type = U;

    explicit Alloc(Arena a) : arena(std::move(a)) {}
    template <typename V>
    Alloc(const Alloc<V>& o) : arena(o.arena) {}  // NOLINT: rebind

    U* allocate(std::size_t n) {
      return static_cast<U*>(arena->allocate(n * sizeof(U), alignof(U)));
    }
    void deallocate(U* p, std::size_t n) {
      arena->deallocate(p, n * sizeof(U), alignof(U));
    }
    template <typename V>
    bool operator==(const Alloc<V>& o) const {
      return arena == o.arena;
    }

    Arena arena;
  };

  Arena arena_;
};

}  // namespace pgasemb::util

// Simulated-time representation.
//
// All simulator components use `SimTime`, a strongly-typed count of
// picoseconds stored in a signed 64-bit integer.  Picosecond resolution
// lets the fabric model serialize 256-byte NVLink flits (~5 ns) without
// rounding artifacts while still covering ~106 days of simulated time.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace pgasemb {

/// A point in (or duration of) simulated time, in picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ps) : ps_(ps) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  static constexpr SimTime ps(double v) {
    return SimTime(static_cast<std::int64_t>(v));
  }
  static constexpr SimTime ns(double v) {
    return SimTime(static_cast<std::int64_t>(v * 1e3));
  }
  static constexpr SimTime us(double v) {
    return SimTime(static_cast<std::int64_t>(v * 1e6));
  }
  static constexpr SimTime ms(double v) {
    return SimTime(static_cast<std::int64_t>(v * 1e9));
  }
  static constexpr SimTime sec(double v) {
    return SimTime(static_cast<std::int64_t>(v * 1e12));
  }

  constexpr std::int64_t count() const { return ps_; }
  constexpr double toNs() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double toUs() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double toMs() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double toSec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ps_ * k); }
  constexpr SimTime operator*(int k) const {
    return SimTime(ps_ * static_cast<std::int64_t>(k));
  }
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(ps_) * k));
  }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(ps_ / k); }
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(ps_) / static_cast<double>(o.ps_);
  }

  /// Human-readable rendering with an auto-selected unit ("12.34 us").
  std::string toString() const;

 private:
  std::int64_t ps_ = 0;
};

inline constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }
inline constexpr SimTime operator*(int k, SimTime t) { return t * k; }
inline constexpr SimTime operator*(double k, SimTime t) { return t * k; }

inline std::string SimTime::toString() const {
  char buf[64];
  const double abs = ps_ < 0 ? -static_cast<double>(ps_)
                             : static_cast<double>(ps_);
  if (abs < 1e3) {
    snprintf(buf, sizeof(buf), "%lld ps", static_cast<long long>(ps_));
  } else if (abs < 1e6) {
    snprintf(buf, sizeof(buf), "%.3f ns", toNs());
  } else if (abs < 1e9) {
    snprintf(buf, sizeof(buf), "%.3f us", toUs());
  } else if (abs < 1e12) {
    snprintf(buf, sizeof(buf), "%.3f ms", toMs());
  } else {
    snprintf(buf, sizeof(buf), "%.4f s", toSec());
  }
  return buf;
}

}  // namespace pgasemb

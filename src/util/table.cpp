#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace pgasemb {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PGASEMB_CHECK(!headers_.empty(), "table needs at least one column");
}

void ConsoleTable::addRow(std::vector<std::string> cells) {
  PGASEMB_CHECK(cells.size() == headers_.size(), "row arity ", cells.size(),
                " != header arity ", headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };

  emitRow(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emitRow(row);
  return out.str();
}

}  // namespace pgasemb

#include "util/csv.hpp"

#include "util/expect.hpp"

namespace pgasemb {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out_(path), arity_(headers.size()) {
  PGASEMB_CHECK(out_.good(), "cannot open CSV file for writing: ", path);
  PGASEMB_CHECK(arity_ > 0, "CSV needs at least one column");
  writeRow(headers);
}

void CsvWriter::addRow(const std::vector<std::string>& cells) {
  PGASEMB_CHECK(cells.size() == arity_, "CSV row arity ", cells.size(),
                " != header arity ", arity_);
  writeRow(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << escape(cells[i]);
  }
  out_ << "\n";
}

}  // namespace pgasemb

// Error-handling primitives for the pgasemb library.
//
// The library is exception-based: precondition violations and runtime
// failures (e.g. simulated-device OOM) throw `pgasemb::Error` with a
// formatted message.  `PGASEMB_CHECK` is used for conditions that depend
// on caller input and must stay on in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pgasemb {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a simulated device allocation exceeds its memory capacity.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Raised when user-supplied shapes/configs are inconsistent.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

namespace detail {

template <typename ErrorT, typename... Args>
[[noreturn]] void throwFormatted(const char* cond, const char* file, int line,
                                 Args&&... args) {
  std::ostringstream oss;
  oss << file << ":" << line << ": check failed: " << cond;
  if constexpr (sizeof...(Args) > 0) {
    oss << " — ";
    (oss << ... << args);
  }
  throw ErrorT(oss.str());
}

template <typename ErrorT, typename A, typename B, typename... Args>
[[noreturn]] void throwCompareFailed(const char* expr, const char* file,
                                     int line, const char* lhs_str,
                                     const A& lhs, const char* rhs_str,
                                     const B& rhs, Args&&... args) {
  std::ostringstream oss;
  oss << file << ":" << line << ": expect failed: " << expr << " (with "
      << lhs_str << " = " << lhs << ", " << rhs_str << " = " << rhs << ")";
  if constexpr (sizeof...(Args) > 0) {
    oss << " — ";
    (oss << ... << args);
  }
  throw ErrorT(oss.str());
}

}  // namespace detail
}  // namespace pgasemb

/// Always-on check; throws pgasemb::InvalidArgumentError on failure.
#define PGASEMB_CHECK(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::pgasemb::detail::throwFormatted<::pgasemb::InvalidArgumentError>( \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);         \
    }                                                                    \
  } while (0)

/// Always-on check for internal invariants; throws pgasemb::Error.
#define PGASEMB_ASSERT(cond, ...)                                \
  do {                                                           \
    if (!(cond)) {                                               \
      ::pgasemb::detail::throwFormatted<::pgasemb::Error>(       \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                            \
  } while (0)

/// Comparison checks whose failure message includes the evaluated
/// operands ("a <= b (with a = 130, b = 128)"), so bounds and OOM
/// failures from deep inside the simulator are actionable without a
/// debugger. Operands are evaluated exactly once and must be
/// ostream-printable. Throws pgasemb::InvalidArgumentError.
#define PGASEMB_EXPECT_OP(op, lhs, rhs, ...)                                 \
  do {                                                                       \
    const auto& pgasemb_lhs_ = (lhs);                                        \
    const auto& pgasemb_rhs_ = (rhs);                                        \
    if (!(pgasemb_lhs_ op pgasemb_rhs_)) {                                   \
      ::pgasemb::detail::throwCompareFailed<::pgasemb::InvalidArgumentError>( \
          #lhs " " #op " " #rhs, __FILE__, __LINE__, #lhs, pgasemb_lhs_,     \
          #rhs, pgasemb_rhs_ __VA_OPT__(, ) __VA_ARGS__);                    \
    }                                                                        \
  } while (0)

#define PGASEMB_EXPECT_EQ(lhs, rhs, ...) \
  PGASEMB_EXPECT_OP(==, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define PGASEMB_EXPECT_NE(lhs, rhs, ...) \
  PGASEMB_EXPECT_OP(!=, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define PGASEMB_EXPECT_LT(lhs, rhs, ...) \
  PGASEMB_EXPECT_OP(<, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define PGASEMB_EXPECT_LE(lhs, rhs, ...) \
  PGASEMB_EXPECT_OP(<=, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define PGASEMB_EXPECT_GT(lhs, rhs, ...) \
  PGASEMB_EXPECT_OP(>, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define PGASEMB_EXPECT_GE(lhs, rhs, ...) \
  PGASEMB_EXPECT_OP(>=, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)

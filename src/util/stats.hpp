// Small statistics helpers used by the benchmark harnesses and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace pgasemb {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Geometric mean of a set of strictly positive values.
double geomean(const std::vector<double>& values);

/// Arithmetic mean. Returns 0 for an empty vector.
double mean(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::vector<double> values, double p);

/// Median (50th percentile).
double median(const std::vector<double>& values);

}  // namespace pgasemb

#include "util/parse.hpp"

#include <cstddef>
#include <stdexcept>

#include "util/expect.hpp"

namespace pgasemb {

std::int64_t parseIntStrict(const std::string& text, const std::string& what) {
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &consumed, 10);
  } catch (const std::exception&) {
    throw InvalidArgumentError(what + " expects an integer, got: '" + text +
                               "'");
  }
  if (consumed != text.size()) {
    throw InvalidArgumentError(what + " expects an integer, got: '" + text +
                               "'");
  }
  return value;
}

double parseDoubleStrict(const std::string& text, const std::string& what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgumentError(what + " expects a number, got: '" + text +
                               "'");
  }
  if (consumed != text.size()) {
    throw InvalidArgumentError(what + " expects a number, got: '" + text +
                               "'");
  }
  return value;
}

bool parseBoolStrict(const std::string& text, const std::string& what) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw InvalidArgumentError(what + " expects a boolean, got: '" + text + "'");
}

}  // namespace pgasemb

// CSV emission for benchmark results so figures can be re-plotted offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pgasemb {

/// Writes RFC-4180-ish CSV (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  void addRow(const std::vector<std::string>& cells);

  /// Flushes and closes; called by the destructor too.
  void close();

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  static std::string escape(const std::string& field);

 private:
  void writeRow(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace pgasemb

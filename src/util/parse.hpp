// Strict full-string number parsing.
//
// std::stoll / std::stod accept prefixes ("12abc" parses as 12), which
// lets malformed command-line values pass silently.  These helpers
// require the entire string to be a valid number and throw
// InvalidArgumentError naming `what` otherwise — shared by the CLI
// parser and the fault-plan grammar.
#pragma once

#include <cstdint>
#include <string>

namespace pgasemb {

/// Parses a base-10 integer; the whole string must be consumed.
std::int64_t parseIntStrict(const std::string& text, const std::string& what);

/// Parses a floating-point number; the whole string must be consumed.
double parseDoubleStrict(const std::string& text, const std::string& what);

/// Accepts true/1/yes and false/0/no.
bool parseBoolStrict(const std::string& text, const std::string& what);

}  // namespace pgasemb

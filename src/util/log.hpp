// Leveled logging to stderr. Off (kWarn) by default so benchmark output
// stays clean; tests and debugging sessions can raise the level.
#pragma once

#include <sstream>
#include <string>

namespace pgasemb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {
void logMessage(LogLevel level, const std::string& msg);
}

template <typename... Args>
void logAt(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::logMessage(level, oss.str());
}

template <typename... Args>
void logDebug(Args&&... args) {
  logAt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void logInfo(Args&&... args) {
  logAt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void logWarn(Args&&... args) {
  logAt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void logError(Args&&... args) {
  logAt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace pgasemb

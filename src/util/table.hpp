// Console table rendering for benchmark reports.
//
// Produces the fixed-width, pipe-separated tables the benchmark binaries
// print to mirror the paper's tables (e.g. "Speedup | 2 GPUs | 3 GPUs ...").
#pragma once

#include <string>
#include <vector>

namespace pgasemb {

/// A simple left-padded text table with a header row and separator line.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render the whole table (trailing newline included).
  std::string render() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pgasemb

// Deterministic random number generation.
//
// All synthetic workloads are generated from xoshiro256** seeded through
// SplitMix64, so every experiment is reproducible from a single seed and
// independent of the platform's std::mt19937 quirks.
#pragma once

#include <cstdint>
#include <vector>

namespace pgasemb {

/// SplitMix64 — used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — the library-wide PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t nextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniformDouble();

  /// Uniform double in [lo, hi).
  double uniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached spare value).
  double normal();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(nextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Fork a statistically independent child stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pgasemb

// Tiny command-line flag parser used by the bench and example binaries.
//
// Supports `--name value` and `--name=value`; every flag has a default so
// all binaries run with no arguments (required for the bench sweep loop).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pgasemb {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Register flags before parse(). Returned index is internal.
  void addInt(const std::string& name, std::int64_t default_value,
              const std::string& help);
  void addDouble(const std::string& name, double default_value,
                 const std::string& help);
  void addString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void addBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv. On `--help`, prints usage and returns false.
  /// Throws InvalidArgumentError on unknown flags or bad values —
  /// malformed numbers are rejected here, at parse time, not when the
  /// flag is first read.
  bool parse(int argc, const char* const* argv);

  /// parse() for main(): prints the error to stderr and exits with
  /// status 2 on unknown flags or malformed values, so every binary
  /// fails fast with a pointed message instead of an uncaught-exception
  /// abort. Returns false on `--help` (caller should return 0).
  bool parseOrExit(int argc, const char* const* argv);

  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  std::string getString(const std::string& name) const;
  bool getBool(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // current value, textual
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace pgasemb

// NCCL-like collective communication library on the simulated fabric.
//
// Collectives are enqueued on each device's default stream (so they start
// only after prior kernels on that stream finish — "communication does
// not start until the embedding table forward CUDA kernel finishes",
// paper §IV) and charge the host the collective trigger overhead, which
// is the "communication control path" cost the paper attributes to the
// baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collective/request.hpp"
#include "fabric/fabric.hpp"
#include "gpu/system.hpp"
#include "util/pool.hpp"

namespace pgasemb::fault {
class FaultInjector;
}

namespace pgasemb::collective {

struct ChunkingParams {
  /// NCCL-style pipeline chunk size.
  std::int64_t chunk_bytes = 4 * 1024 * 1024;
};

class Communicator {
 public:
  Communicator(gpu::MultiGpuSystem& system, fabric::Fabric& fabric);

  int numGpus() const { return system_.numGpus(); }

  /// Attach the fault injector: every collective wire transfer gains
  /// bounded reissue of flap-dropped chunks (counted as
  /// collective_reissues).  Null (the default) keeps the direct fabric
  /// path, bit-identical to a fault-free build.  Not owned.
  void setFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Asynchronous all-to-all: `send_bytes[src][dst]` payload bytes move
  /// from src to dst (diagonal = local, free). Equivalent of
  /// torch.distributed.all_to_all_single(async_op=True) on every rank.
  /// `on_complete` (optional) runs at wait() — used by functional mode to
  /// land the real data. `streams` (optional, one per GPU) selects the
  /// streams the collective enqueues on — side comm streams let a
  /// pipelined caller overlap the next batch's compute with this
  /// collective; default = each device's default stream.
  /// `memory` (optional) declares each rank's staging buffers for simsan
  /// access logging; ignored when no checker is attached.
  Request allToAllSingle(
      const std::vector<std::vector<std::int64_t>>& send_bytes,
      std::function<void()> on_complete = nullptr,
      const ChunkingParams& chunking = {},
      const std::vector<gpu::Stream*>* streams = nullptr,
      const CollectiveMemory* memory = nullptr);

  /// Each GPU contributes `bytes_per_rank`; all GPUs end with all
  /// contributions (ring algorithm, p-1 steps).
  Request allGather(std::int64_t bytes_per_rank,
                    std::function<void()> on_complete = nullptr);

  /// Ring reduce-scatter of a `total_bytes` buffer (p-1 steps of
  /// total/p-sized transfers, reductions overlapped with transfer).
  Request reduceScatter(std::int64_t total_bytes,
                        std::function<void()> on_complete = nullptr);

  /// Ring all-reduce = reduce-scatter + all-gather, 2(p-1) steps.
  Request allReduce(std::int64_t total_bytes,
                    std::function<void()> on_complete = nullptr);

  /// Root sends `bytes` to every other GPU (flat tree).
  Request broadcast(int root, std::int64_t bytes,
                    std::function<void()> on_complete = nullptr);

  /// Every GPU sends `bytes_per_rank` to `root` (flat fan-in).
  Request gather(int root, std::int64_t bytes_per_rank,
                 std::function<void()> on_complete = nullptr);

  /// `root` sends a distinct `bytes_per_rank` block to every other GPU.
  Request scatter(int root, std::int64_t bytes_per_rank,
                  std::function<void()> on_complete = nullptr);

  /// Synchronization only: zero-byte all-to-all (costs the control path
  /// and one latency).
  Request barrier(std::function<void()> on_complete = nullptr);

  /// `rounds` rounds in which every GPU ships `bytes_per_round` to its
  /// ring successor, with a full synchronization between rounds.  This is
  /// the baseline gradient-aggregation pattern of the EMB backward pass
  /// the paper's future-work section describes ("multiple rounds of
  /// collective calls, where embeddings are shifted to the next GPU").
  Request ringShiftRounds(std::int64_t bytes_per_round, int rounds,
                          std::function<void()> on_complete = nullptr);

 private:
  /// Shared scaffolding: enqueue one op per device; `inject(src, start)`
  /// returns the time src's part of the wire traffic is fully delivered.
  Request launch(const std::string& label,
                 std::function<SimTime(int src, SimTime start)> inject,
                 std::function<void()> on_complete,
                 const std::vector<gpu::Stream*>* streams = nullptr,
                 const CollectiveMemory* memory = nullptr);

  /// simsan hook run at a collective's completion event: logs each
  /// rank's declared send-read/recv-write and applies the retire-together
  /// barrier between all participating rank ops. No-op without a checker.
  void sanitizeCompletion(detail::CollectiveState& state);

  /// NCCL protocol efficiency applied to all collective wire traffic
  /// (staging copies, handshakes) — see CostModel.
  double protoEff() const {
    return system_.costModel().collective_protocol_efficiency;
  }

  /// All collective wire traffic funnels through here: direct fabric
  /// transfer normally, reissue-on-drop when a fault injector is set.
  fabric::Fabric::Delivery xfer(int src, int dst, std::int64_t payload_bytes,
                                std::int64_t n_messages, SimTime at);

  gpu::MultiGpuSystem& system_;
  fabric::Fabric& fabric_;
  fault::FaultInjector* injector_ = nullptr;
  /// Strict-effects attribution cursor: points at the tracker of the
  /// collective whose inject function is currently executing (the sim
  /// is single-threaded; injects run synchronously inside stream ops),
  /// so xfer() can charge transfers to the right collective. Null
  /// outside inject windows and without --simsan-strict.
  simsan::StrictCollectiveTracker* strict_active_ = nullptr;
  /// Recycles the per-collective completion records (one per launch).
  util::SharedPool<detail::CollectiveState> state_pool_;
};

}  // namespace pgasemb::collective

// NCCL-like collective communication library on the simulated fabric.
//
// Collectives are enqueued on each device's default stream (so they start
// only after prior kernels on that stream finish — "communication does
// not start until the embedding table forward CUDA kernel finishes",
// paper §IV) and charge the host the collective trigger overhead, which
// is the "communication control path" cost the paper attributes to the
// baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collective/request.hpp"
#include "fabric/compression.hpp"
#include "fabric/fabric.hpp"
#include "gpu/system.hpp"
#include "util/pool.hpp"

namespace pgasemb::fault {
class FaultInjector;
}

namespace pgasemb::collective {

struct ChunkingParams {
  /// NCCL-style pipeline chunk size.
  std::int64_t chunk_bytes = 4 * 1024 * 1024;
};

/// Per-node staging buffer ranges of the hierarchical all-to-all,
/// declared by the builder so simsan can log the gather/scatter
/// interleavings.  Empty when no checker is attached.
struct HierStaging {
  int device = -1;  ///< leader GPU of the node
  std::vector<simsan::StridedRange> gather_slots;  ///< one per local rank
  std::vector<simsan::StridedRange> recv_slots;    ///< one per source node
};

/// Hierarchical all-to-all configuration (see DESIGN.md §12): members
/// stage their inter-node contributions at the node leader over NVLink,
/// the leader ships exactly one aggregated flow per destination node —
/// a one-sided bulk RDMA from a pre-staged contiguous buffer, so it runs
/// at full NIC fraction instead of the collective protocol efficiency —
/// and the destination leader scatters over NVLink.
struct HierarchicalParams {
  bool enabled = false;
  /// Optional error-bounded codec applied to inter-node wire bytes (also
  /// compresses flat-mode inter-node chunks when hierarchy is off).
  fabric::InterNodeCodec* codec = nullptr;
  /// Seeded bug for simsan certification: inject the intra-node scatter
  /// when the inter-node flow is *injected* instead of delivered, and
  /// skip the happens-before edge — the classic scatter-before-
  /// interflow-complete race.
  bool bug_scatter_before_interflow = false;
  std::vector<HierStaging> staging;  ///< per node; may be empty
  /// Standby staging on each node's failover leader (the next healthy
  /// GPU), provisioned by the builder when the fault plan can fail a
  /// leader. Empty when no leader-fail spec is armed; entries with
  /// device = -1 mean "no standby for this node".
  std::vector<HierStaging> standby_staging;
  /// Host hook replaying the staging-rebuild kernel on a node's standby
  /// leader (set by the builder; returns the kernel's completion time).
  /// Null = timing-free rebuild (counters still tick).
  std::function<SimTime(int node, int standby_device)> rebuild;
  /// Seeded bug for simsan certification: the standby rebuild's staging
  /// writes run under a forked, never-joined rogue actor and the
  /// node-wide re-quiet (the release members acquire before gathering)
  /// is skipped — member gather writes race the rebuild.
  bool bug_rebuild_without_requiet = false;
};

class Communicator {
 public:
  Communicator(gpu::MultiGpuSystem& system, fabric::Fabric& fabric);

  int numGpus() const { return system_.numGpus(); }

  /// Attach the fault injector: every collective wire transfer gains
  /// bounded reissue of flap-dropped chunks (counted as
  /// collective_reissues).  Null (the default) keeps the direct fabric
  /// path, bit-identical to a fault-free build.  Not owned.
  void setFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Arm (or disarm) the hierarchical all-to-all path and the inter-node
  /// codec.  Defaults keep every collective on the flat path,
  /// bit-identical to earlier builds.
  void setHierarchical(HierarchicalParams params) {
    hier_ = std::move(params);
  }
  const HierarchicalParams& hierarchical() const { return hier_; }

  /// Asynchronous all-to-all: `send_bytes[src][dst]` payload bytes move
  /// from src to dst (diagonal = local, free). Equivalent of
  /// torch.distributed.all_to_all_single(async_op=True) on every rank.
  /// `on_complete` (optional) runs at wait() — used by functional mode to
  /// land the real data. `streams` (optional, one per GPU) selects the
  /// streams the collective enqueues on — side comm streams let a
  /// pipelined caller overlap the next batch's compute with this
  /// collective; default = each device's default stream.
  /// `memory` (optional) declares each rank's staging buffers for simsan
  /// access logging; ignored when no checker is attached.
  Request allToAllSingle(
      const std::vector<std::vector<std::int64_t>>& send_bytes,
      std::function<void()> on_complete = nullptr,
      const ChunkingParams& chunking = {},
      const std::vector<gpu::Stream*>* streams = nullptr,
      const CollectiveMemory* memory = nullptr);

  /// Each GPU contributes `bytes_per_rank`; all GPUs end with all
  /// contributions (ring algorithm, p-1 steps).
  Request allGather(std::int64_t bytes_per_rank,
                    std::function<void()> on_complete = nullptr);

  /// Ring reduce-scatter of a `total_bytes` buffer (p-1 steps of
  /// total/p-sized transfers, reductions overlapped with transfer).
  Request reduceScatter(std::int64_t total_bytes,
                        std::function<void()> on_complete = nullptr);

  /// Ring all-reduce = reduce-scatter + all-gather, 2(p-1) steps.
  Request allReduce(std::int64_t total_bytes,
                    std::function<void()> on_complete = nullptr);

  /// Root sends `bytes` to every other GPU (flat tree).
  Request broadcast(int root, std::int64_t bytes,
                    std::function<void()> on_complete = nullptr);

  /// Every GPU sends `bytes_per_rank` to `root` (flat fan-in).
  Request gather(int root, std::int64_t bytes_per_rank,
                 std::function<void()> on_complete = nullptr);

  /// `root` sends a distinct `bytes_per_rank` block to every other GPU.
  Request scatter(int root, std::int64_t bytes_per_rank,
                  std::function<void()> on_complete = nullptr);

  /// Synchronization only: zero-byte all-to-all (costs the control path
  /// and one latency).
  Request barrier(std::function<void()> on_complete = nullptr);

  /// `rounds` rounds in which every GPU ships `bytes_per_round` to its
  /// ring successor, with a full synchronization between rounds.  This is
  /// the baseline gradient-aggregation pattern of the EMB backward pass
  /// the paper's future-work section describes ("multiple rounds of
  /// collective calls, where embeddings are shifted to the next GPU").
  Request ringShiftRounds(std::int64_t bytes_per_round, int rounds,
                          std::function<void()> on_complete = nullptr);

 private:
  /// Shared scaffolding: enqueue one op per device; `inject(src, start,
  /// state)` returns the time src's part of the wire traffic is fully
  /// delivered (state carries cross-rank hierarchical bookkeeping).
  Request launch(
      const std::string& label,
      std::function<SimTime(int src, SimTime start,
                            detail::CollectiveState& state)> inject,
      std::function<void()> on_complete,
      const std::vector<gpu::Stream*>* streams = nullptr,
      const CollectiveMemory* memory = nullptr);

  /// simsan hook run at a collective's completion event: logs each
  /// rank's declared send-read/recv-write and applies the retire-together
  /// barrier between all participating rank ops. No-op without a checker.
  void sanitizeCompletion(detail::CollectiveState& state);

  /// simsan hook for the hierarchical path: logs the staging-buffer
  /// gather writes, aggregated inter-flow read/write, and scatter reads,
  /// with release/acquire edges mirroring the real synchronization (the
  /// seeded bug drops the inter-flow→scatter edge). Runs before
  /// sanitizeCompletion's retire-together barrier.
  void sanitizeHierarchical(detail::CollectiveState& state);

  /// True when collectives should take the hierarchical path.
  bool hierActive() { return hier_.enabled && topologyNodes() > 1; }
  int topologyNodes() { return fabric_.topology().numNodes(); }

  /// Per-collective routing decisions, latched once at launch (host)
  /// time so every member agrees: the elected leader of each node
  /// (failover under a leader-fail window) and the per-node-pair
  /// degraded flags (NIC fault window on either endpoint → that pair's
  /// traffic goes flat; every healthy pair keeps the hierarchy).
  struct HierRouting {
    std::vector<int> leaders;    ///< one per node
    std::vector<char> degraded;  ///< dense src_node × dst_node matrix
  };
  HierRouting computeHierRouting(SimTime at);

  /// Failover housekeeping at collective launch: when a node's staging
  /// leadership has moved inside a new fail window, replay the staging
  /// rebuild on the standby leader (once per node × window) and publish
  /// it to the members via the node's rebuild sync key.
  void maybeRebuildStaging(SimTime at);

  /// One source rank's hierarchical all-to-all injection: flat intra
  /// flows, gather-to-leader, and — for whichever member contributes
  /// last — the aggregated inter flow plus the destination-side scatter.
  SimTime hierarchicalInject(
      int src, SimTime start,
      const std::vector<std::vector<std::int64_t>>& matrix,
      const ChunkingParams& chunking, SimTime chunk_overhead,
      const HierRouting& routing, detail::CollectiveState& state);

  /// Inject the aggregated (src_node → dst_node) inter flow at the
  /// pair's ready time, then the destination-side scatter; returns the
  /// last scatter delivery.
  SimTime injectInterAndScatter(
      int src_node, int dst_node, const detail::HierPair& pair,
      const std::vector<std::vector<std::int64_t>>& matrix,
      const ChunkingParams& chunking, SimTime chunk_overhead,
      const HierRouting& routing, detail::CollectiveState& state);

  /// NCCL protocol efficiency applied to all collective wire traffic
  /// (staging copies, handshakes) — see CostModel.
  double protoEff() const {
    return system_.costModel().collective_protocol_efficiency;
  }

  /// All flat collective wire traffic funnels through here: direct
  /// fabric transfer normally, reissue-on-drop when a fault injector is
  /// set.  Charges the strict tracker with the logical payload and
  /// compresses inter-node flows when a codec is armed.
  fabric::Fabric::Delivery xfer(int src, int dst, std::int64_t payload_bytes,
                                std::int64_t n_messages, SimTime at);

  /// Physical hop of a hierarchical transfer: same fault handling as
  /// xfer(), but no strict charge (the logical (src, dst) transfer is
  /// charged once, separately — forwarded hops would otherwise blow the
  /// leader's declared budget) and an explicit bandwidth fraction.
  fabric::Fabric::Delivery hierXfer(int src, int dst,
                                    std::int64_t payload_bytes,
                                    std::int64_t n_messages, SimTime at,
                                    double bandwidth_fraction);

  /// Chunked hierarchical hop: split `bytes` into pipeline chunks,
  /// advancing `inject_at` by the per-chunk proxy overhead; returns the
  /// last chunk's delivery.
  SimTime sendChunked(int from, int to, std::int64_t bytes,
                      SimTime& inject_at, const ChunkingParams& chunking,
                      SimTime chunk_overhead, double bandwidth_fraction);

  gpu::MultiGpuSystem& system_;
  fabric::Fabric& fabric_;
  fault::FaultInjector* injector_ = nullptr;
  HierarchicalParams hier_;
  /// Strict-effects attribution cursor: points at the tracker of the
  /// collective whose inject function is currently executing (the sim
  /// is single-threaded; injects run synchronously inside stream ops),
  /// so xfer() can charge transfers to the right collective. Null
  /// outside inject windows and without --simsan-strict.
  simsan::StrictCollectiveTracker* strict_active_ = nullptr;
  /// Recycles the per-collective completion records (one per launch).
  util::SharedPool<detail::CollectiveState> state_pool_;
  /// (node, fail-window index) pairs whose standby staging was rebuilt.
  std::vector<std::pair<int, int>> rebuilt_;
  /// Arena whose element addresses serve as the per-node rebuild sync
  /// keys (sized to the topology once, never resized — addresses must
  /// stay stable for the checker).
  std::vector<char> rebuild_sync_;
};

}  // namespace pgasemb::collective

#include "collective/request.hpp"

#include <algorithm>

#include "gpu/system.hpp"
#include "util/expect.hpp"

namespace pgasemb::collective {

bool Request::completed() const {
  PGASEMB_CHECK(valid(), "completed() on an empty request");
  return state_->completed;
}

SimTime Request::completionTime() const {
  PGASEMB_CHECK(valid() && state_->completed,
                "completionTime() before completion");
  return state_->completion;
}

SimTime Request::startTime() const {
  PGASEMB_CHECK(valid() && state_->completed, "startTime() before completion");
  return state_->first_start;
}

bool Request::timedOut() const {
  PGASEMB_CHECK(valid() && state_->completed, "timedOut() before completion");
  return state_->timed_out;
}

SimTime Request::wait(gpu::MultiGpuSystem& system, SimTime timeout) {
  PGASEMB_CHECK(valid(), "wait() on an empty request");
  PGASEMB_CHECK(timeout > SimTime::zero(), "wait timeout must be positive");
  const SimTime host = wait(system);
  state_->timed_out =
      state_->completion - state_->first_start > timeout;
  return host;
}

SimTime Request::wait(gpu::MultiGpuSystem& system) {
  PGASEMB_CHECK(valid(), "wait() on an empty request");
  system.simulator().run();
  PGASEMB_ASSERT(state_->completed, "collective did not complete on drain");
  if (auto* san = system.sanitizer()) {
    // request.wait() edge: the host has observed the whole collective.
    san->acquire(simsan::Checker::kHost, state_.get());
  }
  system.hostAdvance(SimTime::zero());  // no-op; keeps intent explicit
  const SimTime host = std::max(system.hostNow(), state_->completion) +
                       system.costModel().stream_sync_overhead;
  system.hostAdvance(host - system.hostNow());
  if (state_->on_complete) {
    auto fn = std::move(state_->on_complete);
    state_->on_complete = nullptr;
    fn();
  }
  return system.hostNow();
}

}  // namespace pgasemb::collective

// Asynchronous collective request handle.
//
// Mirrors the request object returned by
// `torch.distributed.all_to_all_single(..., async_op=True)`: the host
// continues immediately and later calls `wait()`, which blocks until the
// collective has completed on every device.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "simsan/access.hpp"
#include "simsan/checker.hpp"
#include "simsan/strict.hpp"
#include "util/time.hpp"

namespace pgasemb::gpu {
class MultiGpuSystem;
}

namespace pgasemb::collective {

/// Per-rank staging buffers of one collective, declared by the caller so
/// simsan can log what each rank's op reads and writes (NCCL semantics:
/// every rank's kernel reads its own send buffer and writes its own recv
/// buffer; cross-rank visibility comes from the collective's barrier).
struct CollectiveMemory {
  struct PerRank {
    int device = -1;  ///< -1 = no declared buffers for this rank
    simsan::StridedRange send;  ///< read by the rank's op
    simsan::StridedRange recv;  ///< written by the rank's op
  };
  std::vector<PerRank> ranks;
};

namespace detail {

/// Per-(src-node, dst-node) accumulator of a hierarchical all-to-all:
/// once every member of the source node has staged its contribution at
/// the node leader, the aggregated inter-node flow is injected.
struct HierPair {
  int contributions = 0;           ///< member injects seen so far
  SimTime ready = SimTime::zero(); ///< latest gather delivery
  std::int64_t raw_bytes = 0;      ///< aggregated (uncompressed) payload
};

/// simsan bookkeeping of one hierarchical transfer (logged at the
/// collective's completion, when all timings are known).
struct HierGatherLog {
  int src = -1;  ///< member whose contribution was staged at its leader
  SimTime at = SimTime::zero();
  SimTime delivered = SimTime::zero();
};
struct HierInterLog {
  int src_node = -1;
  int dst_node = -1;
  SimTime at = SimTime::zero();
  SimTime delivered = SimTime::zero();
};
struct HierScatterLog {
  int dst = -1;
  int src_node = -1;  ///< recv-staging slot the scatter reads
  SimTime at = SimTime::zero();
  SimTime delivered = SimTime::zero();
  bool synced = true;  ///< false only under the seeded scatter bug
};

/// Shared completion state between the stream ops of one collective.
struct CollectiveState {
  int devices_pending = 0;
  SimTime completion = SimTime::zero();
  SimTime first_start = SimTime::max();  ///< earliest device injection
  bool completed = false;
  bool timed_out = false;  ///< last wait() saw span > its timeout
  std::vector<std::function<void(SimTime)>> done_callbacks;
  std::function<void()> on_complete;  ///< functional data landing

  // --- simsan bookkeeping (unused when the checker is off) ---------------
  std::string label;
  CollectiveMemory memory;
  std::vector<simsan::ActorId> actors;  ///< per-rank op (stream) actor
  std::vector<SimTime> op_start;        ///< per-rank op start time
  /// Strict-effects tracker for this collective's transfers (null unless
  /// --simsan-strict): the communicator points its active-scope cursor
  /// here around each rank's synchronous inject call.
  std::shared_ptr<simsan::StrictCollectiveTracker> strict;

  // --- hierarchical all-to-all bookkeeping (empty in flat mode) ----------
  std::vector<HierPair> hier_pairs;  ///< dense (src_node, dst_node) matrix
  /// Elected staging leader per node, latched at collective launch so
  /// every member routes (and simsan logs) against the same election
  /// even when a leader-fail window edge crosses the collective.
  std::vector<int> hier_leaders;
  std::vector<HierGatherLog> hier_gathers;
  std::vector<HierInterLog> hier_inters;
  std::vector<HierScatterLog> hier_scatters;
  /// Arena whose element addresses serve as simsan sync keys: one per
  /// node (gather barrier) then one per (src_node, dst_node) inter flow.
  std::vector<char> hier_sync;
};

}  // namespace detail

class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::CollectiveState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  /// True once every device's part has finished (after draining the sim).
  bool completed() const;

  /// Completion time on the device timeline. Precondition: completed().
  SimTime completionTime() const;

  /// Time the earliest device began injecting traffic; with
  /// completionTime() this bounds the pure wire time of the collective.
  /// Precondition: completed().
  SimTime startTime() const;

  /// Block the host until complete: drains the simulator, advances the
  /// host clock past the completion (plus the sync overhead), and runs
  /// the functional completion callback. Returns the new host time.
  SimTime wait(gpu::MultiGpuSystem& system);

  /// As above, with a watchdog: if the collective's wall span
  /// (completion − earliest injection) exceeds `timeout`, the request is
  /// flagged `timedOut()`.  Reissue of dropped chunks happens inside the
  /// communicator's fault path, so the collective still completes — the
  /// flag tells the caller its SLO was blown (degradation policies key
  /// off it).  Returns the new host time.
  SimTime wait(gpu::MultiGpuSystem& system, SimTime timeout);

  /// True when the last wait() observed a span over its timeout.
  /// Precondition: completed().
  bool timedOut() const;

 private:
  std::shared_ptr<detail::CollectiveState> state_;
};

}  // namespace pgasemb::collective

#include "collective/communicator.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "util/expect.hpp"

namespace pgasemb::collective {

Communicator::Communicator(gpu::MultiGpuSystem& system,
                           fabric::Fabric& fabric)
    : system_(system), fabric_(fabric) {
  PGASEMB_CHECK(fabric.numGpus() >= system.numGpus(),
                "fabric topology smaller than the GPU system");
}

fabric::Fabric::Delivery Communicator::xfer(int src, int dst,
                                            std::int64_t payload_bytes,
                                            std::int64_t n_messages,
                                            SimTime at) {
  if (strict_active_ != nullptr) {
    strict_active_->transfer(src, dst, payload_bytes);
  }
  std::int64_t wire_bytes = payload_bytes;
  auto& topo = fabric_.topology();
  // Only fp32 payloads compress; control messages (e.g. barrier flags)
  // pass through.
  if (hier_.codec != nullptr && payload_bytes > 0 && payload_bytes % 4 == 0 &&
      topo.routeClass(src, dst) == fabric::LinkClass::kInter) {
    const int src_node = topo.nodeOf(src);
    const int bits = hier_.codec->aggregateBits(src_node, at);
    wire_bytes = fabric::InterNodeCodec::compressedBytes(payload_bytes, bits);
    hier_.codec->recordFlow(payload_bytes, wire_bytes);
    hier_.codec->recordEgress(src_node, at, wire_bytes);
  }
  if (injector_ != nullptr) {
    return injector_->reliableCollective(src, dst, wire_bytes, n_messages,
                                         at, protoEff());
  }
  return fabric_.transfer(src, dst, wire_bytes, n_messages, at, nullptr,
                          protoEff());
}

fabric::Fabric::Delivery Communicator::hierXfer(int src, int dst,
                                                std::int64_t payload_bytes,
                                                std::int64_t n_messages,
                                                SimTime at,
                                                double bandwidth_fraction) {
  if (injector_ != nullptr) {
    return injector_->reliableCollective(src, dst, payload_bytes, n_messages,
                                         at, bandwidth_fraction);
  }
  return fabric_.transfer(src, dst, payload_bytes, n_messages, at, nullptr,
                          bandwidth_fraction);
}

SimTime Communicator::sendChunked(int from, int to, std::int64_t bytes,
                                  SimTime& inject_at,
                                  const ChunkingParams& chunking,
                                  SimTime chunk_overhead,
                                  double bandwidth_fraction) {
  SimTime done = inject_at;
  std::int64_t remaining = bytes;
  while (remaining > 0) {
    const std::int64_t chunk = std::min(remaining, chunking.chunk_bytes);
    inject_at += chunk_overhead;  // proxy progression per chunk
    const auto d = hierXfer(from, to, chunk, /*n_messages=*/1, inject_at,
                            bandwidth_fraction);
    done = std::max(done, d.delivered);
    remaining -= chunk;
  }
  return done;
}


Request Communicator::launch(
    const std::string& label,
    std::function<SimTime(int src, SimTime start,
                          detail::CollectiveState& state)> inject,
    std::function<void()> on_complete,
    const std::vector<gpu::Stream*>* streams,
    const CollectiveMemory* memory) {
  PGASEMB_CHECK(streams == nullptr ||
                    static_cast<int>(streams->size()) == system_.numGpus(),
                "need one stream per GPU");
  const int n = system_.numGpus();
  auto state = state_pool_.make();
  state->devices_pending = n;
  state->on_complete = std::move(on_complete);
  state->done_callbacks.resize(static_cast<std::size_t>(n));
  // Pool-recycled states may carry a previous collective's hierarchical
  // bookkeeping.
  state->hier_pairs.clear();
  state->hier_leaders.clear();
  state->hier_gathers.clear();
  state->hier_inters.clear();
  state->hier_scatters.clear();
  state->hier_sync.clear();
  if (system_.sanitizer() != nullptr) {
    state->label = label;
    if (memory != nullptr) state->memory = *memory;
    state->actors.assign(static_cast<std::size_t>(n), -1);
    state->op_start.assign(static_cast<std::size_t>(n), SimTime::zero());
  }
  if (auto* strict = system_.strictEffects()) {
    // Translate the declared per-rank staging ranges into the tracker's
    // effect lists (device doubles as the rank key for collectives).
    std::vector<simsan::MemEffect> send;
    std::vector<simsan::MemEffect> recv;
    if (memory != nullptr) {
      for (const auto& mem : memory->ranks) {
        if (mem.device < 0) continue;
        send.push_back({mem.device, mem.send, simsan::AccessKind::kRead, ""});
        recv.push_back({mem.device, mem.recv, simsan::AccessKind::kWrite, ""});
      }
    }
    state->strict =
        strict->trackCollective(label, std::move(send), std::move(recv));
  }

  // Share one copy of the injection function between the per-device ops
  // — `inject` closes over the collective's payload description (e.g.
  // the all-to-all byte matrix), which would otherwise be deep-copied
  // once per device.
  auto inject_fn = std::make_shared<
      std::function<SimTime(int, SimTime, detail::CollectiveState&)>>(
      std::move(inject));

  // The CPU triggers the collective once per device (proxy enqueue).
  for (int src = 0; src < n; ++src) {
    system_.hostAdvance(system_.costModel().collective_trigger_overhead);
    gpu::Stream& stream = streams != nullptr
                              ? *(*streams)[static_cast<std::size_t>(src)]
                              : system_.stream(src);
    stream.enqueue(
        system_.hostNow(), label,
        [this, src, state, inject_fn, stream_ptr = &stream](
            SimTime start, std::function<void(SimTime)> done) {
          // Attribute this rank's transfers to this collective (injects
          // run synchronously; save/restore tolerates nesting).
          auto* const prev_strict = strict_active_;
          strict_active_ = state->strict.get();
          const SimTime local_end = (*inject_fn)(src, start, *state);
          strict_active_ = prev_strict;
          state->first_start = std::min(state->first_start, start);
          state->completion = std::max(state->completion, local_end);
          state->done_callbacks[static_cast<std::size_t>(src)] =
              std::move(done);
          if (!state->actors.empty()) {
            state->actors[static_cast<std::size_t>(src)] =
                stream_ptr->sanitizerActor();
            state->op_start[static_cast<std::size_t>(src)] = start;
          }
          if (--state->devices_pending == 0) {
            // Everything on the wire; delivery times are known. Release
            // all device ops at the global completion time (a collective
            // retires together, like an NCCL kernel waiting on its peers).
            system_.simulator().scheduleAt(state->completion, [this, state] {
              state->completed = true;
              sanitizeHierarchical(*state);
              sanitizeCompletion(*state);
              for (auto& cb : state->done_callbacks) cb(state->completion);
            });
          }
        });
  }
  return Request(state);
}

void Communicator::sanitizeCompletion(detail::CollectiveState& state) {
  auto* san = system_.sanitizer();
  if (san == nullptr || state.actors.empty()) return;
  // Each rank's op reads its send buffer and writes its recv buffer over
  // its [op start, collective completion] window.
  for (std::size_t r = 0; r < state.memory.ranks.size(); ++r) {
    if (r >= state.actors.size() || state.actors[r] < 0) continue;
    const auto& mem = state.memory.ranks[r];
    if (mem.device < 0) continue;
    san->access(state.actors[r], mem.device, mem.send,
                simsan::AccessKind::kRead, state.op_start[r],
                state.completion,
                state.label + ".send.gpu" + std::to_string(r));
    san->access(state.actors[r], mem.device, mem.recv,
                simsan::AccessKind::kWrite, state.op_start[r],
                state.completion,
                state.label + ".recv.gpu" + std::to_string(r));
  }
  // Retire-together barrier: every participant has observed every other
  // participant's op once the collective completes.
  for (const auto actor : state.actors) {
    if (actor >= 0) san->release(actor, &state);
  }
  for (const auto actor : state.actors) {
    if (actor >= 0) san->acquire(actor, &state);
  }
}

void Communicator::sanitizeHierarchical(detail::CollectiveState& state) {
  auto* san = system_.sanitizer();
  if (san == nullptr || state.actors.empty() || state.hier_sync.empty() ||
      hier_.staging.empty()) {
    return;
  }
  auto& topo = fabric_.topology();
  const int nodes = topo.numNodes();
  const auto actor_of = [&](int gpu) {
    return state.actors[static_cast<std::size_t>(gpu)];
  };
  const auto gkey = [&](int node) {
    return static_cast<void*>(&state.hier_sync[static_cast<std::size_t>(node)]);
  };
  const auto ikey = [&](int s, int d) {
    return static_cast<void*>(
        &state.hier_sync[static_cast<std::size_t>(nodes + s * nodes + d)]);
  };
  // Failover-aware staging selection: a node whose launch-time election
  // moved leadership off the topology default logs against the standby
  // leader's staging (provisioned by the builder), and every access to
  // it is ordered behind the rebuild via the node's rebuild sync key.
  const auto leader_of = [&](int node) {
    return state.hier_leaders.empty()
               ? topo.nodeLeader(node)
               : state.hier_leaders[static_cast<std::size_t>(node)];
  };
  const auto failed_over = [&](int node) {
    return leader_of(node) != topo.nodeLeader(node) &&
           static_cast<std::size_t>(node) < hier_.standby_staging.size() &&
           hier_.standby_staging[static_cast<std::size_t>(node)].device >= 0;
  };
  const auto staging_of = [&](int node) -> const HierStaging& {
    return failed_over(node)
               ? hier_.standby_staging[static_cast<std::size_t>(node)]
               : hier_.staging[static_cast<std::size_t>(node)];
  };
  const auto rkey = [&](int node) {
    return static_cast<void*>(
        &rebuild_sync_[static_cast<std::size_t>(node)]);
  };
  // Member contributions land in disjoint per-member slots of the leader
  // staging buffer.
  for (const auto& g : state.hier_gathers) {
    const int node = topo.nodeOf(g.src);
    const int local = g.src - topo.nodeLeader(node);
    const auto& stg = staging_of(node);
    if (failed_over(node) && !rebuild_sync_.empty()) {
      san->acquire(actor_of(g.src), rkey(node));
    }
    san->access(actor_of(g.src), stg.device,
                stg.gather_slots[static_cast<std::size_t>(local)],
                simsan::AccessKind::kWrite, g.at, g.delivered,
                state.label + ".hier_gather.gpu" + std::to_string(g.src));
    san->release(actor_of(g.src), gkey(node));
  }
  // The leader's aggregated inter flow reads every member slot (ordered
  // behind the gathers by the per-node sync) and writes one per-source
  // slot of the destination leader's recv staging.
  for (const auto& i : state.hier_inters) {
    const simsan::ActorId leader = actor_of(leader_of(i.src_node));
    san->acquire(leader, gkey(i.src_node));
    const auto& src_stg = staging_of(i.src_node);
    for (const auto& slot : src_stg.gather_slots) {
      san->access(leader, src_stg.device, slot, simsan::AccessKind::kRead,
                  i.at, i.delivered,
                  state.label + ".hier_inter.read.node" +
                      std::to_string(i.src_node));
    }
    const auto& dst_stg = staging_of(i.dst_node);
    if (failed_over(i.dst_node) && !rebuild_sync_.empty()) {
      // The remote write into the standby recv staging must also be
      // ordered behind the destination node's rebuild.
      san->acquire(leader, rkey(i.dst_node));
    }
    san->access(leader, dst_stg.device,
                dst_stg.recv_slots[static_cast<std::size_t>(i.src_node)],
                simsan::AccessKind::kWrite, i.at, i.delivered,
                state.label + ".hier_inter.node" + std::to_string(i.src_node) +
                    "->" + std::to_string(i.dst_node));
    san->release(leader, ikey(i.src_node, i.dst_node));
  }
  // Each destination rank scatters out of the recv slot its source node
  // filled; the acquire mirrors the inter-flow-delivered dependency the
  // timing model enforces (dropped by the seeded bug).
  for (const auto& s : state.hier_scatters) {
    const simsan::ActorId dst_actor = actor_of(s.dst);
    const int dst_node = topo.nodeOf(s.dst);
    if (s.synced) san->acquire(dst_actor, ikey(s.src_node, dst_node));
    const auto& stg = staging_of(dst_node);
    san->access(dst_actor, stg.device,
                stg.recv_slots[static_cast<std::size_t>(s.src_node)],
                simsan::AccessKind::kRead, s.at, s.delivered,
                state.label + ".hier_scatter.gpu" + std::to_string(s.dst));
  }
}

SimTime Communicator::hierarchicalInject(
    int src, SimTime start,
    const std::vector<std::vector<std::int64_t>>& matrix,
    const ChunkingParams& chunking, SimTime chunk_overhead,
    const HierRouting& routing, detail::CollectiveState& state) {
  auto& topo = fabric_.topology();
  const int n = system_.numGpus();
  const int nodes = topo.numNodes();
  const int my_node = topo.nodeOf(src);
  const int my_leader = routing.leaders[static_cast<std::size_t>(my_node)];
  const bool log = system_.sanitizer() != nullptr && !state.actors.empty();
  if (state.hier_pairs.empty()) {
    state.hier_pairs.resize(static_cast<std::size_t>(nodes) * nodes);
    state.hier_leaders = routing.leaders;
    if (log) {
      state.hier_sync.resize(static_cast<std::size_t>(nodes) +
                             static_cast<std::size_t>(nodes) * nodes);
    }
  }
  const auto row = [&](int s) -> const std::vector<std::int64_t>& {
    return matrix[static_cast<std::size_t>(s)];
  };
  const auto degraded = [&](int dst_node) {
    return routing.degraded[static_cast<std::size_t>(my_node) * nodes +
                            dst_node] != 0;
  };

  SimTime last = start;
  SimTime inject_at = start;
  // Intra-node destinations keep the flat chunked path (xfer also
  // charges the strict tracker, intra logical == physical).
  for (int dst = 0; dst < n; ++dst) {
    if (dst == src || topo.nodeOf(dst) != my_node) continue;
    std::int64_t remaining = row(src)[static_cast<std::size_t>(dst)];
    SimTime at = start;
    while (remaining > 0) {
      const std::int64_t chunk = std::min(remaining, chunking.chunk_bytes);
      at += chunk_overhead;
      const auto d = xfer(src, dst, chunk, /*n_messages=*/1, at);
      last = std::max(last, d.delivered);
      remaining -= chunk;
    }
    inject_at = std::max(inject_at, at);
  }
  // Per-pair degraded mode (DESIGN.md §13): node pairs inside a NIC
  // fault window skip the leader staging — a dropped aggregate would
  // couple the whole node into one retransmit domain — and ship their
  // flows flat, per destination GPU (xfer reissues dropped chunks,
  // charges the strict tracker and compresses inter-node chunks). Every
  // healthy pair below keeps the hierarchy.
  for (int dst_node = 0; dst_node < nodes; ++dst_node) {
    if (dst_node == my_node || !degraded(dst_node)) continue;
    const int base_d = topo.nodeLeader(dst_node);
    SimTime fallback_last = start;
    bool any = false;
    for (int dst = base_d; dst < base_d + topo.gpusPerNode(); ++dst) {
      std::int64_t remaining = row(src)[static_cast<std::size_t>(dst)];
      SimTime at = start;
      while (remaining > 0) {
        const std::int64_t chunk = std::min(remaining, chunking.chunk_bytes);
        at += chunk_overhead;
        const auto d = xfer(src, dst, chunk, /*n_messages=*/1, at);
        fallback_last = std::max(fallback_last, d.delivered);
        remaining -= chunk;
        any = true;
      }
    }
    last = std::max(last, fallback_last);
    if (any && injector_ != nullptr) {
      injector_->recordHierFallback(start, fallback_last);
    }
  }
  // Strict-effects accounting is logical: each (src, dst) pair is
  // charged its original payload exactly once, regardless of the 3-hop
  // physical route (forwarded hops would overdraw the leader's budget).
  // Degraded pairs were already charged per chunk by xfer above.
  if (strict_active_ != nullptr) {
    for (int dst = 0; dst < n; ++dst) {
      if (topo.nodeOf(dst) == my_node || degraded(topo.nodeOf(dst))) continue;
      const std::int64_t bytes = row(src)[static_cast<std::size_t>(dst)];
      if (bytes > 0) strict_active_->transfer(src, dst, bytes);
    }
  }
  // Stage this member's per-destination-node contribution at the leader.
  SimTime gather_first = inject_at;
  SimTime gather_last = inject_at;
  bool gathered = false;
  for (int dst_node = 0; dst_node < nodes; ++dst_node) {
    if (dst_node == my_node || degraded(dst_node)) continue;
    std::int64_t to_node = 0;
    for (int dst = topo.nodeLeader(dst_node);
         dst < topo.nodeLeader(dst_node) + topo.gpusPerNode(); ++dst) {
      to_node += row(src)[static_cast<std::size_t>(dst)];
    }
    SimTime delivered = inject_at;
    if (to_node > 0 && src != my_leader) {
      if (!gathered) gather_first = inject_at;
      delivered = sendChunked(src, my_leader, to_node, inject_at, chunking,
                              chunk_overhead, protoEff());
      gather_last = std::max(gather_last, delivered);
      gathered = true;
    }
    auto& pair = state.hier_pairs[static_cast<std::size_t>(my_node) * nodes +
                                  dst_node];
    ++pair.contributions;
    pair.ready = std::max(pair.ready, delivered);
    pair.raw_bytes += to_node;
    last = std::max(last, delivered);
    if (pair.contributions == topo.gpusPerNode() && pair.raw_bytes > 0) {
      last = std::max(last, injectInterAndScatter(my_node, dst_node, pair,
                                                  matrix, chunking,
                                                  chunk_overhead, routing,
                                                  state));
    }
  }
  // One staging-slot write record per member (the leader's own slot is
  // filled by its emb_hier_gather kernel before the collective; the
  // zero-cost local record keeps the slot ordered under its actor).
  if (log) {
    state.hier_gathers.push_back(
        {src, gathered ? gather_first : start,
         gathered ? gather_last : start});
  }
  return last;
}

SimTime Communicator::injectInterAndScatter(
    int src_node, int dst_node, const detail::HierPair& pair,
    const std::vector<std::vector<std::int64_t>>& matrix,
    const ChunkingParams& chunking, SimTime chunk_overhead,
    const HierRouting& routing, detail::CollectiveState& state) {
  auto& topo = fabric_.topology();
  // Elected leaders run the staging endpoints; the topology defaults
  // stay the iteration bases (node membership is fixed by layout).
  const int leader_s = routing.leaders[static_cast<std::size_t>(src_node)];
  const int leader_d = routing.leaders[static_cast<std::size_t>(dst_node)];
  const int base_s = topo.nodeLeader(src_node);
  const int base_d = topo.nodeLeader(dst_node);
  const bool log = system_.sanitizer() != nullptr && !state.actors.empty();
  // Compress the aggregated payload for the wire (the staged buffer is
  // contiguous, so the codec sees one flow per node pair).
  std::int64_t wire_bytes = pair.raw_bytes;
  if (hier_.codec != nullptr) {
    const int bits = hier_.codec->aggregateBits(src_node, pair.ready);
    wire_bytes =
        fabric::InterNodeCodec::compressedBytes(pair.raw_bytes, bits);
    hier_.codec->recordFlow(pair.raw_bytes, wire_bytes);
    hier_.codec->recordEgress(src_node, pair.ready, wire_bytes);
  }
  // The aggregated flow is a one-sided bulk RDMA out of a pre-staged
  // contiguous buffer: no per-peer protocol staging, so it rides the NIC
  // at full fraction (contrast protoEff() on the flat path).
  SimTime inject_at = pair.ready;
  const SimTime inter_done =
      sendChunked(leader_s, leader_d, wire_bytes, inject_at, chunking,
                  chunk_overhead, /*bandwidth_fraction=*/1.0);
  if (log) {
    state.hier_inters.push_back({src_node, dst_node, pair.ready, inter_done});
  }
  // Destination-side scatter over NVLink. The seeded bug fires the
  // scatter when the inter flow is injected instead of delivered.
  const bool buggy = hier_.bug_scatter_before_interflow;
  const SimTime scatter_start = buggy ? pair.ready : inter_done;
  SimTime last = inter_done;
  for (int dst = base_d; dst < base_d + topo.gpusPerNode(); ++dst) {
    std::int64_t bytes = 0;
    for (int src = base_s; src < base_s + topo.gpusPerNode(); ++src) {
      bytes += matrix[static_cast<std::size_t>(src)]
                     [static_cast<std::size_t>(dst)];
    }
    if (bytes == 0) continue;
    SimTime done = scatter_start;
    if (dst != leader_d) {
      SimTime at = scatter_start;
      done = sendChunked(leader_d, dst, bytes, at, chunking, chunk_overhead,
                         protoEff());
    }
    last = std::max(last, done);
    if (log) {
      state.hier_scatters.push_back({dst, src_node, scatter_start, done,
                                     !buggy});
    }
  }
  return last;
}

Communicator::HierRouting Communicator::computeHierRouting(SimTime at) {
  auto& topo = fabric_.topology();
  const int nodes = topo.numNodes();
  HierRouting routing;
  routing.leaders.resize(static_cast<std::size_t>(nodes));
  routing.degraded.assign(static_cast<std::size_t>(nodes) * nodes, 0);
  for (int node = 0; node < nodes; ++node) {
    routing.leaders[static_cast<std::size_t>(node)] =
        injector_ != nullptr ? injector_->leaderAt(node, at)
                             : topo.nodeLeader(node);
  }
  if (injector_ != nullptr) {
    for (int s = 0; s < nodes; ++s) {
      for (int d = 0; d < nodes; ++d) {
        if (s != d && injector_->pairDegraded(s, d, at)) {
          routing.degraded[static_cast<std::size_t>(s) * nodes + d] = 1;
        }
      }
    }
  }
  return routing;
}

void Communicator::maybeRebuildStaging(SimTime at) {
  if (injector_ == nullptr || hier_.standby_staging.empty()) return;
  const auto* domains = injector_->domains();
  if (domains == nullptr || !domains->anyNodeScoped()) return;
  auto& topo = fabric_.topology();
  const int nodes = topo.numNodes();
  if (rebuild_sync_.empty()) {
    rebuild_sync_.resize(static_cast<std::size_t>(nodes));
  }
  auto* san = system_.sanitizer();
  for (int node = 0; node < nodes; ++node) {
    const int elected = injector_->leaderAt(node, at);
    if (elected == topo.nodeLeader(node)) continue;
    if (static_cast<std::size_t>(node) >= hier_.standby_staging.size() ||
        hier_.standby_staging[static_cast<std::size_t>(node)].device < 0) {
      continue;
    }
    const int window = domains->failWindow(node, at);
    const auto key = std::make_pair(node, window);
    if (std::find(rebuilt_.begin(), rebuilt_.end(), key) != rebuilt_.end()) {
      continue;
    }
    rebuilt_.push_back(key);
    injector_->recordStagingRebuild();
    const auto& stg = hier_.standby_staging[static_cast<std::size_t>(node)];
    if (hier_.bug_rebuild_without_requiet && san != nullptr) {
      // Seeded bug: the rebuild's staging writes run under a forked,
      // never-joined rogue actor and the node-wide re-quiet (the release
      // the members' gathers acquire) is skipped — every later access to
      // the standby staging races the rebuild.
      const auto rogue = san->forkActor(
          "node" + std::to_string(node) + ".hier_rebuild.rogue",
          system_.stream(elected).sanitizerActor());
      const std::string label =
          "emb_hier_rebuild.node" + std::to_string(node);
      for (const auto& slot : stg.gather_slots) {
        if (slot.empty()) continue;
        san->access(rogue, stg.device, slot, simsan::AccessKind::kWrite, at,
                    at, label);
      }
      for (const auto& slot : stg.recv_slots) {
        if (slot.empty()) continue;
        san->access(rogue, stg.device, slot, simsan::AccessKind::kWrite, at,
                    at, label);
      }
      continue;
    }
    // Replay the staging layout on the standby leader (a real device
    // kernel with declared write effects), then publish it: members
    // acquire this key before their first gather into the standby. The
    // kernel's writes are recorded when it executes on the stream, so
    // the release must follow it in stream program order — a release at
    // (host) launch time would precede the writes and leave them
    // unordered against the members' acquires.
    if (hier_.rebuild) hier_.rebuild(node, elected);
    if (san != nullptr) {
      auto& stream = system_.stream(elected);
      const auto actor = stream.sanitizerActor();
      void* key = &rebuild_sync_[static_cast<std::size_t>(node)];
      stream.enqueue(at, "hier_rebuild.publish.node" + std::to_string(node),
                     [san, actor, key](SimTime start,
                                       std::function<void(SimTime)> done) {
                       san->release(actor, key);
                       done(start);
                     });
    }
  }
}

Request Communicator::allToAllSingle(
    const std::vector<std::vector<std::int64_t>>& send_bytes,
    std::function<void()> on_complete, const ChunkingParams& chunking,
    const std::vector<gpu::Stream*>* streams,
    const CollectiveMemory* memory) {
  const int n = system_.numGpus();
  PGASEMB_CHECK(static_cast<int>(send_bytes.size()) == n,
                "send_bytes must have one row per GPU");
  for (const auto& row : send_bytes) {
    PGASEMB_CHECK(static_cast<int>(row.size()) == n,
                  "send_bytes rows must have one entry per GPU");
  }
  PGASEMB_CHECK(chunking.chunk_bytes > 0, "chunk size must be positive");

  const SimTime chunk_overhead =
      system_.costModel().collective_chunk_overhead;
  auto matrix = send_bytes;  // keep alive in the closure
  // Routing is decided once per collective, at launch (host) time: all
  // members must agree on the elected leaders and the degraded pairs or
  // the per-pair contribution counting falls apart mid-collective.
  std::shared_ptr<HierRouting> routing;
  if (hierActive()) {
    maybeRebuildStaging(system_.hostNow());
    routing = std::make_shared<HierRouting>(
        computeHierRouting(system_.hostNow()));
  }
  return launch(
      "all_to_all_single",
      [this, matrix, chunk_overhead, chunking, routing](
          int src, SimTime start, detail::CollectiveState& state) {
        if (hierActive() && routing != nullptr) {
          return hierarchicalInject(src, start, matrix, chunking,
                                    chunk_overhead, *routing, state);
        }
        SimTime last = start;
        for (int dst = 0; dst < system_.numGpus(); ++dst) {
          if (dst == src) continue;
          std::int64_t remaining =
              matrix[static_cast<std::size_t>(src)]
                    [static_cast<std::size_t>(dst)];
          SimTime inject_at = start;
          while (remaining > 0) {
            const std::int64_t chunk =
                std::min(remaining, chunking.chunk_bytes);
            inject_at += chunk_overhead;  // proxy progression per chunk
            const auto d = xfer(src, dst, chunk, /*n_messages=*/1, inject_at);
            last = std::max(last, d.delivered);
            remaining -= chunk;
          }
        }
        return last;
      },
      std::move(on_complete), streams, memory);
}

Request Communicator::allGather(std::int64_t bytes_per_rank,
                                std::function<void()> on_complete) {
  PGASEMB_CHECK(bytes_per_rank >= 0, "negative all-gather size");
  const int n = system_.numGpus();
  // Ring: p-1 steps; in each step every rank forwards one rank's block to
  // its successor. Steps on a rank chain on their own deliveries.
  return launch(
      "all_gather",
      [this, bytes_per_rank, n](int src, SimTime start, detail::CollectiveState&) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int step = 0; step < n - 1; ++step) {
          const auto d = xfer(src, next, bytes_per_rank, 1, t);
          t = d.delivered;
        }
        return t;
      },
      std::move(on_complete));
}

Request Communicator::reduceScatter(std::int64_t total_bytes,
                                    std::function<void()> on_complete) {
  PGASEMB_CHECK(total_bytes >= 0, "negative reduce-scatter size");
  const int n = system_.numGpus();
  const std::int64_t block = n > 0 ? total_bytes / n : 0;
  return launch(
      "reduce_scatter",
      [this, block, n](int src, SimTime start, detail::CollectiveState&) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int step = 0; step < n - 1; ++step) {
          const auto d = xfer(src, next, block, 1, t);
          t = d.delivered;
        }
        return t;
      },
      std::move(on_complete));
}

Request Communicator::allReduce(std::int64_t total_bytes,
                                std::function<void()> on_complete) {
  PGASEMB_CHECK(total_bytes >= 0, "negative all-reduce size");
  const int n = system_.numGpus();
  const std::int64_t block = n > 0 ? total_bytes / n : 0;
  // Ring all-reduce: reduce-scatter then all-gather, 2(p-1) chained steps.
  return launch(
      "all_reduce",
      [this, block, n](int src, SimTime start, detail::CollectiveState&) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int step = 0; step < 2 * (n - 1); ++step) {
          const auto d = xfer(src, next, block, 1, t);
          t = d.delivered;
        }
        return t;
      },
      std::move(on_complete));
}

Request Communicator::broadcast(int root, std::int64_t bytes,
                                std::function<void()> on_complete) {
  PGASEMB_CHECK(root >= 0 && root < system_.numGpus(), "bad broadcast root");
  PGASEMB_CHECK(bytes >= 0, "negative broadcast size");
  return launch(
      "broadcast",
      [this, root, bytes](int src, SimTime start, detail::CollectiveState&) {
        if (src != root) return start;
        SimTime last = start;
        for (int dst = 0; dst < system_.numGpus(); ++dst) {
          if (dst == root) continue;
          const auto d = xfer(root, dst, bytes, 1, start);
          last = std::max(last, d.delivered);
        }
        return last;
      },
      std::move(on_complete));
}

Request Communicator::gather(int root, std::int64_t bytes_per_rank,
                             std::function<void()> on_complete) {
  PGASEMB_CHECK(root >= 0 && root < system_.numGpus(), "bad gather root");
  PGASEMB_CHECK(bytes_per_rank >= 0, "negative gather size");
  return launch(
      "gather",
      [this, root, bytes_per_rank](int src, SimTime start, detail::CollectiveState&) {
        if (src == root) return start;
        const auto d = xfer(src, root, bytes_per_rank, 1, start);
        return d.delivered;
      },
      std::move(on_complete));
}

Request Communicator::scatter(int root, std::int64_t bytes_per_rank,
                              std::function<void()> on_complete) {
  PGASEMB_CHECK(root >= 0 && root < system_.numGpus(), "bad scatter root");
  PGASEMB_CHECK(bytes_per_rank >= 0, "negative scatter size");
  return launch(
      "scatter",
      [this, root, bytes_per_rank](int src, SimTime start, detail::CollectiveState&) {
        if (src != root) return start;
        SimTime last = start;
        for (int dst = 0; dst < system_.numGpus(); ++dst) {
          if (dst == root) continue;
          const auto d = xfer(root, dst, bytes_per_rank, 1, start);
          last = std::max(last, d.delivered);
        }
        return last;
      },
      std::move(on_complete));
}

Request Communicator::barrier(std::function<void()> on_complete) {
  // Modeled as a flag exchange with the ring neighbor: one header-sized
  // message each way dominates by link latency, plus the control path.
  return launch(
      "barrier",
      [this](int src, SimTime start, detail::CollectiveState&) {
        const int next = (src + 1) % system_.numGpus();
        if (next == src) return start;
        const auto d = xfer(src, next, 1, 1, start);
        return d.delivered;
      },
      std::move(on_complete));
}

Request Communicator::ringShiftRounds(std::int64_t bytes_per_round,
                                      int rounds,
                                      std::function<void()> on_complete) {
  PGASEMB_CHECK(bytes_per_round >= 0 && rounds >= 0, "bad ring-shift spec");
  const int n = system_.numGpus();
  const SimTime round_sync =
      system_.costModel().stream_sync_overhead +
      system_.costModel().collective_trigger_overhead;
  // Each round is a separate collective call with a synchronization in
  // between (the baseline backward-pass pattern), so rounds pay the
  // control-path overhead repeatedly.
  return launch(
      "ring_shift",
      [this, bytes_per_round, rounds, n, round_sync](
          int src, SimTime start, detail::CollectiveState&) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int r = 0; r < rounds; ++r) {
          const auto d = xfer(src, next, bytes_per_round, 1, t);
          t = d.delivered + round_sync;
        }
        return t;
      },
      std::move(on_complete));
}

}  // namespace pgasemb::collective

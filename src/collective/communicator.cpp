#include "collective/communicator.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "util/expect.hpp"

namespace pgasemb::collective {

Communicator::Communicator(gpu::MultiGpuSystem& system,
                           fabric::Fabric& fabric)
    : system_(system), fabric_(fabric) {
  PGASEMB_CHECK(fabric.numGpus() >= system.numGpus(),
                "fabric topology smaller than the GPU system");
}

fabric::Fabric::Delivery Communicator::xfer(int src, int dst,
                                            std::int64_t payload_bytes,
                                            std::int64_t n_messages,
                                            SimTime at) {
  if (strict_active_ != nullptr) {
    strict_active_->transfer(src, dst, payload_bytes);
  }
  if (injector_ != nullptr) {
    return injector_->reliableCollective(src, dst, payload_bytes, n_messages,
                                         at, protoEff());
  }
  return fabric_.transfer(src, dst, payload_bytes, n_messages, at, nullptr,
                          protoEff());
}


Request Communicator::launch(
    const std::string& label,
    std::function<SimTime(int src, SimTime start)> inject,
    std::function<void()> on_complete,
    const std::vector<gpu::Stream*>* streams,
    const CollectiveMemory* memory) {
  PGASEMB_CHECK(streams == nullptr ||
                    static_cast<int>(streams->size()) == system_.numGpus(),
                "need one stream per GPU");
  const int n = system_.numGpus();
  auto state = state_pool_.make();
  state->devices_pending = n;
  state->on_complete = std::move(on_complete);
  state->done_callbacks.resize(static_cast<std::size_t>(n));
  if (system_.sanitizer() != nullptr) {
    state->label = label;
    if (memory != nullptr) state->memory = *memory;
    state->actors.assign(static_cast<std::size_t>(n), -1);
    state->op_start.assign(static_cast<std::size_t>(n), SimTime::zero());
  }
  if (auto* strict = system_.strictEffects()) {
    // Translate the declared per-rank staging ranges into the tracker's
    // effect lists (device doubles as the rank key for collectives).
    std::vector<simsan::MemEffect> send;
    std::vector<simsan::MemEffect> recv;
    if (memory != nullptr) {
      for (const auto& mem : memory->ranks) {
        if (mem.device < 0) continue;
        send.push_back({mem.device, mem.send, simsan::AccessKind::kRead, ""});
        recv.push_back({mem.device, mem.recv, simsan::AccessKind::kWrite, ""});
      }
    }
    state->strict =
        strict->trackCollective(label, std::move(send), std::move(recv));
  }

  // Share one copy of the injection function between the per-device ops
  // — `inject` closes over the collective's payload description (e.g.
  // the all-to-all byte matrix), which would otherwise be deep-copied
  // once per device.
  auto inject_fn = std::make_shared<std::function<SimTime(int, SimTime)>>(
      std::move(inject));

  // The CPU triggers the collective once per device (proxy enqueue).
  for (int src = 0; src < n; ++src) {
    system_.hostAdvance(system_.costModel().collective_trigger_overhead);
    gpu::Stream& stream = streams != nullptr
                              ? *(*streams)[static_cast<std::size_t>(src)]
                              : system_.stream(src);
    stream.enqueue(
        system_.hostNow(), label,
        [this, src, state, inject_fn, stream_ptr = &stream](
            SimTime start, std::function<void(SimTime)> done) {
          // Attribute this rank's transfers to this collective (injects
          // run synchronously; save/restore tolerates nesting).
          auto* const prev_strict = strict_active_;
          strict_active_ = state->strict.get();
          const SimTime local_end = (*inject_fn)(src, start);
          strict_active_ = prev_strict;
          state->first_start = std::min(state->first_start, start);
          state->completion = std::max(state->completion, local_end);
          state->done_callbacks[static_cast<std::size_t>(src)] =
              std::move(done);
          if (!state->actors.empty()) {
            state->actors[static_cast<std::size_t>(src)] =
                stream_ptr->sanitizerActor();
            state->op_start[static_cast<std::size_t>(src)] = start;
          }
          if (--state->devices_pending == 0) {
            // Everything on the wire; delivery times are known. Release
            // all device ops at the global completion time (a collective
            // retires together, like an NCCL kernel waiting on its peers).
            system_.simulator().scheduleAt(state->completion, [this, state] {
              state->completed = true;
              sanitizeCompletion(*state);
              for (auto& cb : state->done_callbacks) cb(state->completion);
            });
          }
        });
  }
  return Request(state);
}

void Communicator::sanitizeCompletion(detail::CollectiveState& state) {
  auto* san = system_.sanitizer();
  if (san == nullptr || state.actors.empty()) return;
  // Each rank's op reads its send buffer and writes its recv buffer over
  // its [op start, collective completion] window.
  for (std::size_t r = 0; r < state.memory.ranks.size(); ++r) {
    if (r >= state.actors.size() || state.actors[r] < 0) continue;
    const auto& mem = state.memory.ranks[r];
    if (mem.device < 0) continue;
    san->access(state.actors[r], mem.device, mem.send,
                simsan::AccessKind::kRead, state.op_start[r],
                state.completion,
                state.label + ".send.gpu" + std::to_string(r));
    san->access(state.actors[r], mem.device, mem.recv,
                simsan::AccessKind::kWrite, state.op_start[r],
                state.completion,
                state.label + ".recv.gpu" + std::to_string(r));
  }
  // Retire-together barrier: every participant has observed every other
  // participant's op once the collective completes.
  for (const auto actor : state.actors) {
    if (actor >= 0) san->release(actor, &state);
  }
  for (const auto actor : state.actors) {
    if (actor >= 0) san->acquire(actor, &state);
  }
}

Request Communicator::allToAllSingle(
    const std::vector<std::vector<std::int64_t>>& send_bytes,
    std::function<void()> on_complete, const ChunkingParams& chunking,
    const std::vector<gpu::Stream*>* streams,
    const CollectiveMemory* memory) {
  const int n = system_.numGpus();
  PGASEMB_CHECK(static_cast<int>(send_bytes.size()) == n,
                "send_bytes must have one row per GPU");
  for (const auto& row : send_bytes) {
    PGASEMB_CHECK(static_cast<int>(row.size()) == n,
                  "send_bytes rows must have one entry per GPU");
  }
  PGASEMB_CHECK(chunking.chunk_bytes > 0, "chunk size must be positive");

  const SimTime chunk_overhead =
      system_.costModel().collective_chunk_overhead;
  auto matrix = send_bytes;  // keep alive in the closure
  return launch(
      "all_to_all_single",
      [this, matrix, chunk_overhead, chunking](int src, SimTime start) {
        SimTime last = start;
        for (int dst = 0; dst < system_.numGpus(); ++dst) {
          if (dst == src) continue;
          std::int64_t remaining =
              matrix[static_cast<std::size_t>(src)]
                    [static_cast<std::size_t>(dst)];
          SimTime inject_at = start;
          while (remaining > 0) {
            const std::int64_t chunk =
                std::min(remaining, chunking.chunk_bytes);
            inject_at += chunk_overhead;  // proxy progression per chunk
            const auto d = xfer(src, dst, chunk, /*n_messages=*/1, inject_at);
            last = std::max(last, d.delivered);
            remaining -= chunk;
          }
        }
        return last;
      },
      std::move(on_complete), streams, memory);
}

Request Communicator::allGather(std::int64_t bytes_per_rank,
                                std::function<void()> on_complete) {
  PGASEMB_CHECK(bytes_per_rank >= 0, "negative all-gather size");
  const int n = system_.numGpus();
  // Ring: p-1 steps; in each step every rank forwards one rank's block to
  // its successor. Steps on a rank chain on their own deliveries.
  return launch(
      "all_gather",
      [this, bytes_per_rank, n](int src, SimTime start) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int step = 0; step < n - 1; ++step) {
          const auto d = xfer(src, next, bytes_per_rank, 1, t);
          t = d.delivered;
        }
        return t;
      },
      std::move(on_complete));
}

Request Communicator::reduceScatter(std::int64_t total_bytes,
                                    std::function<void()> on_complete) {
  PGASEMB_CHECK(total_bytes >= 0, "negative reduce-scatter size");
  const int n = system_.numGpus();
  const std::int64_t block = n > 0 ? total_bytes / n : 0;
  return launch(
      "reduce_scatter",
      [this, block, n](int src, SimTime start) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int step = 0; step < n - 1; ++step) {
          const auto d = xfer(src, next, block, 1, t);
          t = d.delivered;
        }
        return t;
      },
      std::move(on_complete));
}

Request Communicator::allReduce(std::int64_t total_bytes,
                                std::function<void()> on_complete) {
  PGASEMB_CHECK(total_bytes >= 0, "negative all-reduce size");
  const int n = system_.numGpus();
  const std::int64_t block = n > 0 ? total_bytes / n : 0;
  // Ring all-reduce: reduce-scatter then all-gather, 2(p-1) chained steps.
  return launch(
      "all_reduce",
      [this, block, n](int src, SimTime start) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int step = 0; step < 2 * (n - 1); ++step) {
          const auto d = xfer(src, next, block, 1, t);
          t = d.delivered;
        }
        return t;
      },
      std::move(on_complete));
}

Request Communicator::broadcast(int root, std::int64_t bytes,
                                std::function<void()> on_complete) {
  PGASEMB_CHECK(root >= 0 && root < system_.numGpus(), "bad broadcast root");
  PGASEMB_CHECK(bytes >= 0, "negative broadcast size");
  return launch(
      "broadcast",
      [this, root, bytes](int src, SimTime start) {
        if (src != root) return start;
        SimTime last = start;
        for (int dst = 0; dst < system_.numGpus(); ++dst) {
          if (dst == root) continue;
          const auto d = xfer(root, dst, bytes, 1, start);
          last = std::max(last, d.delivered);
        }
        return last;
      },
      std::move(on_complete));
}

Request Communicator::gather(int root, std::int64_t bytes_per_rank,
                             std::function<void()> on_complete) {
  PGASEMB_CHECK(root >= 0 && root < system_.numGpus(), "bad gather root");
  PGASEMB_CHECK(bytes_per_rank >= 0, "negative gather size");
  return launch(
      "gather",
      [this, root, bytes_per_rank](int src, SimTime start) {
        if (src == root) return start;
        const auto d = xfer(src, root, bytes_per_rank, 1, start);
        return d.delivered;
      },
      std::move(on_complete));
}

Request Communicator::scatter(int root, std::int64_t bytes_per_rank,
                              std::function<void()> on_complete) {
  PGASEMB_CHECK(root >= 0 && root < system_.numGpus(), "bad scatter root");
  PGASEMB_CHECK(bytes_per_rank >= 0, "negative scatter size");
  return launch(
      "scatter",
      [this, root, bytes_per_rank](int src, SimTime start) {
        if (src != root) return start;
        SimTime last = start;
        for (int dst = 0; dst < system_.numGpus(); ++dst) {
          if (dst == root) continue;
          const auto d = xfer(root, dst, bytes_per_rank, 1, start);
          last = std::max(last, d.delivered);
        }
        return last;
      },
      std::move(on_complete));
}

Request Communicator::barrier(std::function<void()> on_complete) {
  // Modeled as a flag exchange with the ring neighbor: one header-sized
  // message each way dominates by link latency, plus the control path.
  return launch(
      "barrier",
      [this](int src, SimTime start) {
        const int next = (src + 1) % system_.numGpus();
        if (next == src) return start;
        const auto d = xfer(src, next, 1, 1, start);
        return d.delivered;
      },
      std::move(on_complete));
}

Request Communicator::ringShiftRounds(std::int64_t bytes_per_round,
                                      int rounds,
                                      std::function<void()> on_complete) {
  PGASEMB_CHECK(bytes_per_round >= 0 && rounds >= 0, "bad ring-shift spec");
  const int n = system_.numGpus();
  const SimTime round_sync =
      system_.costModel().stream_sync_overhead +
      system_.costModel().collective_trigger_overhead;
  // Each round is a separate collective call with a synchronization in
  // between (the baseline backward-pass pattern), so rounds pay the
  // control-path overhead repeatedly.
  return launch(
      "ring_shift",
      [this, bytes_per_round, rounds, n, round_sync](int src,
                                                     SimTime start) {
        const int next = (src + 1) % n;
        SimTime t = start;
        for (int r = 0; r < rounds; ++r) {
          const auto d = xfer(src, next, bytes_per_round, 1, t);
          t = d.delivered + round_sync;
        }
        return t;
      },
      std::move(on_complete));
}

}  // namespace pgasemb::collective

// The PGAS fused retriever — the paper's contribution (§III).
//
// One kernel per GPU both computes the pooled embeddings and writes each
// one to its final location the moment it is produced: locally for the
// GPU's own mini-batch, with a one-sided remote write otherwise.  Remote
// traffic is therefore spread across the whole compute window (overlap +
// smooth network usage) and there is no send/recv staging and no unpack.
// The kernel completes at quiet: when compute is done and the last
// remote write has been delivered.
#pragma once

#include <vector>

#include "core/retriever.hpp"
#include "emb/replica_cache.hpp"
#include "pgas/runtime.hpp"

namespace pgasemb::core {

struct PgasRetrieverOptions {
  /// Kernel-timeline subdivisions for message injection; higher = finer
  /// overlap granularity (and finer Figs 7/10 traces).
  int slices = 128;
  /// Optional in-kernel communication counter (paper §IV-A2b).
  pgas::CommCounter* counter = nullptr;
  /// Optional async aggregator (paper §V future work / multi-node).
  const pgas::AggregatorParams* aggregator = nullptr;
  /// Optional hot-row replica cache: the fused kernel computes and puts
  /// misses only (fewer messages AND fewer headers, shorter quiet);
  /// serve kernels pool the hit bags locally after the exchange.
  emb::ReplicaCache* cache = nullptr;
  /// Optional inter-node codec: Functional mode really encodes/decodes
  /// values put across nodes, so the landed outputs carry the measured
  /// compression error. Requires gpus_per_node > 0.
  fabric::InterNodeCodec* codec = nullptr;
  int gpus_per_node = 0;
};

class PgasFusedRetriever final : public EmbeddingRetriever {
 public:
  PgasFusedRetriever(emb::ShardedEmbeddingLayer& layer,
                     pgas::PgasRuntime& runtime,
                     PgasRetrieverOptions options = {});
  ~PgasFusedRetriever() override;

  std::string name() const override { return "pgas_fused"; }
  BatchTiming runBatch(const emb::SparseBatch& batch) override;
  gpu::DeviceBuffer& output(int gpu) override;

 private:
  emb::ShardedEmbeddingLayer& layer_;
  pgas::PgasRuntime& runtime_;
  PgasRetrieverOptions options_;
  pgas::SymmetricBuffer outputs_sym_;
  std::vector<gpu::DeviceBuffer> outputs_view_;  // per-GPU handles
};

}  // namespace pgasemb::core

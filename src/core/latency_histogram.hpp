// Fixed-layout log-spaced latency histogram for the serving path.
//
// Per-query latencies span four-plus orders of magnitude under load, so
// tail percentiles need log-spaced bins: 12 bins per decade over
// [1 us, 100 s) plus underflow/overflow, a fixed layout every run
// shares. Exact count/min/max/sum ride along, so the mean is exact and
// interpolated percentiles are clamped to observed extremes. All state
// is integral or derived from integral SimTime, so same-seed runs
// produce byte-identical histograms.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace pgasemb::core {

class LatencyHistogram {
 public:
  /// Bin layout: bin 0 = underflow (< 1 us), bins 1..96 log-spaced with
  /// 12 per decade over [1 us, 100 s), bin 97 = overflow.
  static constexpr int kBinsPerDecade = 12;
  static constexpr int kDecades = 8;
  static constexpr double kMinMs = 1e-3;  ///< 1 us
  static constexpr std::size_t kNumBins =
      static_cast<std::size_t>(kBinsPerDecade) * kDecades + 2;

  LatencyHistogram();

  void add(SimTime latency);
  void merge(const LatencyHistogram& other);

  std::int64_t count() const { return count_; }
  SimTime min() const { return count_ ? min_ : SimTime::zero(); }
  SimTime max() const { return count_ ? max_ : SimTime::zero(); }
  SimTime sum() const { return sum_; }
  double meanMs() const;

  /// Linear-interpolated percentile (p in [0, 100]) in milliseconds,
  /// clamped to the exact observed [min, max]. Returns 0 when empty.
  double percentileMs(double p) const;

  std::size_t numBins() const { return bins_.size(); }
  std::int64_t binCount(std::size_t bin) const;
  /// Lower/upper edge of a bin in milliseconds (underflow starts at 0,
  /// overflow is open-ended and reports the observed max).
  double binLowMs(std::size_t bin) const;
  double binHighMs(std::size_t bin) const;

  bool operator==(const LatencyHistogram& other) const = default;

 private:
  std::size_t binIndex(double ms) const;

  std::vector<std::int64_t> bins_;
  std::int64_t count_ = 0;
  SimTime min_ = SimTime::max();
  SimTime max_ = SimTime::zero();
  SimTime sum_ = SimTime::zero();
};

}  // namespace pgasemb::core

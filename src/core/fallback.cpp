#include "core/fallback.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pgasemb::core {

SloTracker::SloTracker(const FallbackPolicy& policy) : policy_(policy) {
  if (!policy_.enabled()) return;
  PGASEMB_CHECK(policy_.patience >= 1, "fallback patience must be >= 1");
  PGASEMB_CHECK(!policy_.fallback_to.empty(),
                "fallback policy needs a target retriever");
  if (policy_.slo_ms > 0.0) {
    slo_ = SimTime::ms(policy_.slo_ms);
    calibrated_ = true;
  } else {
    PGASEMB_CHECK(policy_.slo_factor >= 1.0,
                  "slo_factor below 1 would flag the calibration batch");
  }
}

bool SloTracker::record(SimTime batch_total) {
  if (!policy_.enabled() || fired_) return false;
  if (!calibrated_) {
    // First batch defines "healthy"; faults that start mid-run show up
    // as multiples of it.
    slo_ = batch_total * policy_.slo_factor;
    calibrated_ = true;
    return false;
  }
  if (batch_total > slo_) {
    ++consecutive_over_;
  } else {
    consecutive_over_ = 0;
  }
  if (consecutive_over_ >= policy_.patience) {
    fired_ = true;
    return true;
  }
  return false;
}

SimTime SloTracker::windowP95() const {
  if (!window_full_) return SimTime::zero();
  // Nearest-rank p95 over the window (small — default 64 entries).
  std::vector<SimTime> sorted = window_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(0.95 * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

bool SloTracker::recordQuery(SimTime latency) {
  if (!policy_.enabled() || fired_) return false;
  if (window_.empty()) {
    PGASEMB_CHECK(policy_.query_window >= 1,
                  "fallback query window must be >= 1");
    window_.assign(static_cast<std::size_t>(policy_.query_window),
                   SimTime::zero());
    window_next_ = 0;
    window_full_ = false;
  }
  window_[window_next_] = latency;
  window_next_ = (window_next_ + 1) % window_.size();
  const bool just_filled = !window_full_ && window_next_ == 0;
  if (just_filled) window_full_ = true;
  if (!window_full_) return false;
  const SimTime p95 = windowP95();
  if (!calibrated_) {
    // The first full window defines the healthy tail; degradation that
    // develops under load shows up as multiples of it.
    slo_ = p95 * policy_.slo_factor;
    calibrated_ = true;
    return false;
  }
  if (p95 > slo_) {
    ++consecutive_over_;
  } else {
    consecutive_over_ = 0;
  }
  if (consecutive_over_ >= policy_.patience) {
    fired_ = true;
    return true;
  }
  return false;
}

}  // namespace pgasemb::core

#include "core/fallback.hpp"

#include "util/expect.hpp"

namespace pgasemb::core {

SloTracker::SloTracker(const FallbackPolicy& policy) : policy_(policy) {
  if (!policy_.enabled()) return;
  PGASEMB_CHECK(policy_.patience >= 1, "fallback patience must be >= 1");
  PGASEMB_CHECK(!policy_.fallback_to.empty(),
                "fallback policy needs a target retriever");
  if (policy_.slo_ms > 0.0) {
    slo_ = SimTime::ms(policy_.slo_ms);
    calibrated_ = true;
  } else {
    PGASEMB_CHECK(policy_.slo_factor >= 1.0,
                  "slo_factor below 1 would flag the calibration batch");
  }
}

bool SloTracker::record(SimTime batch_total) {
  if (!policy_.enabled() || fired_) return false;
  if (!calibrated_) {
    // First batch defines "healthy"; faults that start mid-run show up
    // as multiples of it.
    slo_ = batch_total * policy_.slo_factor;
    calibrated_ = true;
    return false;
  }
  if (batch_total > slo_) {
    ++consecutive_over_;
  } else {
    consecutive_over_ = 0;
  }
  if (consecutive_over_ >= policy_.patience) {
    fired_ = true;
    return true;
  }
  return false;
}

}  // namespace pgasemb::core

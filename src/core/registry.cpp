#include "core/registry.hpp"

#include <sstream>

#include "util/expect.hpp"

// Linker anchors exported by the builtin strategies' translation units
// (see RetrieverRegistrar in registry.hpp). Referencing them here pulls
// those objects — and their self-registrations — into any binary that
// uses the registry.
extern "C" {
int pgasemb_retriever_link_nccl_collective();
int pgasemb_retriever_link_pgas_fused();
int pgasemb_retriever_link_nccl_pipelined();
}

namespace pgasemb::core {

RetrieverRegistry& RetrieverRegistry::instance() {
  static RetrieverRegistry registry;
  static const int force_link = pgasemb_retriever_link_nccl_collective() +
                                pgasemb_retriever_link_pgas_fused() +
                                pgasemb_retriever_link_nccl_pipelined();
  (void)force_link;
  return registry;
}

void RetrieverRegistry::add(const std::string& name, Factory factory,
                            const std::vector<std::string>& aliases) {
  PGASEMB_CHECK(!name.empty(), "retriever name must be non-empty");
  factories_[name] = std::move(factory);
  for (const auto& alias : aliases) {
    aliases_[alias] = name;
  }
}

bool RetrieverRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0 || aliases_.count(name) > 0;
}

std::unique_ptr<EmbeddingRetriever> RetrieverRegistry::create(
    const std::string& name, const SystemContext& ctx) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    auto alias = aliases_.find(name);
    if (alias != aliases_.end()) it = factories_.find(alias->second);
  }
  if (it == factories_.end()) {
    std::ostringstream msg;
    msg << "unknown retriever '" << name << "'; registered:";
    for (const auto& known : names()) msg << " " << known;
    throw InvalidArgumentError(msg.str());
  }
  return it->second(ctx);
}

std::vector<std::string> RetrieverRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace pgasemb::core

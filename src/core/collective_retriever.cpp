#include "core/collective_retriever.hpp"

#include <algorithm>
#include <optional>

#include "core/registry.hpp"
#include "emb/lookup_kernel.hpp"
#include "emb/staging_kernel.hpp"
#include "emb/unpack_kernel.hpp"
#include "fault/injector.hpp"
#include "util/expect.hpp"

namespace pgasemb::core {

CollectiveRetriever::CollectiveRetriever(emb::ShardedEmbeddingLayer& layer,
                                         collective::Communicator& comm,
                                         emb::ReplicaCache* cache,
                                         CollectiveMultiNodeOptions multinode)
    : layer_(layer), comm_(comm), cache_(cache), multinode_(multinode) {
  PGASEMB_CHECK(layer.sharding().scheme() == emb::ShardingScheme::kTableWise,
                "the collective baseline implements table-wise sharding "
                "(the paper's scheme)");
  auto& system = layer.system();
  const auto& sharding = layer.sharding();
  const int p = system.numGpus();
  const int dim = layer.dim();
  for (int g = 0; g < p; ++g) {
    auto& dev = system.device(g);
    outputs_.push_back(dev.alloc(sharding.outputElements(g, dim)));
    if (p > 1) {
      send_buffers_.push_back(
          dev.alloc(emb::sendBufferElements(sharding, g, dim)));
      recv_buffers_.push_back(
          dev.alloc(emb::recvBufferElements(sharding, g, dim)));
    }
  }
}

CollectiveRetriever::~CollectiveRetriever() {
  auto& system = layer_.system();
  for (int g = system.numGpus() - 1; g >= 0; --g) {
    if (!recv_buffers_.empty()) {
      system.device(g).free(recv_buffers_[static_cast<std::size_t>(g)]);
      system.device(g).free(send_buffers_[static_cast<std::size_t>(g)]);
    }
    system.device(g).free(outputs_[static_cast<std::size_t>(g)]);
  }
}

gpu::DeviceBuffer& CollectiveRetriever::output(int gpu) {
  PGASEMB_CHECK(gpu >= 0 && gpu < static_cast<int>(outputs_.size()),
                "bad gpu id ", gpu);
  return outputs_[static_cast<std::size_t>(gpu)];
}

void CollectiveRetriever::copyAllToAllPayload() {
  // Functional landing of the all-to-all: contiguous region per (src,
  // dst) pair, including the device-local self chunk.
  const auto& sh = layer_.sharding();
  const int p = sh.numGpus();
  const int dim = layer_.dim();
  for (int src = 0; src < p; ++src) {
    const auto send = send_buffers_[static_cast<std::size_t>(src)].span();
    const std::int64_t t_local = sh.tablesOn(src);
    for (int dst = 0; dst < p; ++dst) {
      auto recv = recv_buffers_[static_cast<std::size_t>(dst)].span();
      const std::int64_t len = t_local * sh.miniBatchSize(dst) * dim;
      const std::int64_t send_base =
          sh.miniBatchBegin(dst) * t_local * dim;
      const std::int64_t recv_base =
          sh.firstTableOn(src) * sh.miniBatchSize(dst) * dim;
      const bool compress =
          multinode_.codec != nullptr && multinode_.gpus_per_node > 0 &&
          src / multinode_.gpus_per_node != dst / multinode_.gpus_per_node;
      if (!compress) {
        std::copy_n(send.begin() + send_base, len,
                    recv.begin() + recv_base);
        continue;
      }
      // Cross-node chunks really pass through the codec (the region is
      // [local table][dst-local sample][col], so the table is recovered
      // from the position), landing the measured quantization error.
      const std::int64_t per_table = sh.miniBatchSize(dst) * dim;
      for (std::int64_t lt = 0; lt < t_local; ++lt) {
        const std::int64_t table = sh.firstTableOn(src) + lt;
        for (std::int64_t i = 0; i < per_table; ++i) {
          recv[static_cast<std::size_t>(recv_base + lt * per_table + i)] =
              multinode_.codec->transcode(
                  table,
                  send[static_cast<std::size_t>(send_base + lt * per_table +
                                                i)]);
        }
      }
    }
  }
}

BatchTiming CollectiveRetriever::runBatch(const emb::SparseBatch& batch) {
  auto& system = layer_.system();
  const auto& sharding = layer_.sharding();
  const int p = system.numGpus();
  const bool functional =
      system.mode() == gpu::ExecutionMode::kFunctional &&
      batch.materialized();
  BatchTiming timing;
  const SimTime t0 = system.hostNow();
  auto* san = system.sanitizer();
  const auto wholeBuffer = [](const gpu::DeviceBuffer& buf) {
    return simsan::StridedRange::contiguous(buf.offset(), buf.size());
  };

  if (p == 1) {
    // Single GPU: no layout conversion — the lookup writes the final
    // tensor directly (as PyTorch does without a process group). The
    // builder declares the kernel's write effect from the output view.
    auto fused =
        emb::buildFusedLookupKernel(layer_, batch, 0, &outputs_, /*slices=*/1);
    system.launchKernel(0, std::move(fused.desc));
    const SimTime t1 = system.syncAll();
    timing.compute_phase = t1 - t0;
    timing.total = t1 - t0;
    return timing;
  }

  // Optional replica-cache filter: hit bags are pooled from the local
  // replica by a serve kernel; only the misses are looked up, shipped
  // and unpacked.  runBatch() drains the timeline before returning, so
  // a per-batch filter is safe for the kernels to capture.
  std::optional<emb::CacheFilter> filter;
  if (cache_ != nullptr) {
    filter.emplace(layer_, batch, *cache_);
    timing.cache_lookups = filter->lookups();
    timing.cache_hits = filter->hits();
    timing.cache_saved_bytes = filter->savedWireBytes();
  }
  const emb::CacheFilter* f = filter ? &*filter : nullptr;

  // Phase 1: (probe +) lookup kernels into send buffers, plus the
  // replica serve kernel — all on the default stream (compute).
  send_matrix_.resize(static_cast<std::size_t>(p));
  for (auto& row : send_matrix_) {
    row.assign(static_cast<std::size_t>(p), 0);
  }
  auto& matrix = send_matrix_;
  for (int g = 0; g < p; ++g) {
    if (f != nullptr) {
      system.launchKernel(g, emb::buildCacheProbeKernel(layer_, *f, g));
    }
    auto kernel = emb::buildBaselineLookupKernel(
        layer_, batch, g, &send_buffers_[static_cast<std::size_t>(g)], f);
    for (int d = 0; d < p; ++d) {
      if (d != g) {
        matrix[static_cast<std::size_t>(g)][static_cast<std::size_t>(d)] =
            kernel.send_bytes[static_cast<std::size_t>(d)];
      }
    }
    system.launchKernel(g, std::move(kernel.desc));
    if (f != nullptr) {
      auto serve = emb::buildCacheServeKernel(
          layer_, batch, *f, g, &cache_->replica(g),
          &outputs_[static_cast<std::size_t>(g)]);
      system.launchKernel(g, std::move(serve));
    }
  }
  // Hierarchical all-to-all: each leader packs its own inter-node
  // contribution into the node's gather staging before the exchange
  // (other members' contributions arrive over NVLink inside the
  // collective itself).
  const bool hier = multinode_.hierarchical &&
                    multinode_.hier_staging != nullptr &&
                    multinode_.gpus_per_node > 0;
  // Failover-aware staging selection: when a leader-fail window has
  // moved a node's staging leadership, the staging kernels run on the
  // elected (standby) leader against the standby staging buffer.
  const auto electedStaging =
      [&](std::size_t n) -> const collective::HierStaging* {
    const collective::HierStaging* stg =
        &(*multinode_.hier_staging)[n];
    if (multinode_.injector != nullptr &&
        multinode_.hier_standby != nullptr &&
        n < multinode_.hier_standby->size()) {
      const int elected = multinode_.injector->leaderAt(
          static_cast<int>(n), system.hostNow());
      const auto& standby = (*multinode_.hier_standby)[n];
      if (elected != stg->device && standby.device == elected) {
        stg = &standby;
      }
    }
    return stg;
  };
  if (hier) {
    const auto& staging = *multinode_.hier_staging;
    for (std::size_t n = 0; n < staging.size(); ++n) {
      const auto* stg = electedStaging(n);
      const int leader = stg->device;
      std::int64_t bytes = 0;
      for (int d = 0; d < p; ++d) {
        if (d / multinode_.gpus_per_node == static_cast<int>(n)) continue;
        bytes += matrix[static_cast<std::size_t>(leader)]
                       [static_cast<std::size_t>(d)];
      }
      // The leader packs its own contribution into its local-rank slot
      // (slot 0 for the default leader, the standby's rank otherwise).
      const std::size_t local = static_cast<std::size_t>(
          leader - static_cast<int>(n) * multinode_.gpus_per_node);
      system.launchKernel(
          leader, emb::buildLeaderGatherKernel(
                      layer_, static_cast<int>(n), leader,
                      local < stg->gather_slots.size()
                          ? stg->gather_slots[local]
                          : simsan::StridedRange{},
                      bytes));
    }
  }
  const SimTime t1 = system.syncAll();
  timing.compute_phase = t1 - t0;

  // Phase 2: all_to_all_single(async_op=True) + wait().
  collective::CollectiveMemory a2a_memory;
  if (san != nullptr) {
    a2a_memory.ranks.resize(static_cast<std::size_t>(p));
    for (int g = 0; g < p; ++g) {
      auto& rank = a2a_memory.ranks[static_cast<std::size_t>(g)];
      rank.device = g;
      rank.send = wholeBuffer(send_buffers_[static_cast<std::size_t>(g)]);
      rank.recv = wholeBuffer(recv_buffers_[static_cast<std::size_t>(g)]);
    }
  }
  auto request = comm_.allToAllSingle(
      matrix, functional ? [this] { copyAllToAllPayload(); }
                         : std::function<void()>(),
      {}, nullptr, san != nullptr ? &a2a_memory : nullptr);
  const SimTime t2 = request.wait(system);
  timing.comm_phase = t2 - t1;
  timing.wire_time = request.completionTime() - request.startTime();

  // Hierarchical: each destination leader demultiplexes the landed
  // per-source-node recv staging before the ordinary unpack runs.
  if (hier) {
    const auto& staging = *multinode_.hier_staging;
    for (std::size_t n = 0; n < staging.size(); ++n) {
      const auto* stg = electedStaging(n);
      const int leader = stg->device;
      std::int64_t bytes = 0;
      for (int s = 0; s < p; ++s) {
        if (s / multinode_.gpus_per_node == static_cast<int>(n)) continue;
        for (int d = 0; d < multinode_.gpus_per_node; ++d) {
          bytes += matrix[static_cast<std::size_t>(s)][static_cast<std::size_t>(
              static_cast<int>(n) * multinode_.gpus_per_node + d)];
        }
      }
      simsan::StridedRange span{};
      if (!stg->recv_slots.empty()) {
        std::int64_t total = 0;
        for (const auto& slot : stg->recv_slots) total += slot.len;
        span = simsan::StridedRange::contiguous(
            stg->recv_slots.front().begin, total);
      }
      system.launchKernel(leader,
                          emb::buildLeaderScatterKernel(
                              layer_, static_cast<int>(n), leader, span,
                              bytes));
    }
  }

  // Phase 3: unpack/rearrangement kernels + sync.
  for (int g = 0; g < p; ++g) {
    auto desc = emb::buildUnpackKernel(
        layer_, g, &recv_buffers_[static_cast<std::size_t>(g)],
        &outputs_[static_cast<std::size_t>(g)], f);
    system.launchKernel(g, std::move(desc));
  }
  const SimTime t3 = system.syncAll();
  timing.unpack_phase = t3 - t2;
  timing.total = t3 - t0;
  PGASEMB_ASSERT(sharding.numGpus() == p, "sharding/system mismatch");
  return timing;
}

namespace {
// Self-registration: the NCCL-collective baseline is created by name
// through the registry ("nccl_baseline" kept as a legacy alias).
const RetrieverRegistrar kRegistrar{
    "nccl_collective",
    [](const SystemContext& ctx) -> std::unique_ptr<EmbeddingRetriever> {
      CollectiveMultiNodeOptions multinode;
      multinode.hierarchical = ctx.hierarchical_a2a;
      multinode.hier_staging = ctx.hier_staging;
      multinode.hier_standby = ctx.hier_standby;
      multinode.injector = ctx.injector;
      multinode.codec = ctx.codec;
      multinode.gpus_per_node = ctx.gpus_per_node;
      return std::make_unique<CollectiveRetriever>(ctx.layer, ctx.comm,
                                                   ctx.cache, multinode);
    },
    /*aliases=*/{"nccl_baseline"}};
}  // namespace

}  // namespace pgasemb::core

// Linker anchor referenced by registry.cpp so this self-registering
// object survives static-archive selection (see registry.hpp).
extern "C" int pgasemb_retriever_link_nccl_collective() { return 0; }

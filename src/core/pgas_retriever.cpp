#include "core/pgas_retriever.hpp"

#include <algorithm>
#include <optional>

#include "core/registry.hpp"
#include "emb/lookup_kernel.hpp"
#include "util/expect.hpp"

namespace pgasemb::core {

PgasFusedRetriever::PgasFusedRetriever(emb::ShardedEmbeddingLayer& layer,
                                       pgas::PgasRuntime& runtime,
                                       PgasRetrieverOptions options)
    : layer_(layer), runtime_(runtime), options_(options) {
  PGASEMB_CHECK(options.slices >= 1, "need at least one slice");
  auto& system = layer.system();
  const auto& sharding = layer.sharding();
  const int dim = layer.dim();
  // Outputs live on the symmetric heap (same size on every PE) so remote
  // writes can address them directly; ragged mini-batches just leave the
  // tail of the fat partition unused.
  std::int64_t max_elements = 0;
  for (int g = 0; g < system.numGpus(); ++g) {
    max_elements = std::max(max_elements, sharding.outputElements(g, dim));
  }
  outputs_sym_ = runtime.heap().alloc(max_elements);
  for (int g = 0; g < system.numGpus(); ++g) {
    outputs_view_.push_back(outputs_sym_.on(g));
  }
}

PgasFusedRetriever::~PgasFusedRetriever() {
  runtime_.heap().free(outputs_sym_);
}

gpu::DeviceBuffer& PgasFusedRetriever::output(int gpu) {
  PGASEMB_CHECK(gpu >= 0 && gpu < static_cast<int>(outputs_view_.size()),
                "bad gpu id ", gpu);
  return outputs_view_[static_cast<std::size_t>(gpu)];
}

BatchTiming PgasFusedRetriever::runBatch(const emb::SparseBatch& batch) {
  auto& system = layer_.system();
  const int p = system.numGpus();
  const bool functional =
      system.mode() == gpu::ExecutionMode::kFunctional &&
      batch.materialized();
  const bool row_wise =
      layer_.sharding().scheme() == emb::ShardingScheme::kRowWise;
  BatchTiming timing;
  const SimTime t0 = system.hostNow();
  auto* san = system.sanitizer();

  if (row_wise) {
    // Row-wise partial sums accumulate: outputs must start at zero. A
    // real kernel would memset the symmetric output tensor first.
    const auto& cm = system.costModel();
    for (int g = 0; g < p; ++g) {
      gpu::KernelDesc zero;
      zero.name = "emb_output_zero.gpu" + std::to_string(g);
      zero.duration = cm.streamKernelTime(static_cast<double>(
          outputs_view_[static_cast<std::size_t>(g)].sizeBytes()));
      if (functional) {
        auto& buf = outputs_view_[static_cast<std::size_t>(g)];
        zero.functional_body = [&buf] {
          std::fill(buf.span().begin(), buf.span().end(), 0.0f);
        };
      }
      if (san != nullptr) {
        const auto& buf = outputs_view_[static_cast<std::size_t>(g)];
        zero.mem_effects.push_back(
            {g, simsan::StridedRange::contiguous(buf.offset(), buf.size()),
             simsan::AccessKind::kWrite, ""});
      }
      system.launchKernel(g, std::move(zero));
    }
  }

  // Optional replica-cache filter. runBatch() drains the timeline
  // before returning, so a per-batch filter is safe to capture.
  std::optional<emb::CacheFilter> filter;
  if (options_.cache != nullptr && !row_wise && p > 1) {
    filter.emplace(layer_, batch, *options_.cache);
    timing.cache_lookups = filter->lookups();
    timing.cache_hits = filter->hits();
    timing.cache_saved_bytes = filter->savedWireBytes();
  }
  const emb::CacheFilter* f = filter ? &*filter : nullptr;

  // One fused lookup kernel per device (paper Listing 2's launch loop);
  // in-kernel one-sided writes are attached via the PGAS runtime.  With
  // a cache, a probe kernel partitions the indices first and the fused
  // kernel computes/puts misses only.  The builder declares the local
  // write effect and the remote put footprints from the output views.
  for (int g = 0; g < p; ++g) {
    if (f != nullptr) {
      system.launchKernel(g, emb::buildCacheProbeKernel(layer_, *f, g));
    }
    auto fused = emb::buildFusedLookupKernel(
        layer_, batch, g, &outputs_view_, options_.slices, f,
        row_wise ? nullptr : options_.codec, options_.gpus_per_node);
    runtime_.attachMessagePlan(fused.desc, g, std::move(fused.plan),
                               options_.counter, options_.aggregator,
                               std::move(fused.remote_writes));
    system.launchKernel(g, std::move(fused.desc));
  }

  if (f != nullptr) {
    // Quiet + barrier: every one-sided write (including into our own
    // output) is delivered and joined before the serve kernels overlay
    // the hit bags — the HB edge simsan certifies the overlap against.
    system.syncAll();
    for (int g = 0; g < p; ++g) {
      auto serve = emb::buildCacheServeKernel(
          layer_, batch, *f, g, &options_.cache->replica(g),
          &outputs_view_[static_cast<std::size_t>(g)]);
      system.launchKernel(g, std::move(serve));
    }
  }

  // cudaStreamSynchronize loop over all devices.
  const SimTime t1 = system.syncAll();
  timing.compute_phase = t1 - t0;
  timing.total = t1 - t0;
  return timing;
}

namespace {
const RetrieverRegistrar kRegistrar{
    "pgas_fused",
    [](const SystemContext& ctx) -> std::unique_ptr<EmbeddingRetriever> {
      PgasRetrieverOptions opts;
      opts.slices = ctx.pgas_slices;
      opts.aggregator = ctx.aggregator;
      opts.cache = ctx.cache;
      opts.codec = ctx.codec;
      opts.gpus_per_node = ctx.gpus_per_node;
      return std::make_unique<PgasFusedRetriever>(ctx.layer, ctx.runtime,
                                                  opts);
    }};
}  // namespace

}  // namespace pgasemb::core

// Linker anchor referenced by registry.cpp so this self-registering
// object survives static-archive selection (see registry.hpp).
extern "C" int pgasemb_retriever_link_pgas_fused() { return 0; }

// RetrieverRegistry: string-keyed factories that make retrieval
// strategies pluggable end-to-end.
//
// Every strategy registers a factory under a stable name
// ("nccl_collective", "pgas_fused", "nccl_pipelined", ...).  The factory
// receives a SystemContext — the fully assembled simulated system — so a
// new strategy is one self-registering .cpp file; no enum, no harness
// switch, no bench edits.  ScenarioRunner (src/engine) and the bench
// `--retrievers=a,b,c` flag resolve names through this registry.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/retriever.hpp"
#include "pgas/aggregator.hpp"

namespace pgasemb {
namespace collective {
class Communicator;
struct HierStaging;
}
namespace emb {
class ReplicaCache;
}
namespace fabric {
class Fabric;
class InterNodeCodec;
}
namespace fault {
class FaultInjector;
}
namespace pgas {
class PgasRuntime;
}
}  // namespace pgasemb

namespace pgasemb::core {

/// Everything a retriever factory may wire against: the assembled
/// simulated system plus the strategy knobs from ExperimentConfig.
/// Built by engine::SystemBuilder; references outlive the retriever.
struct SystemContext {
  gpu::MultiGpuSystem& system;
  fabric::Fabric& fabric;
  collective::Communicator& comm;
  pgas::PgasRuntime& runtime;
  emb::ShardedEmbeddingLayer& layer;

  /// PGAS fused: kernel-timeline subdivisions for message injection.
  int pgas_slices = 128;
  /// PGAS fused: optional async aggregator (multi-node, paper §V).
  const pgas::AggregatorParams* aggregator = nullptr;
  /// Pipelined collective: in-flight batches (2 = double buffering).
  int pipeline_depth = 2;
  /// Hot-row replica cache (nullptr = disabled); retrievers that honor
  /// it serve hit bags from the local replica and exchange only misses.
  emb::ReplicaCache* cache = nullptr;

  /// Multi-node layout (1 = single node, everything below inert).
  int num_nodes = 1;
  int gpus_per_node = 0;  ///< = system.numGpus() on a single node
  /// Hierarchical all-to-all armed (SystemBuilder already wired the
  /// communicator and the PGAS runtime; retrievers use this to launch
  /// the leader staging kernels around their exchanges).
  bool hierarchical_a2a = false;
  /// Inter-node error-bounded codec (nullptr = compression off). The
  /// fabric-side wire accounting is already wired; Functional-mode
  /// retrievers pass it to their kernels so landed cross-node values
  /// carry the measured quantization error.
  fabric::InterNodeCodec* codec = nullptr;
  /// Per-node leader staging ranges of the hierarchical all-to-all
  /// (nullptr or empty when hierarchy is off).
  const std::vector<collective::HierStaging>* hier_staging = nullptr;
  /// Standby staging on each node's failover leader (nullptr when the
  /// fault plan cannot fail a leader).
  const std::vector<collective::HierStaging>* hier_standby = nullptr;
  /// Armed fault injector (nullptr without --faults): retrievers query
  /// it for the elected node leader so their staging kernels follow a
  /// leader failover.
  fault::FaultInjector* injector = nullptr;
};

class RetrieverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<EmbeddingRetriever>(const SystemContext&)>;

  /// The process-wide registry (builtins are registered on first use).
  static RetrieverRegistry& instance();

  /// Registers `factory` under `name`; `aliases` resolve to the same
  /// factory but are not listed by names(). Re-registering a name
  /// replaces the previous factory (last registration wins).
  void add(const std::string& name, Factory factory,
           const std::vector<std::string>& aliases = {});

  bool contains(const std::string& name) const;

  /// Instantiates the named strategy against `ctx`. Throws
  /// InvalidArgumentError listing the known names if `name` (or an
  /// alias) is not registered.
  std::unique_ptr<EmbeddingRetriever> create(const std::string& name,
                                             const SystemContext& ctx) const;

  /// Sorted canonical (non-alias) names.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
  std::map<std::string, std::string> aliases_;
};

/// Self-registration helper: a namespace-scope
///   static const RetrieverRegistrar reg{"my_scheme", factory};
/// in the strategy's own .cpp registers it before main() runs.  Builtin
/// strategies living in this static library additionally export a
/// `pgasemb_retriever_link_<name>` anchor that registry.cpp references,
/// so the linker cannot drop their objects from binaries that only ever
/// name them as strings.
struct RetrieverRegistrar {
  RetrieverRegistrar(const std::string& name,
                     RetrieverRegistry::Factory factory,
                     const std::vector<std::string>& aliases = {}) {
    RetrieverRegistry::instance().add(name, std::move(factory), aliases);
  }
};

}  // namespace pgasemb::core

// EmbeddingRetriever: the public API of this library.
//
// A retriever executes the distributed EMB-layer forward pass of Fig 4 —
// model-parallel lookup on every GPU followed by the layout conversion to
// data parallelism — and reports per-batch phase timings.  Two
// implementations reproduce the paper's §IV comparison:
//
//   CollectiveRetriever  — the NCCL baseline: lookup kernel -> sync ->
//                          all_to_all_single(async) -> wait -> unpack.
//   PgasFusedRetriever   — the paper's contribution: one fused kernel
//                          whose one-sided writes land directly in the
//                          final remote output tensor; quiet at the end.
#pragma once

#include <string>
#include <vector>

#include "emb/layer.hpp"
#include "emb/sparse_batch.hpp"
#include "gpu/device.hpp"
#include "util/time.hpp"

namespace pgasemb::core {

/// Paper-style three-way split, shared by `BatchTiming` and
/// `RetrieverStats`: "Communication" is the pure wire time, and
/// "Sync + Unpack" is everything else in the comm and unpack phases.
/// The comm-phase residual is clamped at zero so a retriever whose wire
/// time exceeds its comm phase (e.g. communication fully hidden behind
/// compute) can never report a negative component.
inline SimTime communicationSplit(SimTime wire_time) { return wire_time; }
inline SimTime syncUnpackSplit(SimTime comm_phase, SimTime wire_time,
                               SimTime unpack_phase) {
  const SimTime residual = comm_phase - wire_time;
  return (residual > SimTime::zero() ? residual : SimTime::zero()) +
         unpack_phase;
}

/// Timing of one EMB-layer forward pass (simulated host wall clock).
struct BatchTiming {
  SimTime total = SimTime::zero();

  // Baseline phase boundaries (zero for the PGAS path, which has no
  // phases). `compute_phase` includes launch and the post-kernel sync;
  // `comm_phase` spans the collective call to wait() returning;
  // `unpack_phase` spans the unpack kernel and its sync.
  SimTime compute_phase = SimTime::zero();
  SimTime comm_phase = SimTime::zero();
  SimTime unpack_phase = SimTime::zero();

  /// Pure wire time of the collective (first injection to last
  /// delivery).  The paper's "Communication" component; its §IV-A2a
  /// estimation method (re-run with a single float and subtract)
  /// approximates exactly this.
  SimTime wire_time = SimTime::zero();

  // Replica-cache accounting (zero when no cache is attached): raw
  // indices looked up, indices served from the local replica, and
  // exchange payload bytes (across all GPUs) the served bags saved.
  double cache_lookups = 0.0;
  double cache_hits = 0.0;
  double cache_saved_bytes = 0.0;

  /// Paper-style three-way split (baseline).
  SimTime communication() const { return communicationSplit(wire_time); }
  SimTime syncUnpack() const {
    return syncUnpackSplit(comm_phase, wire_time, unpack_phase);
  }
};

/// Accumulates timings over an experiment's batches.
struct RetrieverStats {
  int batches = 0;
  SimTime total = SimTime::zero();
  SimTime compute_phase = SimTime::zero();
  SimTime comm_phase = SimTime::zero();
  SimTime unpack_phase = SimTime::zero();
  SimTime wire_time = SimTime::zero();
  double cache_lookups = 0.0;
  double cache_hits = 0.0;
  double cache_saved_bytes = 0.0;

  void add(const BatchTiming& t);
  SimTime communication() const { return communicationSplit(wire_time); }
  SimTime syncUnpack() const {
    return syncUnpackSplit(comm_phase, wire_time, unpack_phase);
  }
  double cacheHitRate() const {
    return cache_lookups > 0.0 ? cache_hits / cache_lookups : 0.0;
  }
};

class EmbeddingRetriever {
 public:
  virtual ~EmbeddingRetriever() = default;

  virtual std::string name() const = 0;

  /// Run the EMB-layer forward for one batch. In functional mode the
  /// per-GPU output tensors are filled; in timing mode only the clock
  /// advances.
  virtual BatchTiming runBatch(const emb::SparseBatch& batch) = 0;

  /// Completes any work still in flight after the last runBatch() and
  /// returns the extra host time it consumed.  Bulk-synchronous
  /// strategies finish inside runBatch() and return zero (the default);
  /// pipelined strategies drain here.  Every driver (ScenarioRunner,
  /// benches) calls this once after the batch loop so all strategies
  /// share one lifecycle: N x runBatch(), then finish().
  virtual SimTime finish() { return SimTime::zero(); }

  /// GPU `gpu`'s final output tensor ([mini-batch sample][table][col]).
  virtual gpu::DeviceBuffer& output(int gpu) = 0;
};

}  // namespace pgasemb::core

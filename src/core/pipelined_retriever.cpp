#include "core/pipelined_retriever.hpp"

#include "core/registry.hpp"
#include "emb/lookup_kernel.hpp"
#include "emb/unpack_kernel.hpp"
#include "util/expect.hpp"

namespace pgasemb::core {

PipelinedCollectiveRetriever::PipelinedCollectiveRetriever(
    emb::ShardedEmbeddingLayer& layer, collective::Communicator& comm,
    int depth, emb::ReplicaCache* cache)
    : layer_(layer), comm_(comm), depth_(depth), cache_(cache) {
  PGASEMB_CHECK(depth >= 1, "pipeline depth must be >= 1");
  PGASEMB_CHECK(layer.sharding().scheme() == emb::ShardingScheme::kTableWise,
                "pipelined baseline is table-wise only");
  PGASEMB_CHECK(layer.system().mode() == gpu::ExecutionMode::kTimingOnly,
                "the pipelined baseline recycles buffers across in-flight "
                "batches; use timing-only mode");
  auto& system = layer.system();
  const auto& sharding = layer.sharding();
  const int p = system.numGpus();
  const int dim = layer.dim();
  PGASEMB_CHECK(p > 1, "pipelining needs at least 2 GPUs");
  slots_.resize(static_cast<std::size_t>(depth));
  for (auto& slot : slots_) {
    for (int g = 0; g < p; ++g) {
      auto& dev = system.device(g);
      slot.send.push_back(
          dev.alloc(emb::sendBufferElements(sharding, g, dim)));
      slot.recv.push_back(
          dev.alloc(emb::recvBufferElements(sharding, g, dim)));
      slot.out.push_back(dev.alloc(sharding.outputElements(g, dim)));
    }
  }
  for (int g = 0; g < p; ++g) {
    comm_streams_.push_back(&system.createStream(g, "comm"));
  }
}

PipelinedCollectiveRetriever::~PipelinedCollectiveRetriever() {
  auto& system = layer_.system();
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    for (int g = system.numGpus() - 1; g >= 0; --g) {
      system.device(g).free(it->out[static_cast<std::size_t>(g)]);
      system.device(g).free(it->recv[static_cast<std::size_t>(g)]);
      system.device(g).free(it->send[static_cast<std::size_t>(g)]);
    }
  }
}

gpu::DeviceBuffer& PipelinedCollectiveRetriever::output(int gpu) {
  PGASEMB_CHECK(!slots_.empty(), "no slots");
  return slots_[static_cast<std::size_t>((submitted_ > 0 ? submitted_ - 1
                                                         : 0) %
                                         depth_)]
      .out[static_cast<std::size_t>(gpu)];
}

BatchTiming PipelinedCollectiveRetriever::runBatch(
    const emb::SparseBatch& batch) {
  auto& system = layer_.system();
  const int p = system.numGpus();

  // Per-batch events: per-GPU kernel-done, per-GPU a2a-done.
  const std::size_t ev_base = events_.size();
  for (int i = 0; i < 2 * p; ++i) {
    events_.push_back(std::make_unique<gpu::GpuEvent>());
  }
  auto kernel_done = [&](int g) -> gpu::GpuEvent& {
    return *events_[ev_base + static_cast<std::size_t>(g)];
  };
  auto a2a_done = [&](int g) -> gpu::GpuEvent& {
    return *events_[ev_base + static_cast<std::size_t>(p + g)];
  };
  // The a2a of the batch that last used this slot must finish reading
  // the send buffer before the new lookup overwrites it.  Batches whose
  // events were released at a drain() are fully complete — their slot
  // needs no wait.
  gpu::GpuEvent* slot_free[64] = {};
  if (submitted_ >= depth_ && submitted_ - depth_ >= events_base_batch_) {
    const std::size_t old_base =
        static_cast<std::size_t>(submitted_ - depth_ - events_base_batch_) *
        2 * static_cast<std::size_t>(p);
    for (int g = 0; g < p; ++g) {
      slot_free[g] = events_[old_base + static_cast<std::size_t>(p + g)]
                         .get();
    }
  }

  auto* san = system.sanitizer();
  Slot& slot = slots_[static_cast<std::size_t>(submitted_ % depth_)];
  const auto wholeBuffer = [](const gpu::DeviceBuffer& buf) {
    return simsan::StridedRange::contiguous(buf.offset(), buf.size());
  };

  // Optional replica-cache filter: the pipeline carries misses only.
  // The filter must outlive this runBatch() — the batch's unpack kernel
  // is built one call later — so it is kept until then (filter_ ->
  // pending_filter_ below).
  BatchTiming cache_counters;
  if (cache_ != nullptr) {
    filter_ = std::make_unique<emb::CacheFilter>(layer_, batch, *cache_);
    cache_counters.cache_lookups = filter_->lookups();
    cache_counters.cache_hits = filter_->hits();
    cache_counters.cache_saved_bytes = filter_->savedWireBytes();
  }
  const emb::CacheFilter* f = filter_.get();

  send_matrix_.resize(static_cast<std::size_t>(p));
  for (auto& row : send_matrix_) {
    row.assign(static_cast<std::size_t>(p), 0);
  }
  auto& matrix = send_matrix_;
  for (int g = 0; g < p; ++g) {
    // Slot buffers are recycled across in-flight batches, so the slot —
    // not the builder's caller-agnostic default — names this batch's
    // send buffer for the kernel's declared write effect.
    auto kernel = emb::buildBaselineLookupKernel(
        layer_, batch, g, &slot.send[static_cast<std::size_t>(g)], f);
    for (int d = 0; d < p; ++d) {
      if (d != g) {
        matrix[static_cast<std::size_t>(g)][static_cast<std::size_t>(d)] =
            kernel.send_bytes[static_cast<std::size_t>(d)];
      }
    }
    auto& stream = system.stream(g);
    if (slot_free[g] != nullptr) {
      stream.enqueueWaitEvent(system.hostNow(), *slot_free[g]);
    }
    if (f != nullptr) {
      system.launchKernel(g, emb::buildCacheProbeKernel(layer_, *f, g));
    }
    system.launchKernel(g, std::move(kernel.desc));
    stream.enqueueRecord(system.hostNow(), kernel_done(g));
    // The collective (enqueued below on the comm stream) starts once
    // this GPU's lookup has produced its send buffer.
    comm_streams_[static_cast<std::size_t>(g)]->enqueueWaitEvent(
        system.hostNow(), kernel_done(g));
    if (f != nullptr) {
      // Serve the hit bags on the compute stream while the all-to-all
      // of the misses rides the comm stream.
      auto serve = emb::buildCacheServeKernel(
          layer_, batch, *f, g, &cache_->replica(g),
          &slot.out[static_cast<std::size_t>(g)]);
      system.launchKernel(g, std::move(serve));
    }
  }

  collective::CollectiveMemory a2a_memory;
  if (san != nullptr) {
    a2a_memory.ranks.resize(static_cast<std::size_t>(p));
    for (int g = 0; g < p; ++g) {
      auto& rank = a2a_memory.ranks[static_cast<std::size_t>(g)];
      rank.device = g;
      rank.send = wholeBuffer(slot.send[static_cast<std::size_t>(g)]);
      rank.recv = wholeBuffer(slot.recv[static_cast<std::size_t>(g)]);
    }
  }
  comm_.allToAllSingle(matrix, nullptr, {}, &comm_streams_,
                       san != nullptr ? &a2a_memory : nullptr);
  for (int g = 0; g < p; ++g) {
    comm_streams_[static_cast<std::size_t>(g)]->enqueueRecord(
        system.hostNow(), a2a_done(g));
  }

  // Now — with this batch's lookup already on the compute streams, where
  // it overlaps the PREVIOUS batch's in-flight all-to-all — enqueue that
  // previous batch's unpack behind it.
  enqueuePendingUnpack();
  pending_unpack_ev_base_ = static_cast<std::int64_t>(ev_base);
  pending_slot_ = submitted_ % depth_;
  pending_filter_ = std::move(filter_);

  ++submitted_;
  // Host side only enqueues; the amortized batch time is (drain time -
  // start) / batches, measured by the caller.
  BatchTiming timing;
  timing.total = system.hostNow() - last_host_;
  timing.compute_phase = timing.total;
  timing.cache_lookups = cache_counters.cache_lookups;
  timing.cache_hits = cache_counters.cache_hits;
  timing.cache_saved_bytes = cache_counters.cache_saved_bytes;
  last_host_ = system.hostNow();
  return timing;
}

void PipelinedCollectiveRetriever::enqueuePendingUnpack() {
  if (pending_unpack_ev_base_ < 0) return;
  auto& system = layer_.system();
  const int p = system.numGpus();
  const std::size_t base =
      static_cast<std::size_t>(pending_unpack_ev_base_);
  Slot& slot = slots_[static_cast<std::size_t>(pending_slot_)];
  for (int g = 0; g < p; ++g) {
    system.stream(g).enqueueWaitEvent(
        system.hostNow(),
        *events_[base + static_cast<std::size_t>(p + g)]);
    auto desc = emb::buildUnpackKernel(
        layer_, g, &slot.recv[static_cast<std::size_t>(g)],
        &slot.out[static_cast<std::size_t>(g)], pending_filter_.get());
    system.launchKernel(g, std::move(desc));
  }
  pending_unpack_ev_base_ = -1;
}

SimTime PipelinedCollectiveRetriever::drain() {
  enqueuePendingUnpack();
  const SimTime t = layer_.system().syncAll();
  last_host_ = t;
  drained_through_ = submitted_;
  // Everything enqueued so far has retired, so no stream op or pending
  // simulator event references the event table any more — release it
  // instead of letting it grow for the life of the run. Kept when the
  // sanitizer is attached: recorded events still carry release/acquire
  // provenance that later waits may join against.
  if (layer_.system().sanitizer() == nullptr) {
    events_.clear();
    events_base_batch_ = submitted_;
  }
  return t;
}

SimTime PipelinedCollectiveRetriever::finish() {
  if (submitted_ == drained_through_) return SimTime::zero();
  const SimTime before = last_host_;
  return drain() - before;
}

namespace {
const RetrieverRegistrar kRegistrar{
    "nccl_pipelined",
    [](const SystemContext& ctx) -> std::unique_ptr<EmbeddingRetriever> {
      return std::make_unique<PipelinedCollectiveRetriever>(
          ctx.layer, ctx.comm, ctx.pipeline_depth, ctx.cache);
    }};
}  // namespace

}  // namespace pgasemb::core

// Linker anchor referenced by registry.cpp so this self-registering
// object survives static-archive selection (see registry.hpp).
extern "C" int pgasemb_retriever_link_nccl_pipelined() { return 0; }

#include "core/retriever.hpp"

namespace pgasemb::core {

void RetrieverStats::add(const BatchTiming& t) {
  ++batches;
  total += t.total;
  compute_phase += t.compute_phase;
  comm_phase += t.comm_phase;
  unpack_phase += t.unpack_phase;
  wire_time += t.wire_time;
  cache_lookups += t.cache_lookups;
  cache_hits += t.cache_hits;
  cache_saved_bytes += t.cache_saved_bytes;
}

}  // namespace pgasemb::core

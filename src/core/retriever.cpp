#include "core/retriever.hpp"

namespace pgasemb::core {

void RetrieverStats::add(const BatchTiming& t) {
  ++batches;
  total += t.total;
  compute_phase += t.compute_phase;
  comm_phase += t.comm_phase;
  unpack_phase += t.unpack_phase;
  wire_time += t.wire_time;
}

}  // namespace pgasemb::core

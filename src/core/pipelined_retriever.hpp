// Inter-batch pipelined variant of the collective baseline.
//
// The natural systems rebuttal to the paper: even without PGAS, the
// baseline could hide its communication behind the NEXT batch's compute
// by double-buffering — lookup of batch i+1 runs on the compute stream
// while batch i's all-to-all rides a side communication stream and its
// unpack waits on an event. This retriever implements exactly that, so
// the benchmarks can quantify how much of the PGAS win survives the
// strongest software-pipelined baseline (answer: the unpack pass and the
// per-batch control path do — see bench_pipelined).
//
// Timing-only: double buffering recycles output tensors across in-flight
// batches, so the functional data plane is not supported here.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "collective/communicator.hpp"
#include "core/retriever.hpp"
#include "emb/replica_cache.hpp"
#include "gpu/gpu_event.hpp"

namespace pgasemb::core {

class PipelinedCollectiveRetriever final : public EmbeddingRetriever {
 public:
  /// `depth` = in-flight batches (2 = classic double buffering).
  /// `cache` (optional) filters each batch before it enters the
  /// pipeline: the lookup and all-to-all carry misses only, a serve
  /// kernel pools the hit bags on the compute stream.
  PipelinedCollectiveRetriever(emb::ShardedEmbeddingLayer& layer,
                               collective::Communicator& comm,
                               int depth = 2,
                               emb::ReplicaCache* cache = nullptr);
  ~PipelinedCollectiveRetriever() override;

  std::string name() const override { return "nccl_pipelined"; }

  /// Submits the batch into the pipeline and returns the host-time
  /// increment since the previous call — the amortized per-batch cost
  /// once the pipeline is warm. Call drain() after the last batch.
  BatchTiming runBatch(const emb::SparseBatch& batch) override;

  /// Waits for all in-flight batches; returns the final host time.
  SimTime drain();

  /// Shared-lifecycle epilogue: drains the pipeline and returns the
  /// host time the drain consumed beyond the last runBatch(). A no-op
  /// (zero, no sync charged) when nothing is in flight, so calling it
  /// twice is safe.
  SimTime finish() override;

  gpu::DeviceBuffer& output(int gpu) override;

 private:
  struct Slot {
    std::vector<gpu::DeviceBuffer> send;
    std::vector<gpu::DeviceBuffer> recv;
    std::vector<gpu::DeviceBuffer> out;
  };

  emb::ShardedEmbeddingLayer& layer_;
  collective::Communicator& comm_;
  int depth_;
  emb::ReplicaCache* cache_ = nullptr;
  // Cache filter of the current batch, then of the batch whose unpack
  // is pending (its unpack kernel is built one runBatch() later).
  std::unique_ptr<emb::CacheFilter> filter_;
  std::unique_ptr<emb::CacheFilter> pending_filter_;
  std::vector<Slot> slots_;
  std::vector<gpu::Stream*> comm_streams_;  // one per GPU
  // Events live until drain (the simulator may still reference them).
  // A full drain() retires every reference, so the table is released
  // there (see events_base_batch_) instead of growing for the whole run.
  std::vector<std::unique_ptr<gpu::GpuEvent>> events_;
  // Batch index events_[0] belongs to; events of earlier batches were
  // released at a drain() and are guaranteed complete.
  std::int64_t events_base_batch_ = 0;
  // Per-batch all-to-all byte matrix, reused across batches.
  std::vector<std::vector<std::int64_t>> send_matrix_;
  std::int64_t submitted_ = 0;
  std::int64_t drained_through_ = 0;  // submitted_ at the last drain()
  SimTime last_host_ = SimTime::zero();
  // Event-table base of the batch whose unpack is still pending (it is
  // enqueued only after the NEXT batch's lookup, so that lookup overlaps
  // this batch's all-to-all on the comm streams). -1 = none.
  std::int64_t pending_unpack_ev_base_ = -1;
  // Slot index of that pending batch (for simsan buffer attribution).
  std::int64_t pending_slot_ = -1;

  void enqueuePendingUnpack();
};

}  // namespace pgasemb::core

#include "core/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace pgasemb::core {

LatencyHistogram::LatencyHistogram() : bins_(kNumBins, 0) {}

std::size_t LatencyHistogram::binIndex(double ms) const {
  if (ms < kMinMs) return 0;
  // log10(ms / kMinMs) in [0, kDecades) maps onto bins 1..96; beyond
  // the last decade is the overflow bin.
  const double pos = std::log10(ms / kMinMs) * kBinsPerDecade;
  const auto idx = static_cast<std::int64_t>(pos);  // pos >= 0 here
  if (idx >= kBinsPerDecade * kDecades) return bins_.size() - 1;
  return static_cast<std::size_t>(idx) + 1;
}

void LatencyHistogram::add(SimTime latency) {
  PGASEMB_CHECK(latency >= SimTime::zero(), "negative latency");
  ++bins_[binIndex(latency.toMs())];
  ++count_;
  min_ = std::min(min_, latency);
  max_ = std::max(max_, latency);
  sum_ += latency;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double LatencyHistogram::meanMs() const {
  return count_ ? sum_.toMs() / static_cast<double>(count_) : 0.0;
}

std::int64_t LatencyHistogram::binCount(std::size_t bin) const {
  PGASEMB_CHECK(bin < bins_.size(), "bad histogram bin ", bin);
  return bins_[bin];
}

double LatencyHistogram::binLowMs(std::size_t bin) const {
  PGASEMB_CHECK(bin < bins_.size(), "bad histogram bin ", bin);
  if (bin == 0) return 0.0;
  return kMinMs * std::pow(10.0, static_cast<double>(bin - 1) /
                                     kBinsPerDecade);
}

double LatencyHistogram::binHighMs(std::size_t bin) const {
  PGASEMB_CHECK(bin < bins_.size(), "bad histogram bin ", bin);
  if (bin + 1 == bins_.size()) {
    // Open-ended overflow: report the observed extreme so interpolation
    // stays inside real data.
    return std::max(max().toMs(), kMinMs * std::pow(10.0, kDecades));
  }
  return kMinMs * std::pow(10.0, static_cast<double>(bin) / kBinsPerDecade);
}

double LatencyHistogram::percentileMs(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t bin = 0; bin < bins_.size(); ++bin) {
    const double in_bin = static_cast<double>(bins_[bin]);
    if (in_bin == 0.0) continue;
    if (cum + in_bin >= target) {
      const double frac =
          in_bin > 0.0 ? std::clamp((target - cum) / in_bin, 0.0, 1.0) : 0.0;
      const double lo = binLowMs(bin);
      const double hi = binHighMs(bin);
      return std::clamp(lo + frac * (hi - lo), min().toMs(), max().toMs());
    }
    cum += in_bin;
  }
  return max().toMs();
}

}  // namespace pgasemb::core

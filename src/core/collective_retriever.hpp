// The NCCL-collective baseline retriever (paper §IV setup).
//
// Per batch: EmbeddingBagCollection-style lookup kernels write pooled
// embeddings into per-GPU send buffers in all-to-all order; the host
// synchronizes, triggers `all_to_all_single(async_op=True)`, calls
// wait(), then runs an unpack kernel that rearranges the received chunks
// into the final [sample][table][col] tensor.  The three measured phases
// (Computation / Communication / Sync+Unpack) fall directly out of this
// control flow.
#pragma once

#include <memory>
#include <vector>

#include "collective/communicator.hpp"
#include "core/retriever.hpp"
#include "emb/replica_cache.hpp"

namespace pgasemb::core {

/// Multi-node knobs of the collective baseline (defaults = single-node
/// behavior, bit-identical to earlier builds).
struct CollectiveMultiNodeOptions {
  /// Hierarchical all-to-all (DESIGN.md §12): launch the leader gather
  /// kernel before the exchange and the leader scatter kernel after
  /// wait(), with their staging-buffer effects from `hier_staging`.
  /// The Communicator handles the wire side; the pipelined baseline
  /// rides the same wire path but skips these device kernels (its
  /// buffers are recycled across in-flight batches).
  bool hierarchical = false;
  const std::vector<collective::HierStaging>* hier_staging = nullptr;
  /// Standby staging on each node's failover leader; the staging
  /// kernels follow the injector's elected leader onto it when a
  /// leader-fail window is open (nullptr = no failover provisioned).
  const std::vector<collective::HierStaging>* hier_standby = nullptr;
  /// Armed fault injector, queried for the elected node leaders
  /// (nullptr = topology defaults).
  fault::FaultInjector* injector = nullptr;
  /// Functional mode: cross-node chunks are really transcoded through
  /// the codec, so landed outputs carry the measured compression error.
  fabric::InterNodeCodec* codec = nullptr;
  int gpus_per_node = 0;
};

class CollectiveRetriever final : public EmbeddingRetriever {
 public:
  /// `cache` (optional) serves hot bags from the local replica: the
  /// lookup computes misses only and the all-to-all splits shrink.
  CollectiveRetriever(emb::ShardedEmbeddingLayer& layer,
                      collective::Communicator& comm,
                      emb::ReplicaCache* cache = nullptr,
                      CollectiveMultiNodeOptions multinode = {});
  ~CollectiveRetriever() override;

  std::string name() const override { return "nccl_collective"; }
  BatchTiming runBatch(const emb::SparseBatch& batch) override;
  gpu::DeviceBuffer& output(int gpu) override;

 private:
  void copyAllToAllPayload();

  emb::ShardedEmbeddingLayer& layer_;
  collective::Communicator& comm_;
  emb::ReplicaCache* cache_ = nullptr;
  CollectiveMultiNodeOptions multinode_;
  std::vector<gpu::DeviceBuffer> send_buffers_;
  std::vector<gpu::DeviceBuffer> recv_buffers_;
  std::vector<gpu::DeviceBuffer> outputs_;
  /// Per-batch all-to-all byte matrix, zeroed and reused across batches
  /// instead of reallocated (p nested vectors per batch otherwise).
  std::vector<std::vector<std::int64_t>> send_matrix_;
};

}  // namespace pgasemb::core

// Degradation policy: falling back to a simpler retrieval strategy when
// the active one keeps blowing its latency SLO.
//
// The paper's fused PGAS path wins by hiding communication inside the
// lookup kernel — but a degraded link stretches exactly the part it
// hides, and quiet then stalls the whole kernel.  The collective
// baseline, whose chunked transfers reissue independently, degrades more
// gracefully.  FallbackPolicy + SloTracker give the engine the switch:
// after `patience` consecutive over-SLO batches, ScenarioRunner swaps
// the active retriever for `fallback_to` and records the event in
// ResilienceStats.
#pragma once

#include <string>

#include "util/time.hpp"

namespace pgasemb::core {

struct FallbackPolicy {
  /// Absolute per-batch latency SLO in milliseconds; 0 = derive from the
  /// first batch via `slo_factor`.
  double slo_ms = 0.0;
  /// When `slo_ms` is 0: SLO = first batch's total x this factor (the
  /// first batch calibrates "healthy"). 0 disables the policy entirely.
  double slo_factor = 0.0;
  /// Consecutive over-SLO batches tolerated before switching.
  int patience = 3;
  /// Registry name of the strategy to degrade to.
  std::string fallback_to = "nccl_collective";

  bool enabled() const { return slo_ms > 0.0 || slo_factor > 0.0; }
};

/// Feeds per-batch totals against the policy's SLO; fires exactly once
/// (then disarms — one switch per run, no flip-flopping).
class SloTracker {
 public:
  explicit SloTracker(const FallbackPolicy& policy);

  /// Record one batch. Returns true on the batch that exhausts the
  /// patience budget — the caller should switch retrievers now.
  bool record(SimTime batch_total);

  /// The resolved SLO (zero until calibrated when `slo_factor` derives
  /// it from the first batch).
  SimTime slo() const { return slo_; }

 private:
  FallbackPolicy policy_;
  SimTime slo_ = SimTime::zero();
  int consecutive_over_ = 0;
  bool calibrated_ = false;
  bool fired_ = false;
};

}  // namespace pgasemb::core

// Degradation policy: falling back to a simpler retrieval strategy when
// the active one keeps blowing its latency SLO.
//
// The paper's fused PGAS path wins by hiding communication inside the
// lookup kernel — but a degraded link stretches exactly the part it
// hides, and quiet then stalls the whole kernel.  The collective
// baseline, whose chunked transfers reissue independently, degrades more
// gracefully.  FallbackPolicy + SloTracker give the engine the switch:
// after `patience` consecutive over-SLO batches, ScenarioRunner swaps
// the active retriever for `fallback_to` and records the event in
// ResilienceStats.
#pragma once

#include <string>
#include <vector>

#include "util/time.hpp"

namespace pgasemb::core {

struct FallbackPolicy {
  /// Absolute per-batch latency SLO in milliseconds; 0 = derive from the
  /// first batch via `slo_factor`.
  double slo_ms = 0.0;
  /// When `slo_ms` is 0: SLO = first batch's total x this factor (the
  /// first batch calibrates "healthy"). 0 disables the policy entirely.
  double slo_factor = 0.0;
  /// Consecutive over-SLO batches (or over-SLO sliding-window p95
  /// evaluations in query mode) tolerated before switching.
  int patience = 3;
  /// Registry name of the strategy to degrade to.
  std::string fallback_to = "nccl_collective";
  /// Query mode (ServingRunner): the sliding window of most recent
  /// per-query latencies whose p95 is held against the SLO. Tail-based
  /// so one slow query cannot trip the switch — the window's p95 must
  /// stay over the SLO for `patience` consecutive queries.
  int query_window = 64;

  bool enabled() const { return slo_ms > 0.0 || slo_factor > 0.0; }
};

/// Feeds per-batch totals (closed loop) or per-query latencies
/// (serving) against the policy's SLO; fires exactly once (then
/// disarms — one switch per run, no flip-flopping). A tracker is used
/// in one mode per run.
class SloTracker {
 public:
  explicit SloTracker(const FallbackPolicy& policy);

  /// Record one batch. Returns true on the batch that exhausts the
  /// patience budget — the caller should switch retrievers now.
  bool record(SimTime batch_total);

  /// Record one query's end-to-end latency. Once the sliding window of
  /// `query_window` latencies is full, its p95 is evaluated per query;
  /// with `slo_factor` the first full window calibrates the SLO
  /// (p95 x factor = "healthy tail"). Returns true on the query that
  /// exhausts the patience budget.
  bool recordQuery(SimTime latency);

  /// The resolved SLO (zero until calibrated when `slo_factor` derives
  /// it from the first batch / first full query window).
  SimTime slo() const { return slo_; }

  /// The current sliding window's p95 (zero until the window fills).
  SimTime windowP95() const;

 private:
  FallbackPolicy policy_;
  SimTime slo_ = SimTime::zero();
  int consecutive_over_ = 0;
  bool calibrated_ = false;
  bool fired_ = false;
  // Query mode: circular window of the most recent latencies.
  std::vector<SimTime> window_;
  std::size_t window_next_ = 0;
  bool window_full_ = false;
};

}  // namespace pgasemb::core

#!/usr/bin/env python3
"""Guardrail for the simulator fast path's recorded perf trajectory.

Compares a freshly generated BENCH_*.json (bench_simcore --json /
bench_weak_scaling --bench-json / bench_serving --bench-json) against
the committed baseline and fails when a metric regressed beyond the
tolerance. Direction-aware:

  sim_wall_ms_per_batch   lower is better  -> fail if fresh > base*(1+tol)
  events_per_sec          higher is better -> fail if fresh < base*(1-tol)
  events_processed        deterministic    -> fail if outside base*(1+-tol)
                          (any drift here means simulated behaviour moved,
                          not just the host clock; expect exact equality)

Usage:
  scripts/check_perf.py FRESH.json BASELINE.json [--tolerance 0.15]

Exit 0 = within tolerance, 1 = regression, 2 = bad invocation/inputs.
Run it locally after `bench_simcore --json fresh.json`, or let the
`perf_smoke` ctest target do both steps (it uses a wider tolerance to
ride out shared-machine noise).
"""

import argparse
import json
import sys

# metric-group key -> (direction, human unit)
METRICS = {
    "sim_wall_ms_per_batch": ("lower", "ms/batch"),
    "events_per_sec": ("higher", "events/s"),
    "events_processed": ("exact", "events"),
    # Serving tails (bench_serving --bench-json): simulated, so any drift
    # is a modeling change, not machine noise.
    "serving_p99_ms": ("lower", "ms"),
    "max_sustainable_qps": ("higher", "qps"),
    # Multi-node sweep (bench_multinode --sweep --bench-json): modeled
    # batch time and inter-node wire-equivalent bytes at the largest
    # swept node count, for flat / hierarchical / hierarchical+compressed
    # runs. Both simulated; the byte counts are deterministic, so drift
    # there means the traffic model itself moved.
    "multinode_ms_per_batch": ("lower", "ms/batch"),
    "multinode_inter_bytes_per_batch": ("exact", "bytes"),
    # Resilience sweep (bench_faults --nodes N --bench-json): summed
    # recovery time and degraded-mode (per-pair flat fallback) fraction
    # over the faulted severity levels, plus serving goodput at 2x-knee
    # overload with the admission stack armed. All simulated with fixed
    # seeds, so drift means the fault/admission model itself moved.
    "resilience_recovery_ms": ("lower", "ms"),
    "resilience_degraded_fraction": ("lower", "fraction"),
    "serving_goodput_qps": ("higher", "qps"),
}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drift (default 0.15)")
    args = ap.parse_args()

    fresh, base = load(args.fresh), load(args.baseline)
    tol = args.tolerance
    failures = []
    checked = 0

    for group, (direction, unit) in METRICS.items():
        if group not in base:
            continue
        if group not in fresh:
            failures.append(f"{group}: missing from {args.fresh}")
            continue
        for key, base_val in base[group].items():
            if key not in fresh[group]:
                failures.append(f"{group}.{key}: missing from {args.fresh}")
                continue
            fresh_val = fresh[group][key]
            checked += 1
            if base_val == 0:
                continue
            ratio = fresh_val / base_val
            if direction == "lower":
                bad = ratio > 1.0 + tol
            elif direction == "higher":
                bad = ratio < 1.0 - tol
            else:  # exact (count drift means behaviour changed)
                bad = not (1.0 - tol <= ratio <= 1.0 + tol)
            verdict = "FAIL" if bad else "ok"
            line = (f"  {verdict:4s} {group}.{key}: {fresh_val:.1f} vs "
                    f"baseline {base_val:.1f} {unit} ({ratio:.2f}x, "
                    f"{direction} is better)"
                    if direction != "exact" else
                    f"  {verdict:4s} {group}.{key}: {fresh_val:.0f} vs "
                    f"baseline {base_val:.0f} {unit} ({ratio:.2f}x, "
                    f"expect equal)")
            print(line)
            if bad:
                failures.append(f"{group}.{key} drifted {ratio:.2f}x "
                                f"(tolerance {tol:.2f})")

    if checked == 0:
        print("check_perf: no comparable metrics found", file=sys.stderr)
        sys.exit(2)
    if failures:
        print(f"\ncheck_perf: {len(failures)} regression(s) beyond "
              f"+-{tol:.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_perf: {checked} metric(s) within +-{tol:.0%} of baseline")
    sys.exit(0)


if __name__ == "__main__":
    main()

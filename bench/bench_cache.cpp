// Hot-row replica cache sweep: skew (Zipf alpha) x cache capacity x
// retriever on the cache-serving configuration (single-id Zipf lookups
// over a PCIe-class inference node — the HugeCTR-HPS-style deployment
// the cache targets).
//
// For each (alpha, retriever) the capacity-0 run is the reference;
// every cached run reports its hit rate, the exchange bytes the served
// bags saved, and the speedup over that reference. Expected shape: flat
// at alpha 0 (the uniform top-C mass is tiny), growing sharply with
// skew — at alpha ~1 a few percent of rows absorb most lookups, so the
// exchange all but disappears.
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Replica-cache sweep: Zipf skew x cache capacity x retriever "
      "(hit rate, saved exchange bytes, speedup vs no cache).");
  cli.addInt("gpus", 4, "GPU count");
  cli.addInt("batches", 20, "inference batches per configuration");
  cli.addString("csv", "cache_sweep.csv", "output CSV path (empty = none)");
  bench::addRetrieversFlag(
      cli, "nccl_collective,pgas_fused,nccl_pipelined");
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));
  const auto retrievers = bench::retrieverList(cli);

  const double alphas[] = {0.0, 0.6, 0.9, 1.1};
  // Capacities as fractions of the raw-index domain; 0 = cache off.
  const double fractions[] = {0.0, 0.01, 0.05, 0.10};

  const auto base = engine::cacheServingConfig(gpus);
  const auto rows = static_cast<std::int64_t>(base.layer.index_space);
  bench::printHeader(
      "Replica-cache sweep: " + std::to_string(base.layer.total_tables) +
      " tables x " + std::to_string(rows) + " rows, single-id lookups, " +
      std::to_string(gpus) + " GPUs, PCIe-class fabric");

  struct Row {
    double alpha;
    std::int64_t capacity;
    std::string retriever;
    double hit_rate;
    double saved_bytes;  // per batch
    double avg_ms;
    double speedup;
  };
  std::vector<Row> table;

  for (const double alpha : alphas) {
    // Per-retriever reference time at capacity 0.
    std::vector<double> ref_ms;
    for (const double frac : fractions) {
      engine::ExperimentConfig cfg = base;
      cfg.num_batches = batches;
      cfg.layer.zipf_alpha = alpha;
      cfg.cache_rows =
          static_cast<std::int64_t>(frac * static_cast<double>(rows));
      bench::applyCoalesceFlag(cli, cfg);
      engine::ScenarioRunner runner(cfg);
      const auto runs = runner.runAll(retrievers);
      for (std::size_t r = 0; r < runs.size(); ++r) {
        const auto& result = runs[r].result;
        if (frac == 0.0) ref_ms.push_back(result.avgBatchMs());
        const double batches_d =
            static_cast<double>(result.stats.batches);
        table.push_back(
            {alpha, cfg.cache_rows, runs[r].retriever,
             result.cacheHitRate(),
             batches_d > 0.0 ? result.cacheSavedBytes() / batches_d : 0.0,
             result.avgBatchMs(),
             result.avgBatchMs() > 0.0 ? ref_ms[r] / result.avgBatchMs()
                                       : 0.0});
      }
    }
  }

  printf("\n%-6s %-10s %-16s %-9s %-14s %-10s %s\n", "alpha", "cap_rows",
         "retriever", "hit%", "saved MB/b", "ms/batch", "speedup");
  for (const auto& r : table) {
    printf("%-6.1f %-10lld %-16s %-9.1f %-14.2f %-10.3f %.2fx\n", r.alpha,
           static_cast<long long>(r.capacity), r.retriever.c_str(),
           r.hit_rate * 100.0, r.saved_bytes / 1e6, r.avg_ms, r.speedup);
  }

  const std::string csv_path = cli.getString("csv");
  if (!csv_path.empty()) {
    CsvWriter csv(csv_path,
                  {"alpha", "capacity_rows", "retriever", "hit_rate",
                   "saved_bytes_per_batch", "avg_ms", "speedup_vs_cap0"});
    for (const auto& r : table) {
      csv.addRow({ConsoleTable::num(r.alpha, 1),
                  std::to_string(r.capacity), r.retriever,
                  ConsoleTable::num(r.hit_rate, 4),
                  ConsoleTable::num(r.saved_bytes, 0),
                  ConsoleTable::num(r.avg_ms, 4),
                  ConsoleTable::num(r.speedup, 3)});
    }
    printf("\nwrote %s\n", csv_path.c_str());
  }
  return 0;
}

// Extension bench (paper §V + Chen et al. SC'22 [7]): the asynchronous
// communication aggregator on a simulated MULTI-NODE system.
//
// Inter-node links have higher latency, lower bandwidth, and a message-
// rate ceiling, so un-aggregated 256-byte stores collapse the NIC's
// message rate. `aggregator.store(...)` batches them into large messages
// at a small staging cost. Sweeps the aggregation size and the max-wait
// timeout.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Async aggregator sweep on a 2-node x 2-GPU system "
                "(paper SV / SC'22 [7] extension).");
  cli.addInt("batches", 10, "batches per configuration");
  cli.addDouble("nic-gbps", 25.0, "inter-node NIC bandwidth, GB/s");
  cli.addDouble("nic-msg-rate", 10e6, "NIC message-rate ceiling, msg/s");
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "Async aggregator on multi-node PGAS embedding retrieval");

  auto make_cfg = [&](bool use_agg, std::int64_t agg_bytes,
                      SimTime max_wait) {
    engine::ExperimentConfig cfg;
    cfg.layer = emb::weakScalingLayerSpec(4);
    cfg.layer.total_tables = 64;  // moderate size for the sweep
    cfg.num_gpus = 4;
    cfg.num_nodes = 2;
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    cfg.inter_node_link.bandwidth_bytes_per_sec =
        cli.getDouble("nic-gbps") * 1e9;
    cfg.inter_node_link.latency = SimTime::us(5.0);
    cfg.inter_node_link.header_bytes = 64;
    cfg.inter_node_link.max_messages_per_sec =
        cli.getDouble("nic-msg-rate");
    cfg.use_aggregator = use_agg;
    cfg.aggregator.aggregation_bytes = agg_bytes;
    cfg.aggregator.max_wait = max_wait;
    return cfg;
  };

  const auto raw = engine::ScenarioRunner(make_cfg(false, 0, SimTime::zero()))
                       .run("pgas_fused");
  printf("\nun-aggregated 256 B stores: %.3f ms/batch, %lld messages\n",
         raw.avgBatchMs(), static_cast<long long>(raw.total_wire_messages));

  ConsoleTable table({"agg size", "max wait", "ms/batch", "speedup",
                      "messages", "msg reduction"});
  for (const std::int64_t kb : {4, 16, 64, 256, 1024}) {
    const auto r =
        engine::ScenarioRunner(make_cfg(true, kb * 1024, SimTime::us(50.0)))
            .run("pgas_fused");
    table.addRow(
        {std::to_string(kb) + " KiB", "50 us",
         ConsoleTable::num(r.avgBatchMs(), 3),
         ConsoleTable::num(raw.avgBatchMs() / r.avgBatchMs(), 2) + "x",
         std::to_string(r.total_wire_messages),
         ConsoleTable::num(static_cast<double>(raw.total_wire_messages) /
                               static_cast<double>(std::max<std::int64_t>(
                                   1, r.total_wire_messages)),
                           0) +
             "x"});
  }
  // Max-wait sweep at a fixed 64 KiB aggregation size.
  for (const double wait_us : {5.0, 500.0}) {
    const auto r =
        engine::ScenarioRunner(make_cfg(true, 64 * 1024, SimTime::us(wait_us)))
            .run("pgas_fused");
    table.addRow(
        {"64 KiB", ConsoleTable::num(wait_us, 0) + " us",
         ConsoleTable::num(r.avgBatchMs(), 3),
         ConsoleTable::num(raw.avgBatchMs() / r.avgBatchMs(), 2) + "x",
         std::to_string(r.total_wire_messages), "-"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(the paper's proposed change: sum.store(out[idx], pe) -> "
         "aggregator.store(out[idx], sum, pe))\n");
  return 0;
}

// Ablation A8 (paper §V): sparse-input partitioning cost.
//
// Table-wise sharding routes whole tables — the host cost is trivial, as
// the paper observes. Row-wise sharding must hash-route every raw index
// on the CPU, which becomes a significant serial fraction of the batch.
// The paper's proposed fix — fusing partitioning into the lookup kernel —
// trades that host time for extra (parallel, memory-bound) kernel reads.
#include "bench_common.hpp"
#include "emb/input_partition.hpp"
#include "emb/lookup_kernel.hpp"
#include "fabric/fabric.hpp"
#include "util/table.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Input-partitioning cost: table-wise vs row-wise vs "
                "fused-into-kernel (paper SV).");
  cli.addInt("gpus", 4, "GPU count");
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));

  bench::printHeader("Ablation: sparse-input partitioning (paper SV)");

  const auto spec = emb::weakScalingLayerSpec(gpus);
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = gpus;
  sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());

  ConsoleTable table({"scheme", "host partition", "extra kernel read",
                      "share of EMB batch"});
  struct Case {
    const char* name;
    emb::ShardingScheme scheme;
    bool fused;
  };
  for (const Case c : {Case{"table-wise, host",
                            emb::ShardingScheme::kTableWise, false},
                       Case{"row-wise,   host",
                            emb::ShardingScheme::kRowWise, false},
                       Case{"row-wise,  fused",
                            emb::ShardingScheme::kRowWise, true}}) {
    gpu::MultiGpuSystem system(sys_cfg);
    emb::ShardedEmbeddingLayer layer(system, spec, c.scheme);
    const auto cost = emb::inputPartitionCost(layer, batch, c.fused);
    // EMB batch time reference: lookup compute on GPU 0.
    const auto work = layer.lookupWork(batch, 0);
    const SimTime emb_time = emb::lookupComputeTime(layer, work);
    const double extra_ms =
        cost.extra_kernel_bytes_per_gpu /
        (system.costModel().hbm_bandwidth *
         system.costModel().gather_efficiency) *
        1e3;
    table.addRow(
        {c.name, cost.host_time.toString(),
         ConsoleTable::num(extra_ms, 3) + " ms",
         ConsoleTable::num(
             (cost.host_time.toMs() + extra_ms) / emb_time.toMs() * 100.0,
             1) +
             "%"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(row-wise host routing hashes every raw index serially; fusing "
         "it\n into the kernel converts ~ms of serial CPU time into "
         "parallel reads)\n");
  return 0;
}

// Simulator-core throughput microbenchmark: the perf record behind the
// TimingOnly fast path (DESIGN.md §9).
//
// Three measurements, written as one JSON record for
// scripts/check_perf.py to track across commits:
//   - push_pop:        raw EventQueue heap throughput (scheduleAt one
//                      event at a time, pseudo-random times, drain)
//   - schedule_batch:  the same event count enqueued through
//                      Simulator::scheduleBatch in slab-sized chunks
//   - pgas_coalesced / pgas_per_message: the end-to-end weak-scaling
//                      PGAS run with the per-flow coalescing fast path
//                      on vs off (simulated results identical; only
//                      host events/sec and wall ms/batch differ)
//
// All times are host wall-clock; nothing here changes simulated time.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "engine/scenario_runner.hpp"
#include "sim/simulator.hpp"

namespace {

using pgasemb::SimTime;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// scheduleAt + run() over `n` events at seeded pseudo-random times;
/// returns events/sec. The callback is trivial so the heap dominates.
double pushPopRate(std::int64_t n) {
  pgasemb::sim::Simulator sim;
  std::minstd_rand rng(12345);
  std::int64_t fired = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    sim.scheduleAt(SimTime(1 + static_cast<std::int64_t>(rng()) % 1000000),
                   [&fired] { ++fired; });
  }
  sim.run();
  const double s = secondsSince(t0);
  PGASEMB_CHECK(fired == n, "push_pop fired a wrong event count");
  return s > 0.0 ? static_cast<double>(2 * n) / s : 0.0;  // push + pop
}

/// The same workload enqueued through scheduleBatch in `chunk`-sized
/// slices (the message-plan slice pattern); returns events/sec.
double scheduleBatchRate(std::int64_t n, std::int64_t chunk) {
  pgasemb::sim::Simulator sim;
  std::minstd_rand rng(12345);
  std::int64_t fired = 0;
  std::vector<pgasemb::sim::EventQueue::Batch> staged;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n; i += chunk) {
    const std::int64_t end = std::min(n, i + chunk);
    staged.reserve(static_cast<std::size_t>(end - i));
    for (std::int64_t j = i; j < end; ++j) {
      staged.push_back(
          {SimTime(1 + static_cast<std::int64_t>(rng()) % 1000000),
           [&fired] { ++fired; }});
    }
    sim.scheduleBatch(staged);  // consumes, keeps capacity
  }
  sim.run();
  const double s = secondsSince(t0);
  PGASEMB_CHECK(fired == n, "schedule_batch fired a wrong event count");
  return s > 0.0 ? static_cast<double>(2 * n) / s : 0.0;
}

/// Best-of-N for a rate measurement (higher = better): transient host
/// noise only ever slows a run down, so the max is the stable figure.
template <typename F>
double bestRate(int repeats, F measure) {
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) best = std::max(best, measure());
  return best;
}

struct FlowRun {
  double wall_ms_per_batch = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events_processed = 0;
};

/// End-to-end PGAS weak-scaling run, best wall time of `repeats`; the
/// pair of calls (coalesce on/off) is the recorded perf trajectory.
FlowRun flowRun(int gpus, int batches, bool coalesce, int repeats) {
  namespace engine = pgasemb::engine;
  engine::ExperimentConfig cfg = engine::weakScalingConfig(gpus);
  cfg.num_batches = batches;
  cfg.coalesce_flows = coalesce;
  engine::ScenarioRunner runner(cfg);
  FlowRun r;
  double best_s = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)runner.run("pgas_fused");
    const double s = secondsSince(t0);
    const auto processed =
        runner.builder().system().simulator().eventsProcessed();
    PGASEMB_CHECK(i == 0 || processed == r.events_processed,
                  "flow run event count drifted across repeats");
    if (i == 0 || s < best_s) best_s = s;
    r.events_processed = processed;
  }
  r.wall_ms_per_batch = best_s * 1000.0 / batches;
  r.events_per_sec =
      best_s > 0.0 ? static_cast<double>(r.events_processed) / best_s : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Simulator-core throughput: EventQueue push/pop, scheduleBatch, and "
      "the coalesced vs per-message PGAS flow path (host wall-clock only; "
      "simulated results are unaffected).");
  cli.addInt("events", 1000000, "heap microbenchmark event count");
  cli.addInt("chunk", 128, "scheduleBatch slice size (pgas_slices-like)");
  cli.addInt("gpus", 8, "GPU count for the end-to-end flow runs");
  cli.addInt("batches", 20, "batches for the end-to-end flow runs");
  cli.addInt("repeats", 3,
             "measurement repeats per metric (best run is reported, so "
             "transient host noise cannot fake a regression)");
  cli.addString("json", "BENCH_simcore.json",
                "output JSON path (empty = stdout only)");
  if (!cli.parseOrExit(argc, argv)) return 0;

  const auto n = cli.getInt("events");
  const auto chunk = cli.getInt("chunk");
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));
  const int repeats = static_cast<int>(cli.getInt("repeats"));
  PGASEMB_CHECK(repeats >= 1, "--repeats must be >= 1");

  bench::printHeader("Simulator-core throughput (host wall-clock)");
  const double push_pop =
      bestRate(repeats, [&] { return pushPopRate(n); });
  printf("push_pop:        %12.0f events/sec (%lld events)\n", push_pop,
         static_cast<long long>(n));
  const double batched =
      bestRate(repeats, [&] { return scheduleBatchRate(n, chunk); });
  printf("schedule_batch:  %12.0f events/sec (chunk %lld)\n", batched,
         static_cast<long long>(chunk));
  const FlowRun co = flowRun(gpus, batches, /*coalesce=*/true, repeats);
  const FlowRun per = flowRun(gpus, batches, /*coalesce=*/false, repeats);
  printf("pgas_coalesced:  %12.0f events/sec, %8.3f wall ms/batch, "
         "%llu events\n",
         co.events_per_sec, co.wall_ms_per_batch,
         static_cast<unsigned long long>(co.events_processed));
  printf("pgas_per_message:%12.0f events/sec, %8.3f wall ms/batch, "
         "%llu events\n",
         per.events_per_sec, per.wall_ms_per_batch,
         static_cast<unsigned long long>(per.events_processed));
  printf("coalescing: %.1fx fewer events, %.1fx less wall time per batch\n",
         co.events_processed > 0
             ? static_cast<double>(per.events_processed) /
                   static_cast<double>(co.events_processed)
             : 0.0,
         co.wall_ms_per_batch > 0.0
             ? per.wall_ms_per_batch / co.wall_ms_per_batch
             : 0.0);

  const std::string json = cli.getString("json");
  if (!json.empty()) {
    FILE* out = fopen(json.c_str(), "w");
    PGASEMB_CHECK(out != nullptr, "--json: cannot open " + json);
    fprintf(out, "{\n  \"bench\": \"simcore\",\n");
    fprintf(out, "  \"gpus\": %d,\n  \"batches\": %d,\n", gpus, batches);
    fprintf(out,
            "  \"sim_wall_ms_per_batch\": {\"pgas_coalesced\": %.4f, "
            "\"pgas_per_message\": %.4f},\n",
            co.wall_ms_per_batch, per.wall_ms_per_batch);
    fprintf(out,
            "  \"events_per_sec\": {\"push_pop\": %.1f, "
            "\"schedule_batch\": %.1f, \"pgas_coalesced\": %.1f, "
            "\"pgas_per_message\": %.1f},\n",
            push_pop, batched, co.events_per_sec, per.events_per_sec);
    fprintf(out,
            "  \"events_processed\": {\"pgas_coalesced\": %llu, "
            "\"pgas_per_message\": %llu}\n}\n",
            static_cast<unsigned long long>(co.events_processed),
            static_cast<unsigned long long>(per.events_processed));
    fclose(out);
    printf("wrote %s\n", json.c_str());
  }
  return 0;
}

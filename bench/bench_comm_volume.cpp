// Reproduces the paper's Figures 7 and 10: communication volume over
// time (units of 256 bytes), for the PGAS fused and baseline schemes.
//
//   Fig 7:  weak-scaling configuration on 2 GPUs
//   Fig 10: strong-scaling configuration on 4 GPUs
//
// Expected shape: PGAS traffic is spread across the whole compute window
// (fine-grained overlap, smooth network usage); the baseline's traffic
// is zero during compute, then a concentrated burst in its communication
// phase.
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

void runFigure(const char* title, pgasemb::trace::ExperimentConfig cfg,
               const std::string& csv_path) {
  using namespace pgasemb;
  cfg.num_batches = 1;  // one batch shows the within-batch shape
  // ~150 buckets across the PGAS batch for a smooth trace.
  const auto probe = trace::runExperiment(cfg, trace::RetrieverKind::kPgasFused);
  cfg.counter_bucket =
      SimTime(std::max<std::int64_t>(probe.stats.total.count() / 150, 1000));

  const auto pgas =
      trace::runExperiment(cfg, trace::RetrieverKind::kPgasFused);
  const auto base =
      trace::runExperiment(cfg, trace::RetrieverKind::kCollectiveBaseline);

  bench::printHeader(title);
  printf("\n%s\n",
         trace::renderCommVolumeChart(pgas, base, title).c_str());
  printf("total volume: pgas %lld B in %lld messages, baseline %lld B in "
         "%lld messages\n",
         static_cast<long long>(pgas.total_wire_bytes),
         static_cast<long long>(pgas.total_wire_messages),
         static_cast<long long>(base.total_wire_bytes),
         static_cast<long long>(base.total_wire_messages));
  printf("batch time: pgas %.3f ms, baseline %.3f ms\n",
         pgas.avgBatchMs(), base.avgBatchMs());

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"time_us", "pgas_units", "baseline_units"});
    const std::size_t n = std::max(pgas.wire_bytes_over_time.size(),
                                   base.wire_bytes_over_time.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double t =
          pgas.bucket_width.toUs() * (static_cast<double>(i) + 0.5);
      const double pv = i < pgas.wire_bytes_over_time.size()
                            ? pgas.wire_bytes_over_time[i] / 256.0
                            : 0.0;
      const double bv = i < base.wire_bytes_over_time.size()
                            ? base.wire_bytes_over_time[i] / 256.0
                            : 0.0;
      csv.addRow({pgasemb::ConsoleTable::num(t, 2),
                  pgasemb::ConsoleTable::num(pv, 1),
                  pgasemb::ConsoleTable::num(bv, 1)});
    }
    printf("wrote %s\n", csv_path.c_str());
  }
  printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Communication volume over time (paper Figures 7 and 10).");
  cli.addString("csv-fig7", "comm_volume_fig7.csv", "Fig 7 CSV path");
  cli.addString("csv-fig10", "comm_volume_fig10.csv", "Fig 10 CSV path");
  if (!cli.parse(argc, argv)) return 0;

  runFigure("Figure 7: comm volume over time — weak scaling, 2 GPUs",
            trace::weakScalingConfig(2), cli.getString("csv-fig7"));
  runFigure("Figure 10: comm volume over time — strong scaling, 4 GPUs",
            trace::strongScalingConfig(4), cli.getString("csv-fig10"));
  return 0;
}

// Reproduces the paper's Figures 7 and 10: communication volume over
// time (units of 256 bytes), for the PGAS fused and baseline schemes.
//
//   Fig 7:  weak-scaling configuration on 2 GPUs
//   Fig 10: strong-scaling configuration on 4 GPUs
//
// Expected shape: PGAS traffic is spread across the whole compute window
// (fine-grained overlap, smooth network usage); the baseline's traffic
// is zero during compute, then a concentrated burst in its communication
// phase.
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

void runFigure(const char* title, pgasemb::engine::ExperimentConfig cfg,
               const std::vector<std::string>& retrievers,
               const std::string& csv_path) {
  using namespace pgasemb;
  cfg.num_batches = 1;  // one batch shows the within-batch shape
  // ~150 buckets across the treatment's batch for a smooth trace.
  const auto probe = engine::ScenarioRunner(cfg).run(retrievers.back());
  cfg.counter_bucket =
      SimTime(std::max<std::int64_t>(probe.stats.total.count() / 150, 1000));

  engine::ScenarioRunner runner(cfg);
  const auto runs = runner.runAll(retrievers);

  bench::printHeader(title);
  printf("\n%s\n", trace::renderCommVolumeChart(runs, title).c_str());
  // Treatment-first, reference last (historical ordering).
  printf("total volume:");
  for (std::size_t r = runs.size(); r-- > 0;) {
    printf(" %s %lld B in %lld messages%s",
           trace::runKey(runs[r].retriever).c_str(),
           static_cast<long long>(runs[r].result.total_wire_bytes),
           static_cast<long long>(runs[r].result.total_wire_messages),
           r == 0 ? "\n" : ",");
  }
  printf("batch time:");
  for (std::size_t r = runs.size(); r-- > 0;) {
    printf(" %s %.3f ms%s", trace::runKey(runs[r].retriever).c_str(),
           runs[r].result.avgBatchMs(), r == 0 ? "\n" : ",");
  }

  // Replica-cache accounting: printed (and appended to the CSV header
  // set) only when a cache was attached, so cache-less output keeps the
  // historical bytes exactly.
  bool any_cache = false;
  for (const auto& run : runs) {
    any_cache = any_cache || run.result.stats.cache_lookups > 0.0;
  }
  if (any_cache) {
    printf("cache:");
    for (std::size_t r = runs.size(); r-- > 0;) {
      printf(" %s hit %.1f%% saved %.0f B%s",
             trace::runKey(runs[r].retriever).c_str(),
             runs[r].result.cacheHitRate() * 100.0,
             runs[r].result.cacheSavedBytes(), r == 0 ? "\n" : ",");
    }
  }

  if (!csv_path.empty()) {
    std::vector<std::string> headers{"time_us"};
    std::size_t n = 0;
    for (std::size_t r = runs.size(); r-- > 0;) {
      headers.push_back(trace::runKey(runs[r].retriever) + "_units");
      n = std::max(n, runs[r].result.wire_bytes_over_time.size());
    }
    if (any_cache) {
      for (std::size_t r = runs.size(); r-- > 0;) {
        headers.push_back(trace::runKey(runs[r].retriever) +
                          "_cache_hit_rate");
        headers.push_back(trace::runKey(runs[r].retriever) +
                          "_cache_saved_bytes");
      }
    }
    CsvWriter csv(csv_path, headers);
    const auto& clock = runs.back().result;
    for (std::size_t i = 0; i < n; ++i) {
      const double t =
          clock.bucket_width.toUs() * (static_cast<double>(i) + 0.5);
      std::vector<std::string> row{pgasemb::ConsoleTable::num(t, 2)};
      for (std::size_t r = runs.size(); r-- > 0;) {
        const auto& series = runs[r].result.wire_bytes_over_time;
        row.push_back(pgasemb::ConsoleTable::num(
            i < series.size() ? series[i] / 256.0 : 0.0, 1));
      }
      if (any_cache) {
        for (std::size_t r = runs.size(); r-- > 0;) {
          row.push_back(pgasemb::ConsoleTable::num(
              runs[r].result.cacheHitRate(), 4));
          row.push_back(pgasemb::ConsoleTable::num(
              runs[r].result.cacheSavedBytes(), 0));
        }
      }
      csv.addRow(row);
    }
    printf("wrote %s\n", csv_path.c_str());
  }
  printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Communication volume over time (paper Figures 7 and 10).");
  cli.addString("csv-fig7", "comm_volume_fig7.csv", "Fig 7 CSV path");
  cli.addString("csv-fig10", "comm_volume_fig10.csv", "Fig 10 CSV path");
  bench::addRetrieversFlag(cli);
  bench::addCacheFlags(cli);
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  const auto retrievers = bench::retrieverList(cli);
  auto fig7 = engine::weakScalingConfig(2);
  auto fig10 = engine::strongScalingConfig(4);
  bench::applyCacheFlags(cli, fig7);
  bench::applyCacheFlags(cli, fig10);
  bench::applyCoalesceFlag(cli, fig7);
  bench::applyCoalesceFlag(cli, fig10);
  runFigure("Figure 7: comm volume over time — weak scaling, 2 GPUs",
            fig7, retrievers, cli.getString("csv-fig7"));
  runFigure("Figure 10: comm volume over time — strong scaling, 4 GPUs",
            fig10, retrievers, cli.getString("csv-fig10"));
  return 0;
}

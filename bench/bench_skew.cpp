// Ablation A9: skewed ("hot") sparse features and load-balanced table
// sharding (RecShard [6], which the paper cites for sharding schemes).
//
// Real recommendation features follow a power law: a few features have
// huge pooling factors. With naive equal-count table sharding the GPU
// that owns the hot tables becomes a straggler — every other GPU waits
// at the layout-conversion barrier. Weighted contiguous partitioning
// (balance expected gather rows) restores the balance for both schemes.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Skewed-pooling ablation: naive vs balanced table-wise "
                "sharding (4 GPUs).");
  cli.addInt("batches", 10, "batches per configuration");
  bench::addRetrieversFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int batches = static_cast<int>(cli.getInt("batches"));
  const auto retrievers = bench::retrieverList(cli);

  bench::printHeader(
      "Ablation: power-law feature skew + RecShard-style balancing");

  auto base_cfg = engine::weakScalingConfig(4);
  base_cfg.num_batches = batches;
  // Smaller tables: balancing moves whole tables between GPUs, so the
  // cold-table GPUs hold several times more tables than the naive split.
  base_cfg.layer.rows_per_table = 200'000;
  // Zipf-ish pooling skew: table t draws bags of up to ~256/(1+t/8).
  base_cfg.layer.table_max_pooling.clear();
  for (std::int64_t t = 0; t < base_cfg.layer.total_tables; ++t) {
    const int hot = static_cast<int>(256 / (1 + t / 8));
    base_cfg.layer.table_max_pooling.push_back(std::max(2, hot));
  }

  ConsoleTable table({"sharding", "baseline ms", "pgas ms",
                      "pgas speedup", "max/min GPU gather rows"});
  for (const bool balanced : {false, true}) {
    auto cfg = base_cfg;
    cfg.layer.balance_tables = balanced;
    engine::ScenarioRunner runner(cfg);
    const auto base = runner.run(retrievers.front());
    const auto pgas = runner.run(retrievers.back());

    // Imbalance metric straight from the workload descriptors.
    gpu::SystemConfig sys_cfg;
    sys_cfg.num_gpus = 4;
    sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
    gpu::MultiGpuSystem system(sys_cfg);
    emb::ShardedEmbeddingLayer layer(system, cfg.layer);
    const auto batch = emb::SparseBatch::statistical(cfg.layer.batchSpec());
    double max_rows = 0, min_rows = 1e30;
    for (int g = 0; g < 4; ++g) {
      const double rows = layer.lookupWork(batch, g).gathered_rows;
      max_rows = std::max(max_rows, rows);
      min_rows = std::min(min_rows, rows);
    }

    table.addRow({balanced ? "balanced (RecShard-style)" : "naive blocks",
                  ConsoleTable::num(base.avgBatchMs(), 3),
                  ConsoleTable::num(pgas.avgBatchMs(), 3),
                  ConsoleTable::num(base.avgBatchMs() / pgas.avgBatchMs(),
                                    2) +
                      "x",
                  ConsoleTable::num(max_rows / min_rows, 2)});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(the straggler GPU bounds both schemes — the layout conversion "
         "is a\n batch-wide barrier; balancing recovers the loss without "
         "row-wise's\n volume multiplication)\n");
  return 0;
}

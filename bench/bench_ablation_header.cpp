// Ablation A2: per-message header overhead (paper §IV-A2d).
//
// "Compared to large messages, those small messages are not
//  bandwidth-efficient as the message header takes a good portion of
//  bandwidth... the overhead only increases very slightly [because] the
//  PGAS fused implementation is not bandwidth-limited as long as the
//  communication can be done within the computation period."
//
// Sweeping the header size shows exactly that: wire inefficiency grows,
// runtime barely moves until the drain no longer fits in the compute
// window.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Message-header overhead ablation (4 GPUs, weak config).");
  cli.addInt("batches", 10, "batches per configuration");
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "Ablation: per-message header bytes vs PGAS fused runtime");

  ConsoleTable table({"header (B)", "wire efficiency", "pgas ms/batch",
                      "slowdown vs 0 B"});
  double base_ms = 0.0;
  for (const int header : {0, 16, 32, 64, 128, 256, 1024}) {
    auto cfg = engine::weakScalingConfig(4);
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    cfg.link.header_bytes = header;
    const auto r = engine::ScenarioRunner(cfg).run("pgas_fused");
    if (header == 0) base_ms = r.avgBatchMs();
    const double eff = 256.0 / (256.0 + header);
    table.addRow({std::to_string(header), ConsoleTable::num(eff, 3),
                  ConsoleTable::num(r.avgBatchMs(), 3),
                  ConsoleTable::num(r.avgBatchMs() / base_ms, 3) + "x"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(wire efficiency halves at 256 B headers, yet runtime barely "
         "moves while the drain still fits inside compute — the paper's "
         "point)\n");
  return 0;
}

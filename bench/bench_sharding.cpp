// Ablation A5: table-wise vs row-wise sharding under the PGAS fused
// scheme (paper §V discusses row-wise sharding, RecShard [6]).
//
// Row-wise stripes every table's rows across GPUs: perfect load balance
// even with skewed tables, but every GPU emits a *partial* pooled vector
// per (table, sample), multiplying the communicated volume by P and
// turning stores into remote atomic adds.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Sharding-scheme ablation under PGAS fused retrieval.");
  cli.addInt("batches", 10, "batches per configuration");
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "Ablation: table-wise vs row-wise sharding (PGAS fused)");

  ConsoleTable table({"GPUs", "table-wise ms", "row-wise ms",
                      "row-wise volume factor"});
  for (int gpus = 2; gpus <= 4; ++gpus) {
    auto cfg = engine::weakScalingConfig(gpus);
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    const auto tw = engine::ScenarioRunner(cfg).run("pgas_fused");
    auto rw_cfg = cfg;
    rw_cfg.sharding = emb::ShardingScheme::kRowWise;
    const auto rw = engine::ScenarioRunner(rw_cfg).run("pgas_fused");
    table.addRow(
        {std::to_string(gpus), ConsoleTable::num(tw.avgBatchMs(), 3),
         ConsoleTable::num(rw.avgBatchMs(), 3),
         ConsoleTable::num(static_cast<double>(rw.total_wire_bytes) /
                               static_cast<double>(std::max<std::int64_t>(
                                   1, tw.total_wire_bytes)),
                           2) +
             "x"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(row-wise balances skew but multiplies PGAS traffic by ~P "
         "partial sums; the paper uses table-wise and defers row-wise "
         "to future work)\n");
  return 0;
}

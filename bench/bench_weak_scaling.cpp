// Reproduces the paper's weak-scaling results (§IV-A):
//   - the speedup table ("2.10x / 1.95x / 1.87x, geo-mean 1.97x")
//   - Figure 5: weak-scaling factor for baseline and PGAS fused
//
// Workload: per GPU, 64 embedding tables x 1M rows, dim 64, batch 16384,
// pooling U(1, 128), 100 inference batches on a simulated 4x V100
// NVLink-connected DGX.
//
// --bench-json additionally re-runs each retriever at the largest GPU
// count with a wall-clock timer around the host loop and writes the
// simulator-throughput record (ms/batch of wall time, events/sec,
// events processed) that scripts/check_perf.py tracks.
#include <chrono>

#include "bench_common.hpp"
#include "engine/scenario_runner.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Weak-scaling benchmark (paper Table 1 + Figure 5): PGAS fused vs "
      "NCCL-collective EMB retrieval.");
  cli.addInt("max-gpus", 4, "largest GPU count to sweep");
  cli.addInt("batches", 100, "inference batches per configuration");
  cli.addString("csv", "weak_scaling.csv", "output CSV path (empty = none)");
  cli.addString("bench-json", "",
                "write a simulator-throughput JSON record (wall ms/batch, "
                "events/sec, events processed) for the largest GPU count "
                "to this path; empty = off");
  bench::addRetrieversFlag(cli);
  bench::addSimsanFlag(cli);
  bench::addCacheFlags(cli);
  bench::addFaultFlags(cli);
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "Weak scaling: 64 tables/GPU x 1M rows, dim 64, batch 16384, "
      "pooling U(1,128)");
  const auto points = bench::sweepScaling(
      /*weak=*/true, static_cast<int>(cli.getInt("max-gpus")),
      static_cast<int>(cli.getInt("batches")), bench::retrieverList(cli),
      cli.getBool("simsan"), cli.getInt("cache-rows"),
      cli.getDouble("zipf-alpha"),
      [&](engine::ExperimentConfig& cfg) {
        bench::applyFaultFlags(cli, cfg);
        bench::applyCoalesceFlag(cli, cfg);
      },
      cli.getBool("simsan-strict"));

  printf("\n%s\n", trace::renderSpeedupTable(points).c_str());
  printf("(paper: 2.10x / 1.95x / 1.87x, geo-mean 1.97x)\n");
  bench::printPerGpuRuntimes(points);
  printf("\n%s\n",
         trace::renderScalingChart(points, /*weak=*/true).c_str());
  printf("(paper Fig 5: baseline drops to ~0.46 at 2 GPUs then stays "
         "flat; PGAS stays near 1.0)\n");
  const std::string cache_table = trace::renderCacheTable(points);
  if (!cache_table.empty()) printf("\n%s\n", cache_table.c_str());
  const std::string resilience = trace::renderResilienceTable(points);
  if (!resilience.empty()) printf("\n%s\n", resilience.c_str());
  bench::printSimsanReports(points);

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    trace::writeScalingCsv(csv, points);
    printf("\nwrote %s\n", csv.c_str());
  }

  // Simulator-throughput record (opt-in; default output is unchanged):
  // one extra timed run per retriever at the largest GPU count. The
  // simulated results of these runs are bit-identical to the sweep's —
  // only the wall clock around them is new.
  const std::string bench_json = cli.getString("bench-json");
  if (!bench_json.empty()) {
    const int gpus = static_cast<int>(cli.getInt("max-gpus"));
    const int batches = static_cast<int>(cli.getInt("batches"));
    engine::ExperimentConfig cfg = engine::weakScalingConfig(gpus);
    cfg.num_batches = batches;
    bench::applySimsanFlags(cli, cfg);
    bench::applyCacheFlags(cli, cfg);
    bench::applyFaultFlags(cli, cfg);
    bench::applyCoalesceFlag(cli, cfg);
    const auto retrievers = bench::retrieverList(cli);
    std::vector<double> wall_ms_per_batch, events_per_sec;
    std::vector<std::uint64_t> events;
    engine::ScenarioRunner runner(cfg);
    for (const auto& name : retrievers) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)runner.run(name);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      const auto processed =
          runner.builder().system().simulator().eventsProcessed();
      wall_ms_per_batch.push_back(wall_s * 1000.0 / batches);
      events_per_sec.push_back(wall_s > 0.0
                                   ? static_cast<double>(processed) / wall_s
                                   : 0.0);
      events.push_back(processed);
    }
    FILE* out = fopen(bench_json.c_str(), "w");
    PGASEMB_CHECK(out != nullptr,
                  "--bench-json: cannot open " + bench_json);
    const auto field = [&](const char* key, auto emit) {
      fprintf(out, "  \"%s\": {", key);
      for (std::size_t r = 0; r < retrievers.size(); ++r) {
        fprintf(out, "%s\"%s\": ", r == 0 ? "" : ", ",
                retrievers[r].c_str());
        emit(r);
      }
      fprintf(out, "}");
    };
    fprintf(out, "{\n  \"bench\": \"weak_scaling\",\n");
    fprintf(out, "  \"gpus\": %d,\n  \"batches\": %d,\n", gpus, batches);
    fprintf(out, "  \"coalesce\": %s,\n",
            cfg.coalesce_flows ? "true" : "false");
    field("sim_wall_ms_per_batch",
          [&](std::size_t r) { fprintf(out, "%.4f", wall_ms_per_batch[r]); });
    fprintf(out, ",\n");
    field("events_per_sec",
          [&](std::size_t r) { fprintf(out, "%.1f", events_per_sec[r]); });
    fprintf(out, ",\n");
    field("events_processed", [&](std::size_t r) {
      fprintf(out, "%llu", static_cast<unsigned long long>(events[r]));
    });
    fprintf(out, "\n}\n");
    fclose(out);
    printf("wrote %s\n", bench_json.c_str());
  }
  return 0;
}

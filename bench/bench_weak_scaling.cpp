// Reproduces the paper's weak-scaling results (§IV-A):
//   - the speedup table ("2.10x / 1.95x / 1.87x, geo-mean 1.97x")
//   - Figure 5: weak-scaling factor for baseline and PGAS fused
//
// Workload: per GPU, 64 embedding tables x 1M rows, dim 64, batch 16384,
// pooling U(1, 128), 100 inference batches on a simulated 4x V100
// NVLink-connected DGX.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Weak-scaling benchmark (paper Table 1 + Figure 5): PGAS fused vs "
      "NCCL-collective EMB retrieval.");
  cli.addInt("max-gpus", 4, "largest GPU count to sweep");
  cli.addInt("batches", 100, "inference batches per configuration");
  cli.addString("csv", "weak_scaling.csv", "output CSV path (empty = none)");
  bench::addRetrieversFlag(cli);
  bench::addSimsanFlag(cli);
  bench::addCacheFlags(cli);
  bench::addFaultFlags(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "Weak scaling: 64 tables/GPU x 1M rows, dim 64, batch 16384, "
      "pooling U(1,128)");
  const auto points = bench::sweepScaling(
      /*weak=*/true, static_cast<int>(cli.getInt("max-gpus")),
      static_cast<int>(cli.getInt("batches")), bench::retrieverList(cli),
      cli.getBool("simsan"), cli.getInt("cache-rows"),
      cli.getDouble("zipf-alpha"),
      [&](engine::ExperimentConfig& cfg) { bench::applyFaultFlags(cli, cfg); });

  printf("\n%s\n", trace::renderSpeedupTable(points).c_str());
  printf("(paper: 2.10x / 1.95x / 1.87x, geo-mean 1.97x)\n");
  bench::printPerGpuRuntimes(points);
  printf("\n%s\n",
         trace::renderScalingChart(points, /*weak=*/true).c_str());
  printf("(paper Fig 5: baseline drops to ~0.46 at 2 GPUs then stays "
         "flat; PGAS stays near 1.0)\n");
  const std::string cache_table = trace::renderCacheTable(points);
  if (!cache_table.empty()) printf("\n%s\n", cache_table.c_str());
  const std::string resilience = trace::renderResilienceTable(points);
  if (!resilience.empty()) printf("\n%s\n", resilience.c_str());
  bench::printSimsanReports(points);

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    trace::writeScalingCsv(csv, points);
    printf("\nwrote %s\n", csv.c_str());
  }
  return 0;
}

// Extension bench: full DLRM TRAINING step at paper scale (forward +
// MLP backward/all-reduce + EMB backward), combining both of the
// paper's axes: the forward retrieval scheme and the backward gradient
// exchange scheme.
#include <memory>

#include "bench_common.hpp"
#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "dlrm/trainer.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/table.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Full DLRM training step: collective vs PGAS on both the "
                "forward and backward EMB paths (4 GPUs, weak config).");
  cli.addInt("batches", 10, "steps per configuration");
  cli.addInt("gpus", 4, "GPU count");
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int steps = static_cast<int>(cli.getInt("batches"));

  bench::printHeader("Full training step (paper SV realized end-to-end)");

  emb::EmbLayerSpec spec = emb::weakScalingLayerSpec(gpus);
  dlrm::DlrmConfig model_cfg;
  model_cfg.dense_dim = 13;
  model_cfg.top_mlp = {512, 256, spec.dim};
  model_cfg.bottom_mlp = {512, 256, 1};

  ConsoleTable table({"forward", "backward", "step ms", "emb fwd ms",
                      "emb bwd ms", "mlp bwd ms"});
  double base_ms = 0.0;
  for (const bool pgas_fwd : {false, true}) {
    for (const bool pgas_bwd : {false, true}) {
      gpu::SystemConfig sys_cfg;
      sys_cfg.num_gpus = gpus;
      sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
      gpu::MultiGpuSystem system(sys_cfg);
      fabric::Fabric fabric(
          system.simulator(),
          std::make_unique<fabric::NvlinkAllToAllTopology>(
              gpus, fabric::LinkParams{}));
      collective::Communicator comm(system, fabric);
      pgas::PgasRuntime runtime(system, fabric);
      runtime.setCoalescingEnabled(!cli.getBool("no-coalesce"));
      emb::ShardedEmbeddingLayer layer(system, spec);
      dlrm::DlrmModel model(model_cfg, layer);
      std::unique_ptr<core::EmbeddingRetriever> retriever;
      if (pgas_fwd) {
        retriever = std::make_unique<core::PgasFusedRetriever>(
            layer, runtime, core::PgasRetrieverOptions{});
      } else {
        retriever =
            std::make_unique<core::CollectiveRetriever>(layer, comm);
      }
      dlrm::DlrmTrainer trainer(
          model, *retriever, comm, runtime, 0.01f,
          pgas_bwd ? dlrm::BackwardScheme::kPgasAtomics
                   : dlrm::BackwardScheme::kCollective);
      const auto sparse = emb::SparseBatch::statistical(spec.batchSpec());
      Rng rng(1);
      const auto dense = dlrm::DenseBatch::generateUniform(
          spec.batch_size, model_cfg.dense_dim, rng);
      SimTime total = SimTime::zero(), fwd = SimTime::zero(),
              bwd = SimTime::zero(), mlp = SimTime::zero();
      for (int i = 0; i < steps; ++i) {
        const auto r = trainer.step(dense, sparse);
        total += r.total;
        fwd += r.emb_forward.total;
        bwd += r.emb_backward.total;
        mlp += r.mlp_backward_time;
      }
      const double ms = total.toMs() / steps;
      if (!pgas_fwd && !pgas_bwd) base_ms = ms;
      table.addRow({pgas_fwd ? "pgas" : "collective",
                    pgas_bwd ? "pgas atomics" : "collective rounds",
                    ConsoleTable::num(ms, 3),
                    ConsoleTable::num(fwd.toMs() / steps, 3),
                    ConsoleTable::num(bwd.toMs() / steps, 3),
                    ConsoleTable::num(mlp.toMs() / steps, 3)});
    }
  }
  printf("\n%s\n", table.render().c_str());
  printf("full-PGAS training step speedup over full-collective: see "
         "rows 1 vs 4 (baseline %.3f ms)\n", base_ms);
  return 0;
}

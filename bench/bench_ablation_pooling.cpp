// Ablation A1: pooling-factor sweep (weak-scaling config, 4 GPUs).
//
// The pooling factor sets the compute-to-communication ratio: comm
// volume is fixed (one pooled vector per (table, sample)) while compute
// grows with the bag size. PGAS's advantage therefore *grows* with
// pooling (more window to hide the same traffic), and at very small
// pooling the fused kernel becomes drain-bound.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Pooling-factor ablation (4 GPUs, weak config).");
  cli.addInt("batches", 20, "batches per configuration");
  cli.addInt("gpus", 4, "GPU count");
  bench::addRetrieversFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;
  const auto retrievers = bench::retrieverList(cli);

  bench::printHeader("Ablation: pooling factor vs overlap headroom");

  const std::string ref_key = trace::runKey(retrievers.front());
  const std::string treat_key = trace::runKey(retrievers.back());
  ConsoleTable table({"max pooling", ref_key + " ms", treat_key + " ms",
                      "speedup", treat_key + " comm/compute"});
  for (const int pool : {2, 8, 32, 128, 512}) {
    auto cfg = engine::weakScalingConfig(static_cast<int>(cli.getInt("gpus")));
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    cfg.layer.max_pooling = pool;
    engine::ScenarioRunner runner(cfg);
    const auto runs = runner.runAll(retrievers);
    const auto& base = runs.front().result;
    const auto& pgas = runs.back().result;
    // Ratio of wire drain time to fused kernel time (per batch, approx):
    // wire bytes per GPU pair / raw link bw vs pgas batch time.
    const double wire_ms =
        static_cast<double>(pgas.total_wire_bytes) /
        (static_cast<double>(cfg.num_gpus) * (cfg.num_gpus - 1)) /
        cfg.link.bandwidth_bytes_per_sec * 1e3 /
        pgas.stats.batches * cfg.num_gpus * (cfg.num_gpus - 1) /
        cfg.num_gpus;  // per-GPU per-link share
    table.addRow({std::to_string(pool),
                  ConsoleTable::num(base.avgBatchMs(), 3),
                  ConsoleTable::num(pgas.avgBatchMs(), 3),
                  ConsoleTable::num(base.avgBatchMs() / pgas.avgBatchMs(),
                                    2) +
                      "x",
                  ConsoleTable::num(wire_ms / pgas.avgBatchMs(), 3)});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(comm volume is pooling-independent; compute scales with "
         "pooling, so overlap headroom grows with the bag size)\n");
  return 0;
}

// Ablation A7: overlap granularity — how finely the fused kernel's
// one-sided writes are spread over its timeline.
//
// `slices = 1` degenerates to "send everything when the kernel ends"
// (bulk-synchronous with no unpack: isolates the overlap benefit from
// the unpack-elimination benefit); high slice counts approach the
// paper's continuous fine-grained overlap. Also compares interconnect
// topologies, since port-shared fabrics (NVSwitch, ring) change how much
// spreading matters.
#include <memory>

#include "bench_common.hpp"
#include "collective/communicator.hpp"
#include "core/pgas_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/table.hpp"

using namespace pgasemb;

namespace {

enum class Topo { kPairwise, kNvSwitch, kRing };

double runOnce(int gpus, int slices, Topo topo, int batches) {
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = gpus;
  sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
  gpu::MultiGpuSystem system(sys_cfg);

  std::unique_ptr<fabric::Topology> t;
  fabric::LinkParams pair_link;  // defaults: 48 GB/s per pair direction
  switch (topo) {
    case Topo::kPairwise:
      t = std::make_unique<fabric::NvlinkAllToAllTopology>(gpus, pair_link);
      break;
    case Topo::kNvSwitch: {
      fabric::LinkParams port = pair_link;
      // One port carries what (gpus-1) pair links would: same aggregate.
      port.bandwidth_bytes_per_sec *= (gpus - 1);
      t = std::make_unique<fabric::NvSwitchTopology>(gpus, port);
      break;
    }
    case Topo::kRing:
      t = std::make_unique<fabric::RingTopology>(gpus, pair_link);
      break;
  }
  fabric::Fabric fabric(system.simulator(), std::move(t));
  pgas::PgasRuntime runtime(system, fabric);
  const auto spec = emb::weakScalingLayerSpec(gpus);
  emb::ShardedEmbeddingLayer layer(system, spec);
  core::PgasRetrieverOptions opts;
  opts.slices = slices;
  core::PgasFusedRetriever pgas(layer, runtime, opts);
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
  SimTime total = SimTime::zero();
  for (int b = 0; b < batches; ++b) total += pgas.runBatch(batch).total;
  return total.toMs() / batches;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Overlap-granularity ablation: kernel message slices x "
                "interconnect topology (4 GPUs, weak config).");
  cli.addInt("batches", 5, "batches per configuration");
  cli.addInt("gpus", 4, "GPU count");
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));

  bench::printHeader(
      "Ablation: in-kernel message granularity (overlap) x topology");

  ConsoleTable table({"slices", "pairwise NVLink ms", "NVSwitch ms",
                      "ring ms"});
  for (const int slices : {1, 2, 4, 16, 64, 256, 1024}) {
    table.addRow({std::to_string(slices),
                  ConsoleTable::num(
                      runOnce(gpus, slices, Topo::kPairwise, batches), 3),
                  ConsoleTable::num(
                      runOnce(gpus, slices, Topo::kNvSwitch, batches), 3),
                  ConsoleTable::num(
                      runOnce(gpus, slices, Topo::kRing, batches), 3)});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(slices=1 defers all writes to kernel end — bulk-synchronous "
         "without\n unpack; the gap to high slice counts is the pure "
         "overlap benefit.\n The ring pays multi-hop store-and-forward; "
         "spreading matters more there.)\n");
  return 0;
}

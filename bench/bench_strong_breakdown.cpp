// Reproduces the paper's Figure 9: strong-scaling runtime breakdown.
//
// Expected shapes (paper §IV-B2a): computation drops at 2 GPUs then
// flattens (latency-limited lookups); communication decreases;
// sync+unpack increases; the baseline's 2-GPU total exceeds its 1-GPU
// total (~1.8x) while PGAS achieves ~1.6x speedup at 2 GPUs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Strong-scaling runtime breakdown (paper Figure 9).");
  cli.addInt("max-gpus", 4, "largest GPU count to sweep");
  cli.addInt("batches", 100, "inference batches per configuration");
  cli.addString("csv", "strong_breakdown.csv", "output CSV path");
  bench::addRetrieversFlag(cli);
  bench::addCacheFlags(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader("Strong-scaling runtime breakdown (Figure 9)");
  const auto points = bench::sweepScaling(
      /*weak=*/false, static_cast<int>(cli.getInt("max-gpus")),
      static_cast<int>(cli.getInt("batches")), bench::retrieverList(cli),
      /*simsan=*/false, cli.getInt("cache-rows"),
      cli.getDouble("zipf-alpha"));

  printf("\n%s\n",
         trace::renderBreakdownBars(points,
                                    "Per-batch breakdown, strong scaling "
                                    "(ms)")
             .c_str());

  const std::string total_col =
      trace::runKey(points[0].treatment().retriever) + " total";
  printf("%-6s %-12s %-14s %-14s %-12s\n", "GPUs", "compute", "comm",
         "sync+unpack", total_col.c_str());
  for (const auto& p : points) {
    const auto& ref = p.reference().result;
    printf("%-6d %-12.3f %-14.3f %-14.3f %-12.3f\n", p.gpus,
           ref.avgComputeMs(), ref.avgCommunicationMs(),
           ref.avgSyncUnpackMs(), p.treatment().result.avgBatchMs());
  }

  double base1 = 0.0, base2 = 0.0, pgas1 = 0.0, pgas2 = 0.0;
  for (const auto& p : points) {
    if (p.gpus == 1) {
      base1 = p.reference().result.avgBatchMs();
      pgas1 = p.treatment().result.avgBatchMs();
    }
    if (p.gpus == 2) {
      base2 = p.reference().result.avgBatchMs();
      pgas2 = p.treatment().result.avgBatchMs();
    }
  }
  if (base1 > 0 && base2 > 0) {
    printf("\nbaseline 2-GPU total / 1-GPU total: %.2fx (paper: ~1.8x)\n",
           base2 / base1);
    printf("PGAS 2-GPU speedup over 1 GPU: %.2fx (paper: ~1.6x)\n",
           pgas1 / pgas2);
  }

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    trace::writeScalingCsv(csv, points);
    printf("\nwrote %s\n", csv.c_str());
  }
  return 0;
}

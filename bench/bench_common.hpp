// Shared scaffolding for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "trace/experiment.hpp"
#include "trace/report.hpp"
#include "util/cli.hpp"

namespace pgasemb::bench {

/// Run baseline + PGAS at 1..max_gpus for one scaling mode.
inline std::vector<trace::ScalingPoint> sweepScaling(bool weak,
                                                     int max_gpus,
                                                     int num_batches) {
  std::vector<trace::ScalingPoint> points;
  for (int gpus = 1; gpus <= max_gpus; ++gpus) {
    trace::ExperimentConfig cfg = weak ? trace::weakScalingConfig(gpus)
                                       : trace::strongScalingConfig(gpus);
    cfg.num_batches = num_batches;
    trace::ScalingPoint point;
    point.gpus = gpus;
    point.baseline =
        trace::runExperiment(cfg, trace::RetrieverKind::kCollectiveBaseline);
    point.pgas = trace::runExperiment(cfg, trace::RetrieverKind::kPgasFused);
    points.push_back(std::move(point));
  }
  return points;
}

inline void printHeader(const std::string& title) {
  printf("==========================================================\n");
  printf("%s\n", title.c_str());
  printf("==========================================================\n");
}

inline void printPerGpuRuntimes(const std::vector<trace::ScalingPoint>& pts) {
  printf("\nPer-batch EMB-layer time (ms), accumulated over %d batches:\n",
         pts.empty() ? 0 : pts[0].baseline.stats.batches);
  for (const auto& p : pts) {
    printf("  %d GPU(s): baseline %8.3f ms   pgas %8.3f ms   speedup %.2fx\n",
           p.gpus, p.baseline.avgBatchMs(), p.pgas.avgBatchMs(),
           p.speedup());
  }
}

}  // namespace pgasemb::bench

// Shared scaffolding for the paper-reproduction benchmark binaries.
//
// All benches dispatch retrievers by registry name through
// engine::ScenarioRunner; the shared --retrievers=a,b,c flag picks which
// strategies a sweep compares (first name = reference/baseline).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "trace/report.hpp"
#include "util/cli.hpp"
#include "util/expect.hpp"

namespace pgasemb::bench {

/// The paper's comparison pair: NCCL collective baseline vs PGAS fused.
inline constexpr const char* kDefaultRetrievers = "nccl_collective,pgas_fused";

/// Registers the shared --retrievers flag (comma-separated registry
/// names; first is the reference the others are compared against).
inline std::string registeredRetrieverNames() {
  std::string known;
  for (const auto& name : core::RetrieverRegistry::instance().names()) {
    known += (known.empty() ? "" : ",") + name;
  }
  return known;
}

inline void addRetrieversFlag(CliParser& cli,
                              const char* defaults = kDefaultRetrievers) {
  cli.addString("retrievers", defaults,
                "comma-separated retriever names to compare (first = "
                "reference); registered: " + registeredRetrieverNames());
}

/// Parses the --retrievers flag into a validated, non-empty name list.
inline std::vector<std::string> retrieverList(const CliParser& cli) {
  const std::string spec = cli.getString("retrievers");
  std::vector<std::string> names;
  std::string current;
  for (const char c : spec) {
    if (c == ',') {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  if (!current.empty()) names.push_back(current);
  // Fail fast and clean (exit 2, no uncaught-exception abort): a typoed
  // retriever name is an operator error, not a library bug.
  if (names.empty()) {
    fprintf(stderr, "--retrievers needs at least one name (registered: %s)\n",
            registeredRetrieverNames().c_str());
    std::exit(2);
  }
  for (const auto& name : names) {
    if (!core::RetrieverRegistry::instance().contains(name)) {
      fprintf(stderr, "--retrievers: unknown retriever '%s' (registered: %s)\n",
              name.c_str(), registeredRetrieverNames().c_str());
      std::exit(2);
    }
  }
  return names;
}

/// Registers the shared --no-coalesce flag (TimingOnly fast-path escape
/// hatch). Simulated results are identical either way — the flag exists
/// for parity checks and for debugging with per-message event order.
inline void addCoalesceFlag(CliParser& cli) {
  cli.addBool("no-coalesce", false,
              "disable the TimingOnly per-flow event-coalescing fast path "
              "(simulated results are identical; runs are just slower)");
}

/// Applies the --no-coalesce flag to a config.
inline void applyCoalesceFlag(const CliParser& cli,
                              engine::ExperimentConfig& cfg) {
  if (cli.getBool("no-coalesce")) cfg.coalesce_flows = false;
}

/// Registers the shared --simsan flag (opt-in dynamic checking) and its
/// strict-effects escalation.
inline void addSimsanFlag(CliParser& cli) {
  cli.addBool("simsan", false,
              "attach the simsan happens-before race / bounds / lifetime "
              "checker and print its per-run report (timings unchanged)");
  cli.addBool("simsan-strict", false,
              "strict-effects mode (implies --simsan): record actual "
              "simulated-memory touches per kernel/transfer and fail when "
              "an access escapes the declared MemEffect footprint");
}

/// Applies --simsan / --simsan-strict to a config.
inline void applySimsanFlags(const CliParser& cli,
                             engine::ExperimentConfig& cfg) {
  cfg.simsan = cli.getBool("simsan");
  cfg.simsan_strict = cli.getBool("simsan-strict");
}

/// Registers the shared replica-cache flags. Defaults (0, 0.0) keep
/// every code path — and all stdout/CSV output — identical to a
/// cache-less build.
inline void addCacheFlags(CliParser& cli) {
  cli.addInt("cache-rows", 0,
             "hot-row replica cache capacity per table per GPU (rows); "
             "0 disables the cache");
  cli.addDouble("zipf-alpha", 0.0,
                "Zipf skew of the raw embedding indices (0 = uniform)");
}

/// Applies the --cache-rows / --zipf-alpha flags to a config.
inline void applyCacheFlags(const CliParser& cli,
                            engine::ExperimentConfig& cfg) {
  cfg.cache_rows = cli.getInt("cache-rows");
  cfg.layer.zipf_alpha = cli.getDouble("zipf-alpha");
}

/// Registers the shared fault-injection flags. Defaults ("" spec) build
/// no injector, keeping every code path — and all stdout/CSV output —
/// identical to a fault-free build.
inline void addFaultFlags(CliParser& cli) {
  cli.addString("faults", "",
                "comma-separated fault specs, e.g. "
                "link-degrade:0-1:0.5,link-flap:*:1.0-2.0,straggler:2:3; "
                "empty = no fault injection");
  cli.addInt("fault-seed", 0,
             "seed for fault windows not pinned in the spec (same seed = "
             "same schedule)");
  cli.addDouble("fault-horizon-ms", 100.0,
                "horizon (ms) the seeded windows of unwindowed fault specs "
                "are drawn over — size it to the run length so the faults "
                "land mid-run");
  cli.addDouble("slo-ms", 0.0,
                "per-batch latency SLO in ms; after --slo-patience "
                "consecutive over-SLO batches the run falls back to "
                "nccl_collective (0 = no fallback policy)");
  cli.addInt("slo-patience", 3,
             "consecutive over-SLO batches tolerated before falling back");
}

/// Applies the fault flags to a config. With the default empty --faults
/// and zero --slo-ms this is a no-op.
inline void applyFaultFlags(const CliParser& cli,
                            engine::ExperimentConfig& cfg) {
  const std::string spec = cli.getString("faults");
  if (!spec.empty()) {
    // Fail fast and clean (exit 2, no uncaught-exception abort): a
    // malformed fault spec is an operator error, not a library bug.
    try {
      cfg.faults = fault::FaultPlan::parse(
          spec, static_cast<std::uint64_t>(cli.getInt("fault-seed")),
          SimTime::ms(cli.getDouble("fault-horizon-ms")));
    } catch (const Error& e) {
      fprintf(stderr, "%s\n(run with --help for usage)\n", e.what());
      std::exit(2);
    }
  }
  const double slo_ms = cli.getDouble("slo-ms");
  if (slo_ms > 0.0) {
    cfg.fallback.slo_ms = slo_ms;
    cfg.fallback.patience = static_cast<int>(cli.getInt("slo-patience"));
  }
}

/// Registers the shared serving admission-control flags (DESIGN.md
/// §13). Defaults (unbounded queue, no deadline, controller off) keep
/// the serving path — and all stdout/CSV output — identical to a
/// pre-admission build.
inline void addAdmissionFlags(CliParser& cli) {
  cli.addInt("admit-queue", 0,
             "bounded admission queue (pending queries); when full, "
             "--shed-policy decides which query pays (0 = unbounded)");
  cli.addString("shed-policy", "block",
                "full-queue policy: block (admit anyway, count it) | "
                "shed-oldest (evict the queue head) | shed-newest (drop "
                "the arrival)");
  cli.addDouble("query-deadline-ms", 0.0,
                "per-query queue-wait deadline (ms of simulated time); "
                "queries still queued past it are shed as deadline "
                "misses (0 = off)");
  cli.addInt("admit-window", 0,
             "sliding-window admission controller: completed queries per "
             "p95 window; sheds incoming load while the window p95 "
             "exceeds --slo-ms (0 = off)");
}

/// Applies the admission flags to a config. With the defaults this is a
/// no-op.
inline void applyAdmissionFlags(const CliParser& cli,
                                engine::ExperimentConfig& cfg) {
  cfg.serving.admit_queue = cli.getInt("admit-queue");
  try {
    cfg.serving.shed_policy =
        engine::parseShedPolicy(cli.getString("shed-policy"));
  } catch (const Error& e) {
    fprintf(stderr, "%s\n(run with --help for usage)\n", e.what());
    std::exit(2);
  }
  cfg.serving.query_deadline_ms = cli.getDouble("query-deadline-ms");
  cfg.serving.admit_window = static_cast<int>(cli.getInt("admit-window"));
}

/// Registers the shared multi-node flags (DESIGN.md §12). Defaults
/// (flat all-to-all, no compression, per-flow NIC queues) keep every
/// code path — and all stdout/CSV output — identical to earlier builds.
inline void addMultinodeFlags(CliParser& cli) {
  cli.addBool("hierarchical-a2a", false,
              "route inter-node traffic hierarchically: NVLink gather to "
              "the node leader, one aggregated flow per node pair, NVLink "
              "scatter (no effect on a single node)");
  cli.addDouble("compress-bound", 0.0,
                "absolute error bound for lossy compression of inter-node "
                "flows (0 = off); Functional runs really transcode, so "
                "the reported error is measured, not estimated");
  cli.addBool("compress-adaptive", false,
              "pick the per-window quantization width from observed NIC "
              "egress utilization instead of always using the tightest "
              "width the bound allows (requires --compress-bound > 0)");
  cli.addBool("nic-shared-queue", false,
              "serialize each node's inter-node flows through one shared "
              "NIC injection queue instead of per-flow queues");
}

/// Applies the multi-node flags to a config.
inline void applyMultinodeFlags(const CliParser& cli,
                                engine::ExperimentConfig& cfg) {
  cfg.hierarchical_a2a = cli.getBool("hierarchical-a2a");
  cfg.compress_bound = cli.getDouble("compress-bound");
  cfg.compress_adaptive = cli.getBool("compress-adaptive");
  cfg.nic_shared_queue = cli.getBool("nic-shared-queue");
}

/// Cross-field config validation at flag-parse time. Fail fast and
/// clean (exit 2, no uncaught-exception abort): an inconsistent flag
/// combination is an operator error, not a library bug.
inline void validateOrExit(const engine::ExperimentConfig& cfg) {
  try {
    cfg.validate();
  } catch (const Error& e) {
    fprintf(stderr, "%s\n(run with --help for usage)\n", e.what());
    std::exit(2);
  }
}

/// Run every named retriever at 1..max_gpus for one scaling mode.
/// `tweak` (optional) edits each point's config before the runner is
/// built — fault plans, SLO policies, link overrides.
inline std::vector<trace::ScalingPoint> sweepScaling(
    bool weak, int max_gpus, int num_batches,
    const std::vector<std::string>& retrievers, bool simsan = false,
    std::int64_t cache_rows = 0, double zipf_alpha = 0.0,
    const std::function<void(engine::ExperimentConfig&)>& tweak = nullptr,
    bool simsan_strict = false) {
  std::vector<trace::ScalingPoint> points;
  for (int gpus = 1; gpus <= max_gpus; ++gpus) {
    engine::ExperimentConfig cfg = weak ? engine::weakScalingConfig(gpus)
                                        : engine::strongScalingConfig(gpus);
    cfg.num_batches = num_batches;
    cfg.simsan = simsan;
    cfg.simsan_strict = simsan_strict;
    cfg.cache_rows = cache_rows;
    cfg.layer.zipf_alpha = zipf_alpha;
    if (tweak) tweak(cfg);
    engine::ScenarioRunner runner(cfg);
    trace::ScalingPoint point;
    point.gpus = gpus;
    point.runs = runner.runAll(retrievers);
    points.push_back(std::move(point));
  }
  return points;
}

/// Prints one simsan verdict line per run (only when reports exist, so
/// output without --simsan is unchanged).
inline void printSimsanReports(const std::vector<trace::ScalingPoint>& pts) {
  bool any = false;
  for (const auto& p : pts) {
    for (const auto& run : p.runs) {
      if (!run.result.sanitizer) continue;
      if (!any) printf("\nsimsan:\n");
      any = true;
      printf("  %d GPU(s) %-16s %s\n", p.gpus, run.retriever.c_str(),
             run.result.sanitizer->report().c_str());
    }
  }
}

inline void printHeader(const std::string& title) {
  printf("==========================================================\n");
  printf("%s\n", title.c_str());
  printf("==========================================================\n");
}

inline void printPerGpuRuntimes(const std::vector<trace::ScalingPoint>& pts) {
  if (pts.empty() || pts[0].runs.empty()) {
    printf("\n(no scaling points to report — the sweep produced no runs)\n");
    return;
  }
  printf("\nPer-batch EMB-layer time (ms), accumulated over %d batches:\n",
         pts[0].reference().result.stats.batches);
  for (const auto& p : pts) {
    printf("  %d GPU(s):", p.gpus);
    for (const auto& run : p.runs) {
      printf(" %s %8.3f ms  ", trace::runKey(run.retriever).c_str(),
             run.result.avgBatchMs());
    }
    printf(" speedup %.2fx\n", p.speedup());
  }
}

}  // namespace pgasemb::bench

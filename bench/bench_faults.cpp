// Fault-severity sweep: how gracefully does each retrieval strategy
// degrade under injected link degradation, flaps, stragglers, and
// launch failures?
//
// Runs every named retriever at one GPU count across a ladder of
// severity levels (none / light / moderate / heavy) and reports the
// per-batch slowdown next to the resilience counters that explain it —
// retransmits, collective reissues, dropped flows, launch retries, and
// recovery time. `none` doubles as the control: its row must match the
// fault-free benches exactly (the fault layer is zero-cost when off).
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

struct Severity {
  const char* name;
  const char* spec;  ///< FaultPlan grammar; "" = no injection
};

// The heavy level's link flap is appended with an explicit window at
// run time (mid-run, width bounded by the retry budget) — a seed-drawn
// flap window could be wider than the retransmit backoff covers.
// "flap" is the flap alone: with no other fault stretching the batches,
// the calibrated window provably overlaps in-flight wire traffic for
// the reference strategy too (in "heavy" the degrade+straggler shift
// the baseline's phases, so whether its chunks are mid-flap depends on
// the workload).
constexpr Severity kSeverities[] = {
    {"none", ""},
    {"light", "link-degrade:0-1:0.7"},
    {"moderate", "link-degrade:*:0.5,straggler:0:2"},
    {"flap", "+flap"},
    {"heavy", "link-degrade:*:0.35,straggler:0:3,launch-fail:1:0.3+flap"},
};

/// Mid-run flap spec: placed inside a middle batch's communication phase
/// (computed from the calibration run's breakdown, so chunks are
/// actually in flight when the link dies), width capped at 8 ms so every
/// dropped flow recovers within the default retry budget.
std::string midRunFlap(double start_ms, double width_ms) {
  char buf[96];
  snprintf(buf, sizeof(buf), ",link-flap:*:%.3f-%.3f", start_ms,
           start_ms + std::min(8.0, width_ms));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Fault-severity x retriever sweep: per-batch slowdown and "
      "resilience counters under injected faults.");
  cli.addInt("gpus", 4, "GPU count to run every severity level at");
  cli.addInt("batches", 20, "inference batches per run");
  cli.addInt("fault-seed", 7, "seed for the unpinned fault windows");
  cli.addString("csv", "fault_sweep.csv", "output CSV path (empty = none)");
  bench::addRetrieversFlag(cli);
  bench::addSimsanFlag(cli);
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));
  const auto seed = static_cast<std::uint64_t>(cli.getInt("fault-seed"));
  const auto retrievers = bench::retrieverList(cli);

  bench::printHeader("Fault-severity sweep at " + std::to_string(gpus) +
                     " GPUs, " + std::to_string(batches) +
                     " batches, fault seed " + std::to_string(seed));

  ConsoleTable table({"Severity", "retriever", "ms/batch", "drops",
                      "retransmits", "reissues", "launch retries",
                      "recovery ms"});
  std::unique_ptr<CsvWriter> csv;
  const std::string csv_path = cli.getString("csv");
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{
            "severity", "retriever", "avg_batch_ms", "dropped_flows",
            "retransmits", "retransmitted_bytes", "collective_reissues",
            "launch_retries", "fallbacks", "recovery_ms"});
  }

  std::vector<trace::ScalingPoint> points;
  // The 'none' run (always first) calibrates the fault horizon: seeded
  // windows are drawn across the measured fault-free run length, so the
  // faults actually overlap the traffic whatever --gpus/--batches is.
  SimTime horizon = SimTime::ms(10.0);
  double flap_start_ms = 1.0;
  double flap_width_ms = 2.0;
  for (const Severity& sev : kSeverities) {
    engine::ExperimentConfig cfg = engine::weakScalingConfig(gpus);
    cfg.num_batches = batches;
    bench::applySimsanFlags(cli, cfg);
    if (sev.spec[0] != '\0') {
      std::string spec = sev.spec;
      const auto marker = spec.find("+flap");
      if (marker != std::string::npos) {
        spec.erase(marker);
        const std::string flap = midRunFlap(flap_start_ms, flap_width_ms);
        spec += spec.empty() ? flap.substr(1) : flap;
      }
      cfg.faults = fault::FaultPlan::parse(spec, seed, horizon);
    }
    bench::applyCoalesceFlag(cli, cfg);
    engine::ScenarioRunner runner(cfg);
    trace::ScalingPoint point;
    point.gpus = gpus;
    point.runs = runner.runAll(retrievers);
    if (sev.spec[0] == '\0' && !point.runs.empty()) {
      const auto& ref = point.runs.front().result;
      const double batch_ms = ref.avgBatchMs();
      if (batch_ms > 0.0) {
        horizon = SimTime::ms(batch_ms * batches);
        // Drop the flap into a middle batch's post-compute (wire) phase,
        // where the reference strategy has chunks in flight.
        const double comm_ms = batch_ms - ref.avgComputeMs();
        flap_start_ms = (batches / 2) * batch_ms + ref.avgComputeMs() +
                        0.25 * comm_ms;
        flap_width_ms = std::max(0.5, comm_ms * 0.5);
      }
    }
    for (const auto& run : point.runs) {
      fault::ResilienceStats rs;
      if (run.result.resilience) rs = *run.result.resilience;
      table.addRow({sev.name, trace::runKey(run.retriever),
                    ConsoleTable::num(run.result.avgBatchMs(), 3),
                    std::to_string(rs.dropped_flows),
                    std::to_string(rs.retransmits),
                    std::to_string(rs.collective_reissues),
                    std::to_string(rs.launch_retries),
                    ConsoleTable::num(rs.recovery_latency.toMs(), 3)});
      if (csv) {
        csv->addRow({sev.name, run.retriever,
                     ConsoleTable::num(run.result.avgBatchMs(), 4),
                     std::to_string(rs.dropped_flows),
                     std::to_string(rs.retransmits),
                     std::to_string(rs.retransmitted_bytes),
                     std::to_string(rs.collective_reissues),
                     std::to_string(rs.launch_retries),
                     std::to_string(rs.fallback_switches),
                     ConsoleTable::num(rs.recovery_latency.toMs(), 4)});
      }
    }
    points.push_back(std::move(point));
  }

  printf("\n%s\n", table.render().c_str());
  printf("('none' must match the fault-free benches exactly — the fault "
         "layer is zero-cost when off)\n");
  bench::printSimsanReports(points);
  if (csv) {
    csv->close();
    printf("\nwrote %s\n", csv_path.c_str());
  }
  return 0;
}

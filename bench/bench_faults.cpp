// Fault-severity sweep: how gracefully does each retrieval strategy
// degrade under injected link degradation, flaps, stragglers, and
// launch failures?
//
// Runs every named retriever at one GPU count across a ladder of
// severity levels (none / light / moderate / heavy) and reports the
// per-batch slowdown next to the resilience counters that explain it —
// retransmits, collective reissues, dropped flows, launch retries, and
// recovery time. `none` doubles as the control: its row must match the
// fault-free benches exactly (the fault layer is zero-cost when off).
//
// --nodes N (N > 1) switches to the node-level fault-domain sweep
// (DESIGN.md §13): hierarchical all-to-all across N nodes under the
// node-scoped fault kinds (nic-degrade, nic-flap, leader-fail,
// node-straggle), reporting per-pair degraded-mode fallbacks, leader
// failovers, and staging rebuilds next to the classic counters.
// --bench-json additionally records the tracked resilience metrics
// (recovery ms, degraded-mode fraction, serving goodput under overload)
// for the scripts/check_perf.py gate.
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "engine/serving_runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace pgasemb;

struct Severity {
  const char* name;
  const char* spec;  ///< FaultPlan grammar; "" = no injection
};

// The heavy level's link flap is appended with an explicit window at
// run time (mid-run, width bounded by the retry budget) — a seed-drawn
// flap window could be wider than the retransmit backoff covers.
// "flap" is the flap alone: with no other fault stretching the batches,
// the calibrated window provably overlaps in-flight wire traffic for
// the reference strategy too (in "heavy" the degrade+straggler shift
// the baseline's phases, so whether its chunks are mid-flap depends on
// the workload).
constexpr Severity kSeverities[] = {
    {"none", ""},
    {"light", "link-degrade:0-1:0.7"},
    {"moderate", "link-degrade:*:0.5,straggler:0:2"},
    {"flap", "+flap"},
    {"heavy", "link-degrade:*:0.35,straggler:0:3,launch-fail:1:0.3+flap"},
};

// Node-scoped ladder (--nodes > 1): one level per fault kind so the
// counters attribute cleanly, then a combined heavy level. Seeded
// windows are drawn over the calibrated horizon; the nic-flap width is
// clamped by the plan to half the retry budget, so dropped inter-node
// flows always recover.
constexpr Severity kNodeSeverities[] = {
    {"none", ""},
    {"nic-degrade", "nic-degrade:0:0.5"},
    {"nic-flap", "nic-flap:0"},
    {"leader-fail", "leader-fail:0"},
    {"node-straggle", "node-straggle:0:2"},
    {"heavy", "nic-degrade:*:0.6,nic-flap:1,leader-fail:0"},
};

/// Mid-run flap spec: placed inside a middle batch's communication phase
/// (computed from the calibration run's breakdown, so chunks are
/// actually in flight when the link dies), width capped at 8 ms so every
/// dropped flow recovers within the default retry budget.
std::string midRunFlap(double start_ms, double width_ms) {
  char buf[96];
  snprintf(buf, sizeof(buf), ",link-flap:*:%.3f-%.3f", start_ms,
           start_ms + std::min(8.0, width_ms));
  return buf;
}

/// IB-like inter-node links (the bench_multinode parameters): 25 GB/s,
/// 5 us, 64 B headers, 10 M msg/s.
void applyInterNodeLink(engine::ExperimentConfig& cfg, int nodes) {
  if (nodes <= 1) return;
  cfg.num_nodes = nodes;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5.0);
  cfg.inter_node_link.header_bytes = 64;
  cfg.inter_node_link.max_messages_per_sec = 10e6;
}

/// Serving goodput under overload: offered load far past the 2-GPU knee
/// with the full admission stack armed (bounded queue + shed-oldest,
/// queue-wait deadlines, sliding-window controller against a 2 ms SLO).
/// Deterministic for the fixed seed, so the perf gate can track it.
double overloadGoodputQps(const std::string& retriever) {
  engine::ExperimentConfig cfg;
  cfg.num_gpus = 2;
  cfg.layer = emb::servingLayerSpec(2, 256);
  cfg.serving.num_queries = 600;
  cfg.serving.qps = 256000.0;
  cfg.serving.max_wait_ms = 0.2;
  cfg.serving.slo_ms = 2.0;
  cfg.serving.admit_queue = 64;
  cfg.serving.shed_policy = engine::ShedPolicy::kShedOldest;
  cfg.serving.query_deadline_ms = 4.0;
  cfg.serving.admit_window = 50;
  bench::validateOrExit(cfg);
  engine::ServingRunner runner(cfg);
  const auto result = runner.run(retriever);
  return result.serving ? result.serving->goodput_qps : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Fault-severity x retriever sweep: per-batch slowdown and "
      "resilience counters under injected faults.");
  cli.addInt("gpus", 4,
             "total GPU count to run every severity level at (with "
             "--nodes > 1: must be divisible by the node count)");
  cli.addInt("batches", 20, "inference batches per run");
  cli.addInt("fault-seed", 7, "seed for the unpinned fault windows");
  cli.addInt("nodes", 0,
             "node count for the node-level fault-domain sweep "
             "(nic/leader/node faults against the hierarchical a2a); "
             "0 or 1 = the classic single-node ladder");
  cli.addString("csv", "fault_sweep.csv", "output CSV path (empty = none)");
  cli.addString("bench-json", "",
                "write the tracked resilience metrics (recovery ms, "
                "degraded-mode fraction, serving goodput under overload) "
                "to this path; empty = off");
  bench::addRetrieversFlag(cli);
  bench::addSimsanFlag(cli);
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));
  const int nodes = static_cast<int>(cli.getInt("nodes"));
  const auto seed = static_cast<std::uint64_t>(cli.getInt("fault-seed"));
  const auto retrievers = bench::retrieverList(cli);
  const bool node_mode = nodes > 1;
  if (node_mode && (gpus % nodes != 0 || gpus / nodes < 2)) {
    fprintf(stderr,
            "--nodes %d needs --gpus divisible by it with >= 2 GPUs per "
            "node (got %d)\n",
            nodes, gpus);
    return 2;
  }

  if (node_mode) {
    bench::printHeader(
        "Node-level fault domains at " + std::to_string(nodes) + " nodes x " +
        std::to_string(gpus / nodes) + " GPUs (hierarchical a2a), " +
        std::to_string(batches) + " batches, fault seed " +
        std::to_string(seed));
  } else {
    bench::printHeader("Fault-severity sweep at " + std::to_string(gpus) +
                       " GPUs, " + std::to_string(batches) +
                       " batches, fault seed " + std::to_string(seed));
  }

  std::vector<std::string> table_headers{
      "Severity", "retriever", "ms/batch", "drops", "retransmits",
      "reissues", "launch retries", "recovery ms"};
  if (node_mode) {
    table_headers.insert(table_headers.end(),
                         {"hier fb", "degraded ms", "failovers", "rebuilds"});
  }
  ConsoleTable table(table_headers);
  std::unique_ptr<CsvWriter> csv;
  const std::string csv_path = cli.getString("csv");
  if (!csv_path.empty()) {
    std::vector<std::string> csv_headers{
        "severity", "retriever", "avg_batch_ms", "dropped_flows",
        "retransmits", "retransmitted_bytes", "collective_reissues",
        "launch_retries", "fallbacks", "recovery_ms"};
    if (node_mode) {
      csv_headers.insert(csv_headers.end(),
                         {"hier_fallbacks", "degraded_ms",
                          "leader_failovers", "staging_rebuilds"});
    }
    csv = std::make_unique<CsvWriter>(csv_path, csv_headers);
  }

  // Tracked metrics, accumulated over the faulted severity levels.
  std::vector<double> recovery_ms(retrievers.size(), 0.0);
  std::vector<double> degraded_ms(retrievers.size(), 0.0);
  std::vector<double> faulted_total_ms(retrievers.size(), 0.0);

  std::vector<trace::ScalingPoint> points;
  // The 'none' run (always first) calibrates the fault horizon: seeded
  // windows are drawn across the measured fault-free run length, so the
  // faults actually overlap the traffic whatever --gpus/--batches is.
  SimTime horizon = SimTime::ms(10.0);
  double flap_start_ms = 1.0;
  double flap_width_ms = 2.0;
  const auto severities =
      node_mode ? std::vector<Severity>(std::begin(kNodeSeverities),
                                        std::end(kNodeSeverities))
                : std::vector<Severity>(std::begin(kSeverities),
                                        std::end(kSeverities));
  for (const Severity& sev : severities) {
    engine::ExperimentConfig cfg = engine::weakScalingConfig(gpus);
    if (node_mode) {
      cfg.layer = emb::multinodeServingLayerSpec(gpus);
      applyInterNodeLink(cfg, nodes);
      cfg.hierarchical_a2a = true;
    }
    cfg.num_batches = batches;
    bench::applySimsanFlags(cli, cfg);
    if (sev.spec[0] != '\0') {
      std::string spec = sev.spec;
      const auto marker = spec.find("+flap");
      if (marker != std::string::npos) {
        spec.erase(marker);
        const std::string flap = midRunFlap(flap_start_ms, flap_width_ms);
        spec += spec.empty() ? flap.substr(1) : flap;
      }
      cfg.faults = fault::FaultPlan::parse(spec, seed, horizon);
    }
    bench::applyCoalesceFlag(cli, cfg);
    bench::validateOrExit(cfg);
    engine::ScenarioRunner runner(cfg);
    trace::ScalingPoint point;
    point.gpus = gpus;
    point.runs = runner.runAll(retrievers);
    if (sev.spec[0] == '\0' && !point.runs.empty()) {
      const auto& ref = point.runs.front().result;
      const double batch_ms = ref.avgBatchMs();
      if (batch_ms > 0.0) {
        horizon = SimTime::ms(batch_ms * batches);
        // Drop the flap into a middle batch's post-compute (wire) phase,
        // where the reference strategy has chunks in flight.
        const double comm_ms = batch_ms - ref.avgComputeMs();
        flap_start_ms = (batches / 2) * batch_ms + ref.avgComputeMs() +
                        0.25 * comm_ms;
        flap_width_ms = std::max(0.5, comm_ms * 0.5);
      }
    }
    for (std::size_t r = 0; r < point.runs.size(); ++r) {
      const auto& run = point.runs[r];
      fault::ResilienceStats rs;
      if (run.result.resilience) rs = *run.result.resilience;
      if (sev.spec[0] != '\0') {
        recovery_ms[r] += rs.recovery_latency.toMs();
        degraded_ms[r] += rs.degraded_time.toMs();
        faulted_total_ms[r] += run.result.stats.total.toMs();
      }
      std::vector<std::string> row{
          sev.name, trace::runKey(run.retriever),
          ConsoleTable::num(run.result.avgBatchMs(), 3),
          std::to_string(rs.dropped_flows),
          std::to_string(rs.retransmits),
          std::to_string(rs.collective_reissues),
          std::to_string(rs.launch_retries),
          ConsoleTable::num(rs.recovery_latency.toMs(), 3)};
      if (node_mode) {
        row.push_back(std::to_string(rs.hier_fallbacks));
        row.push_back(ConsoleTable::num(rs.degraded_time.toMs(), 3));
        row.push_back(std::to_string(rs.leader_failovers));
        row.push_back(std::to_string(rs.staging_rebuilds));
      }
      table.addRow(row);
      if (csv) {
        std::vector<std::string> csv_row{
            sev.name, run.retriever,
            ConsoleTable::num(run.result.avgBatchMs(), 4),
            std::to_string(rs.dropped_flows),
            std::to_string(rs.retransmits),
            std::to_string(rs.retransmitted_bytes),
            std::to_string(rs.collective_reissues),
            std::to_string(rs.launch_retries),
            std::to_string(rs.fallback_switches),
            ConsoleTable::num(rs.recovery_latency.toMs(), 4)};
        if (node_mode) {
          csv_row.push_back(std::to_string(rs.hier_fallbacks));
          csv_row.push_back(ConsoleTable::num(rs.degraded_time.toMs(), 4));
          csv_row.push_back(std::to_string(rs.leader_failovers));
          csv_row.push_back(std::to_string(rs.staging_rebuilds));
        }
        csv->addRow(csv_row);
      }
    }
    points.push_back(std::move(point));
  }

  printf("\n%s\n", table.render().c_str());
  if (node_mode) {
    printf("('none' must match the fault-free multi-node benches exactly; "
           "degraded ms counts\n only the traffic that actually fell back "
           "to flat routing on faulted node pairs)\n");
  } else {
    printf("('none' must match the fault-free benches exactly — the fault "
           "layer is zero-cost when off)\n");
  }
  bench::printSimsanReports(points);
  if (csv) {
    csv->close();
    printf("\nwrote %s\n", csv_path.c_str());
  }

  // Tracked resilience metrics (opt-in; default output is unchanged).
  // All simulated and deterministic for the fixed seeds, so the perf
  // gate holds them tighter than wall-clock records: summed recovery
  // time and degraded-mode fraction over the faulted severity levels,
  // plus serving goodput under 2x-knee overload with shedding armed.
  const std::string bench_json = cli.getString("bench-json");
  if (!bench_json.empty()) {
    std::vector<double> goodput(retrievers.size(), 0.0);
    for (std::size_t r = 0; r < retrievers.size(); ++r) {
      goodput[r] = overloadGoodputQps(retrievers[r]);
    }
    FILE* out = fopen(bench_json.c_str(), "w");
    PGASEMB_CHECK(out != nullptr, "--bench-json: cannot open " + bench_json);
    const auto field = [&](const char* key, auto emit) {
      fprintf(out, "  \"%s\": {", key);
      for (std::size_t r = 0; r < retrievers.size(); ++r) {
        fprintf(out, "%s\"%s\": ", r == 0 ? "" : ", ",
                retrievers[r].c_str());
        emit(r);
      }
      fprintf(out, "}");
    };
    fprintf(out, "{\n  \"bench\": \"resilience\",\n");
    fprintf(out, "  \"nodes\": %d,\n  \"gpus\": %d,\n  \"batches\": %d,\n",
            node_mode ? nodes : 1, gpus, batches);
    fprintf(out, "  \"fault_seed\": %llu,\n",
            static_cast<unsigned long long>(seed));
    field("resilience_recovery_ms",
          [&](std::size_t r) { fprintf(out, "%.4f", recovery_ms[r]); });
    fprintf(out, ",\n");
    field("resilience_degraded_fraction", [&](std::size_t r) {
      fprintf(out, "%.6f",
              faulted_total_ms[r] > 0.0 ? degraded_ms[r] / faulted_total_ms[r]
                                        : 0.0);
    });
    fprintf(out, ",\n");
    field("serving_goodput_qps",
          [&](std::size_t r) { fprintf(out, "%.1f", goodput[r]); });
    fprintf(out, "\n}\n");
    fclose(out);
    printf("wrote %s\n", bench_json.c_str());
  }
  return 0;
}

// Open-loop serving benchmark: tail latency vs offered load.
//
// A seeded load generator emits timestamped queries (Poisson or bursty
// on/off arrivals) with per-query candidate counts; a dynamic batcher
// packs them into fixed-shape batches (close on fill or on the first
// query's wait budget); the retriever serves batches back to back on
// the simulated clock. The sweep crosses offered QPS x arrival pattern
// x retriever and reports per-query p50/p95/p99, achieved throughput,
// batch fill, queue depth, SLO violations, and the knee of the curve —
// the largest offered load each retriever sustains (achieved within 5%
// of offered, p99 under --slo-ms when set).
//
// A fault plan (--faults) runs underneath for brownout scenarios; with
// --slo-ms the per-query sliding-window p95 drives the SLO fallback
// policy, so a mid-run link degrade shows up as a retriever switch and
// a recovery in the p95 timeline.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "engine/serving_runner.hpp"

namespace {

using namespace pgasemb;

/// Comma-separated doubles ("500,1000,2000"); operator errors exit 2.
std::vector<double> parseQpsList(const std::string& spec) {
  std::vector<double> out;
  std::string current;
  const auto flush = [&] {
    if (current.empty()) return;
    try {
      std::size_t pos = 0;
      const double v = std::stod(current, &pos);
      if (pos != current.size() || v <= 0.0) throw std::invalid_argument("");
      out.push_back(v);
    } catch (const std::exception&) {
      fprintf(stderr, "--qps-list: bad rate '%s' (want positive numbers)\n",
              current.c_str());
      std::exit(2);
    }
    current.clear();
  };
  for (const char c : spec) {
    if (c == ',') {
      flush();
    } else if (c != ' ') {
      current += c;
    }
  }
  flush();
  if (out.empty()) {
    fprintf(stderr, "--qps-list needs at least one rate\n");
    std::exit(2);
  }
  return out;
}

/// Comma-separated arrival patterns; operator errors exit 2.
std::vector<engine::ArrivalPattern> parseArrivals(const std::string& spec) {
  std::vector<engine::ArrivalPattern> out;
  std::string current;
  const auto flush = [&] {
    if (current.empty()) return;
    try {
      out.push_back(engine::parseArrivalPattern(current));
    } catch (const Error& e) {
      fprintf(stderr, "%s\n(run with --help for usage)\n", e.what());
      std::exit(2);
    }
    current.clear();
  };
  for (const char c : spec) {
    if (c == ',') {
      flush();
    } else if (c != ' ') {
      current += c;
    }
  }
  flush();
  if (out.empty()) {
    fprintf(stderr, "--arrivals needs at least one pattern\n");
    std::exit(2);
  }
  return out;
}

/// The knee rule shared with trace::renderServingSummary: the largest
/// offered QPS whose point kept up (and met the tail SLO when set).
bool sustained(const engine::ServingResult& sv, double slo_ms) {
  if (sv.achieved_qps < 0.95 * sv.offered_qps) return false;
  return slo_ms <= 0.0 || sv.p99_ms <= slo_ms;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Open-loop serving benchmark: query load generator -> dynamic "
      "batcher -> retriever, sweeping offered QPS x arrival pattern and "
      "reporting per-query tail latency and the max sustainable load.");
  cli.addInt("gpus", 2, "GPU count of the serving node");
  cli.addInt("queries", 2000, "queries per configuration");
  cli.addString("qps-list", "16000,32000,64000,128000,256000",
                "comma-separated offered loads (queries/sec) to sweep");
  cli.addString("arrivals", "poisson,bursty",
                "comma-separated arrival patterns (poisson, bursty)");
  cli.addDouble("burst-on-ms", 5.0, "bursty: burst window length (ms)");
  cli.addDouble("burst-off-ms", 5.0, "bursty: silence window length (ms)");
  cli.addString("query-sizes", "zipf:1.1:1-64",
                "per-query candidate-count distribution: fixed:N, "
                "uniform:LO-HI, or zipf:ALPHA:LO-HI");
  cli.addInt("max-batch", 256,
             "dynamic-batcher capacity in samples (= the fixed batch "
             "shape the retriever serves)");
  cli.addDouble("max-wait-ms", 0.2,
                "dynamic-batcher wait budget of a batch's first query (ms)");
  cli.addString("csv", "serving_sweep.csv", "output CSV path (empty = none)");
  cli.addString("bench-json", "",
                "write the tracked serving metrics (p99 ms at the lowest "
                "swept load, max sustainable QPS) to this path; empty = off");
  bench::addRetrieversFlag(cli);
  bench::addSimsanFlag(cli);
  bench::addCacheFlags(cli);
  bench::addFaultFlags(cli);
  bench::addAdmissionFlags(cli);
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const std::int64_t max_batch = cli.getInt("max-batch");
  const auto qps_list = parseQpsList(cli.getString("qps-list"));
  const auto arrivals = parseArrivals(cli.getString("arrivals"));
  const auto retrievers = bench::retrieverList(cli);
  const double slo_ms = cli.getDouble("slo-ms");

  emb::QuerySizeSpec query_size;
  try {
    query_size = emb::parseQuerySizeSpec(cli.getString("query-sizes"));
  } catch (const Error& e) {
    fprintf(stderr, "%s\n(run with --help for usage)\n", e.what());
    std::exit(2);
  }

  const auto make_config = [&](engine::ArrivalPattern arrival, double qps) {
    engine::ExperimentConfig cfg;
    cfg.num_gpus = gpus;
    cfg.layer = emb::servingLayerSpec(gpus, max_batch);
    bench::applySimsanFlags(cli, cfg);
    cfg.serving.num_queries = cli.getInt("queries");
    cfg.serving.qps = qps;
    cfg.serving.arrival = arrival;
    cfg.serving.burst_on_ms = cli.getDouble("burst-on-ms");
    cfg.serving.burst_off_ms = cli.getDouble("burst-off-ms");
    cfg.serving.query_size = query_size;
    cfg.serving.max_wait_ms = cli.getDouble("max-wait-ms");
    cfg.serving.slo_ms = slo_ms;
    bench::applyCacheFlags(cli, cfg);
    bench::applyFaultFlags(cli, cfg);
    bench::applyAdmissionFlags(cli, cfg);
    bench::applyCoalesceFlag(cli, cfg);
    bench::validateOrExit(cfg);
    return cfg;
  };

  char header[256];
  snprintf(header, sizeof(header),
           "Open-loop serving: %d GPU(s), 8 tables/GPU x 1M rows, dim 64, "
           "batch %lld, query sizes %s",
           gpus, static_cast<long long>(max_batch),
           emb::formatQuerySizeSpec(query_size).c_str());
  bench::printHeader(header);

  std::vector<trace::ServingPoint> points;
  for (const auto arrival : arrivals) {
    for (const double qps : qps_list) {
      const auto cfg = make_config(arrival, qps);
      engine::ServingRunner runner(cfg);
      trace::ServingPoint point;
      point.arrival = engine::formatArrivalPattern(arrival);
      point.qps = qps;
      point.runs = runner.runAll(retrievers);
      points.push_back(std::move(point));
    }
  }

  printf("\n%s\n", trace::renderServingTable(points).c_str());
  printf("(open loop: queries arrive on the simulated clock regardless "
         "of service times; achieved << offered = the queue grew "
         "without bound)\n");
  printf("\n%s\n", trace::renderServingSummary(points, slo_ms).c_str());

  // Resilience under serving load (absent without --faults): the same
  // counters the closed-loop benches report, keyed by sweep point.
  const std::string resilience = trace::renderServingResilienceTable(points);
  if (!resilience.empty()) printf("\n%s\n", resilience.c_str());

  // p95-over-time at each arrival pattern's highest swept load — the
  // regime where batching, backlog, and any brownout actually bite.
  for (const auto arrival : arrivals) {
    const std::string name = engine::formatArrivalPattern(arrival);
    const trace::ServingPoint* top = nullptr;
    for (const auto& p : points) {
      if (p.arrival == name && (top == nullptr || p.qps > top->qps)) {
        top = &p;
      }
    }
    if (top == nullptr) continue;
    char title[128];
    snprintf(title, sizeof(title), "p95 timeline (%s, %.0f qps)",
             name.c_str(), top->qps);
    printf("\n%s\n", trace::renderP95Timeline(top->runs, title).c_str());
  }

  // Latency histogram of the treatment run (last retriever) at the
  // first arrival pattern's highest load.
  {
    const std::string name = engine::formatArrivalPattern(arrivals.front());
    const trace::ServingPoint* top = nullptr;
    for (const auto& p : points) {
      if (p.arrival == name && (top == nullptr || p.qps > top->qps)) {
        top = &p;
      }
    }
    if (top != nullptr && !top->runs.empty()) {
      const auto& run = top->runs.back();
      char title[128];
      snprintf(title, sizeof(title), "Latency histogram (%s, %s, %.0f qps)",
               trace::runStyle(run.retriever).short_name.c_str(),
               name.c_str(), top->qps);
      printf("\n%s\n",
             trace::renderLatencyHistogram(run.result, title).c_str());
    }
  }

  bool any_simsan = false;
  for (const auto& p : points) {
    for (const auto& run : p.runs) {
      if (!run.result.sanitizer) continue;
      if (!any_simsan) printf("\nsimsan:\n");
      any_simsan = true;
      printf("  %s %6.0f qps %-16s %s\n", p.arrival.c_str(), p.qps,
             run.retriever.c_str(), run.result.sanitizer->report().c_str());
    }
  }

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    trace::writeServingCsv(csv, points);
    printf("\nwrote %s\n", csv.c_str());
  }

  // Tracked serving metrics (opt-in; default output is unchanged). The
  // numbers are simulated — deterministic for a given seed — so the
  // perf gate can hold them tighter than wall-clock records: p99 at the
  // lowest swept load of the first arrival pattern, and the knee.
  const std::string bench_json = cli.getString("bench-json");
  if (!bench_json.empty()) {
    const std::string first_arrival =
        engine::formatArrivalPattern(arrivals.front());
    double low_qps = qps_list.front();
    for (const double q : qps_list) low_qps = std::min(low_qps, q);
    std::vector<double> p99_ms(retrievers.size(), 0.0);
    std::vector<double> knee_qps(retrievers.size(), 0.0);
    for (const auto& p : points) {
      if (p.arrival != first_arrival) continue;
      for (std::size_t r = 0; r < retrievers.size(); ++r) {
        const auto* run = r < p.runs.size() ? &p.runs[r] : nullptr;
        if (run == nullptr || !run->result.serving) continue;
        const auto& sv = *run->result.serving;
        if (p.qps == low_qps) p99_ms[r] = sv.p99_ms;
        if (sustained(sv, slo_ms) && p.qps > knee_qps[r]) {
          knee_qps[r] = p.qps;
        }
      }
    }
    FILE* out = fopen(bench_json.c_str(), "w");
    PGASEMB_CHECK(out != nullptr,
                  "--bench-json: cannot open " + bench_json);
    const auto field = [&](const char* key, auto emit) {
      fprintf(out, "  \"%s\": {", key);
      for (std::size_t r = 0; r < retrievers.size(); ++r) {
        fprintf(out, "%s\"%s\": ", r == 0 ? "" : ", ",
                retrievers[r].c_str());
        emit(r);
      }
      fprintf(out, "}");
    };
    fprintf(out, "{\n  \"bench\": \"serving\",\n");
    fprintf(out, "  \"gpus\": %d,\n  \"queries\": %lld,\n", gpus,
            static_cast<long long>(cli.getInt("queries")));
    fprintf(out, "  \"arrival\": \"%s\",\n  \"low_qps\": %.1f,\n",
            first_arrival.c_str(), low_qps);
    field("serving_p99_ms",
          [&](std::size_t r) { fprintf(out, "%.4f", p99_ms[r]); });
    fprintf(out, ",\n");
    field("max_sustainable_qps",
          [&](std::size_t r) { fprintf(out, "%.1f", knee_qps[r]); });
    fprintf(out, "\n}\n");
    fclose(out);
    printf("wrote %s\n", bench_json.c_str());
  }
  return 0;
}

// Extension bench (paper §V future work): EMB-layer BACKWARD pass.
//
// Baseline: gradient kernel -> all-to-all of per-(table, sample) grads
// -> scatter-add -> (P-1) ring-shift rounds with per-round sync -> SGD
// apply.  PGAS: one fused kernel pushing remote atomic adds, quiet,
// apply.  The paper predicts a larger win than the forward pass because
// (a) backward volume is ~pooling-factor larger and (b) the multi-round
// synchronization disappears.
#include "bench_common.hpp"
#include "collective/communicator.hpp"
#include "dlrm/backward.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("EMB backward pass: PGAS remote atomics vs collective "
                "rounds (paper SV future work).");
  cli.addInt("max-gpus", 4, "largest GPU count to sweep");
  cli.addInt("batches", 20, "batches per configuration");
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "EMB backward pass (future-work extension): gradient push + "
      "aggregation");

  emb::EmbLayerSpec spec = emb::weakScalingLayerSpec(1);
  spec.total_tables = 64;  // fixed total; strong-scaling style sweep
  const int batches = static_cast<int>(cli.getInt("batches"));

  ConsoleTable table({"GPUs", "collective (ms)", "pgas atomics (ms)",
                      "speedup", "rounds removed"});
  for (int gpus = 2; gpus <= cli.getInt("max-gpus"); ++gpus) {
    gpu::SystemConfig sys_cfg;
    sys_cfg.num_gpus = gpus;
    sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
    gpu::MultiGpuSystem system(sys_cfg);
    fabric::Fabric fabric(
        system.simulator(),
        std::make_unique<fabric::NvlinkAllToAllTopology>(
            gpus, fabric::LinkParams{}));
    collective::Communicator comm(system, fabric);
    pgas::PgasRuntime runtime(system, fabric);
    runtime.setCoalescingEnabled(!cli.getBool("no-coalesce"));
    emb::ShardedEmbeddingLayer layer(system, spec);
    dlrm::EmbBackwardEngine engine(layer, comm, runtime, 0.01f);
    const auto batch = emb::SparseBatch::statistical(spec.batchSpec());

    SimTime collective = SimTime::zero(), pgas_t = SimTime::zero();
    for (int b = 0; b < batches; ++b) {
      collective +=
          engine.runBatch(batch, dlrm::BackwardScheme::kCollective).total;
    }
    for (int b = 0; b < batches; ++b) {
      pgas_t +=
          engine.runBatch(batch, dlrm::BackwardScheme::kPgasAtomics).total;
    }
    const double c_ms = collective.toMs() / batches;
    const double p_ms = pgas_t.toMs() / batches;
    table.addRow({std::to_string(gpus), ConsoleTable::num(c_ms, 3),
                  ConsoleTable::num(p_ms, 3),
                  ConsoleTable::num(c_ms / p_ms, 2) + "x",
                  std::to_string(gpus - 1)});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(paper SV: PGAS replaces the multi-round collective shifts and "
         "their\n per-round synchronization with overlapped remote atomic adds)\n");
  return 0;
}

// Ablation A10: the strongest software-pipelined baseline.
//
// Could the baseline match PGAS by double-buffering batches — overlapping
// batch i's all-to-all (on a side stream) with batch i+1's lookup?
// Partially: inter-batch pipelining hides the wire time, but the unpack
// pass, the per-batch control path, and the extra buffer memory remain.
// PGAS hides communication *within* one batch — no added latency, no
// extra copies of the activation buffers.
//
// All three schemes run through the shared ScenarioRunner — the pipelined
// retriever's drain is folded into its run by finish(), so no bespoke
// rig or host-clock bookkeeping is needed here.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Inter-batch pipelined baseline vs PGAS fused (weak "
                "config).");
  cli.addInt("batches", 50, "batches per configuration");
  cli.addInt("gpus", 4, "GPU count");
  cli.addInt("depth", 2, "pipeline depth (in-flight batches)");
  bench::addRetrieversFlag(cli,
                           "nccl_collective,nccl_pipelined,pgas_fused");
  bench::addSimsanFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int depth = static_cast<int>(cli.getInt("depth"));

  bench::printHeader(
      "Ablation: double-buffered baseline (inter-batch pipelining)");

  engine::ExperimentConfig cfg = engine::weakScalingConfig(gpus);
  // Leave room for the pipeline's extra buffer sets.
  cfg.layer.total_tables = 48LL * gpus;
  cfg.num_batches = static_cast<int>(cli.getInt("batches"));
  cfg.pipeline_depth = depth;
  bench::applySimsanFlags(cli, cfg);

  engine::ScenarioRunner runner(cfg);
  const auto runs = runner.runAll(bench::retrieverList(cli));

  const std::string ref_key = trace::runKey(runs.front().retriever);
  ConsoleTable table(
      {"scheme", "ms/batch", "speedup vs " + ref_key, "extra buffers"});
  const double ref_ms = runs.front().result.avgBatchMs();
  for (const auto& run : runs) {
    const bool pipelined = run.retriever == "nccl_pipelined";
    std::string scheme = trace::runStyle(run.retriever).display;
    if (pipelined) scheme += " d=" + std::to_string(depth);
    const double ms = run.result.avgBatchMs();
    table.addRow({scheme, ConsoleTable::num(ms, 3),
                  ms > 0.0 ? ConsoleTable::num(ref_ms / ms, 2) + "x" : "-",
                  (pipelined ? std::to_string(depth) : "1") + "x"});
  }
  printf("\n%s\n", table.render().c_str());
  for (const auto& run : runs) {
    if (!run.result.sanitizer) continue;
    printf("simsan %-16s %s\n", run.retriever.c_str(),
           run.result.sanitizer->report().c_str());
  }
  printf("(pipelining hides the wire time behind the next batch's compute "
         "but\n keeps the unpack pass and multiplies activation buffers; "
         "PGAS hides\n communication inside the same batch and has no "
         "unpack at all)\n");
  return 0;
}

// Ablation A10: the strongest software-pipelined baseline.
//
// Could the baseline match PGAS by double-buffering batches — overlapping
// batch i's all-to-all (on a side stream) with batch i+1's lookup?
// Partially: inter-batch pipelining hides the wire time, but the unpack
// pass, the per-batch control path, and the extra buffer memory remain.
// PGAS hides communication *within* one batch — no added latency, no
// extra copies of the activation buffers.
#include <memory>

#include "bench_common.hpp"
#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "core/pipelined_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/table.hpp"

using namespace pgasemb;

namespace {

struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;
  emb::ShardedEmbeddingLayer layer;

  Rig(int gpus, const emb::EmbLayerSpec& spec)
      : system(config(gpus)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric),
        layer(system, spec) {}

  static gpu::SystemConfig config(int gpus) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.mode = gpu::ExecutionMode::kTimingOnly;
    return cfg;
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Inter-batch pipelined baseline vs PGAS fused (weak "
                "config).");
  cli.addInt("batches", 50, "batches per configuration");
  cli.addInt("gpus", 4, "GPU count");
  if (!cli.parse(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));

  bench::printHeader(
      "Ablation: double-buffered baseline (inter-batch pipelining)");

  auto spec = emb::weakScalingLayerSpec(gpus);
  // Leave room for the pipeline's second buffer set.
  spec.total_tables = 48LL * gpus;
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());

  ConsoleTable table(
      {"scheme", "ms/batch", "speedup vs baseline", "extra buffers"});
  double base_ms = 0.0;
  {
    Rig rig(gpus, spec);
    core::CollectiveRetriever retriever(rig.layer, rig.comm);
    SimTime total = SimTime::zero();
    for (int b = 0; b < batches; ++b) total += retriever.runBatch(batch).total;
    base_ms = total.toMs() / batches;
    table.addRow({"baseline (bulk-sync)", ConsoleTable::num(base_ms, 3),
                  "1.00x", "1x"});
  }
  for (const int depth : {2, 3}) {
    Rig rig(gpus, spec);
    core::PipelinedCollectiveRetriever retriever(rig.layer, rig.comm,
                                                 depth);
    const SimTime t0 = rig.system.hostNow();
    for (int b = 0; b < batches; ++b) retriever.runBatch(batch);
    const SimTime t1 = retriever.drain();
    const double ms = (t1 - t0).toMs() / batches;
    table.addRow({"baseline pipelined d=" + std::to_string(depth),
                  ConsoleTable::num(ms, 3),
                  ConsoleTable::num(base_ms / ms, 2) + "x",
                  std::to_string(depth) + "x"});
  }
  {
    Rig rig(gpus, spec);
    core::PgasFusedRetriever retriever(rig.layer, rig.runtime, {});
    SimTime total = SimTime::zero();
    for (int b = 0; b < batches; ++b) total += retriever.runBatch(batch).total;
    const double ms = total.toMs() / batches;
    table.addRow({"pgas fused", ConsoleTable::num(ms, 3),
                  ConsoleTable::num(base_ms / ms, 2) + "x", "1x"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(pipelining hides the wire time behind the next batch's compute "
         "but\n keeps the unpack pass and multiplies activation buffers; "
         "PGAS hides\n communication inside the same batch and has no "
         "unpack at all)\n");
  return 0;
}

// Reproduces the paper's Figure 6: weak-scaling runtime breakdown.
//
// Baseline splits into Computation / Communication / Sync+Unpack; the
// PGAS fused implementation is one phase barely above the baseline's
// computation. Expected shapes as the GPU count grows (paper §IV-A2c):
// computation flat, communication decreasing, sync+unpack increasing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Weak-scaling runtime breakdown (paper Figure 6).");
  cli.addInt("max-gpus", 4, "largest GPU count to sweep");
  cli.addInt("batches", 100, "inference batches per configuration");
  cli.addString("csv", "weak_breakdown.csv", "output CSV path");
  bench::addRetrieversFlag(cli);
  bench::addCacheFlags(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader("Weak-scaling runtime breakdown (Figure 6)");
  const auto points = bench::sweepScaling(
      /*weak=*/true, static_cast<int>(cli.getInt("max-gpus")),
      static_cast<int>(cli.getInt("batches")), bench::retrieverList(cli),
      /*simsan=*/false, cli.getInt("cache-rows"),
      cli.getDouble("zipf-alpha"));

  printf("\n%s\n",
         trace::renderBreakdownBars(points,
                                    "Per-batch breakdown, weak scaling "
                                    "(ms)")
             .c_str());

  printf("Expected paper shapes: computation flat; communication "
         "decreases\nwith more GPUs; sync+unpack increases; PGAS total "
         "~= baseline computation.\n\n");
  const std::string total_col =
      trace::runKey(points[0].treatment().retriever) + " total";
  printf("%-6s %-12s %-14s %-14s %-12s\n", "GPUs", "compute", "comm",
         "sync+unpack", total_col.c_str());
  for (const auto& p : points) {
    const auto& ref = p.reference().result;
    printf("%-6d %-12.3f %-14.3f %-14.3f %-12.3f\n", p.gpus,
           ref.avgComputeMs(), ref.avgCommunicationMs(),
           ref.avgSyncUnpackMs(), p.treatment().result.avgBatchMs());
  }

  // The paper's measurement method (§IV-A2a): the communication time is
  // estimated by re-running the communication phase with a single float
  // and subtracting. In the simulator we have the ground truth (wire
  // time); report both so the method itself is validated.
  printf("\nPaper estimation method check (2 GPUs): direct wire time vs "
         "comm-phase-minus-sync:\n");
  for (const auto& p : points) {
    if (p.gpus != 2) continue;
    const auto& ref = p.reference().result;
    const double direct = ref.avgCommunicationMs();
    const double phase = ref.stats.comm_phase.toMs() / ref.stats.batches;
    printf("  comm phase %.3f ms, wire (direct) %.3f ms, control-path "
           "overhead %.3f ms/batch\n",
           phase, direct, phase - direct);
  }

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    trace::writeScalingCsv(csv, points);
    printf("\nwrote %s\n", csv.c_str());
  }
  return 0;
}

// Ablation A6: batch-size sweep (paper §III-A item 3).
//
// "With small batch sizes, the overhead of CUDA kernel synchronization
//  can become significant compared to communication and computation, as
//  the forward pass is essentially latency-limited."
//
// At small batches the baseline's fixed control-path costs (launch, sync,
// collective trigger) dominate, so the PGAS speedup is overhead-driven;
// at large batches it is overlap-driven.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli("Batch-size ablation (4 GPUs, weak-style config).");
  cli.addInt("batches", 20, "batches per configuration");
  bench::addRetrieversFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;
  const auto retrievers = bench::retrieverList(cli);

  bench::printHeader("Ablation: batch size vs latency-limited overheads");

  const std::string ref_key = trace::runKey(retrievers.front());
  const std::string treat_key = trace::runKey(retrievers.back());
  ConsoleTable table({"batch", ref_key + " ms", treat_key + " ms", "speedup",
                      ref_key + " sync+unpack share"});
  for (const std::int64_t batch : {64, 256, 1024, 4096, 16384, 65536}) {
    auto cfg = engine::weakScalingConfig(4);
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    cfg.layer.batch_size = batch;
    engine::ScenarioRunner runner(cfg);
    const auto runs = runner.runAll(retrievers);
    const auto& base = runs.front().result;
    const auto& treat = runs.back().result;
    table.addRow(
        {std::to_string(batch), ConsoleTable::num(base.avgBatchMs(), 3),
         ConsoleTable::num(treat.avgBatchMs(), 3),
         ConsoleTable::num(base.avgBatchMs() / treat.avgBatchMs(), 2) + "x",
         ConsoleTable::num(base.avgSyncUnpackMs() / base.avgBatchMs(),
                           2)});
  }
  printf("\n%s\n", table.render().c_str());
  return 0;
}

// google-benchmark microbenchmarks for the substrate hot paths: the
// discrete-event queue, fabric flow injection, sparse-batch generation,
// hashing, pooled lookups, and a full timing-only retrieval batch.
// These guard the *simulator's* own performance (host-side), which
// bounds how large a paper-scale sweep stays interactive.
#include <benchmark/benchmark.h>

#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "emb/hashing.hpp"
#include "emb/layer.hpp"
#include "emb/workload.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pgasemb;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      q.push(SimTime::us(i % 97), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorNestedEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = static_cast<int>(state.range(0));
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.scheduleAfter(SimTime::ns(10), chain);
    };
    sim.scheduleAt(SimTime::zero(), chain);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorNestedEvents)->Arg(10000);

void BM_FabricTransfer(benchmark::State& state) {
  sim::Simulator sim;
  fabric::Fabric fab(sim, std::make_unique<fabric::NvlinkAllToAllTopology>(
                              4, fabric::LinkParams{}));
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fab.transfer(static_cast<int>(i % 4),
                     static_cast<int>((i + 1) % 4), 4096, 16,
                     SimTime::us(static_cast<double>(i))));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricTransfer);

void BM_HashIndex(benchmark::State& state) {
  const auto seed = emb::tableSeed(1, 7);
  std::uint64_t raw = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(emb::hashIndex(raw++, seed, 1'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndex);

void BM_SparseBatchGeneration(benchmark::State& state) {
  emb::SparseBatchSpec spec{8, state.range(0), 1, 32, 1u << 20, {}};
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emb::SparseBatch::generateUniform(spec, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_SparseBatchGeneration)->Arg(1024);

void BM_FunctionalPooledLookup(benchmark::State& state) {
  gpu::SystemConfig cfg;
  cfg.num_gpus = 1;
  cfg.memory_capacity_bytes = 64 << 20;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  gpu::MultiGpuSystem sys(cfg);
  auto spec = emb::tinyLayerSpec();
  spec.rows_per_table = 1000;
  spec.dim = 64;
  emb::ShardedEmbeddingLayer layer(sys, spec);
  Rng rng(2);
  const auto batch = emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
  std::int64_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layer.pooledValue(batch, s % spec.total_tables,
                          s % spec.batch_size));
    ++s;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalPooledLookup);

void BM_TimingOnlyBatch(benchmark::State& state) {
  // One full simulated weak-scaling batch (both schemes), 4 GPUs.
  const bool pgas = state.range(0) != 0;
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = 4;
  sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
  gpu::MultiGpuSystem sys(sys_cfg);
  fabric::Fabric fab(sys.simulator(),
                     std::make_unique<fabric::NvlinkAllToAllTopology>(
                         4, fabric::LinkParams{}));
  collective::Communicator comm(sys, fab);
  pgas::PgasRuntime runtime(sys, fab);
  const auto spec = emb::weakScalingLayerSpec(4);
  emb::ShardedEmbeddingLayer layer(sys, spec);
  std::unique_ptr<core::EmbeddingRetriever> retriever;
  if (pgas) {
    retriever = std::make_unique<core::PgasFusedRetriever>(
        layer, runtime, core::PgasRetrieverOptions{});
  } else {
    retriever = std::make_unique<core::CollectiveRetriever>(layer, comm);
  }
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(retriever->runBatch(batch));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pgas ? "pgas_fused" : "nccl_baseline");
}
BENCHMARK(BM_TimingOnlyBatch)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

// Extension bench (paper §V): weak scaling BEYOND the single node.
//
// The paper's system is single-node NVLink; its future work asks how the
// PGAS scheme behaves when inter-node links (higher latency, lower
// bandwidth, message-rate limited) enter the picture, and proposes the
// async aggregator as the mitigation. This bench weak-scales to 16 GPUs
// across 1-4 nodes and compares baseline, raw PGAS, and PGAS+aggregator.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Multi-node weak scaling: baseline vs PGAS vs "
                "PGAS+aggregator (paper SV extension).");
  cli.addInt("batches", 10, "batches per configuration");
  cli.addInt("gpus-per-node", 4, "GPUs per node");
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int per_node = static_cast<int>(cli.getInt("gpus-per-node"));

  bench::printHeader(
      "Multi-node weak scaling (4 GPUs/node, IB-like inter-node links)");

  auto make_cfg = [&](int nodes, bool agg) {
    engine::ExperimentConfig cfg =
        engine::weakScalingConfig(nodes * per_node);
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    if (nodes > 1) {
      cfg.num_nodes = nodes;
      cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
      cfg.inter_node_link.latency = SimTime::us(5.0);
      cfg.inter_node_link.header_bytes = 64;
      cfg.inter_node_link.max_messages_per_sec = 10e6;
    }
    cfg.use_aggregator = agg;
    cfg.aggregator.aggregation_bytes = 64 * 1024;
    cfg.aggregator.max_wait = SimTime::us(50.0);
    return cfg;
  };

  ConsoleTable table({"nodes", "GPUs", "baseline ms", "pgas ms",
                      "pgas+agg ms", "best speedup"});
  for (const int nodes : {1, 2, 4}) {
    engine::ScenarioRunner runner(make_cfg(nodes, false));
    const auto base = runner.run("nccl_collective");
    const auto pgas = runner.run("pgas_fused");
    const auto agg =
        engine::ScenarioRunner(make_cfg(nodes, true)).run("pgas_fused");
    const double best = std::min(pgas.avgBatchMs(), agg.avgBatchMs());
    table.addRow({std::to_string(nodes),
                  std::to_string(nodes * per_node),
                  ConsoleTable::num(base.avgBatchMs(), 3),
                  ConsoleTable::num(pgas.avgBatchMs(), 3),
                  ConsoleTable::num(agg.avgBatchMs(), 3),
                  ConsoleTable::num(base.avgBatchMs() / best, 2) + "x"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(per-GPU workload constant; cross-node traffic rides shared "
         "NICs.\n The aggregator recovers the NIC message-rate loss, as "
         "the paper\n proposes for the multi-node extension.)\n");
  return 0;
}

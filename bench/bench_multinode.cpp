// Extension bench (paper §V): weak scaling BEYOND the single node.
//
// The paper's system is single-node NVLink; its future work asks how the
// PGAS scheme behaves when inter-node links (higher latency, lower
// bandwidth, message-rate limited) enter the picture, and proposes the
// async aggregator as the mitigation. This bench weak-scales to 16 GPUs
// across 1-4 nodes and compares baseline, raw PGAS, and PGAS+aggregator.
//
// --sweep switches to the DESIGN.md §12 grid: {1,2,4,8,16} nodes x
// 4 GPUs/node (64 GPUs), {flat, hierarchical} routing x {off, fixed,
// adaptive} inter-node compression, for all three retrievers, plus a
// small Functional-mode run per compression mode so the reported
// quantization error is measured, not estimated. Results land in
// multinode_sweep.csv and (opt-in) the BENCH_multinode.json perf record.
#include <cmath>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace pgasemb;

namespace {

/// Comma-separated node counts ("1,2,4"); operator errors exit 2.
std::vector<int> parseNodeList(const std::string& spec) {
  std::vector<int> out;
  std::string current;
  const auto flush = [&] {
    if (current.empty()) return;
    try {
      std::size_t pos = 0;
      const int v = std::stoi(current, &pos);
      if (pos != current.size() || v < 1) throw std::invalid_argument("");
      out.push_back(v);
    } catch (const std::exception&) {
      fprintf(stderr, "--sweep-nodes: bad count '%s' (want positive ints)\n",
              current.c_str());
      std::exit(2);
    }
    current.clear();
  };
  for (const char c : spec) {
    if (c == ',') {
      flush();
    } else if (c != ' ') {
      current += c;
    }
  }
  flush();
  if (out.empty()) {
    fprintf(stderr, "--sweep-nodes needs at least one node count\n");
    std::exit(2);
  }
  return out;
}

/// IB-like inter-node links shared by both bench modes (and pinned by
/// tests/multinode_test.cpp): 25 GB/s, 5 us, 64 B headers, 10 M msg/s.
void applyInterNodeLink(engine::ExperimentConfig& cfg, int nodes) {
  if (nodes <= 1) return;
  cfg.num_nodes = nodes;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5.0);
  cfg.inter_node_link.header_bytes = 64;
  cfg.inter_node_link.max_messages_per_sec = 10e6;
}

/// One sweep cell: routing scheme x compression mode.
struct SweepMode {
  const char* routing;      ///< "flat" / "hier"
  const char* compression;  ///< "off" / "fixed" / "adaptive"
  bool hierarchical;
  bool compress;
  bool adaptive;
};

constexpr SweepMode kModes[] = {
    {"flat", "off", false, false, false},
    {"flat", "fixed", false, true, false},
    {"flat", "adaptive", false, true, true},
    {"hier", "off", true, false, false},
    {"hier", "fixed", true, true, false},
    {"hier", "adaptive", true, true, true},
};

int runSweep(const CliParser& cli) {
  const int per_node = static_cast<int>(cli.getInt("gpus-per-node"));
  const int batches = static_cast<int>(cli.getInt("batches"));
  const double bound = cli.getDouble("bound");
  const auto node_list = parseNodeList(cli.getString("sweep-nodes"));
  const auto retrievers = bench::retrieverList(cli);

  const auto make_cfg = [&](int nodes, const SweepMode& mode) {
    engine::ExperimentConfig cfg =
        engine::weakScalingConfig(nodes * per_node);
    cfg.layer = emb::multinodeServingLayerSpec(nodes * per_node);
    cfg.num_batches = batches;
    applyInterNodeLink(cfg, nodes);
    bench::applyMultinodeFlags(cli, cfg);
    cfg.hierarchical_a2a = mode.hierarchical;
    cfg.compress_bound = mode.compress ? bound : 0.0;
    cfg.compress_adaptive = mode.adaptive;
    bench::validateOrExit(cfg);
    return cfg;
  };

  char header[256];
  snprintf(header, sizeof(header),
           "Multi-node sweep: %d GPUs/node, flat vs hierarchical "
           "all-to-all, inter-node compression off/fixed/adaptive "
           "(bound %.0e)",
           per_node, bound);
  bench::printHeader(header);

  struct Row {
    int nodes;
    std::string retriever;
    const SweepMode* mode;
    engine::ExperimentResult result;
  };
  std::vector<Row> rows;
  for (const int nodes : node_list) {
    for (const auto& mode : kModes) {
      // A single node has no inter-node links: routing and compression
      // are no-ops there, so only the flat/off cell is distinct.
      if (nodes == 1 && (mode.hierarchical || mode.compress)) continue;
      engine::ScenarioRunner runner(make_cfg(nodes, mode));
      for (auto& run : runner.runAll(retrievers)) {
        rows.push_back(
            {nodes, run.retriever, &mode, std::move(run.result)});
      }
    }
  }

  ConsoleTable table({"nodes", "GPUs", "retriever", "routing", "compress",
                      "ms/batch", "inter MB/batch", "inter msgs/batch",
                      "ratio"});
  for (const auto& row : rows) {
    const double b = row.result.stats.batches > 0
                         ? static_cast<double>(row.result.stats.batches)
                         : 1.0;
    const auto& in = row.result.inter_node;
    table.addRow(
        {std::to_string(row.nodes), std::to_string(row.nodes * per_node),
         trace::runStyle(row.retriever).short_name, row.mode->routing,
         row.mode->compression, ConsoleTable::num(row.result.avgBatchMs(), 3),
         in ? ConsoleTable::num(in->inter_wire_equivalent_bytes / b / 1e6, 2)
            : "-",
         in ? ConsoleTable::num(
                  static_cast<double>(in->inter_messages) / b, 0)
            : "-",
         row.result.compression
             ? ConsoleTable::num(row.result.compression->ratio(), 2) + "x"
             : "-"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(inter MB/batch = wire-equivalent bytes crossing node "
         "boundaries, headers\n and message-rate padding included; "
         "hierarchical routing ships one\n aggregated flow per node pair "
         "and ratio is the codec's raw/wire ratio.)\n");

  // Functional-mode accuracy probe: a small 2-node layer actually
  // encodes/decodes every cross-node value, so the per-table error
  // below is measured against the --bound, not estimated from it.
  std::vector<engine::NamedResult> accuracy;
  std::vector<std::string> functional_retrievers;
  for (const auto& name : retrievers) {
    if (name == "nccl_collective" || name == "pgas_fused") {
      functional_retrievers.push_back(name);
    }
  }
  if (!functional_retrievers.empty()) {
    for (const bool adaptive : {false, true}) {
      engine::ExperimentConfig cfg = engine::weakScalingConfig(4);
      cfg.layer.total_tables = 8;
      cfg.layer.rows_per_table = 4096;
      cfg.layer.dim = 32;
      cfg.layer.batch_size = 64;
      cfg.layer.min_pooling = 1;
      cfg.layer.max_pooling = 8;
      cfg.num_batches = 2;
      applyInterNodeLink(cfg, 2);
      cfg.mode = gpu::ExecutionMode::kFunctional;
      cfg.hierarchical_a2a = true;
      cfg.compress_bound = bound;
      cfg.compress_adaptive = adaptive;
      bench::validateOrExit(cfg);
      engine::ScenarioRunner runner(cfg);
      for (auto& run : runner.runAll(functional_retrievers)) {
        accuracy.push_back(std::move(run));
      }
    }
    const std::string acc = trace::renderCompressionTable(accuracy);
    if (!acc.empty()) {
      printf("\nMeasured quantization error (Functional, 2 nodes x 2 "
             "GPUs/node, bound %.0e):\n%s\n",
             bound, acc.c_str());
    }
  }

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    CsvWriter out(csv,
                  {"nodes", "gpus", "retriever", "routing", "compression",
                   "table", "bits", "ms_per_batch",
                   "inter_wire_bytes_per_batch", "inter_msgs_per_batch",
                   "compress_ratio", "max_abs_err", "mean_abs_err"});
    for (const auto& row : rows) {
      const double b = row.result.stats.batches > 0
                           ? static_cast<double>(row.result.stats.batches)
                           : 1.0;
      const auto& in = row.result.inter_node;
      const auto& cr = row.result.compression;
      out.addRow(
          {std::to_string(row.nodes), std::to_string(row.nodes * per_node),
           row.retriever, row.mode->routing, row.mode->compression, "", "",
           ConsoleTable::num(row.result.avgBatchMs(), 4),
           in ? ConsoleTable::num(in->inter_wire_equivalent_bytes / b, 0)
              : "",
           in ? ConsoleTable::num(
                    static_cast<double>(in->inter_messages) / b, 0)
              : "",
           cr ? ConsoleTable::num(cr->ratio(), 4) : "", "", ""});
    }
    // Accuracy rows: one per (run, table), absent when compression off.
    for (const auto& run : accuracy) {
      const auto& cr = run.result.compression;
      if (!cr.has_value()) continue;
      for (const auto& t : cr->tables) {
        out.addRow({"2", "4", run.retriever, "hier",
                    cr->adaptive ? "adaptive" : "fixed",
                    std::to_string(t.table), std::to_string(t.bits), "", "",
                    "", ConsoleTable::num(cr->ratio(), 4),
                    t.samples > 0 ? ConsoleTable::num(t.max_abs_error, 8)
                                  : "",
                    t.samples > 0 ? ConsoleTable::num(t.mean_abs_error, 8)
                                  : ""});
      }
    }
    printf("\nwrote %s\n", csv.c_str());
  }

  // Tracked multi-node metrics (opt-in; default output is unchanged):
  // at the largest swept node count, ms/batch and inter-node
  // wire-equivalent bytes/batch for flat, hierarchical, and
  // hierarchical+fixed-compression. All simulated and deterministic, so
  // the perf gate holds the byte counts to exact equality.
  const std::string bench_json = cli.getString("bench-json");
  if (!bench_json.empty()) {
    int max_nodes = 1;
    for (const int n : node_list) max_nodes = std::max(max_nodes, n);
    struct Tracked {
      const char* routing;
      const char* compression;
      const char* suffix;
    };
    constexpr Tracked kTracked[] = {{"flat", "off", "flat"},
                                    {"hier", "off", "hier"},
                                    {"hier", "fixed", "hier_comp"}};
    const auto find_row = [&](const std::string& retriever,
                              const Tracked& t) -> const Row* {
      for (const auto& row : rows) {
        if (row.nodes == max_nodes && row.retriever == retriever &&
            row.mode->routing == std::string(t.routing) &&
            row.mode->compression == std::string(t.compression)) {
          return &row;
        }
      }
      return nullptr;
    };
    FILE* out = fopen(bench_json.c_str(), "w");
    PGASEMB_CHECK(out != nullptr, "--bench-json: cannot open " + bench_json);
    const auto field = [&](const char* key, auto emit) {
      fprintf(out, "  \"%s\": {", key);
      bool first = true;
      for (const auto& retriever : retrievers) {
        for (const auto& t : kTracked) {
          const Row* row = find_row(retriever, t);
          if (row == nullptr) continue;
          fprintf(out, "%s\"%s.%s\": ", first ? "" : ", ",
                  retriever.c_str(), t.suffix);
          emit(*row);
          first = false;
        }
      }
      fprintf(out, "}");
    };
    fprintf(out, "{\n  \"bench\": \"multinode\",\n");
    fprintf(out, "  \"gpus_per_node\": %d,\n  \"batches\": %d,\n", per_node,
            batches);
    fprintf(out, "  \"max_nodes\": %d,\n  \"bound\": %g,\n", max_nodes,
            bound);
    field("multinode_ms_per_batch", [&](const Row& row) {
      fprintf(out, "%.4f", row.result.avgBatchMs());
    });
    fprintf(out, ",\n");
    field("multinode_inter_bytes_per_batch", [&](const Row& row) {
      const double b = row.result.stats.batches > 0
                           ? static_cast<double>(row.result.stats.batches)
                           : 1.0;
      fprintf(out, "%.1f",
              row.result.inter_node
                  ? row.result.inter_node->inter_wire_equivalent_bytes / b
                  : 0.0);
    });
    fprintf(out, "\n}\n");
    fclose(out);
    printf("wrote %s\n", bench_json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Multi-node weak scaling: baseline vs PGAS vs "
                "PGAS+aggregator (paper SV extension).");
  cli.addInt("batches", 10, "batches per configuration");
  cli.addInt("gpus-per-node", 4, "GPUs per node");
  cli.addBool("sweep", false,
              "run the hierarchical-routing x compression grid over "
              "--sweep-nodes instead of the aggregator comparison");
  cli.addString("sweep-nodes", "1,2,4,8,16",
                "comma-separated node counts for --sweep");
  cli.addDouble("bound", 1e-2,
                "absolute error bound of the sweep's fixed/adaptive "
                "compression cells");
  cli.addString("csv", "multinode_sweep.csv",
                "--sweep output CSV path (empty = none)");
  cli.addString("bench-json", "",
                "write the tracked multi-node metrics (ms/batch and "
                "inter-node bytes/batch at the largest swept node count) "
                "to this path; empty = off");
  bench::addRetrieversFlag(cli,
                           "nccl_collective,pgas_fused,nccl_pipelined");
  bench::addMultinodeFlags(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int per_node = static_cast<int>(cli.getInt("gpus-per-node"));

  if (cli.getBool("sweep")) return runSweep(cli);

  bench::printHeader(
      "Multi-node weak scaling (4 GPUs/node, IB-like inter-node links)");

  auto make_cfg = [&](int nodes, bool agg) {
    engine::ExperimentConfig cfg =
        engine::weakScalingConfig(nodes * per_node);
    cfg.num_batches = static_cast<int>(cli.getInt("batches"));
    applyInterNodeLink(cfg, nodes);
    bench::applyMultinodeFlags(cli, cfg);
    cfg.use_aggregator = agg;
    cfg.aggregator.aggregation_bytes = 64 * 1024;
    cfg.aggregator.max_wait = SimTime::us(50.0);
    bench::validateOrExit(cfg);
    return cfg;
  };

  ConsoleTable table({"nodes", "GPUs", "baseline ms", "pgas ms",
                      "pgas+agg ms", "best speedup"});
  for (const int nodes : {1, 2, 4}) {
    engine::ScenarioRunner runner(make_cfg(nodes, false));
    const auto base = runner.run("nccl_collective");
    const auto pgas = runner.run("pgas_fused");
    const auto agg =
        engine::ScenarioRunner(make_cfg(nodes, true)).run("pgas_fused");
    const double best = std::min(pgas.avgBatchMs(), agg.avgBatchMs());
    table.addRow({std::to_string(nodes),
                  std::to_string(nodes * per_node),
                  ConsoleTable::num(base.avgBatchMs(), 3),
                  ConsoleTable::num(pgas.avgBatchMs(), 3),
                  ConsoleTable::num(agg.avgBatchMs(), 3),
                  ConsoleTable::num(base.avgBatchMs() / best, 2) + "x"});
  }
  printf("\n%s\n", table.render().c_str());
  printf("(per-GPU workload constant; cross-node traffic rides shared "
         "NICs.\n The aggregator recovers the NIC message-rate loss, as "
         "the paper\n proposes for the multi-node extension.)\n");
  return 0;
}

// Reproduces the paper's strong-scaling results (§IV-B):
//   - the speedup table ("2.95x / 2.55x / 2.44x, geo-mean 2.63x")
//   - Figure 8: strong-scaling factor for baseline and PGAS fused
//   - the ncu observation: the 2-GPU lookup kernel sustains ~38% compute
//     and ~57% memory throughput (latency-limited beyond 2 GPUs)
//
// Workload: 96 tables x 1M rows total (sized by one 32 GB V100), dim 64,
// batch 16384, pooling U(1, 32), 100 inference batches.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pgasemb;
  CliParser cli(
      "Strong-scaling benchmark (paper Table 2 + Figure 8): PGAS fused vs "
      "NCCL-collective EMB retrieval.");
  cli.addInt("max-gpus", 4, "largest GPU count to sweep");
  cli.addInt("batches", 100, "inference batches per configuration");
  cli.addString("csv", "strong_scaling.csv", "output CSV path (empty = none)");
  bench::addRetrieversFlag(cli);
  bench::addSimsanFlag(cli);
  bench::addCacheFlags(cli);
  bench::addFaultFlags(cli);
  bench::addCoalesceFlag(cli);
  if (!cli.parseOrExit(argc, argv)) return 0;

  bench::printHeader(
      "Strong scaling: 96 tables x 1M rows total, dim 64, batch 16384, "
      "pooling U(1,32)");
  const auto points = bench::sweepScaling(
      /*weak=*/false, static_cast<int>(cli.getInt("max-gpus")),
      static_cast<int>(cli.getInt("batches")), bench::retrieverList(cli),
      cli.getBool("simsan"), cli.getInt("cache-rows"),
      cli.getDouble("zipf-alpha"),
      [&](engine::ExperimentConfig& cfg) {
        bench::applyFaultFlags(cli, cfg);
        bench::applyCoalesceFlag(cli, cfg);
      },
      cli.getBool("simsan-strict"));

  printf("\n%s\n", trace::renderSpeedupTable(points).c_str());
  printf("(paper: 2.95x / 2.55x / 2.44x, geo-mean 2.63x)\n");
  bench::printPerGpuRuntimes(points);
  printf("\n%s\n",
         trace::renderScalingChart(points, /*weak=*/false).c_str());
  printf("(paper Fig 8: baseline < 1.0 for 2-4 GPUs; PGAS ~1.6 at 2 GPUs, "
         "declining beyond)\n");
  const std::string cache_table = trace::renderCacheTable(points);
  if (!cache_table.empty()) printf("\n%s\n", cache_table.c_str());
  const std::string resilience = trace::renderResilienceTable(points);
  if (!resilience.empty()) printf("\n%s\n", resilience.c_str());
  bench::printSimsanReports(points);

  for (const auto& p : points) {
    if (p.gpus == 2) {
      printf("\nncu-style lookup-kernel throughput at 2 GPUs: compute "
             "%.0f%%, memory %.0f%% (paper §IV-B2a: 38%% / 57%%)\n",
             p.treatment().result.lookup_compute_throughput * 100.0,
             p.treatment().result.lookup_memory_throughput * 100.0);
    }
  }

  const std::string csv = cli.getString("csv");
  if (!csv.empty()) {
    trace::writeScalingCsv(csv, points);
    printf("\nwrote %s\n", csv.c_str());
  }
  return 0;
}

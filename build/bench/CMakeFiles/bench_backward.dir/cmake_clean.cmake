file(REMOVE_RECURSE
  "CMakeFiles/bench_backward.dir/bench_backward.cpp.o"
  "CMakeFiles/bench_backward.dir/bench_backward.cpp.o.d"
  "bench_backward"
  "bench_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_backward.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_input_partition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_input_partition.dir/bench_input_partition.cpp.o"
  "CMakeFiles/bench_input_partition.dir/bench_input_partition.cpp.o.d"
  "bench_input_partition"
  "bench_input_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

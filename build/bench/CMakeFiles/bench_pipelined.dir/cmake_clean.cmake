file(REMOVE_RECURSE
  "CMakeFiles/bench_pipelined.dir/bench_pipelined.cpp.o"
  "CMakeFiles/bench_pipelined.dir/bench_pipelined.cpp.o.d"
  "bench_pipelined"
  "bench_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_pipelined.
# This may be replaced when dependencies are built.

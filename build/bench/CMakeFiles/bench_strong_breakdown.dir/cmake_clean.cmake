file(REMOVE_RECURSE
  "CMakeFiles/bench_strong_breakdown.dir/bench_strong_breakdown.cpp.o"
  "CMakeFiles/bench_strong_breakdown.dir/bench_strong_breakdown.cpp.o.d"
  "bench_strong_breakdown"
  "bench_strong_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strong_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

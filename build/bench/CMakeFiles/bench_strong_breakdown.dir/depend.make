# Empty dependencies file for bench_strong_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_multinode.dir/bench_multinode.cpp.o"
  "CMakeFiles/bench_multinode.dir/bench_multinode.cpp.o.d"
  "bench_multinode"
  "bench_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregator.dir/bench_aggregator.cpp.o"
  "CMakeFiles/bench_aggregator.dir/bench_aggregator.cpp.o.d"
  "bench_aggregator"
  "bench_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_aggregator.
# This may be replaced when dependencies are built.

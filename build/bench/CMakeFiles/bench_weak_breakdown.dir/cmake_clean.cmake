file(REMOVE_RECURSE
  "CMakeFiles/bench_weak_breakdown.dir/bench_weak_breakdown.cpp.o"
  "CMakeFiles/bench_weak_breakdown.dir/bench_weak_breakdown.cpp.o.d"
  "bench_weak_breakdown"
  "bench_weak_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weak_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_weak_breakdown.
# This may be replaced when dependencies are built.

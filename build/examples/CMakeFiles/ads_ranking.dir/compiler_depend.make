# Empty compiler generated dependencies file for ads_ranking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ads_ranking.dir/ads_ranking.cpp.o"
  "CMakeFiles/ads_ranking.dir/ads_ranking.cpp.o.d"
  "ads_ranking"
  "ads_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/backward_training_step.dir/backward_training_step.cpp.o"
  "CMakeFiles/backward_training_step.dir/backward_training_step.cpp.o.d"
  "backward_training_step"
  "backward_training_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backward_training_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for backward_training_step.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dlrm_inference.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dlrm_inference.dir/dlrm_inference.cpp.o"
  "CMakeFiles/dlrm_inference.dir/dlrm_inference.cpp.o.d"
  "dlrm_inference"
  "dlrm_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pgasemb_sim.
# This may be replaced when dependencies are built.

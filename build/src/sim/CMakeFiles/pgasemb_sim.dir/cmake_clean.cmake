file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pgasemb_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pgasemb_sim.dir/fifo_resource.cpp.o"
  "CMakeFiles/pgasemb_sim.dir/fifo_resource.cpp.o.d"
  "CMakeFiles/pgasemb_sim.dir/simulator.cpp.o"
  "CMakeFiles/pgasemb_sim.dir/simulator.cpp.o.d"
  "libpgasemb_sim.a"
  "libpgasemb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpgasemb_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_dlrm.dir/backward.cpp.o"
  "CMakeFiles/pgasemb_dlrm.dir/backward.cpp.o.d"
  "CMakeFiles/pgasemb_dlrm.dir/interaction.cpp.o"
  "CMakeFiles/pgasemb_dlrm.dir/interaction.cpp.o.d"
  "CMakeFiles/pgasemb_dlrm.dir/mlp.cpp.o"
  "CMakeFiles/pgasemb_dlrm.dir/mlp.cpp.o.d"
  "CMakeFiles/pgasemb_dlrm.dir/model.cpp.o"
  "CMakeFiles/pgasemb_dlrm.dir/model.cpp.o.d"
  "CMakeFiles/pgasemb_dlrm.dir/pipeline.cpp.o"
  "CMakeFiles/pgasemb_dlrm.dir/pipeline.cpp.o.d"
  "CMakeFiles/pgasemb_dlrm.dir/trainer.cpp.o"
  "CMakeFiles/pgasemb_dlrm.dir/trainer.cpp.o.d"
  "libpgasemb_dlrm.a"
  "libpgasemb_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

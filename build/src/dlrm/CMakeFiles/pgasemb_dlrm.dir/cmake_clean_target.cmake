file(REMOVE_RECURSE
  "libpgasemb_dlrm.a"
)

# Empty dependencies file for pgasemb_dlrm.
# This may be replaced when dependencies are built.

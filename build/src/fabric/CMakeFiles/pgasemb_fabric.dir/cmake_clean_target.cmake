file(REMOVE_RECURSE
  "libpgasemb_fabric.a"
)

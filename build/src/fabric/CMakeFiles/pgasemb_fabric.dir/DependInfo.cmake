
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cpp" "src/fabric/CMakeFiles/pgasemb_fabric.dir/fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/pgasemb_fabric.dir/fabric.cpp.o.d"
  "/root/repo/src/fabric/link.cpp" "src/fabric/CMakeFiles/pgasemb_fabric.dir/link.cpp.o" "gcc" "src/fabric/CMakeFiles/pgasemb_fabric.dir/link.cpp.o.d"
  "/root/repo/src/fabric/time_series_counter.cpp" "src/fabric/CMakeFiles/pgasemb_fabric.dir/time_series_counter.cpp.o" "gcc" "src/fabric/CMakeFiles/pgasemb_fabric.dir/time_series_counter.cpp.o.d"
  "/root/repo/src/fabric/topology.cpp" "src/fabric/CMakeFiles/pgasemb_fabric.dir/topology.cpp.o" "gcc" "src/fabric/CMakeFiles/pgasemb_fabric.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pgasemb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasemb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for pgasemb_fabric.
# This may be replaced when dependencies are built.

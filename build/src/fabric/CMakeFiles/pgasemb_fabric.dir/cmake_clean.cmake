file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_fabric.dir/fabric.cpp.o"
  "CMakeFiles/pgasemb_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/pgasemb_fabric.dir/link.cpp.o"
  "CMakeFiles/pgasemb_fabric.dir/link.cpp.o.d"
  "CMakeFiles/pgasemb_fabric.dir/time_series_counter.cpp.o"
  "CMakeFiles/pgasemb_fabric.dir/time_series_counter.cpp.o.d"
  "CMakeFiles/pgasemb_fabric.dir/topology.cpp.o"
  "CMakeFiles/pgasemb_fabric.dir/topology.cpp.o.d"
  "libpgasemb_fabric.a"
  "libpgasemb_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

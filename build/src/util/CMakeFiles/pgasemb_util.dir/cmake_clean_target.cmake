file(REMOVE_RECURSE
  "libpgasemb_util.a"
)

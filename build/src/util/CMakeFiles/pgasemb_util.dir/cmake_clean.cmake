file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/pgasemb_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/pgasemb_util.dir/cli.cpp.o"
  "CMakeFiles/pgasemb_util.dir/cli.cpp.o.d"
  "CMakeFiles/pgasemb_util.dir/csv.cpp.o"
  "CMakeFiles/pgasemb_util.dir/csv.cpp.o.d"
  "CMakeFiles/pgasemb_util.dir/log.cpp.o"
  "CMakeFiles/pgasemb_util.dir/log.cpp.o.d"
  "CMakeFiles/pgasemb_util.dir/rng.cpp.o"
  "CMakeFiles/pgasemb_util.dir/rng.cpp.o.d"
  "CMakeFiles/pgasemb_util.dir/stats.cpp.o"
  "CMakeFiles/pgasemb_util.dir/stats.cpp.o.d"
  "CMakeFiles/pgasemb_util.dir/table.cpp.o"
  "CMakeFiles/pgasemb_util.dir/table.cpp.o.d"
  "libpgasemb_util.a"
  "libpgasemb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

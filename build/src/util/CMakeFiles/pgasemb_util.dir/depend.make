# Empty dependencies file for pgasemb_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpgasemb_emb.a"
)

# Empty dependencies file for pgasemb_emb.
# This may be replaced when dependencies are built.

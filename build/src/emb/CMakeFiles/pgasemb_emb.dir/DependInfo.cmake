
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emb/hashing.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/hashing.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/hashing.cpp.o.d"
  "/root/repo/src/emb/input_partition.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/input_partition.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/input_partition.cpp.o.d"
  "/root/repo/src/emb/layer.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/layer.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/layer.cpp.o.d"
  "/root/repo/src/emb/lookup_kernel.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/lookup_kernel.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/lookup_kernel.cpp.o.d"
  "/root/repo/src/emb/sharding.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/sharding.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/sharding.cpp.o.d"
  "/root/repo/src/emb/sparse_batch.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/sparse_batch.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/sparse_batch.cpp.o.d"
  "/root/repo/src/emb/table.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/table.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/table.cpp.o.d"
  "/root/repo/src/emb/unpack_kernel.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/unpack_kernel.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/unpack_kernel.cpp.o.d"
  "/root/repo/src/emb/workload.cpp" "src/emb/CMakeFiles/pgasemb_emb.dir/workload.cpp.o" "gcc" "src/emb/CMakeFiles/pgasemb_emb.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/pgasemb_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/pgasemb_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pgasemb_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasemb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasemb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

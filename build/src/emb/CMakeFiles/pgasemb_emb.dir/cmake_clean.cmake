file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_emb.dir/hashing.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/hashing.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/input_partition.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/input_partition.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/layer.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/layer.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/lookup_kernel.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/lookup_kernel.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/sharding.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/sharding.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/sparse_batch.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/sparse_batch.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/table.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/table.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/unpack_kernel.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/unpack_kernel.cpp.o.d"
  "CMakeFiles/pgasemb_emb.dir/workload.cpp.o"
  "CMakeFiles/pgasemb_emb.dir/workload.cpp.o.d"
  "libpgasemb_emb.a"
  "libpgasemb_emb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_emb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

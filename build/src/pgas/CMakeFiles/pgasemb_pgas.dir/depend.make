# Empty dependencies file for pgasemb_pgas.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpgasemb_pgas.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_pgas.dir/aggregator.cpp.o"
  "CMakeFiles/pgasemb_pgas.dir/aggregator.cpp.o.d"
  "CMakeFiles/pgasemb_pgas.dir/comm_counter.cpp.o"
  "CMakeFiles/pgasemb_pgas.dir/comm_counter.cpp.o.d"
  "CMakeFiles/pgasemb_pgas.dir/message_plan.cpp.o"
  "CMakeFiles/pgasemb_pgas.dir/message_plan.cpp.o.d"
  "CMakeFiles/pgasemb_pgas.dir/runtime.cpp.o"
  "CMakeFiles/pgasemb_pgas.dir/runtime.cpp.o.d"
  "CMakeFiles/pgasemb_pgas.dir/symmetric_heap.cpp.o"
  "CMakeFiles/pgasemb_pgas.dir/symmetric_heap.cpp.o.d"
  "libpgasemb_pgas.a"
  "libpgasemb_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

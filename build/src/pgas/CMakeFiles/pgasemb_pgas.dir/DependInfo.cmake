
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pgas/aggregator.cpp" "src/pgas/CMakeFiles/pgasemb_pgas.dir/aggregator.cpp.o" "gcc" "src/pgas/CMakeFiles/pgasemb_pgas.dir/aggregator.cpp.o.d"
  "/root/repo/src/pgas/comm_counter.cpp" "src/pgas/CMakeFiles/pgasemb_pgas.dir/comm_counter.cpp.o" "gcc" "src/pgas/CMakeFiles/pgasemb_pgas.dir/comm_counter.cpp.o.d"
  "/root/repo/src/pgas/message_plan.cpp" "src/pgas/CMakeFiles/pgasemb_pgas.dir/message_plan.cpp.o" "gcc" "src/pgas/CMakeFiles/pgasemb_pgas.dir/message_plan.cpp.o.d"
  "/root/repo/src/pgas/runtime.cpp" "src/pgas/CMakeFiles/pgasemb_pgas.dir/runtime.cpp.o" "gcc" "src/pgas/CMakeFiles/pgasemb_pgas.dir/runtime.cpp.o.d"
  "/root/repo/src/pgas/symmetric_heap.cpp" "src/pgas/CMakeFiles/pgasemb_pgas.dir/symmetric_heap.cpp.o" "gcc" "src/pgas/CMakeFiles/pgasemb_pgas.dir/symmetric_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/pgasemb_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pgasemb_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasemb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasemb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

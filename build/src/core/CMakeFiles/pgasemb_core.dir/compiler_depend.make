# Empty compiler generated dependencies file for pgasemb_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpgasemb_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_core.dir/collective_retriever.cpp.o"
  "CMakeFiles/pgasemb_core.dir/collective_retriever.cpp.o.d"
  "CMakeFiles/pgasemb_core.dir/pgas_retriever.cpp.o"
  "CMakeFiles/pgasemb_core.dir/pgas_retriever.cpp.o.d"
  "CMakeFiles/pgasemb_core.dir/pipelined_retriever.cpp.o"
  "CMakeFiles/pgasemb_core.dir/pipelined_retriever.cpp.o.d"
  "CMakeFiles/pgasemb_core.dir/retriever.cpp.o"
  "CMakeFiles/pgasemb_core.dir/retriever.cpp.o.d"
  "libpgasemb_core.a"
  "libpgasemb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pgasemb_gpu.
# This may be replaced when dependencies are built.

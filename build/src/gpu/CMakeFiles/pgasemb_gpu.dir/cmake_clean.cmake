file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_gpu.dir/cost_model.cpp.o"
  "CMakeFiles/pgasemb_gpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/pgasemb_gpu.dir/device.cpp.o"
  "CMakeFiles/pgasemb_gpu.dir/device.cpp.o.d"
  "CMakeFiles/pgasemb_gpu.dir/gpu_event.cpp.o"
  "CMakeFiles/pgasemb_gpu.dir/gpu_event.cpp.o.d"
  "CMakeFiles/pgasemb_gpu.dir/stream.cpp.o"
  "CMakeFiles/pgasemb_gpu.dir/stream.cpp.o.d"
  "CMakeFiles/pgasemb_gpu.dir/system.cpp.o"
  "CMakeFiles/pgasemb_gpu.dir/system.cpp.o.d"
  "libpgasemb_gpu.a"
  "libpgasemb_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cost_model.cpp" "src/gpu/CMakeFiles/pgasemb_gpu.dir/cost_model.cpp.o" "gcc" "src/gpu/CMakeFiles/pgasemb_gpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/gpu/CMakeFiles/pgasemb_gpu.dir/device.cpp.o" "gcc" "src/gpu/CMakeFiles/pgasemb_gpu.dir/device.cpp.o.d"
  "/root/repo/src/gpu/gpu_event.cpp" "src/gpu/CMakeFiles/pgasemb_gpu.dir/gpu_event.cpp.o" "gcc" "src/gpu/CMakeFiles/pgasemb_gpu.dir/gpu_event.cpp.o.d"
  "/root/repo/src/gpu/stream.cpp" "src/gpu/CMakeFiles/pgasemb_gpu.dir/stream.cpp.o" "gcc" "src/gpu/CMakeFiles/pgasemb_gpu.dir/stream.cpp.o.d"
  "/root/repo/src/gpu/system.cpp" "src/gpu/CMakeFiles/pgasemb_gpu.dir/system.cpp.o" "gcc" "src/gpu/CMakeFiles/pgasemb_gpu.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pgasemb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasemb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpgasemb_gpu.a"
)

file(REMOVE_RECURSE
  "libpgasemb_trace.a"
)

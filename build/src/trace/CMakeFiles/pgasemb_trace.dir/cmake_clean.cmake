file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_trace.dir/chrome_trace.cpp.o"
  "CMakeFiles/pgasemb_trace.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/pgasemb_trace.dir/experiment.cpp.o"
  "CMakeFiles/pgasemb_trace.dir/experiment.cpp.o.d"
  "CMakeFiles/pgasemb_trace.dir/report.cpp.o"
  "CMakeFiles/pgasemb_trace.dir/report.cpp.o.d"
  "libpgasemb_trace.a"
  "libpgasemb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pgasemb_trace.
# This may be replaced when dependencies are built.

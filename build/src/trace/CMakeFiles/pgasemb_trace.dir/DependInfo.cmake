
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chrome_trace.cpp" "src/trace/CMakeFiles/pgasemb_trace.dir/chrome_trace.cpp.o" "gcc" "src/trace/CMakeFiles/pgasemb_trace.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/trace/experiment.cpp" "src/trace/CMakeFiles/pgasemb_trace.dir/experiment.cpp.o" "gcc" "src/trace/CMakeFiles/pgasemb_trace.dir/experiment.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/pgasemb_trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/pgasemb_trace.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pgasemb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dlrm/CMakeFiles/pgasemb_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/emb/CMakeFiles/pgasemb_emb.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/pgasemb_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/pgasemb_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pgasemb_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pgasemb_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasemb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasemb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for pgasemb_collective.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pgasemb_collective.dir/communicator.cpp.o"
  "CMakeFiles/pgasemb_collective.dir/communicator.cpp.o.d"
  "CMakeFiles/pgasemb_collective.dir/request.cpp.o"
  "CMakeFiles/pgasemb_collective.dir/request.cpp.o.d"
  "libpgasemb_collective.a"
  "libpgasemb_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasemb_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/communicator.cpp" "src/collective/CMakeFiles/pgasemb_collective.dir/communicator.cpp.o" "gcc" "src/collective/CMakeFiles/pgasemb_collective.dir/communicator.cpp.o.d"
  "/root/repo/src/collective/request.cpp" "src/collective/CMakeFiles/pgasemb_collective.dir/request.cpp.o" "gcc" "src/collective/CMakeFiles/pgasemb_collective.dir/request.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/pgasemb_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pgasemb_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasemb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasemb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

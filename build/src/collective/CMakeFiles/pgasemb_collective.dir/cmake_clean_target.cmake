file(REMOVE_RECURSE
  "libpgasemb_collective.a"
)

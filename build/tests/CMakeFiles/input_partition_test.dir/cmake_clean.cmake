file(REMOVE_RECURSE
  "CMakeFiles/input_partition_test.dir/input_partition_test.cpp.o"
  "CMakeFiles/input_partition_test.dir/input_partition_test.cpp.o.d"
  "input_partition_test"
  "input_partition_test.pdb"
  "input_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for input_partition_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pgas_test.dir/pgas_test.cpp.o"
  "CMakeFiles/pgas_test.dir/pgas_test.cpp.o.d"
  "pgas_test"
  "pgas_test.pdb"
  "pgas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

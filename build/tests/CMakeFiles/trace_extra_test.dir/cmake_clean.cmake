file(REMOVE_RECURSE
  "CMakeFiles/trace_extra_test.dir/trace_extra_test.cpp.o"
  "CMakeFiles/trace_extra_test.dir/trace_extra_test.cpp.o.d"
  "trace_extra_test"
  "trace_extra_test.pdb"
  "trace_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

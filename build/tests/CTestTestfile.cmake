# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/pgas_test[1]_include.cmake")
include("/root/repo/build/tests/emb_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dlrm_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/trace_extra_test[1]_include.cmake")
include("/root/repo/build/tests/input_partition_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/skew_test[1]_include.cmake")
include("/root/repo/build/tests/pipelined_test[1]_include.cmake")

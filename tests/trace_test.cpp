// Tests for the experiment harness and reporters — the machinery behind
// every benchmark binary. These double as coarse regression tests on the
// paper-facing result shapes.
#include <gtest/gtest.h>

#include "trace/experiment.hpp"
#include "trace/report.hpp"
#include "util/expect.hpp"

namespace pgasemb::trace {
namespace {

ExperimentConfig quickWeak(int gpus, int batches = 3) {
  auto cfg = weakScalingConfig(gpus);
  cfg.num_batches = batches;
  return cfg;
}

TEST(ExperimentTest, PaperConfigsMatchSpec) {
  const auto weak = weakScalingConfig(4);
  EXPECT_EQ(weak.layer.total_tables, 256);
  EXPECT_EQ(weak.layer.rows_per_table, 1'000'000);
  EXPECT_EQ(weak.layer.dim, 64);
  EXPECT_EQ(weak.layer.batch_size, 16384);
  EXPECT_EQ(weak.layer.max_pooling, 128);
  const auto strong = strongScalingConfig(3);
  EXPECT_EQ(strong.layer.total_tables, 96);
  EXPECT_EQ(strong.layer.max_pooling, 32);
  EXPECT_EQ(strong.num_gpus, 3);
}

TEST(ExperimentTest, RunsBothKindsAndAccumulates) {
  const auto cfg = quickWeak(2);
  const auto base = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
  const auto pgas = runExperiment(cfg, RetrieverKind::kPgasFused);
  EXPECT_EQ(base.stats.batches, 3);
  EXPECT_EQ(pgas.stats.batches, 3);
  EXPECT_EQ(base.per_batch.size(), 3u);
  EXPECT_GT(base.avgBatchMs(), pgas.avgBatchMs());
  EXPECT_GT(base.avgCommunicationMs(), 0.0);
  EXPECT_GT(base.avgSyncUnpackMs(), 0.0);
}

TEST(ExperimentTest, WeakScalingSpeedupNearPaper) {
  // Regression guard on the headline reproduction: 2-GPU weak-scaling
  // speedup within 15% of the paper's 2.10x.
  const auto cfg = quickWeak(2, 5);
  const auto base = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
  const auto pgas = runExperiment(cfg, RetrieverKind::kPgasFused);
  const double speedup = base.avgBatchMs() / pgas.avgBatchMs();
  EXPECT_NEAR(speedup, 2.10, 0.32);
}

TEST(ExperimentTest, BaselineWeakScalingFactorNearPaper) {
  // Paper Fig 5: the baseline's 2-GPU weak-scaling factor is ~0.46.
  const auto one = runExperiment(quickWeak(1),
                                 RetrieverKind::kCollectiveBaseline);
  const auto two = runExperiment(quickWeak(2),
                                 RetrieverKind::kCollectiveBaseline);
  const double factor = one.avgBatchMs() / two.avgBatchMs();
  EXPECT_NEAR(factor, 0.46, 0.08);
}

TEST(ExperimentTest, PgasWeakScalingNearIdeal) {
  const auto one = runExperiment(quickWeak(1), RetrieverKind::kPgasFused);
  const auto four = runExperiment(quickWeak(4), RetrieverKind::kPgasFused);
  EXPECT_GT(one.avgBatchMs() / four.avgBatchMs(), 0.95);
}

TEST(ExperimentTest, StrongScalingComputeFlattensBeyondTwoGpus) {
  auto c2 = strongScalingConfig(2);
  auto c4 = strongScalingConfig(4);
  c2.num_batches = c4.num_batches = 3;
  const auto p2 = runExperiment(c2, RetrieverKind::kPgasFused);
  const auto p4 = runExperiment(c4, RetrieverKind::kPgasFused);
  // Latency-limited: no speedup from 2 to 4 GPUs (paper §IV-B).
  EXPECT_NEAR(p4.avgBatchMs() / p2.avgBatchMs(), 1.0, 0.1);
}

TEST(ExperimentTest, NcuThroughputNearPaperAtTwoGpuStrong) {
  auto cfg = strongScalingConfig(2);
  cfg.num_batches = 1;
  const auto r = runExperiment(cfg, RetrieverKind::kPgasFused);
  EXPECT_NEAR(r.lookup_memory_throughput, 0.57, 0.12);
  EXPECT_NEAR(r.lookup_compute_throughput, 0.38, 0.12);
}

TEST(ExperimentTest, CommVolumeSeriesSpreadForPgasSpikedForBaseline) {
  auto cfg = quickWeak(2, 1);
  cfg.counter_bucket = SimTime::us(250.0);
  const auto pgas = runExperiment(cfg, RetrieverKind::kPgasFused);
  const auto base = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
  auto nonzero = [](const std::vector<double>& v) {
    int n = 0;
    for (double x : v) {
      if (x > 0) ++n;
    }
    return n;
  };
  // PGAS traffic spans the compute window; baseline bursts at the end.
  EXPECT_GT(nonzero(pgas.wire_bytes_over_time),
            nonzero(base.wire_bytes_over_time) * 2);
  // Same total volume either way.
  EXPECT_EQ(pgas.total_wire_bytes, base.total_wire_bytes);
}

TEST(ExperimentTest, FunctionalModeRunsSmallConfig) {
  ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.num_gpus = 2;
  cfg.num_batches = 2;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.device_memory_bytes = 256 << 20;
  const auto base = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
  const auto pgas = runExperiment(cfg, RetrieverKind::kPgasFused);
  EXPECT_EQ(base.stats.batches, 2);
  EXPECT_EQ(pgas.stats.batches, 2);
}

TEST(ExperimentTest, MultiNodeConfigRoutesThroughNics) {
  ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.layer.batch_size = 4096;
  cfg.layer.rows_per_table = 10000;
  cfg.num_gpus = 4;
  cfg.num_nodes = 2;
  cfg.num_batches = 1;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5);
  cfg.inter_node_link.max_messages_per_sec = 10e6;
  const auto single = [&] {
    auto c = cfg;
    c.num_nodes = 0;
    return runExperiment(c, RetrieverKind::kPgasFused);
  }();
  const auto multi = runExperiment(cfg, RetrieverKind::kPgasFused);
  EXPECT_GT(multi.avgBatchMs(), single.avgBatchMs());
}

TEST(ExperimentTest, AggregatorHelpsOnMultiNode) {
  ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.layer.batch_size = 16384;
  cfg.layer.total_tables = 16;
  cfg.layer.rows_per_table = 10000;
  cfg.num_gpus = 4;
  cfg.num_nodes = 2;
  cfg.num_batches = 1;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5);
  cfg.inter_node_link.max_messages_per_sec = 10e6;
  const auto raw = runExperiment(cfg, RetrieverKind::kPgasFused);
  auto agg_cfg = cfg;
  agg_cfg.use_aggregator = true;
  agg_cfg.aggregator.aggregation_bytes = 128 * 1024;
  const auto agg = runExperiment(agg_cfg, RetrieverKind::kPgasFused);
  EXPECT_LE(agg.avgBatchMs(), raw.avgBatchMs());
  EXPECT_LT(agg.total_wire_messages, raw.total_wire_messages);
}

TEST(ExperimentTest, FullyDeterministicAcrossRuns) {
  // The discrete-event simulation must be bit-reproducible: same config
  // and seed, same everything — timings, wire bytes, traces.
  auto cfg = quickWeak(3, 2);
  const auto a = runExperiment(cfg, RetrieverKind::kPgasFused);
  const auto b = runExperiment(cfg, RetrieverKind::kPgasFused);
  EXPECT_EQ(a.stats.total, b.stats.total);
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
  EXPECT_EQ(a.total_wire_messages, b.total_wire_messages);
  EXPECT_EQ(a.wire_bytes_over_time, b.wire_bytes_over_time);
  const auto c = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
  const auto d = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
  EXPECT_EQ(c.stats.total, d.stats.total);
  EXPECT_EQ(c.stats.comm_phase, d.stats.comm_phase);
}

TEST(ReportTest, SpeedupTableAndChartsRender) {
  std::vector<ScalingPoint> points;
  for (int g = 1; g <= 2; ++g) {
    auto cfg = quickWeak(g, 1);
    ScalingPoint p;
    p.gpus = g;
    p.baseline = runExperiment(cfg, RetrieverKind::kCollectiveBaseline);
    p.pgas = runExperiment(cfg, RetrieverKind::kPgasFused);
    points.push_back(std::move(p));
  }
  const auto table = renderSpeedupTable(points);
  EXPECT_NE(table.find("2 GPUs"), std::string::npos);
  EXPECT_NE(table.find("geo-mean"), std::string::npos);
  EXPECT_GT(geomeanSpeedup(points), 1.0);
  EXPECT_FALSE(renderScalingChart(points, true).empty());
  EXPECT_FALSE(renderScalingChart(points, false).empty());
  EXPECT_FALSE(
      renderBreakdownBars(points, "breakdown").empty());
  EXPECT_FALSE(renderCommVolumeChart(points[1].pgas, points[1].baseline,
                                     "volume")
                   .empty());
}

}  // namespace
}  // namespace pgasemb::trace

// Tests for the engine harness and reporters — the machinery behind
// every benchmark binary. These double as coarse regression tests on the
// paper-facing result shapes.
#include <gtest/gtest.h>

#include "engine/scenario_runner.hpp"
#include "trace/report.hpp"
#include "util/expect.hpp"

namespace pgasemb::trace {
namespace {

engine::ExperimentConfig quickWeak(int gpus, int batches = 3) {
  auto cfg = engine::weakScalingConfig(gpus);
  cfg.num_batches = batches;
  return cfg;
}

engine::ExperimentResult run(const engine::ExperimentConfig& cfg,
                             const std::string& retriever) {
  return engine::ScenarioRunner(cfg).run(retriever);
}

TEST(ExperimentTest, PaperConfigsMatchSpec) {
  const auto weak = engine::weakScalingConfig(4);
  EXPECT_EQ(weak.layer.total_tables, 256);
  EXPECT_EQ(weak.layer.rows_per_table, 1'000'000);
  EXPECT_EQ(weak.layer.dim, 64);
  EXPECT_EQ(weak.layer.batch_size, 16384);
  EXPECT_EQ(weak.layer.max_pooling, 128);
  const auto strong = engine::strongScalingConfig(3);
  EXPECT_EQ(strong.layer.total_tables, 96);
  EXPECT_EQ(strong.layer.max_pooling, 32);
  EXPECT_EQ(strong.num_gpus, 3);
}

TEST(ExperimentTest, RunsBothKindsAndAccumulates) {
  const auto cfg = quickWeak(2);
  const auto base = run(cfg, "nccl_collective");
  const auto pgas = run(cfg, "pgas_fused");
  EXPECT_EQ(base.stats.batches, 3);
  EXPECT_EQ(pgas.stats.batches, 3);
  EXPECT_EQ(base.per_batch.size(), 3u);
  EXPECT_GT(base.avgBatchMs(), pgas.avgBatchMs());
  EXPECT_GT(base.avgCommunicationMs(), 0.0);
  EXPECT_GT(base.avgSyncUnpackMs(), 0.0);
}

TEST(ExperimentTest, WeakScalingSpeedupNearPaper) {
  // Regression guard on the headline reproduction: 2-GPU weak-scaling
  // speedup within 15% of the paper's 2.10x.
  const auto cfg = quickWeak(2, 5);
  const auto base = run(cfg, "nccl_collective");
  const auto pgas = run(cfg, "pgas_fused");
  const double speedup = base.avgBatchMs() / pgas.avgBatchMs();
  EXPECT_NEAR(speedup, 2.10, 0.32);
}

TEST(ExperimentTest, BaselineWeakScalingFactorNearPaper) {
  // Paper Fig 5: the baseline's 2-GPU weak-scaling factor is ~0.46.
  const auto one = run(quickWeak(1), "nccl_collective");
  const auto two = run(quickWeak(2), "nccl_collective");
  const double factor = one.avgBatchMs() / two.avgBatchMs();
  EXPECT_NEAR(factor, 0.46, 0.08);
}

TEST(ExperimentTest, PgasWeakScalingNearIdeal) {
  const auto one = run(quickWeak(1), "pgas_fused");
  const auto four = run(quickWeak(4), "pgas_fused");
  EXPECT_GT(one.avgBatchMs() / four.avgBatchMs(), 0.95);
}

TEST(ExperimentTest, StrongScalingComputeFlattensBeyondTwoGpus) {
  auto c2 = engine::strongScalingConfig(2);
  auto c4 = engine::strongScalingConfig(4);
  c2.num_batches = c4.num_batches = 3;
  const auto p2 = run(c2, "pgas_fused");
  const auto p4 = run(c4, "pgas_fused");
  // Latency-limited: no speedup from 2 to 4 GPUs (paper §IV-B).
  EXPECT_NEAR(p4.avgBatchMs() / p2.avgBatchMs(), 1.0, 0.1);
}

TEST(ExperimentTest, NcuThroughputNearPaperAtTwoGpuStrong) {
  auto cfg = engine::strongScalingConfig(2);
  cfg.num_batches = 1;
  const auto r = run(cfg, "pgas_fused");
  EXPECT_NEAR(r.lookup_memory_throughput, 0.57, 0.12);
  EXPECT_NEAR(r.lookup_compute_throughput, 0.38, 0.12);
}

TEST(ExperimentTest, CommVolumeSeriesSpreadForPgasSpikedForBaseline) {
  auto cfg = quickWeak(2, 1);
  cfg.counter_bucket = SimTime::us(250.0);
  const auto pgas = run(cfg, "pgas_fused");
  const auto base = run(cfg, "nccl_collective");
  auto nonzero = [](const std::vector<double>& v) {
    int n = 0;
    for (double x : v) {
      if (x > 0) ++n;
    }
    return n;
  };
  // PGAS traffic spans the compute window; baseline bursts at the end.
  EXPECT_GT(nonzero(pgas.wire_bytes_over_time),
            nonzero(base.wire_bytes_over_time) * 2);
  // Same total volume either way.
  EXPECT_EQ(pgas.total_wire_bytes, base.total_wire_bytes);
}

TEST(ExperimentTest, FunctionalModeRunsSmallConfig) {
  engine::ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.num_gpus = 2;
  cfg.num_batches = 2;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.device_memory_bytes = 256 << 20;
  const auto base = run(cfg, "nccl_collective");
  const auto pgas = run(cfg, "pgas_fused");
  EXPECT_EQ(base.stats.batches, 2);
  EXPECT_EQ(pgas.stats.batches, 2);
}

TEST(ExperimentTest, MultiNodeConfigRoutesThroughNics) {
  engine::ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.layer.batch_size = 4096;
  cfg.layer.rows_per_table = 10000;
  cfg.num_gpus = 4;
  cfg.num_nodes = 2;
  cfg.num_batches = 1;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5);
  cfg.inter_node_link.max_messages_per_sec = 10e6;
  const auto single = [&] {
    auto c = cfg;
    c.num_nodes = 0;
    return run(c, "pgas_fused");
  }();
  const auto multi = run(cfg, "pgas_fused");
  EXPECT_GT(multi.avgBatchMs(), single.avgBatchMs());
}

TEST(ExperimentTest, AggregatorHelpsOnMultiNode) {
  engine::ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.layer.batch_size = 16384;
  cfg.layer.total_tables = 16;
  cfg.layer.rows_per_table = 10000;
  cfg.num_gpus = 4;
  cfg.num_nodes = 2;
  cfg.num_batches = 1;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5);
  cfg.inter_node_link.max_messages_per_sec = 10e6;
  const auto raw = run(cfg, "pgas_fused");
  auto agg_cfg = cfg;
  agg_cfg.use_aggregator = true;
  agg_cfg.aggregator.aggregation_bytes = 128 * 1024;
  const auto agg = run(agg_cfg, "pgas_fused");
  EXPECT_LE(agg.avgBatchMs(), raw.avgBatchMs());
  EXPECT_LT(agg.total_wire_messages, raw.total_wire_messages);
}

TEST(ExperimentTest, FullyDeterministicAcrossRuns) {
  // The discrete-event simulation must be bit-reproducible: same config
  // and seed, same everything — timings, wire bytes, traces. Note the
  // two runs below share one ScenarioRunner: reset() puts the rebuilt
  // system on a fresh clock.
  auto cfg = quickWeak(3, 2);
  engine::ScenarioRunner runner(cfg);
  const auto a = runner.run("pgas_fused");
  const auto b = runner.run("pgas_fused");
  EXPECT_EQ(a.stats.total, b.stats.total);
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
  EXPECT_EQ(a.total_wire_messages, b.total_wire_messages);
  EXPECT_EQ(a.wire_bytes_over_time, b.wire_bytes_over_time);
  const auto c = runner.run("nccl_collective");
  const auto d = runner.run("nccl_collective");
  EXPECT_EQ(c.stats.total, d.stats.total);
  EXPECT_EQ(c.stats.comm_phase, d.stats.comm_phase);
}

TEST(ReportTest, SpeedupTableAndChartsRender) {
  std::vector<ScalingPoint> points;
  for (int g = 1; g <= 2; ++g) {
    auto cfg = quickWeak(g, 1);
    engine::ScenarioRunner runner(cfg);
    ScalingPoint p;
    p.gpus = g;
    p.runs = runner.runAll({"nccl_collective", "pgas_fused"});
    points.push_back(std::move(p));
  }
  const auto table = renderSpeedupTable(points);
  EXPECT_NE(table.find("2 GPUs"), std::string::npos);
  EXPECT_NE(table.find("geo-mean"), std::string::npos);
  EXPECT_NE(table.find("PGAS over baseline"), std::string::npos);
  EXPECT_GT(geomeanSpeedup(points), 1.0);
  EXPECT_FALSE(renderScalingChart(points, true).empty());
  EXPECT_FALSE(renderScalingChart(points, false).empty());
  EXPECT_FALSE(
      renderBreakdownBars(points, "breakdown").empty());
  EXPECT_FALSE(renderCommVolumeChart(points[1].runs, "volume").empty());
}

TEST(ReportTest, SpeedupGuardsAgainstDegenerateInput) {
  // Satellite guard: an empty point reports 0.0 instead of UB/crash.
  ScalingPoint empty;
  EXPECT_EQ(empty.speedup(), 0.0);

  // A treatment with zero batches (avg 0 ms) must not divide by zero.
  ScalingPoint degenerate;
  degenerate.gpus = 2;
  degenerate.runs.push_back({"nccl_collective", {}});
  degenerate.runs.push_back({"pgas_fused", {}});
  EXPECT_EQ(degenerate.speedup(), 0.0);
}

}  // namespace
}  // namespace pgasemb::trace

// Unit + integration tests for the DLRM module: MLP math, interaction
// layer, end-to-end inference pipeline (predictions identical under both
// retrievers), and the backward-pass extension (both schemes update the
// tables identically; PGAS avoids the multi-round aggregation).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "dlrm/backward.hpp"
#include "dlrm/interaction.hpp"
#include "dlrm/mlp.hpp"
#include "dlrm/model.hpp"
#include "dlrm/pipeline.hpp"
#include "emb/workload.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb::dlrm {
namespace {

struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;

  Rig(int gpus, gpu::ExecutionMode mode)
      : system(makeConfig(gpus, mode)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric) {}

  static gpu::SystemConfig makeConfig(int gpus, gpu::ExecutionMode mode) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 2LL << 30;
    cfg.mode = mode;
    return cfg;
  }
};

emb::EmbLayerSpec smallSpec() {
  emb::EmbLayerSpec spec = emb::tinyLayerSpec();
  spec.batch_size = 8;
  return spec;
}

// --- MLP ---------------------------------------------------------------------

TEST(MlpTest, ForwardShapeAndDeterminism) {
  Mlp mlp(MlpConfig{4, {8, 3}, 7});
  std::vector<float> in{0.1f, 0.2f, 0.3f, 0.4f};
  const auto out1 = mlp.forward(in);
  const auto out2 = mlp.forward(in);
  ASSERT_EQ(out1.size(), 3u);
  EXPECT_EQ(out1, out2);
}

TEST(MlpTest, ForwardMatchesManualReluNetwork) {
  // Re-derive the forward pass by hand from the exposed weights: hidden
  // layer with ReLU, linear output layer.
  Mlp mlp(MlpConfig{2, {3, 2}, 9});
  const std::vector<float> in{0.7f, -0.3f};
  std::vector<float> hidden(3);
  for (int i = 0; i < 3; ++i) {
    float acc = mlp.bias(0, i);
    for (int j = 0; j < 2; ++j) {
      acc += mlp.weight(0, i, j) * in[static_cast<std::size_t>(j)];
    }
    hidden[static_cast<std::size_t>(i)] = std::max(0.0f, acc);
  }
  std::vector<float> expect(2);
  for (int i = 0; i < 2; ++i) {
    float acc = mlp.bias(1, i);
    for (int j = 0; j < 3; ++j) {
      acc += mlp.weight(1, i, j) * hidden[static_cast<std::size_t>(j)];
    }
    expect[static_cast<std::size_t>(i)] = acc;  // linear final layer
  }
  EXPECT_EQ(mlp.forward(in), expect);
}

TEST(MlpTest, InputDimMismatchThrows) {
  Mlp mlp(MlpConfig{4, {2}, 1});
  EXPECT_THROW(mlp.forward(std::vector<float>{1.0f}),
               InvalidArgumentError);
}

TEST(MlpTest, FlopsAndBytesScaleWithBatch) {
  Mlp mlp(MlpConfig{16, {64, 8}, 1});
  EXPECT_DOUBLE_EQ(mlp.forwardFlops(2), 2 * mlp.forwardFlops(1));
  EXPECT_GT(mlp.forwardBytes(100), mlp.forwardBytes(1));
  // flops per sample: 2*(16*64 + 64*8).
  EXPECT_DOUBLE_EQ(mlp.forwardFlops(1), 2.0 * (16 * 64 + 64 * 8));
}

TEST(MlpTest, KernelDurationPositive) {
  Rig rig(1, gpu::ExecutionMode::kTimingOnly);
  Mlp mlp(MlpConfig{16, {64, 8}, 1});
  const auto k = mlp.buildForwardKernel(rig.system, 4096, "mlp");
  EXPECT_GE(k.duration, rig.system.costModel().kernel_latency_floor);
}

// --- Interaction ---------------------------------------------------------------

TEST(InteractionTest, DotProductOutputDim) {
  InteractionLayer layer(InteractionKind::kDotProduct, 8, 3);
  // 8 (dense passthrough) + C(4,2)=6 pairwise dots.
  EXPECT_EQ(layer.outputDim(), 14);
}

TEST(InteractionTest, ConcatOutputDim) {
  InteractionLayer layer(InteractionKind::kConcat, 8, 3);
  EXPECT_EQ(layer.outputDim(), 32);
}

TEST(InteractionTest, DotProductValues) {
  InteractionLayer layer(InteractionKind::kDotProduct, 2, 1);
  std::vector<float> dense{1.0f, 2.0f};
  std::vector<float> sparse{3.0f, 4.0f};
  const auto out = layer.fuse(dense, sparse);
  ASSERT_EQ(out.size(), 3u);  // 2 dense + 1 dot
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f * 3.0f + 2.0f * 4.0f);
}

TEST(InteractionTest, ShapeMismatchThrows) {
  InteractionLayer layer(InteractionKind::kDotProduct, 4, 2);
  std::vector<float> dense(4, 0.0f);
  std::vector<float> wrong(4, 0.0f);  // needs 2*4
  EXPECT_THROW(layer.fuse(dense, wrong), InvalidArgumentError);
}

// --- Full model / pipeline -------------------------------------------------------

DlrmConfig smallModelConfig(int emb_dim) {
  DlrmConfig cfg;
  cfg.dense_dim = 4;
  cfg.top_mlp = {16, emb_dim};
  cfg.bottom_mlp = {16, 1};
  return cfg;
}

TEST(ModelTest, PredictionInUnitInterval) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  const auto spec = smallSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  DlrmModel model(smallModelConfig(spec.dim), layer);
  std::vector<float> dense{0.1f, 0.5f, 0.9f, 0.2f};
  std::vector<float> sparse(
      static_cast<std::size_t>(spec.total_tables * spec.dim), 0.25f);
  const float p = model.predict(dense, sparse);
  EXPECT_GT(p, 0.0f);
  EXPECT_LT(p, 1.0f);
}

TEST(ModelTest, MismatchedTopMlpThrows) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  const auto spec = smallSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  DlrmConfig bad = smallModelConfig(spec.dim);
  bad.top_mlp.back() = spec.dim + 1;
  EXPECT_THROW(DlrmModel(bad, layer), InvalidArgumentError);
}

TEST(PipelineTest, PredictionsIdenticalAcrossRetrievers) {
  // The paper's schemes are performance-equivalent transforms: the full
  // DLRM must produce identical predictions either way.
  std::vector<std::vector<std::vector<float>>> all_preds;
  for (const bool use_pgas : {false, true}) {
    Rig rig(3, gpu::ExecutionMode::kFunctional);
    const auto spec = smallSpec();
    emb::ShardedEmbeddingLayer layer(rig.system, spec);
    std::unique_ptr<core::EmbeddingRetriever> retriever;
    if (use_pgas) {
      retriever = std::make_unique<core::PgasFusedRetriever>(
          layer, rig.runtime, core::PgasRetrieverOptions{});
    } else {
      retriever =
          std::make_unique<core::CollectiveRetriever>(layer, rig.comm);
    }
    DlrmModel model(smallModelConfig(spec.dim), layer);
    InferencePipeline pipeline(model, *retriever);
    Rng rng(0xfeed);
    const auto sparse =
        emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
    const auto dense = DenseBatch::generateUniform(
        spec.batch_size, model.config().dense_dim, rng);
    pipeline.runBatch(dense, sparse);
    all_preds.push_back(pipeline.predictions());
  }
  ASSERT_EQ(all_preds[0].size(), all_preds[1].size());
  for (std::size_t g = 0; g < all_preds[0].size(); ++g) {
    EXPECT_EQ(all_preds[0][g], all_preds[1][g]) << "gpu " << g;
  }
}

TEST(PipelineTest, EmbTimingSubsetOfBatchTotal) {
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  emb::EmbLayerSpec spec = smallSpec();
  spec.batch_size = 4096;
  spec.rows_per_table = 10000;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  core::CollectiveRetriever retriever(layer, rig.comm);
  DlrmModel model(smallModelConfig(spec.dim), layer);
  InferencePipeline pipeline(model, retriever);
  Rng rng(1);
  const auto sparse = emb::SparseBatch::statistical(spec.batchSpec());
  const auto dense =
      DenseBatch::generateUniform(spec.batch_size, 4, rng);
  const auto result = pipeline.runBatch(dense, sparse);
  EXPECT_GT(result.emb.total, SimTime::zero());
  EXPECT_GT(result.batch_total, result.emb.total);
}

TEST(PipelineTest, MlpOverlapsWithEmb) {
  // The top MLP runs on a side stream; total should be far below the
  // serial sum when EMB dominates.
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  emb::EmbLayerSpec spec = emb::weakScalingLayerSpec(2);
  gpu::SystemConfig big = Rig::makeConfig(2, gpu::ExecutionMode::kTimingOnly);
  big.memory_capacity_bytes = 32LL << 30;
  gpu::MultiGpuSystem system(big);
  fabric::Fabric fabric(
      system.simulator(),
      std::make_unique<fabric::NvlinkAllToAllTopology>(
          2, fabric::LinkParams{}));
  pgas::PgasRuntime runtime(system, fabric);
  emb::ShardedEmbeddingLayer layer(system, spec);
  core::PgasFusedRetriever retriever(layer, runtime, {});
  DlrmConfig mc = smallModelConfig(spec.dim);
  DlrmModel model(mc, layer);
  InferencePipeline pipeline(model, retriever);
  Rng rng(2);
  const auto sparse = emb::SparseBatch::statistical(spec.batchSpec());
  const auto dense =
      DenseBatch::generateUniform(spec.batch_size, mc.dense_dim, rng);
  const auto result = pipeline.runBatch(dense, sparse);
  // EMB is tens of ms; MLP+interaction adds little on top.
  EXPECT_LT(result.batch_total, result.emb.total + SimTime::ms(10));
}

// --- Backward pass ------------------------------------------------------------

TEST(BackwardTest, SchemesUpdateTablesIdentically) {
  std::vector<std::vector<float>> weights_after;
  for (const auto scheme :
       {BackwardScheme::kCollective, BackwardScheme::kPgasAtomics}) {
    Rig rig(2, gpu::ExecutionMode::kFunctional);
    const auto spec = smallSpec();
    emb::ShardedEmbeddingLayer layer(rig.system, spec);
    EmbBackwardEngine engine(layer, rig.comm, rig.runtime, 0.1f);
    Rng rng(0xabc);
    const auto batch =
        emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
    engine.runBatch(batch, scheme);
    std::vector<float> weights;
    for (std::int64_t t = 0; t < spec.total_tables; ++t) {
      for (std::int64_t r = 0; r < spec.rows_per_table; ++r) {
        for (int c = 0; c < spec.dim; ++c) {
          weights.push_back(layer.table(t).weight(r, c));
        }
      }
    }
    weights_after.push_back(std::move(weights));
  }
  EXPECT_EQ(weights_after[0], weights_after[1]);
}

TEST(BackwardTest, GradientsActuallyChangeTouchedRows) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  emb::EmbLayerSpec spec = smallSpec();
  spec.min_pooling = 1;  // every sample touches every table
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  const float before = layer.table(0).weight(
      layer.hashedRow(0, 12345), 0);
  EmbBackwardEngine engine(layer, rig.comm, rig.runtime, 0.5f);
  Rng rng(0xabd);
  const auto batch =
      emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
  engine.runBatch(batch, BackwardScheme::kPgasAtomics);
  // At least one weight somewhere must have moved.
  bool changed = false;
  for (std::int64_t r = 0; r < spec.rows_per_table && !changed; ++r) {
    changed = layer.table(0).weight(r, 0) !=
              emb::proceduralWeight(emb::tableSeed(spec.seed, 0), r, 0);
  }
  EXPECT_TRUE(changed);
  (void)before;
}

TEST(BackwardTest, PgasFasterThanCollectiveRounds) {
  emb::EmbLayerSpec spec;
  spec.total_tables = 16;
  spec.rows_per_table = 100000;
  spec.dim = 64;
  spec.batch_size = 8192;
  spec.min_pooling = 1;
  spec.max_pooling = 32;
  spec.seed = 0xe0;
  SimTime collective_time, pgas_time;
  {
    Rig rig(4, gpu::ExecutionMode::kTimingOnly);
    emb::ShardedEmbeddingLayer layer(rig.system, spec);
    EmbBackwardEngine engine(layer, rig.comm, rig.runtime, 0.1f);
    const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
    collective_time =
        engine.runBatch(batch, BackwardScheme::kCollective).total;
  }
  {
    Rig rig(4, gpu::ExecutionMode::kTimingOnly);
    emb::ShardedEmbeddingLayer layer(rig.system, spec);
    EmbBackwardEngine engine(layer, rig.comm, rig.runtime, 0.1f);
    const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
    pgas_time = engine.runBatch(batch, BackwardScheme::kPgasAtomics).total;
  }
  EXPECT_LT(pgas_time, collective_time);
}

TEST(BackwardTest, CollectiveHasAggregationPhase) {
  Rig rig(4, gpu::ExecutionMode::kTimingOnly);
  emb::EmbLayerSpec spec = smallSpec();
  spec.batch_size = 4096;
  spec.rows_per_table = 10000;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  EmbBackwardEngine engine(layer, rig.comm, rig.runtime, 0.1f);
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
  const auto tc = engine.runBatch(batch, BackwardScheme::kCollective);
  EXPECT_GT(tc.aggregate_phase, SimTime::zero());
  EXPECT_GT(tc.comm_phase, SimTime::zero());
  const auto tp = engine.runBatch(batch, BackwardScheme::kPgasAtomics);
  EXPECT_EQ(tp.aggregate_phase, SimTime::zero());
  EXPECT_EQ(tp.comm_phase, SimTime::zero());
}

TEST(BackwardTest, SchemesMoveTheSameWireVolume) {
  // Both backward schemes exchange one gradient vector per remote
  // (table, sample) output — the PGAS atomics change WHEN the bytes
  // move (overlapped) and remove the aggregation rounds, not the
  // payload itself.
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  emb::EmbLayerSpec spec = smallSpec();
  spec.batch_size = 4096;
  spec.rows_per_table = 10000;
  spec.min_pooling = 4;
  spec.max_pooling = 8;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
  EmbBackwardEngine engine(layer, rig.comm, rig.runtime, 0.1f);

  engine.runBatch(batch, BackwardScheme::kPgasAtomics);
  const auto pgas_bytes = rig.fabric.totalPayloadBytes();
  rig.fabric.reset();
  engine.runBatch(batch, BackwardScheme::kCollective);
  // Collective moves the same a2a payload plus the ring-shift rounds.
  EXPECT_GE(rig.fabric.totalPayloadBytes(), pgas_bytes);
  EXPECT_GT(pgas_bytes, 0);
}

}  // namespace
}  // namespace pgasemb::dlrm

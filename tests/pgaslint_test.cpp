// Tests for pgaslint — the project's determinism & declared-effects
// static analysis (tools/pgaslint).
//
// The corpus here is the rule-by-rule contract: for every rule, one
// seeded violation the linter must catch (with the right rule name,
// line, and message) and one `pgaslint:allow(...)` suppression that
// must silence it. Plus the supporting machinery: lexer behavior
// (comments/strings never trigger rules), path scoping, the rule
// filter, and allowlist parsing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pgaslint/lint.hpp"

namespace pgaslint {
namespace {

std::vector<Finding> lint(const std::string& path, const std::string& code,
                          Options opts = {}) {
  return lintFile(path, code, opts);
}

/// The single finding of a run expected to produce exactly one.
Finding only(const std::vector<Finding>& findings) {
  EXPECT_EQ(findings.size(), 1u);
  return findings.empty() ? Finding{} : findings.front();
}

// ---------------------------------------------------------------------------
// Rule corpus: each rule catches its seeded violation
// ---------------------------------------------------------------------------

TEST(PgaslintCorpusTest, NondetRandCatchesRandomDevice) {
  const auto f = only(lint("src/util/rng.cpp",
                           "void seed() {\n"
                           "  std::random_device rd;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "nondet-rand");
  EXPECT_EQ(f.line, 2);
  EXPECT_NE(f.message.find("random_device"), std::string::npos);
  EXPECT_NE(f.message.find("seed-deterministic"), std::string::npos);
}

TEST(PgaslintCorpusTest, NondetRandCatchesCRand) {
  const auto f = only(lint("src/emb/workload.cpp",
                           "int draw() { return rand(); }\n"));
  EXPECT_EQ(f.rule, "nondet-rand");
  EXPECT_EQ(f.line, 1);
}

TEST(PgaslintCorpusTest, NondetClockCatchesSteadyClock) {
  const auto f = only(lint("src/sim/simulator.cpp",
                           "void tick() {\n"
                           "  auto t = std::chrono::steady_clock::now();\n"
                           "  (void)t;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "nondet-clock");
  EXPECT_EQ(f.line, 2);
  EXPECT_NE(f.message.find("steady_clock"), std::string::npos);
}

TEST(PgaslintCorpusTest, UnorderedIterCatchesRangeFor) {
  const auto f = only(lint("src/trace/report.cpp",
                           "void dump(const std::unordered_map<int, int>& m) "
                           "{\n"
                           "  for (const auto& kv : m) { (void)kv; }\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "unordered-iter");
  EXPECT_EQ(f.line, 2);
  EXPECT_NE(f.message.find("implementation-defined"), std::string::npos);
}

TEST(PgaslintCorpusTest, UnorderedIterCatchesBeginCall) {
  const auto findings = lint("src/trace/report.cpp",
                             "std::unordered_set<int> seen;\n"
                             "auto it = seen.begin();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(PgaslintCorpusTest, UnorderedKeyedAccessIsAllowed) {
  // Only the visit order is implementation-defined: find/count/[] are
  // deterministic and stay clean.
  EXPECT_TRUE(lint("src/trace/report.cpp",
                   "std::unordered_map<int, int> m;\n"
                   "int f(int k) { return m.count(k) ? m[k] : 0; }\n")
                  .empty());
}

TEST(PgaslintCorpusTest, FuncHotPathCatchesStdFunction) {
  const auto f = only(lint("src/sim/event.hpp",
                           "struct Ev {\n"
                           "  std::function<void()> cb;\n"
                           "};\n"));
  EXPECT_EQ(f.rule, "func-hot-path");
  EXPECT_EQ(f.line, 2);
  EXPECT_NE(f.message.find("EventFn"), std::string::npos);
}

TEST(PgaslintCorpusTest, PtrKeyOrderedCatchesPointerSet) {
  const auto f = only(lint("src/fault/injector.cpp",
                           "void dedup() {\n"
                           "  std::set<fabric::Link*> seen;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "ptr-key-ordered");
  EXPECT_EQ(f.line, 2);
  EXPECT_NE(f.message.find("allocation addresses"), std::string::npos);
}

TEST(PgaslintCorpusTest, PtrKeyOrderedCatchesPointerKeyedMap) {
  const auto f = only(lint("tests/some_test.cpp",
                           "std::map<Stream*, int> depth;\n"));
  EXPECT_EQ(f.rule, "ptr-key-ordered");
}

TEST(PgaslintCorpusTest, ValueKeyedMapIsAllowed) {
  EXPECT_TRUE(lint("src/fault/injector.cpp",
                   "std::map<int, std::string> by_id;\n"
                   "std::set<std::string> names;\n")
                  .empty());
}

TEST(PgaslintCorpusTest, KernelMemEffectsCatchesUndeclaredKernel) {
  const auto f = only(lint("src/emb/rogue.cpp",
                           "gpu::KernelDesc build() {\n"
                           "  gpu::KernelDesc desc;\n"
                           "  desc.name = \"emb_rogue_lookup\";\n"
                           "  return desc;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "kernel-mem-effects");
  EXPECT_EQ(f.line, 3);
  EXPECT_NE(f.message.find("emb_rogue_lookup"), std::string::npos);
  EXPECT_NE(f.message.find("mem_effects"), std::string::npos);
}

TEST(PgaslintCorpusTest, KernelMemEffectsHonorsPureAllowlist) {
  Options opts;
  opts.pure_kernels = {"mlp_"};
  EXPECT_TRUE(lint("src/dlrm/mlp.cpp",
                   "gpu::KernelDesc build() {\n"
                   "  gpu::KernelDesc desc;\n"
                   "  desc.name = \"mlp_bottom\";\n"
                   "  return desc;\n"
                   "}\n",
                   opts)
                  .empty());
}

TEST(PgaslintCorpusTest, KernelMemEffectsSatisfiedByDeclaration) {
  EXPECT_TRUE(lint("src/emb/rogue.cpp",
                   "gpu::KernelDesc build() {\n"
                   "  gpu::KernelDesc desc;\n"
                   "  desc.name = \"emb_rogue_lookup\";\n"
                   "  desc.mem_effects.push_back(effect);\n"
                   "  return desc;\n"
                   "}\n")
                  .empty());
}

TEST(PgaslintCorpusTest, KernelMemEffectsCoversHierStagingKernels) {
  // The hierarchical all-to-all's leader gather/scatter builders
  // (src/emb/staging_kernel.cpp) are NOT on the pure-kernels allowlist:
  // they touch the leaders' staging buffers, so a builder that forgets
  // its staging-slot effect must be flagged like any other kernel.
  const auto f = only(lint("src/emb/staging_rogue.cpp",
                           "gpu::KernelDesc build(int node) {\n"
                           "  gpu::KernelDesc desc;\n"
                           "  desc.name = \"emb_hier_gather.node\" + "
                           "std::to_string(node);\n"
                           "  return desc;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "kernel-mem-effects");
  EXPECT_NE(f.message.find("emb_hier_gather"), std::string::npos);

  EXPECT_TRUE(lint("src/emb/staging_rogue.cpp",
                   "gpu::KernelDesc build(int node) {\n"
                   "  gpu::KernelDesc desc;\n"
                   "  desc.name = \"emb_hier_scatter.node\" + "
                   "std::to_string(node);\n"
                   "  desc.mem_effects.push_back(effect);\n"
                   "  return desc;\n"
                   "}\n")
                  .empty());
}

TEST(PgaslintCorpusTest, KernelMemEffectsCoversFailoverRebuildKernel) {
  // The leader-failover staging rebuild (DESIGN.md §13) replays the
  // standby leader's staging layout as a device kernel. Its writes are
  // exactly what the members' post-failover gathers synchronize against
  // (the rebuild release/acquire chain), so a builder that drops the
  // declared effects silently un-orders the whole failover path.
  const auto f = only(lint("src/emb/staging_rogue.cpp",
                           "gpu::KernelDesc build(int node) {\n"
                           "  gpu::KernelDesc desc;\n"
                           "  desc.name = \"emb_hier_rebuild.node\" + "
                           "std::to_string(node);\n"
                           "  return desc;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "kernel-mem-effects");
  EXPECT_NE(f.message.find("emb_hier_rebuild"), std::string::npos);

  // The real builder's shape — slot effects pushed in a loop — passes.
  EXPECT_TRUE(lint("src/emb/staging_rogue.cpp",
                   "gpu::KernelDesc build(int node) {\n"
                   "  gpu::KernelDesc desc;\n"
                   "  desc.name = \"emb_hier_rebuild.node\" + "
                   "std::to_string(node);\n"
                   "  for (const auto& slot : slots) {\n"
                   "    desc.mem_effects.push_back(\n"
                   "        {device, slot, simsan::AccessKind::kWrite, "
                   "\"\"});\n"
                   "  }\n"
                   "  return desc;\n"
                   "}\n")
                  .empty());
}

TEST(PgaslintCorpusTest, KernelMemEffectsFlagsComputedName) {
  const auto f = only(lint("src/emb/rogue.cpp",
                           "gpu::KernelDesc build(const std::string& name) "
                           "{\n"
                           "  gpu::KernelDesc desc;\n"
                           "  desc.name = name;\n"
                           "  return desc;\n"
                           "}\n"));
  EXPECT_EQ(f.rule, "kernel-mem-effects");
  EXPECT_NE(f.message.find("computed name"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Suppression: every rule is silenced by pgaslint:allow(<rule>)
// ---------------------------------------------------------------------------

struct SuppressionCase {
  const char* path;
  const char* violation;  // a one-line violating statement
  const char* rule;
};

const SuppressionCase kSuppressionCorpus[] = {
    {"src/a.cpp", "std::random_device rd;", "nondet-rand"},
    {"src/a.cpp", "auto t = std::chrono::steady_clock::now();",
     "nondet-clock"},
    {"src/sim/a.cpp", "std::function<void()> f;", "func-hot-path"},
    {"src/a.cpp", "std::set<Link*> seen;", "ptr-key-ordered"},
};

TEST(PgaslintSuppressionTest, AllowOnPrecedingLineSuppresses) {
  for (const auto& c : kSuppressionCorpus) {
    const std::string code = std::string("// rationale pgaslint:allow(") +
                             c.rule + ")\n" + c.violation + "\n";
    EXPECT_TRUE(lint(c.path, code).empty()) << c.rule;
  }
}

TEST(PgaslintSuppressionTest, TrailingAllowSuppresses) {
  for (const auto& c : kSuppressionCorpus) {
    const std::string code = std::string(c.violation) +
                             "  // pgaslint:allow(" + c.rule + ")\n";
    EXPECT_TRUE(lint(c.path, code).empty()) << c.rule;
  }
}

TEST(PgaslintSuppressionTest, AllowTwoLinesAboveDoesNotSuppress) {
  for (const auto& c : kSuppressionCorpus) {
    const std::string code = std::string("// pgaslint:allow(") + c.rule +
                             ")\n// another comment line\n" + c.violation +
                             "\n";
    const auto findings = lint(c.path, code);
    ASSERT_EQ(findings.size(), 1u) << c.rule;
    EXPECT_EQ(findings[0].rule, c.rule);
    EXPECT_EQ(findings[0].line, 3);
  }
}

TEST(PgaslintSuppressionTest, AllowOfDifferentRuleDoesNotSuppress) {
  const auto findings = lint("src/a.cpp",
                             "// pgaslint:allow(nondet-clock)\n"
                             "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-rand");
}

TEST(PgaslintSuppressionTest, AllowListSuppressesSeveralRules) {
  EXPECT_TRUE(
      lint("src/a.cpp",
           "// pgaslint:allow(nondet-rand, nondet-clock)\n"
           "auto x = rand() + std::chrono::steady_clock::now()"
           ".time_since_epoch().count();\n")
          .empty());
}

TEST(PgaslintSuppressionTest, UnorderedIterSuppressibleAtIterationSite) {
  // The declaration is fine; only the iteration needs the allow.
  EXPECT_TRUE(lint("src/a.cpp",
                   "std::unordered_map<int, int> m;\n"
                   "// order feeds an order-insensitive sum:"
                   " pgaslint:allow(unordered-iter)\n"
                   "int s() { int t = 0; for (auto& kv : m) t += kv.second;"
                   " return t; }\n")
                  .empty());
}

TEST(PgaslintSuppressionTest, KernelMemEffectsSuppressibleWithRationale) {
  EXPECT_TRUE(lint("src/dlrm/rogue.cpp",
                   "gpu::KernelDesc build(const std::string& name) {\n"
                   "  gpu::KernelDesc desc;\n"
                   "  // pure compute: pgaslint:allow(kernel-mem-effects)\n"
                   "  desc.name = name;\n"
                   "  return desc;\n"
                   "}\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Lexer: comments and string literals never trigger rules
// ---------------------------------------------------------------------------

TEST(PgaslintLexerTest, CommentsDoNotTrigger) {
  EXPECT_TRUE(lint("src/a.cpp",
                   "// rand() and std::random_device discussed here\n"
                   "/* steady_clock in a block comment */\n"
                   "int x = 0;\n")
                  .empty());
}

TEST(PgaslintLexerTest, StringLiteralsDoNotTrigger) {
  EXPECT_TRUE(lint("src/a.cpp",
                   "const char* a = \"rand\";\n"
                   "const char* b = \"std::set<Link*> in a string\";\n"
                   "char c = 'r';\n")
                  .empty());
}

TEST(PgaslintLexerTest, EscapedQuotesStayInsideTheLiteral) {
  EXPECT_TRUE(lint("src/a.cpp",
                   "const char* a = \"quoted \\\" rand() here\";\n"
                   "int x = 1'000'000;\n")
                  .empty());
}

TEST(PgaslintLexerTest, CodeAfterACommentOnTheSameLineStillTriggers) {
  const auto findings = lint("src/a.cpp",
                             "/* setup */ std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-rand");
}

// ---------------------------------------------------------------------------
// Scoping and the rule filter
// ---------------------------------------------------------------------------

TEST(PgaslintScopeTest, RuleScopesMatchTheDocumentedDirectories) {
  EXPECT_TRUE(ruleAppliesTo("nondet-rand", "src/emb/workload.cpp"));
  EXPECT_FALSE(ruleAppliesTo("nondet-rand", "bench/bench_micro.cpp"));
  EXPECT_FALSE(ruleAppliesTo("nondet-rand", "tests/util_test.cpp"));
  EXPECT_TRUE(ruleAppliesTo("unordered-iter", "bench/bench_micro.cpp"));
  EXPECT_FALSE(ruleAppliesTo("unordered-iter", "tests/util_test.cpp"));
  EXPECT_TRUE(ruleAppliesTo("func-hot-path", "src/sim/simulator.cpp"));
  EXPECT_FALSE(ruleAppliesTo("func-hot-path", "src/gpu/stream.cpp"));
  EXPECT_TRUE(ruleAppliesTo("ptr-key-ordered", "tests/util_test.cpp"));
  EXPECT_TRUE(ruleAppliesTo("ptr-key-ordered", "tools/pgaslint/lint.cpp"));
  EXPECT_TRUE(ruleAppliesTo("kernel-mem-effects", "src/emb/rogue.cpp"));
  EXPECT_FALSE(ruleAppliesTo("kernel-mem-effects", "bench/bench_cache.cpp"));
}

TEST(PgaslintScopeTest, AbsolutePathsScopeByDirectoryComponent) {
  EXPECT_TRUE(ruleAppliesTo("nondet-rand", "/root/repo/src/emb/workload.cpp"));
  EXPECT_TRUE(ruleAppliesTo("func-hot-path", "./src/sim/event.hpp"));
}

TEST(PgaslintScopeTest, OutOfScopeFilesProduceNoFindings) {
  // Benches legitimately measure wall-clock time.
  EXPECT_TRUE(lint("bench/bench_micro.cpp",
                   "auto t0 = std::chrono::steady_clock::now();\n"
                   "int r = rand();\n")
                  .empty());
}

TEST(PgaslintScopeTest, RuleFilterRestrictsToNamedRules) {
  Options opts;
  opts.rules = {"nondet-clock"};
  const auto findings = lint("src/a.cpp",
                             "std::random_device rd;\n"
                             "auto t = std::chrono::steady_clock::now();\n",
                             opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-clock");
}

TEST(PgaslintScopeTest, FindingsAreSortedByLine) {
  const auto findings = lint("src/a.cpp",
                             "auto t = std::chrono::steady_clock::now();\n"
                             "std::random_device rd;\n"
                             "int r = rand();\n");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
}

// ---------------------------------------------------------------------------
// Rule catalogue and allowlist parsing
// ---------------------------------------------------------------------------

TEST(PgaslintCatalogueTest, SixRulesEachWithADescription) {
  const auto& rules = allRules();
  EXPECT_EQ(rules.size(), 6u);
  for (const auto& rule : rules) {
    EXPECT_FALSE(ruleDescription(rule).empty()) << rule;
  }
  EXPECT_TRUE(ruleDescription("no-such-rule").empty());
}

TEST(PgaslintCatalogueTest, ParseAllowlistSkipsCommentsAndBlanks) {
  const auto entries = parseAllowlist(
      "# pure-compute kernels\n"
      "mlp_\n"
      "\n"
      "  interaction  # trailing comment\n"
      "emb_cache_probe\r\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], "mlp_");
  EXPECT_EQ(entries[1], "interaction");
  EXPECT_EQ(entries[2], "emb_cache_probe");
}

}  // namespace
}  // namespace pgaslint

// Tests for simsan — the happens-before race, bounds, and lifetime
// checker for simulated device memory.
//
// Three layers of coverage:
//   1. Unit tests of the primitives: StridedRange overlap, the
//      vector-clock happens-before engine, and allocation tracking.
//   2. Certification: all three shipped retrievers run race-free under
//      the checker at 2, 4, and 8 GPUs.
//   3. Seeded bugs: two deliberately broken retrievers — an unpack that
//      skips the wait on its all-to-all, and a fused PGAS kernel whose
//      quiet (finalize) is stripped — must each be flagged, with the
//      report naming both conflicting accesses.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "collective/communicator.hpp"
#include "core/registry.hpp"
#include "core/retriever.hpp"
#include "emb/lookup_kernel.hpp"
#include "emb/replica_cache.hpp"
#include "emb/unpack_kernel.hpp"
#include "emb/workload.hpp"
#include "engine/scenario_runner.hpp"
#include "gpu/gpu_event.hpp"
#include "pgas/runtime.hpp"
#include "simsan/checker.hpp"

namespace pgasemb {
namespace {

using simsan::AccessKind;
using simsan::Checker;
using simsan::StridedRange;

const SimTime kT = SimTime::us(1.0);

StridedRange contiguous(std::int64_t begin, std::int64_t len) {
  return StridedRange::contiguous(begin, len);
}

// ---------------------------------------------------------------------------
// StridedRange overlap
// ---------------------------------------------------------------------------

TEST(StridedRangeTest, ContiguousPairs) {
  EXPECT_TRUE(simsan::overlaps(contiguous(0, 10), contiguous(5, 10)));
  EXPECT_TRUE(simsan::overlaps(contiguous(5, 10), contiguous(0, 10)));
  EXPECT_FALSE(simsan::overlaps(contiguous(0, 10), contiguous(10, 10)));
  EXPECT_FALSE(simsan::overlaps(contiguous(0, 0), contiguous(0, 10)));
  EXPECT_TRUE(simsan::overlaps(contiguous(3, 1), contiguous(0, 10)));
}

TEST(StridedRangeTest, ContiguousVersusStrided) {
  // Runs [0,2), [10,12), [20,22).
  const StridedRange s{0, 2, 10, 3};
  EXPECT_TRUE(simsan::overlaps(contiguous(0, 1), s));
  EXPECT_TRUE(simsan::overlaps(contiguous(11, 1), s));
  EXPECT_TRUE(simsan::overlaps(contiguous(21, 1), s));
  EXPECT_FALSE(simsan::overlaps(contiguous(2, 8), s));
  EXPECT_FALSE(simsan::overlaps(contiguous(5, 4), s));
  EXPECT_FALSE(simsan::overlaps(contiguous(22, 100), s));
  // A full-period interval necessarily covers a run.
  EXPECT_TRUE(simsan::overlaps(contiguous(1, 10), s));
}

TEST(StridedRangeTest, SameStridePhases) {
  // Runs of a: 0-2, 10-12, ...; runs of b: 4-6, 14-16, ...
  const StridedRange a{0, 2, 10, 5};
  const StridedRange b{4, 2, 10, 7};
  EXPECT_FALSE(simsan::overlaps(a, b));
  EXPECT_FALSE(simsan::overlaps(b, a));
  // Shift b to phase 1: runs 1-3 intersect 0-2.
  const StridedRange c{1, 2, 10, 7};
  EXPECT_TRUE(simsan::overlaps(a, c));
  EXPECT_TRUE(simsan::overlaps(c, a));
}

TEST(StridedRangeTest, DifferentStrides) {
  // a: {0, 6, 12, 18}; b: {2, 6, 10, 14, 18} — meet at 6 (and 18).
  const StridedRange a{0, 1, 6, 4};
  const StridedRange b{2, 1, 4, 5};
  EXPECT_TRUE(simsan::overlaps(a, b));
  // b': {1, 5, 9, 13, 17} — misses every run of a.
  const StridedRange b2{1, 1, 4, 5};
  EXPECT_FALSE(simsan::overlaps(a, b2));
  EXPECT_FALSE(simsan::overlaps(b2, a));
}

TEST(StridedRangeTest, FusedFootprintsOfDistinctSourcesAreDisjoint) {
  // Table-wise sharding: each source's footprint into one destination
  // covers only that source's table block — sources never collide.
  const emb::Sharding sh(/*total_tables=*/8, /*batch_size=*/12,
                         /*num_gpus=*/4);
  const int dim = 8;
  for (int dst = 0; dst < 4; ++dst) {
    for (int s1 = 0; s1 < 4; ++s1) {
      for (int s2 = 0; s2 < 4; ++s2) {
        const auto f1 = emb::fusedWriteFootprint(sh, s1, dst, dim);
        const auto f2 = emb::fusedWriteFootprint(sh, s2, dst, dim);
        EXPECT_EQ(s1 == s2, simsan::overlaps(f1, f2))
            << "src " << s1 << " vs " << s2 << " into " << dst;
      }
    }
  }
  // All sources together tile the whole output tensor.
  std::int64_t covered = 0;
  for (int src = 0; src < 4; ++src) {
    const auto f = emb::fusedWriteFootprint(sh, src, 0, dim);
    covered += f.len * f.count;
  }
  EXPECT_EQ(covered, sh.outputElements(0, dim));
}

// ---------------------------------------------------------------------------
// Vector-clock happens-before engine
// ---------------------------------------------------------------------------

TEST(CheckerHbTest, SameActorIsProgramOrder) {
  Checker c;
  const auto a = c.newActor("a");
  c.onAlloc(0, 0, 100, "buf");
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w2");
  EXPECT_TRUE(c.clean());
}

TEST(CheckerHbTest, UnorderedConflictingWritesRace) {
  Checker c;
  const auto a = c.newActor("a");
  const auto b = c.newActor("b");
  c.onAlloc(0, 0, 100, "buf");
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  c.access(b, 0, contiguous(5, 10), AccessKind::kWrite, kT, kT, "w2");
  const auto s = c.summary();
  EXPECT_EQ(s.races, 1);
  ASSERT_EQ(s.violations.size(), 1u);
  EXPECT_NE(s.violations[0].message.find("w1"), std::string::npos);
  EXPECT_NE(s.violations[0].message.find("w2"), std::string::npos);
  EXPECT_NE(s.violations[0].message.find("no happens-before"),
            std::string::npos);
}

TEST(CheckerHbTest, DisjointOrCompatibleAccessesDoNotRace) {
  Checker c;
  const auto a = c.newActor("a");
  const auto b = c.newActor("b");
  c.onAlloc(0, 0, 100, "buf");
  // Disjoint writes.
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  c.access(b, 0, contiguous(10, 10), AccessKind::kWrite, kT, kT, "w2");
  // Concurrent reads.
  c.access(a, 0, contiguous(50, 10), AccessKind::kRead, kT, kT, "r1");
  c.access(b, 0, contiguous(50, 10), AccessKind::kRead, kT, kT, "r2");
  // Concurrent atomic adds.
  c.access(a, 0, contiguous(80, 10), AccessKind::kAtomicAdd, kT, kT, "a1");
  c.access(b, 0, contiguous(80, 10), AccessKind::kAtomicAdd, kT, kT, "a2");
  EXPECT_TRUE(c.clean());
}

TEST(CheckerHbTest, ReleaseAcquireOrders) {
  Checker c;
  const auto a = c.newActor("a");
  const auto b = c.newActor("b");
  c.onAlloc(0, 0, 100, "buf");
  int sync = 0;
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  c.release(a, &sync);
  c.acquire(b, &sync);
  c.access(b, 0, contiguous(0, 10), AccessKind::kRead, kT, kT, "r1");
  EXPECT_TRUE(c.clean());
  // An acquire on a never-released object adds no edge...
  int other = 0;
  const auto d = c.newActor("d");
  c.acquire(d, &other);
  c.access(d, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w2");
  EXPECT_EQ(c.summary().races, 2);  // vs both w1 and r1
}

TEST(CheckerHbTest, SnapshotJoinClockOrders) {
  Checker c;
  const auto a = c.newActor("a");
  const auto b = c.newActor("b");
  c.onAlloc(0, 0, 100, "buf");
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  const auto snap = c.snapshot(a);
  c.joinClock(b, snap);
  c.access(b, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w2");
  EXPECT_TRUE(c.clean());
  // The snapshot does NOT cover a's later accesses.
  c.access(a, 0, contiguous(20, 10), AccessKind::kWrite, kT, kT, "w3");
  const auto e = c.newActor("e");
  c.joinClock(e, snap);
  c.access(e, 0, contiguous(20, 10), AccessKind::kWrite, kT, kT, "w4");
  EXPECT_EQ(c.summary().races, 1);
}

TEST(CheckerHbTest, ForkAndJoinActor) {
  Checker c;
  const auto parent = c.newActor("stream");
  c.onAlloc(0, 0, 100, "buf");
  c.access(parent, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  // Fork: the child observes everything the parent did.
  const auto child = c.forkActor("put", parent);
  c.access(child, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w2");
  EXPECT_TRUE(c.clean());
  // Join: the parent observes the child (quiet).
  c.joinActor(parent, child);
  c.access(parent, 0, contiguous(0, 10), AccessKind::kRead, kT, kT, "r1");
  EXPECT_TRUE(c.clean());
  // Without the join the read would race the child's write.
  const auto child2 = c.forkActor("put2", parent);
  c.access(child2, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w3");
  c.access(parent, 0, contiguous(0, 10), AccessKind::kRead, kT, kT, "r2");
  EXPECT_EQ(c.summary().races, 1);
}

// ---------------------------------------------------------------------------
// Bounds and lifetime
// ---------------------------------------------------------------------------

TEST(CheckerMemTest, OutOfBounds) {
  Checker c;
  const auto a = c.newActor("a");
  c.onAlloc(0, 0, 100, "buf");
  c.access(a, 0, contiguous(50, 100), AccessKind::kWrite, kT, kT, "oob");
  const auto s = c.summary();
  EXPECT_EQ(s.out_of_bounds, 1);
  ASSERT_FALSE(s.violations.empty());
  EXPECT_NE(s.violations[0].message.find("unallocated"), std::string::npos);
  // A strided access is bounded by its envelope.
  c.access(a, 0, StridedRange{0, 10, 50, 3}, AccessKind::kWrite, kT, kT,
           "strided_oob");
  EXPECT_EQ(c.summary().out_of_bounds, 2);
}

TEST(CheckerMemTest, UseAfterFreeAndDoubleFree) {
  Checker c;
  const auto a = c.newActor("a");
  c.onAlloc(0, 0, 100, "buf");
  c.onFree(0, 0, 100);
  c.access(a, 0, contiguous(0, 10), AccessKind::kRead, kT, kT, "uaf");
  auto s = c.summary();
  EXPECT_EQ(s.lifetime_errors, 1);
  ASSERT_FALSE(s.violations.empty());
  EXPECT_NE(s.violations[0].message.find("freed"), std::string::npos);
  c.onFree(0, 0, 100);  // double free
  EXPECT_EQ(c.summary().lifetime_errors, 2);
  c.onFree(0, 400, 10);  // never allocated
  EXPECT_EQ(c.summary().lifetime_errors, 3);
}

TEST(CheckerMemTest, AddressReuseResolvesToNewestAllocation) {
  Checker c;
  const auto a = c.newActor("a");
  c.onAlloc(0, 0, 100, "first");
  c.onFree(0, 0, 100);
  c.onAlloc(0, 0, 100, "second");  // allocator reused the range
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w");
  EXPECT_TRUE(c.clean());
  c.onFree(0, 0, 100);
  EXPECT_TRUE(c.clean());
}

TEST(CheckerMemTest, LeakCheckRespectsBaseline) {
  Checker c;
  c.onAlloc(0, 0, 100, "table_shard");
  c.setBaseline();
  c.onAlloc(0, 100, 50, "working_buf");
  c.leakCheck();
  const auto s = c.summary();
  EXPECT_EQ(s.leaks, 1);
  ASSERT_FALSE(s.violations.empty());
  EXPECT_NE(s.violations[0].message.find("working_buf"), std::string::npos);
  // Idempotent: a reported leak is not reported again.
  c.leakCheck();
  EXPECT_EQ(c.summary().leaks, 1);
}

TEST(CheckerMemTest, ReportCountsAndFormat) {
  Checker c;
  const auto a = c.newActor("a");
  const auto b = c.newActor("b");
  c.onAlloc(0, 0, 100, "buf");
  c.access(a, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w1");
  c.access(b, 0, contiguous(0, 10), AccessKind::kWrite, kT, kT, "w2");
  const std::string report = c.report();
  EXPECT_NE(report.find("1 race(s)"), std::string::npos);
  EXPECT_NE(report.find("[race]"), std::string::npos);
  EXPECT_FALSE(c.clean());
}

// ---------------------------------------------------------------------------
// Certification: the shipped retrievers are race-free under the checker
// ---------------------------------------------------------------------------

engine::ExperimentConfig tinySimsanConfig(int gpus) {
  engine::ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.num_gpus = gpus;
  cfg.num_batches = 3;
  cfg.pgas_slices = 6;
  cfg.simsan = true;
  return cfg;
}

class CertificationTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CertificationTest, RetrieverIsCleanUnderSimsan) {
  const auto& [name, gpus] = GetParam();
  engine::ScenarioRunner runner(tinySimsanConfig(gpus));
  const auto result = runner.run(name);
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
  EXPECT_GT(result.sanitizer->accesses_logged, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRetrievers, CertificationTest,
    ::testing::Combine(::testing::Values("nccl_collective", "pgas_fused",
                                         "nccl_pipelined"),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "gpus";
    });

// With the hot-row replica cache attached, every retriever grows a
// probe + serve stage whose whole-output overlay write must be ordered
// against the exchange's writes into the same tensor (program order on
// the stream for the collectives; an explicit barrier for PGAS). The
// checker certifies those edges too.
engine::ExperimentConfig tinyCachedSimsanConfig(int gpus) {
  auto cfg = tinySimsanConfig(gpus);
  cfg.cache_rows = 12;
  cfg.layer.zipf_alpha = 0.9;
  return cfg;
}

class CachedCertificationTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CachedCertificationTest, CachedRetrieverIsCleanUnderSimsan) {
  const auto& [name, gpus] = GetParam();
  engine::ScenarioRunner runner(tinyCachedSimsanConfig(gpus));
  const auto result = runner.run(name);
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
  // The cache genuinely engaged: served bags were accounted.
  EXPECT_GT(result.stats.cache_lookups, 0.0);
  EXPECT_GT(result.stats.cache_hits, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllRetrievers, CachedCertificationTest,
    ::testing::Combine(::testing::Values("nccl_collective", "pgas_fused",
                                         "nccl_pipelined"),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "gpus";
    });

TEST(CertificationTest, SimsanOffLeavesResultEmpty) {
  auto cfg = tinySimsanConfig(2);
  cfg.simsan = false;
  engine::ScenarioRunner runner(cfg);
  const auto result = runner.run("nccl_collective");
  EXPECT_FALSE(result.sanitizer.has_value());
}

TEST(CertificationTest, SimsanDoesNotChangeTimings) {
  auto cfg = tinySimsanConfig(4);
  engine::ScenarioRunner checked(cfg);
  cfg.simsan = false;
  engine::ScenarioRunner unchecked(cfg);
  for (const char* name : {"nccl_collective", "pgas_fused"}) {
    const auto a = checked.run(name);
    const auto b = unchecked.run(name);
    EXPECT_EQ(a.stats.total, b.stats.total) << name;
    EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes) << name;
  }
}

// ---------------------------------------------------------------------------
// Seeded bug 1: unpack enqueued without waiting for its all-to-all
// ---------------------------------------------------------------------------

simsan::StridedRange wholeBuffer(const gpu::DeviceBuffer& buf) {
  return simsan::StridedRange::contiguous(buf.offset(), buf.size());
}

/// Pipelined-style baseline with the a2a-done wait removed: the unpack
/// kernel on the default stream reads the receive buffer while the
/// collective on the comm stream may still be writing it.
class BrokenNoUnpackWait final : public core::EmbeddingRetriever {
 public:
  BrokenNoUnpackWait(emb::ShardedEmbeddingLayer& layer,
                     collective::Communicator& comm)
      : layer_(layer), comm_(comm) {
    auto& system = layer.system();
    const auto& sh = layer.sharding();
    const int dim = layer.dim();
    for (int g = 0; g < system.numGpus(); ++g) {
      auto& dev = system.device(g);
      send_.push_back(dev.alloc(emb::sendBufferElements(sh, g, dim)));
      recv_.push_back(dev.alloc(emb::recvBufferElements(sh, g, dim)));
      out_.push_back(dev.alloc(sh.outputElements(g, dim)));
      comm_streams_.push_back(&system.createStream(g, "comm"));
    }
  }

  ~BrokenNoUnpackWait() override {
    auto& system = layer_.system();
    for (int g = system.numGpus() - 1; g >= 0; --g) {
      system.device(g).free(out_[static_cast<std::size_t>(g)]);
      system.device(g).free(recv_[static_cast<std::size_t>(g)]);
      system.device(g).free(send_[static_cast<std::size_t>(g)]);
    }
  }

  std::string name() const override { return "broken_no_unpack_wait"; }
  gpu::DeviceBuffer& output(int gpu) override {
    return out_[static_cast<std::size_t>(gpu)];
  }

  core::BatchTiming runBatch(const emb::SparseBatch& batch) override {
    auto& system = layer_.system();
    auto* san = system.sanitizer();
    const int p = system.numGpus();
    const SimTime t0 = system.hostNow();
    const std::size_t ev_base = events_.size();
    for (int g = 0; g < p; ++g) {
      events_.push_back(std::make_unique<gpu::GpuEvent>());
    }

    std::vector<std::vector<std::int64_t>> matrix(
        static_cast<std::size_t>(p),
        std::vector<std::int64_t>(static_cast<std::size_t>(p), 0));
    for (int g = 0; g < p; ++g) {
      auto kernel = emb::buildBaselineLookupKernel(layer_, batch, g, nullptr);
      for (int d = 0; d < p; ++d) {
        if (d != g) {
          matrix[static_cast<std::size_t>(g)][static_cast<std::size_t>(d)] =
              kernel.send_bytes[static_cast<std::size_t>(d)];
        }
      }
      if (san != nullptr) {
        kernel.desc.mem_effects.push_back(
            {g, wholeBuffer(send_[static_cast<std::size_t>(g)]),
             AccessKind::kWrite, ""});
      }
      system.launchKernel(g, std::move(kernel.desc));
      system.stream(g).enqueueRecord(
          system.hostNow(), *events_[ev_base + static_cast<std::size_t>(g)]);
      comm_streams_[static_cast<std::size_t>(g)]->enqueueWaitEvent(
          system.hostNow(), *events_[ev_base + static_cast<std::size_t>(g)]);
    }

    collective::CollectiveMemory mem;
    mem.ranks.resize(static_cast<std::size_t>(p));
    for (int g = 0; g < p; ++g) {
      auto& rank = mem.ranks[static_cast<std::size_t>(g)];
      rank.device = g;
      rank.send = wholeBuffer(send_[static_cast<std::size_t>(g)]);
      rank.recv = wholeBuffer(recv_[static_cast<std::size_t>(g)]);
    }
    comm_.allToAllSingle(matrix, nullptr, {}, &comm_streams_, &mem);

    // BUG: the unpack must wait for the all-to-all (an a2a-done event on
    // the comm stream) before reading the receive buffer. It doesn't.
    for (int g = 0; g < p; ++g) {
      auto desc = emb::buildUnpackKernel(layer_, g, nullptr, nullptr);
      if (san != nullptr) {
        desc.mem_effects.push_back(
            {g, wholeBuffer(recv_[static_cast<std::size_t>(g)]),
             AccessKind::kRead, ""});
        desc.mem_effects.push_back(
            {g, wholeBuffer(out_[static_cast<std::size_t>(g)]),
             AccessKind::kWrite, ""});
      }
      system.launchKernel(g, std::move(desc));
    }

    core::BatchTiming timing;
    timing.total = system.syncAll() - t0;
    return timing;
  }

 private:
  emb::ShardedEmbeddingLayer& layer_;
  collective::Communicator& comm_;
  std::vector<gpu::DeviceBuffer> send_, recv_, out_;
  std::vector<gpu::Stream*> comm_streams_;
  std::vector<std::unique_ptr<gpu::GpuEvent>> events_;
};

const core::RetrieverRegistrar kBrokenNoWaitRegistrar{
    "broken_no_unpack_wait",
    [](const core::SystemContext& ctx)
        -> std::unique_ptr<core::EmbeddingRetriever> {
      return std::make_unique<BrokenNoUnpackWait>(ctx.layer, ctx.comm);
    }};

bool anyRaceMentions(const simsan::Summary& s, const std::string& one,
                     const std::string& two) {
  for (const auto& v : s.violations) {
    if (v.kind != simsan::Violation::Kind::kRace) continue;
    if (v.message.find(one) != std::string::npos &&
        v.message.find(two) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(SeededBugTest, UnpackWithoutWaitIsFlagged) {
  engine::ScenarioRunner runner(tinySimsanConfig(4));
  const auto result = runner.run("broken_no_unpack_wait");
  ASSERT_TRUE(result.sanitizer.has_value());
  const auto& s = *result.sanitizer;
  EXPECT_GT(s.races, 0) << s.report();
  // The report names the two conflicting accesses: the collective's
  // receive-buffer write and the unpack kernel's read.
  EXPECT_TRUE(anyRaceMentions(s, "all_to_all_single", "emb_unpack"))
      << s.report();
  // No false bounds/lifetime noise.
  EXPECT_EQ(s.out_of_bounds, 0) << s.report();
  EXPECT_EQ(s.lifetime_errors, 0) << s.report();
  EXPECT_EQ(s.leaks, 0) << s.report();
}

// ---------------------------------------------------------------------------
// Seeded bug 2: fused PGAS kernel without quiet (finalize stripped)
// ---------------------------------------------------------------------------

/// PGAS fused retriever whose kernels skip nvshmem_quiet: completion no
/// longer waits for remote-write delivery, and — equivalently in
/// happens-before terms — nothing ever joins the in-kernel put actor
/// back into its stream, so the one-sided writes stay unordered with
/// every later consumer.
class BrokenNoQuiet final : public core::EmbeddingRetriever {
 public:
  BrokenNoQuiet(emb::ShardedEmbeddingLayer& layer, pgas::PgasRuntime& runtime,
                int slices)
      : layer_(layer), runtime_(runtime), slices_(slices) {
    auto& system = layer.system();
    const auto& sh = layer.sharding();
    const int dim = layer.dim();
    std::int64_t max_elements = 0;
    for (int g = 0; g < system.numGpus(); ++g) {
      max_elements = std::max(max_elements, sh.outputElements(g, dim));
    }
    outputs_sym_ = runtime.heap().alloc(max_elements);
    for (int g = 0; g < system.numGpus(); ++g) {
      outputs_view_.push_back(outputs_sym_.on(g));
    }
  }

  ~BrokenNoQuiet() override { runtime_.heap().free(outputs_sym_); }

  std::string name() const override { return "broken_no_quiet"; }
  gpu::DeviceBuffer& output(int gpu) override {
    return outputs_view_[static_cast<std::size_t>(gpu)];
  }

  core::BatchTiming runBatch(const emb::SparseBatch& batch) override {
    auto& system = layer_.system();
    auto* san = system.sanitizer();
    const int p = system.numGpus();
    const SimTime t0 = system.hostNow();
    for (int g = 0; g < p; ++g) {
      auto fused =
          emb::buildFusedLookupKernel(layer_, batch, g, nullptr, slices_);
      std::vector<simsan::MemEffect> remote_writes;
      if (san != nullptr) {
        fused.desc.mem_effects.push_back(
            {g, footprint(g, g), AccessKind::kWrite, ""});
        for (int d = 0; d < p; ++d) {
          if (d == g) continue;
          remote_writes.push_back({d, footprint(g, d),
                                   AccessKind::kRemoteWrite,
                                   fused.desc.name + ".put"});
        }
      }
      runtime_.attachMessagePlan(fused.desc, g, std::move(fused.plan),
                                 nullptr, nullptr, std::move(remote_writes));
      // BUG: strip the quiet — the kernel "completes" without waiting
      // for (or ordering against) its in-flight one-sided writes.
      fused.desc.finalize = nullptr;
      system.launchKernel(g, std::move(fused.desc));
    }
    core::BatchTiming timing;
    timing.total = system.syncAll() - t0;
    return timing;
  }

 private:
  simsan::StridedRange footprint(int src, int dst) const {
    auto range = emb::fusedWriteFootprint(layer_.sharding(), src, dst,
                                          layer_.dim());
    range.begin += outputs_view_[static_cast<std::size_t>(dst)].offset();
    return range;
  }

  emb::ShardedEmbeddingLayer& layer_;
  pgas::PgasRuntime& runtime_;
  int slices_;
  pgas::SymmetricBuffer outputs_sym_;
  std::vector<gpu::DeviceBuffer> outputs_view_;
};

const core::RetrieverRegistrar kBrokenNoQuietRegistrar{
    "broken_no_quiet",
    [](const core::SystemContext& ctx)
        -> std::unique_ptr<core::EmbeddingRetriever> {
      return std::make_unique<BrokenNoQuiet>(ctx.layer, ctx.runtime,
                                             ctx.pgas_slices);
    }};

TEST(SeededBugTest, FusedKernelWithoutQuietIsFlagged) {
  engine::ScenarioRunner runner(tinySimsanConfig(4));
  const auto result = runner.run("broken_no_quiet");
  ASSERT_TRUE(result.sanitizer.has_value());
  const auto& s = *result.sanitizer;
  EXPECT_GT(s.races, 0) << s.report();
  // The report names the unjoined put engine's remote write and a later
  // consumer of the output tensor (the host's read stands in for the
  // downstream interaction layer).
  EXPECT_TRUE(anyRaceMentions(s, "pgas_put", "host.consume_output"))
      << s.report();
  EXPECT_EQ(s.out_of_bounds, 0) << s.report();
  EXPECT_EQ(s.lifetime_errors, 0) << s.report();
}

// ---------------------------------------------------------------------------
// Seeded bug 3: cached PGAS without the pre-serve barrier
// ---------------------------------------------------------------------------

/// Cached PGAS retriever with the post-exchange syncAll removed: the
/// replica-serve kernels overlay the hit bags onto the output tensor
/// while remote fused kernels may still be putting miss bags into it.
/// The quiet itself is intact — the missing edge is the global barrier
/// between the exchange and the serve stage.
class BrokenCachedNoBarrier final : public core::EmbeddingRetriever {
 public:
  BrokenCachedNoBarrier(emb::ShardedEmbeddingLayer& layer,
                        pgas::PgasRuntime& runtime, int slices,
                        emb::ReplicaCache* cache)
      : layer_(layer), runtime_(runtime), slices_(slices), cache_(cache) {
    PGASEMB_CHECK(cache != nullptr, "this seeded bug needs the cache");
    auto& system = layer.system();
    const auto& sh = layer.sharding();
    const int dim = layer.dim();
    std::int64_t max_elements = 0;
    for (int g = 0; g < system.numGpus(); ++g) {
      max_elements = std::max(max_elements, sh.outputElements(g, dim));
    }
    outputs_sym_ = runtime.heap().alloc(max_elements);
    for (int g = 0; g < system.numGpus(); ++g) {
      outputs_view_.push_back(outputs_sym_.on(g));
    }
  }

  ~BrokenCachedNoBarrier() override { runtime_.heap().free(outputs_sym_); }

  std::string name() const override { return "broken_cached_no_barrier"; }
  gpu::DeviceBuffer& output(int gpu) override {
    return outputs_view_[static_cast<std::size_t>(gpu)];
  }

  core::BatchTiming runBatch(const emb::SparseBatch& batch) override {
    auto& system = layer_.system();
    auto* san = system.sanitizer();
    const int p = system.numGpus();
    const SimTime t0 = system.hostNow();
    const emb::CacheFilter filter(layer_, batch, *cache_);
    for (int g = 0; g < p; ++g) {
      system.launchKernel(g, emb::buildCacheProbeKernel(layer_, filter, g));
      auto fused = emb::buildFusedLookupKernel(layer_, batch, g, nullptr,
                                               slices_, &filter);
      std::vector<simsan::MemEffect> remote_writes;
      if (san != nullptr) {
        fused.desc.mem_effects.push_back(
            {g, footprint(g, g), AccessKind::kWrite, ""});
        for (int d = 0; d < p; ++d) {
          if (d == g) continue;
          remote_writes.push_back({d, footprint(g, d),
                                   AccessKind::kRemoteWrite,
                                   fused.desc.name + ".put"});
        }
      }
      runtime_.attachMessagePlan(fused.desc, g, std::move(fused.plan),
                                 nullptr, nullptr, std::move(remote_writes));
      system.launchKernel(g, std::move(fused.desc));
    }
    // BUG: no system.syncAll() here — the serve overlay runs concurrent
    // with the other GPUs' one-sided miss writes into the same tensor.
    for (int g = 0; g < p; ++g) {
      auto serve = emb::buildCacheServeKernel(layer_, batch, filter, g,
                                              nullptr, nullptr);
      if (san != nullptr) {
        const auto& rep = cache_->replica(g);
        const auto& out = outputs_view_[static_cast<std::size_t>(g)];
        serve.mem_effects.push_back(
            {g, contiguous(rep.offset(), rep.size()), AccessKind::kRead, ""});
        serve.mem_effects.push_back(
            {g, contiguous(out.offset(), out.size()), AccessKind::kWrite,
             ""});
      }
      system.launchKernel(g, std::move(serve));
    }
    core::BatchTiming timing;
    timing.total = system.syncAll() - t0;
    return timing;
  }

 private:
  simsan::StridedRange footprint(int src, int dst) const {
    auto range = emb::fusedWriteFootprint(layer_.sharding(), src, dst,
                                          layer_.dim());
    range.begin += outputs_view_[static_cast<std::size_t>(dst)].offset();
    return range;
  }

  emb::ShardedEmbeddingLayer& layer_;
  pgas::PgasRuntime& runtime_;
  int slices_;
  emb::ReplicaCache* cache_;
  pgas::SymmetricBuffer outputs_sym_;
  std::vector<gpu::DeviceBuffer> outputs_view_;
};

const core::RetrieverRegistrar kBrokenCachedRegistrar{
    "broken_cached_no_barrier",
    [](const core::SystemContext& ctx)
        -> std::unique_ptr<core::EmbeddingRetriever> {
      return std::make_unique<BrokenCachedNoBarrier>(
          ctx.layer, ctx.runtime, ctx.pgas_slices, ctx.cache);
    }};

TEST(SeededBugTest, CachedServeWithoutBarrierIsFlagged) {
  engine::ScenarioRunner runner(tinyCachedSimsanConfig(4));
  const auto result = runner.run("broken_cached_no_barrier");
  ASSERT_TRUE(result.sanitizer.has_value());
  const auto& s = *result.sanitizer;
  EXPECT_GT(s.races, 0) << s.report();
  // The report names the serve overlay against the in-flight one-sided
  // miss write it fails to order against.
  EXPECT_TRUE(anyRaceMentions(s, "emb_cache_serve", ".put")) << s.report();
  EXPECT_EQ(s.out_of_bounds, 0) << s.report();
  EXPECT_EQ(s.lifetime_errors, 0) << s.report();
}

TEST(SeededBugTest, RestoringTheBarrierFixesIt) {
  // Identical configuration through the shipped cached pgas_fused
  // retriever (barrier intact) is clean.
  engine::ScenarioRunner runner(tinyCachedSimsanConfig(4));
  const auto result = runner.run("pgas_fused");
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
}

TEST(SeededBugTest, RestoringTheQuietFixesIt) {
  // The same configuration through the real pgas_fused retriever (quiet
  // intact) is clean — the flag is the missing edge, not the harness.
  engine::ScenarioRunner runner(tinySimsanConfig(4));
  const auto result = runner.run("pgas_fused");
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
}

}  // namespace
}  // namespace pgasemb

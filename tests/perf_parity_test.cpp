// Golden-parity suite for the TimingOnly fast path (DESIGN.md 9).
//
// The per-flow coalescing optimization must never change a simulated
// result — only host wall-clock. Every retriever is run twice on the
// same config, coalescing on vs off (--no-coalesce), and the FULL
// ExperimentResult is compared field by field: per-batch timings, the
// accumulated stats, wire totals, and the comm-volume time series.
// A final test asserts the fast path actually engages (strictly fewer
// host events) so a silently disabled optimization cannot pass as
// "parity".
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/scenario_runner.hpp"
#include "fault/plan.hpp"

namespace pgasemb::engine {
namespace {

const std::vector<std::string> kRetrievers = {
    "nccl_collective", "pgas_fused", "nccl_pipelined"};

ExperimentConfig smallConfig() {
  ExperimentConfig cfg = weakScalingConfig(2);
  cfg.num_batches = 4;
  return cfg;
}

void expectTimingEq(const core::BatchTiming& a, const core::BatchTiming& b,
                    const std::string& what) {
  EXPECT_EQ(a.total, b.total) << what;
  EXPECT_EQ(a.compute_phase, b.compute_phase) << what;
  EXPECT_EQ(a.comm_phase, b.comm_phase) << what;
  EXPECT_EQ(a.unpack_phase, b.unpack_phase) << what;
  EXPECT_EQ(a.wire_time, b.wire_time) << what;
  EXPECT_EQ(a.cache_lookups, b.cache_lookups) << what;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
  EXPECT_EQ(a.cache_saved_bytes, b.cache_saved_bytes) << what;
}

/// Runs every retriever with coalescing on and off and requires the two
/// ExperimentResults to be identical in every simulated field.
void expectParity(ExperimentConfig cfg) {
  for (const auto& name : kRetrievers) {
    cfg.coalesce_flows = true;
    ScenarioRunner fast(cfg);
    const ExperimentResult on = fast.run(name);

    cfg.coalesce_flows = false;
    ScenarioRunner slow(cfg);
    const ExperimentResult off = slow.run(name);

    const std::string what = "retriever " + name;
    EXPECT_EQ(on.stats.batches, off.stats.batches) << what;
    EXPECT_EQ(on.stats.total, off.stats.total) << what;
    EXPECT_EQ(on.stats.compute_phase, off.stats.compute_phase) << what;
    EXPECT_EQ(on.stats.comm_phase, off.stats.comm_phase) << what;
    EXPECT_EQ(on.stats.unpack_phase, off.stats.unpack_phase) << what;
    EXPECT_EQ(on.stats.wire_time, off.stats.wire_time) << what;
    EXPECT_EQ(on.stats.cache_lookups, off.stats.cache_lookups) << what;
    EXPECT_EQ(on.stats.cache_hits, off.stats.cache_hits) << what;
    EXPECT_EQ(on.stats.cache_saved_bytes, off.stats.cache_saved_bytes)
        << what;

    ASSERT_EQ(on.per_batch.size(), off.per_batch.size()) << what;
    for (std::size_t i = 0; i < on.per_batch.size(); ++i) {
      expectTimingEq(on.per_batch[i], off.per_batch[i],
                     what + " batch " + std::to_string(i));
    }

    EXPECT_EQ(on.total_wire_bytes, off.total_wire_bytes) << what;
    EXPECT_EQ(on.total_wire_messages, off.total_wire_messages) << what;
    EXPECT_EQ(on.bucket_width, off.bucket_width) << what;
    ASSERT_EQ(on.wire_bytes_over_time.size(), off.wire_bytes_over_time.size())
        << what;
    for (std::size_t i = 0; i < on.wire_bytes_over_time.size(); ++i) {
      EXPECT_EQ(on.wire_bytes_over_time[i], off.wire_bytes_over_time[i])
          << what << " bucket " << i;
    }
    EXPECT_EQ(on.lookup_compute_throughput, off.lookup_compute_throughput)
        << what;
    EXPECT_EQ(on.lookup_memory_throughput, off.lookup_memory_throughput)
        << what;
  }
}

TEST(PerfParityTest, PlainTimingOnly) { expectParity(smallConfig()); }

TEST(PerfParityTest, WithReplicaCache) {
  ExperimentConfig cfg = smallConfig();
  cfg.cache_rows = 128;
  cfg.layer.zipf_alpha = 0.9;
  expectParity(cfg);
}

TEST(PerfParityTest, WithFaults) {
  // A fault plan disables coalescing internally (drop windows need the
  // per-message timeline), so both runs take the same path — the test
  // still guards the eligibility gate against wrongly staying on.
  ExperimentConfig cfg = smallConfig();
  cfg.faults = fault::FaultPlan::parse("link-degrade:0-1:0.5", 7,
                                       SimTime::ms(50.0));
  expectParity(cfg);
}

TEST(PerfParityTest, WithCacheAndFaults) {
  ExperimentConfig cfg = smallConfig();
  cfg.cache_rows = 128;
  cfg.layer.zipf_alpha = 0.9;
  cfg.faults = fault::FaultPlan::parse("link-flap:*:1.0-2.0", 11,
                                       SimTime::ms(50.0));
  expectParity(cfg);
}

TEST(PerfParityTest, CoalescingActuallyEngages) {
  // Parity alone could be satisfied by a fast path that never arms.
  // On the plain TimingOnly config the PGAS run must process strictly
  // fewer host events with coalescing on.
  ExperimentConfig cfg = smallConfig();
  cfg.coalesce_flows = true;
  ScenarioRunner fast(cfg);
  (void)fast.run("pgas_fused");
  const auto fast_events =
      fast.builder().system().simulator().eventsProcessed();

  cfg.coalesce_flows = false;
  ScenarioRunner slow(cfg);
  (void)slow.run("pgas_fused");
  const auto slow_events =
      slow.builder().system().simulator().eventsProcessed();

  EXPECT_LT(fast_events, slow_events);
  // The win is per message-plan slice; with 128 slices per put it is
  // well over an order of magnitude, not a rounding artifact.
  EXPECT_LT(fast_events * 10, slow_events);
}

TEST(PerfParityTest, SimsanDisablesCoalescingButKeepsResults) {
  // Under --simsan the per-message path re-arms (the checker needs every
  // delivery); simulated timings must still match a plain coalesced run.
  ExperimentConfig cfg = smallConfig();
  cfg.coalesce_flows = true;
  ScenarioRunner plain(cfg);
  const ExperimentResult fast = plain.run("pgas_fused");

  cfg.simsan = true;
  ScenarioRunner checked(cfg);
  const ExperimentResult san = checked.run("pgas_fused");

  EXPECT_EQ(fast.stats.total, san.stats.total);
  EXPECT_EQ(fast.total_wire_bytes, san.total_wire_bytes);
  EXPECT_EQ(fast.total_wire_messages, san.total_wire_messages);
  ASSERT_TRUE(san.sanitizer.has_value());
  EXPECT_TRUE(san.sanitizer->clean()) << san.sanitizer->report();
}

}  // namespace
}  // namespace pgasemb::engine

// Multi-node retrieval suite (DESIGN.md §12): hierarchical all-to-all,
// topology-aware routing, and error-bounded inter-node compression.
//
// Layers covered:
//   - InterNodeCodec property tests: randomized round-trip error within
//     the bound, the exact wire-size formula, monotone width selection.
//   - Golden parity: with both features off, a 2-node run's totals are
//     pinned to the pre-§12 numbers — the refactor cannot move defaults.
//   - Modeled wins: at 4 nodes the hierarchical path must cut inter-node
//     wire-equivalent bytes >= 2x and improve ms/batch for all three
//     retrievers; fixed 1e-2 compression must cut codec bytes >= 4x more.
//   - Functional accuracy: cross-node values really pass through the
//     codec, and the measured max error respects the bound.
//   - simsan certification of the hierarchical+compressed paths, plus a
//     seeded scatter-before-interflow-complete bug the checker must name.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "engine/scenario_runner.hpp"
#include "fabric/compression.hpp"
#include "fault/plan.hpp"

namespace pgasemb::engine {
namespace {

const std::vector<std::string> kRetrievers = {
    "nccl_collective", "pgas_fused", "nccl_pipelined"};

/// The IB-like inter-node links every multi-node bench uses (and
/// bench/bench_multinode.cpp pins): 25 GB/s, 5 us, 64 B, 10 M msg/s.
void applyInterNodeLink(ExperimentConfig& cfg, int nodes) {
  cfg.num_nodes = nodes;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5.0);
  cfg.inter_node_link.header_bytes = 64;
  cfg.inter_node_link.max_messages_per_sec = 10e6;
}

/// 4-node x 4-GPU sweep cell on the bench's multi-node workload.
ExperimentConfig sweepConfig(int nodes, int per_node) {
  ExperimentConfig cfg = weakScalingConfig(nodes * per_node);
  cfg.layer = emb::multinodeServingLayerSpec(nodes * per_node);
  cfg.num_batches = 2;
  applyInterNodeLink(cfg, nodes);
  return cfg;
}

/// Small 2-node layer for Functional runs (real weights, real codec).
ExperimentConfig functionalConfig() {
  ExperimentConfig cfg = weakScalingConfig(4);
  cfg.layer.total_tables = 8;
  cfg.layer.rows_per_table = 4096;
  cfg.layer.dim = 32;
  cfg.layer.batch_size = 64;
  cfg.layer.min_pooling = 1;
  cfg.layer.max_pooling = 8;
  cfg.num_batches = 2;
  applyInterNodeLink(cfg, 2);
  cfg.mode = gpu::ExecutionMode::kFunctional;
  return cfg;
}

bool anyRaceMentions(const simsan::Summary& s, const std::string& one,
                     const std::string& two) {
  for (const auto& v : s.violations) {
    if (v.kind != simsan::Violation::Kind::kRace) continue;
    if (v.message.find(one) != std::string::npos &&
        v.message.find(two) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// InterNodeCodec property tests
// ---------------------------------------------------------------------------

TEST(InterNodeCodecTest, MinBitsMonotoneInBoundAndRange) {
  // Tighter bounds and wider ranges never pick narrower mantissas.
  for (const double range : {0.5, 1.0, 8.0, 100.0}) {
    int prev = fabric::InterNodeCodec::kIncompressibleBits + 1;
    for (const double bound : {1e-6, 1e-4, 1e-2, 1e-1, 0.5}) {
      const int bits = fabric::InterNodeCodec::minBitsFor(range, bound);
      EXPECT_LE(bits, prev) << "range " << range << " bound " << bound;
      prev = bits;
    }
  }
  for (const double bound : {1e-4, 1e-2}) {
    int prev = 0;
    for (const double range : {0.25, 1.0, 4.0, 64.0}) {
      const int bits = fabric::InterNodeCodec::minBitsFor(range, bound);
      EXPECT_GE(bits, prev) << "range " << range << " bound " << bound;
      prev = bits;
    }
  }
  // A bound no 16-bit mantissa can meet ships raw fp32.
  EXPECT_EQ(fabric::InterNodeCodec::minBitsFor(1e6, 1e-6),
            fabric::InterNodeCodec::kIncompressibleBits);
}

TEST(InterNodeCodecTest, RandomizedRoundTripWithinBound) {
  std::mt19937_64 rng(0x5eed'c0de);
  for (const double range : {1.0, 3.0, 42.0}) {
    for (const double bound : {1e-1, 1e-2, 1e-3}) {
      fabric::InterNodeCodec codec({range}, bound, /*adaptive=*/false,
                                   /*num_nodes=*/2, 25e9);
      std::uniform_real_distribution<double> dist(-range, range);
      double max_err = 0.0;
      for (int i = 0; i < 2000; ++i) {
        const float v = static_cast<float>(dist(rng));
        const float back = codec.transcode(0, v);
        max_err = std::max(max_err, std::abs(double(back) - double(v)));
      }
      EXPECT_LE(max_err, bound) << "range " << range << " bound " << bound;
      // The codec's own bookkeeping agrees with the oracle above.
      EXPECT_NEAR(codec.tableStats()[0].max_abs_error, max_err, 1e-12);
      EXPECT_EQ(codec.tableStats()[0].samples, 2000);
    }
  }
}

TEST(InterNodeCodecTest, CompressedBytesFormulaExact) {
  using Codec = fabric::InterNodeCodec;
  // bits-per-element packing plus the flow header, rounded up to bytes.
  EXPECT_EQ(Codec::compressedBytes(4096, 7),
            (4096 / 4 * 7 + 7) / 8 + Codec::kFlowHeaderBytes);
  EXPECT_EQ(Codec::compressedBytes(4, 16),
            2 + Codec::kFlowHeaderBytes);
  EXPECT_EQ(Codec::compressedBytes(400, 2),
            (100 * 2 + 7) / 8 + Codec::kFlowHeaderBytes);
  // Incompressible tables pass through without the header.
  EXPECT_EQ(Codec::compressedBytes(4096, Codec::kIncompressibleBits), 4096);
  // No payload, no flow: empty transfers ship nothing, not a header.
  EXPECT_EQ(Codec::compressedBytes(0, 7), 0);
}

TEST(InterNodeCodecTest, AggregateBitsFixedVersusAdaptive) {
  // Two tables: range 1 and range 8 -> the aggregate width is the wider
  // of the two minimal widths.
  const double bound = 1e-2;
  const int wide = fabric::InterNodeCodec::minBitsFor(8.0, bound);
  fabric::InterNodeCodec fixed({1.0, 8.0}, bound, /*adaptive=*/false, 2,
                               25e9);
  EXPECT_EQ(fixed.aggregateBits(0, SimTime::zero()), wide);

  // Adaptive with no observed egress: the NIC is cool, so flows ship at
  // the light width; after saturating egress the width tightens.
  fabric::InterNodeCodec adaptive({1.0, 8.0}, bound, /*adaptive=*/true, 2,
                                  25e9, SimTime::us(20.0));
  EXPECT_EQ(adaptive.aggregateBits(0, SimTime::us(50.0)),
            fabric::InterNodeCodec::kLightBits);
  for (int b = 0; b < 5; ++b) {
    adaptive.recordEgress(0, SimTime::us(20.0 * b + 10.0),
                          std::int64_t(25e9 * 20e-6));  // 100% of a bucket
  }
  EXPECT_EQ(adaptive.aggregateBits(0, SimTime::us(110.0)), wide);
}

// ---------------------------------------------------------------------------
// Golden parity: defaults must not move
// ---------------------------------------------------------------------------

TEST(MultiNodeGoldenTest, DefaultsMatchPreHierarchicalTotals) {
  // weakScalingConfig(8), 3 batches, 2 nodes on the IB-like links: the
  // exact totals recorded before the §12 features landed. Any drift
  // here means the flags-off paths changed behavior.
  struct Golden {
    const char* retriever;
    std::int64_t total_ps;
    std::int64_t wire_bytes;
    std::int64_t wire_messages;
  };
  const Golden golden[] = {
      {"nccl_collective", 532586642634, 5637144576, 1344},
      {"pgas_fused", 630656198034, 5637144576, 22020096},
      {"nccl_pipelined", 424592753608, 5637144576, 1344},
  };
  ExperimentConfig cfg = weakScalingConfig(8);
  cfg.num_batches = 3;
  applyInterNodeLink(cfg, 2);
  for (const auto& g : golden) {
    ScenarioRunner runner(cfg);
    const ExperimentResult r = runner.run(g.retriever);
    EXPECT_EQ(r.stats.total.count(), g.total_ps) << g.retriever;
    EXPECT_EQ(r.total_wire_bytes, g.wire_bytes) << g.retriever;
    EXPECT_EQ(r.total_wire_messages, g.wire_messages) << g.retriever;
    // Defaults carry no multi-node extras beyond the traffic split.
    EXPECT_FALSE(r.compression.has_value()) << g.retriever;
    ASSERT_TRUE(r.inter_node.has_value()) << g.retriever;
    EXPECT_GT(r.inter_node->inter_payload_bytes, 0) << g.retriever;
  }
}

TEST(MultiNodeGoldenTest, SingleNodeReportsNoInterNodeSection) {
  ExperimentConfig cfg = weakScalingConfig(2);
  cfg.num_batches = 2;
  ScenarioRunner runner(cfg);
  const ExperimentResult r = runner.run("nccl_collective");
  EXPECT_FALSE(r.inter_node.has_value());
  EXPECT_FALSE(r.compression.has_value());
}

// ---------------------------------------------------------------------------
// Modeled wins: hierarchy and compression
// ---------------------------------------------------------------------------

TEST(HierarchicalTest, CutsInterBytesAndImprovesLatencyAt4Nodes) {
  for (const auto& name : kRetrievers) {
    ExperimentConfig flat = sweepConfig(4, 4);
    const ExperimentResult base = ScenarioRunner(flat).run(name);

    ExperimentConfig hier = sweepConfig(4, 4);
    hier.hierarchical_a2a = true;
    const ExperimentResult h = ScenarioRunner(hier).run(name);

    ASSERT_TRUE(base.inter_node.has_value()) << name;
    ASSERT_TRUE(h.inter_node.has_value()) << name;
    // >= 2x fewer wire-equivalent bytes across node boundaries (headers
    // and message-rate padding included) and fewer inter-node messages.
    EXPECT_LE(h.inter_node->inter_wire_equivalent_bytes * 2.0,
              base.inter_node->inter_wire_equivalent_bytes)
        << name;
    EXPECT_LT(h.inter_node->inter_messages,
              base.inter_node->inter_messages)
        << name;
    // And the modeled batch time improves.
    EXPECT_LT(h.avgBatchMs(), base.avgBatchMs()) << name;
  }
}

TEST(CompressionTest, FixedBoundCutsCodecBytesAtLeast4x) {
  // On the multi-node workload (range 1 pooled values) a 1e-2 bound
  // picks 7-bit mantissas: 32/7 with the header is > 4x.
  ExperimentConfig cfg = sweepConfig(4, 4);
  cfg.hierarchical_a2a = true;
  cfg.compress_bound = 1e-2;
  for (const auto& name : kRetrievers) {
    const ExperimentResult r = ScenarioRunner(cfg).run(name);
    ASSERT_TRUE(r.compression.has_value()) << name;
    EXPECT_GE(r.compression->ratio(), 4.0) << name;
    EXPECT_GT(r.compression->raw_bytes, 0) << name;
  }
  // For the chunked collective the win carries through to wire-equivalent
  // inter-node bytes too (one bulk flow per node pair, no rate padding).
  ExperimentConfig off = sweepConfig(4, 4);
  off.hierarchical_a2a = true;
  const ExperimentResult plain = ScenarioRunner(off).run("nccl_collective");
  const ExperimentResult comp = ScenarioRunner(cfg).run("nccl_collective");
  ASSERT_TRUE(plain.inter_node.has_value());
  ASSERT_TRUE(comp.inter_node.has_value());
  EXPECT_LE(comp.inter_node->inter_wire_equivalent_bytes * 4.0,
            plain.inter_node->inter_wire_equivalent_bytes);
}

TEST(CompressionTest, AdaptiveControllerIsSeedDeterministic) {
  ExperimentConfig cfg = sweepConfig(2, 4);
  cfg.hierarchical_a2a = true;
  cfg.compress_bound = 1e-2;
  cfg.compress_adaptive = true;
  const ExperimentResult a = ScenarioRunner(cfg).run("pgas_fused");
  const ExperimentResult b = ScenarioRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(a.compression.has_value());
  ASSERT_TRUE(b.compression.has_value());
  EXPECT_EQ(a.stats.total, b.stats.total);
  EXPECT_EQ(a.compression->wire_bytes, b.compression->wire_bytes);
  EXPECT_EQ(a.compression->hot_decisions, b.compression->hot_decisions);
  EXPECT_EQ(a.compression->cool_decisions, b.compression->cool_decisions);
  // The controller actually exercised both regimes' accounting.
  EXPECT_GT(a.compression->hot_decisions + a.compression->cool_decisions, 0);
}

TEST(CompressionTest, SharedNicQueueNeverFasterThanPerFlowQueues) {
  ExperimentConfig per_flow = sweepConfig(2, 4);
  ExperimentConfig shared = sweepConfig(2, 4);
  shared.nic_shared_queue = true;
  for (const auto& name : kRetrievers) {
    const ExperimentResult a = ScenarioRunner(per_flow).run(name);
    const ExperimentResult b = ScenarioRunner(shared).run(name);
    // Serializing each node's NIC injection can only add queueing delay.
    EXPECT_GE(b.stats.total, a.stats.total) << name;
  }
}

// ---------------------------------------------------------------------------
// Functional accuracy: the error is measured, not estimated
// ---------------------------------------------------------------------------

TEST(CompressionTest, FunctionalErrorStaysWithinBound) {
  for (const double bound : {1e-1, 1e-2}) {
    for (const char* name : {"nccl_collective", "pgas_fused"}) {
      ExperimentConfig cfg = functionalConfig();
      cfg.hierarchical_a2a = true;
      cfg.compress_bound = bound;
      const ExperimentResult r = ScenarioRunner(cfg).run(name);
      ASSERT_TRUE(r.compression.has_value()) << name;
      EXPECT_GT(r.compression->maxAbsError(), 0.0) << name;
      EXPECT_LE(r.compression->maxAbsError(), bound) << name;
      std::int64_t samples = 0;
      for (const auto& t : r.compression->tables) {
        EXPECT_LE(t.max_abs_error, bound) << name << " table " << t.table;
        samples += t.samples;
      }
      // Cross-node values really passed through the codec.
      EXPECT_GT(samples, 0) << name;
    }
  }
}

TEST(CompressionTest, ValidationRejectsInconsistentFlags) {
  ExperimentConfig adaptive_without_bound = sweepConfig(2, 2);
  adaptive_without_bound.compress_adaptive = true;
  EXPECT_THROW(adaptive_without_bound.validate(), Error);

  ExperimentConfig bug_without_hier = sweepConfig(2, 2);
  bug_without_hier.hier_bug_scatter = true;
  EXPECT_THROW(bug_without_hier.validate(), Error);

  ExperimentConfig negative_bound = sweepConfig(2, 2);
  negative_bound.compress_bound = -1e-3;
  EXPECT_THROW(negative_bound.validate(), Error);

  ExperimentConfig row_wise = sweepConfig(2, 2);
  row_wise.sharding = emb::ShardingScheme::kRowWise;
  row_wise.compress_bound = 1e-2;
  EXPECT_THROW(row_wise.validate(), Error);
}

// ---------------------------------------------------------------------------
// simsan certification of the new paths
// ---------------------------------------------------------------------------

TEST(MultiNodeSimsanTest, HierarchicalCompressedPathsAreClean) {
  for (const int per_node : {2, 4}) {
    ExperimentConfig cfg = sweepConfig(2, per_node);
    cfg.num_batches = 2;
    cfg.hierarchical_a2a = true;
    cfg.compress_bound = 1e-2;
    cfg.simsan = true;
    for (const auto& name : kRetrievers) {
      ScenarioRunner runner(cfg);
      const ExperimentResult r = runner.run(name);
      ASSERT_TRUE(r.sanitizer.has_value())
          << name << " @" << per_node << " GPUs/node";
      EXPECT_TRUE(r.sanitizer->clean())
          << name << " @" << per_node
          << " GPUs/node\n" << r.sanitizer->report();
    }
  }
}

TEST(MultiNodeSimsanTest, StrictEffectsHoldUnderHierarchyAndCompression) {
  // Strict mode replays actual simulated-memory touches against the
  // declared footprints; the leader staging kernels and the forwarded
  // hops must stay inside what they declared.
  ExperimentConfig cfg = sweepConfig(2, 2);
  cfg.num_batches = 2;
  cfg.hierarchical_a2a = true;
  cfg.compress_bound = 1e-2;
  cfg.simsan = true;
  cfg.simsan_strict = true;
  for (const char* name : {"nccl_collective", "pgas_fused"}) {
    ScenarioRunner runner(cfg);
    const ExperimentResult r = runner.run(name);
    ASSERT_TRUE(r.sanitizer.has_value()) << name;
    EXPECT_TRUE(r.sanitizer->clean()) << name << "\n"
                                      << r.sanitizer->report();
  }
}

// ---------------------------------------------------------------------------
// Node-level fault domains (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// Hierarchical sweep cell with a parsed fault plan (pinned windows so
/// the schedule is explicit, not seed-drawn).
ExperimentConfig faultedConfig(int nodes, int per_node,
                               const std::string& spec) {
  ExperimentConfig cfg = sweepConfig(nodes, per_node);
  cfg.hierarchical_a2a = true;
  cfg.faults = fault::FaultPlan::parse(spec, 7);
  return cfg;
}

TEST(NodeFaultDomainTest, ValidationRejectsIllFormedNodeFaultLayouts) {
  // Node-scoped kinds need a multi-node layout...
  ExperimentConfig single = weakScalingConfig(4);
  single.num_batches = 2;
  single.faults = fault::FaultPlan::parse("nic-degrade:0:0.5", 7);
  EXPECT_THROW(single.validate(), Error);
  // ...leader failover needs a healthy standby GPU on the node...
  ExperimentConfig thin = sweepConfig(2, 1);
  thin.hierarchical_a2a = true;
  thin.faults = fault::FaultPlan::parse("leader-fail:0", 7);
  EXPECT_THROW(thin.validate(), Error);
  // ...and the seeded rebuild bug only makes sense with the hierarchy.
  ExperimentConfig no_hier = sweepConfig(2, 2);
  no_hier.faults = fault::FaultPlan::parse("leader-fail:0", 7);
  no_hier.faults.bug_rebuild_without_requiet = true;
  EXPECT_THROW(no_hier.validate(), Error);
  // The well-formed variants pass.
  EXPECT_NO_THROW(faultedConfig(2, 2, "leader-fail:0").validate());
}

TEST(NodeFaultDomainTest, LeaderFailoverElectsStandbyAndRebuildsStaging) {
  // A whole-run leader-fail window on node 0: every collective must
  // re-elect the next healthy GPU, and the standby staging is rebuilt
  // exactly once per (node, window).
  for (const auto& name : kRetrievers) {
    ExperimentConfig cfg =
        faultedConfig(2, 2, "leader-fail:0:0.0-1000000.0");
    const ExperimentResult r = ScenarioRunner(cfg).run(name);
    EXPECT_EQ(r.stats.batches, cfg.num_batches) << name;
    ASSERT_TRUE(r.resilience.has_value()) << name;
    EXPECT_EQ(r.resilience->leader_failovers, 1) << name;
    // The PGAS fused path re-routes its puts hop by hop to the elected
    // leader and keeps no communicator staging, so only the collective
    // retrievers rebuild (exactly once per window).
    EXPECT_EQ(r.resilience->staging_rebuilds,
              name == std::string("pgas_fused") ? 0 : 1)
        << name;
  }
}

TEST(NodeFaultDomainTest, PerPairFallbackConfinedAndBeatsGlobalFlat) {
  // One node's NIC degraded for the whole run at 4 nodes: only pairs
  // touching that node fall back to flat routing; the other pairs keep
  // the hierarchy, so the run must beat the same fault on a fully flat
  // (hierarchy-off) configuration — the PR 9 behaviour this replaces.
  const std::string spec = "nic-degrade:0:0.5:0.0-1000000.0";
  for (const auto& name : kRetrievers) {
    ExperimentConfig one = faultedConfig(4, 2, spec);
    const ExperimentResult scoped = ScenarioRunner(one).run(name);
    ASSERT_TRUE(scoped.resilience.has_value()) << name;
    EXPECT_GT(scoped.resilience->hier_fallbacks, 0) << name;
    EXPECT_GT(scoped.resilience->degraded_time, SimTime::zero()) << name;

    // Confinement: degrading every node's NIC must fall back on more
    // pairs than degrading node 0 alone.
    ExperimentConfig all =
        faultedConfig(4, 2, "nic-degrade:*:0.5:0.0-1000000.0");
    const ExperimentResult global = ScenarioRunner(all).run(name);
    ASSERT_TRUE(global.resilience.has_value()) << name;
    EXPECT_GT(global.resilience->hier_fallbacks,
              scoped.resilience->hier_fallbacks)
        << name;

    // And the scoped degraded mode strictly beats running the whole
    // exchange flat under the same fault.
    ExperimentConfig flat = sweepConfig(4, 2);
    flat.faults = fault::FaultPlan::parse(spec, 7);
    const ExperimentResult f = ScenarioRunner(flat).run(name);
    EXPECT_LT(scoped.avgBatchMs(), f.avgBatchMs()) << name;
  }
}

TEST(NodeFaultDomainTest, NicFlapDropsRecoverWithConservedCounters) {
  // Calibrate a flap window inside the run from a clean pass, then
  // check every dropped inter-node flow is recovered by exactly one
  // retransmit or collective reissue.
  for (const auto& name : kRetrievers) {
    ExperimentConfig clean_cfg = sweepConfig(2, 2);
    clean_cfg.hierarchical_a2a = true;
    const ExperimentResult clean = ScenarioRunner(clean_cfg).run(name);
    const double batch_ms = clean.avgBatchMs();
    char spec[64];
    snprintf(spec, sizeof(spec), "nic-flap:0:%.4f-%.4f", batch_ms * 0.2,
             batch_ms * 1.2);
    const ExperimentResult r =
        ScenarioRunner(faultedConfig(2, 2, spec)).run(name);
    EXPECT_EQ(r.stats.batches, clean_cfg.num_batches) << name;
    ASSERT_TRUE(r.resilience.has_value()) << name;
    const auto& rs = *r.resilience;
    EXPECT_GT(rs.dropped_flows, 0) << name;
    EXPECT_EQ(rs.dropped_flows, rs.retransmits + rs.collective_reissues)
        << name;
    EXPECT_GT(rs.recovery_latency, SimTime::zero()) << name;
    // Faults cost time, never correctness: the run is slower, not wrong.
    EXPECT_GE(r.stats.total, clean.stats.total) << name;
  }
}

TEST(MultiNodeSimsanTest, FailoverStagingCertifiedCleanAcrossWidths) {
  // The failover path (standby election + staging rebuild + member
  // gathers acquiring the republished key) must be race-free at 2 and 4
  // GPUs per node for every retriever.
  for (const int per_node : {2, 4}) {
    ExperimentConfig cfg =
        faultedConfig(2, per_node, "leader-fail:0:0.0-1000000.0");
    cfg.simsan = true;
    for (const auto& name : kRetrievers) {
      const ExperimentResult r = ScenarioRunner(cfg).run(name);
      ASSERT_TRUE(r.sanitizer.has_value())
          << name << " @" << per_node << " GPUs/node";
      EXPECT_TRUE(r.sanitizer->clean())
          << name << " @" << per_node << " GPUs/node\n"
          << r.sanitizer->report();
      ASSERT_TRUE(r.resilience.has_value()) << name;
      EXPECT_EQ(r.resilience->staging_rebuilds,
                name == std::string("pgas_fused") ? 0 : 1)
          << name;
    }
  }
}

TEST(MultiNodeSimsanTest, FailoverStagingHoldsUnderStrictEffects) {
  // Strict mode replays simulated-memory touches against declared
  // footprints: the rebuild kernel and the re-routed gathers must stay
  // inside theirs.
  ExperimentConfig cfg =
      faultedConfig(2, 2, "leader-fail:0:0.0-1000000.0");
  cfg.simsan = true;
  cfg.simsan_strict = true;
  for (const char* name : {"nccl_collective", "pgas_fused"}) {
    const ExperimentResult r = ScenarioRunner(cfg).run(name);
    ASSERT_TRUE(r.sanitizer.has_value()) << name;
    EXPECT_TRUE(r.sanitizer->clean()) << name << "\n"
                                      << r.sanitizer->report();
  }
}

TEST(MultiNodeSimsanTest, SeededRebuildWithoutRequietIsCaughtByName) {
  // The seeded bug runs the rebuild's staging writes under a forked,
  // never-joined rogue actor and skips the node-wide re-quiet: member
  // gathers into the standby race it, and the report names the rebuild.
  ExperimentConfig cfg =
      faultedConfig(2, 2, "leader-fail:0:0.0-1000000.0");
  cfg.simsan = true;

  const ExperimentResult fixed = ScenarioRunner(cfg).run("nccl_collective");
  ASSERT_TRUE(fixed.sanitizer.has_value());
  ASSERT_TRUE(fixed.resilience.has_value());
  ASSERT_GT(fixed.resilience->staging_rebuilds, 0);  // the bug path ran
  EXPECT_TRUE(fixed.sanitizer->clean()) << fixed.sanitizer->report();

  cfg.faults.bug_rebuild_without_requiet = true;
  const ExperimentResult buggy = ScenarioRunner(cfg).run("nccl_collective");
  ASSERT_TRUE(buggy.sanitizer.has_value());
  const auto& s = *buggy.sanitizer;
  EXPECT_FALSE(s.clean());
  bool named = false;
  for (const auto& v : s.violations) {
    if (v.message.find("emb_hier_rebuild") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << s.report();
}

TEST(MultiNodeSimsanTest, SeededScatterBeforeInterFlowIsFlagged) {
  // The seeded bug launches each leader's scatter at the moment its
  // gather staging is ready instead of waiting for the aggregated
  // inter-node flow to land: the scatter's staging read races the
  // inter-flow's remote write, and the report names both sides.
  ExperimentConfig cfg = sweepConfig(2, 2);
  cfg.num_batches = 1;
  cfg.hierarchical_a2a = true;
  cfg.hier_bug_scatter = true;
  cfg.simsan = true;
  ScenarioRunner runner(cfg);
  const ExperimentResult r = runner.run("nccl_collective");
  ASSERT_TRUE(r.sanitizer.has_value());
  const auto& s = *r.sanitizer;
  EXPECT_GT(s.races, 0) << s.report();
  EXPECT_TRUE(anyRaceMentions(s, "hier_inter", "hier_scatter"))
      << s.report();
  EXPECT_EQ(s.out_of_bounds, 0) << s.report();
  EXPECT_EQ(s.lifetime_errors, 0) << s.report();
}

}  // namespace
}  // namespace pgasemb::engine
